#!/usr/bin/env python
"""Limit study: how close does real hardware get to the dataflow bound?

For every Livermore loop this prints the pseudo-dataflow limit, the
resource limit (with the bottleneck unit), the binding limit, and the best
rate achieved by an aggressive but realistic machine (RUU, 4 issue units,
100 entries) -- the reproduction of the paper's Section 4 + Section 6
narrative about achieved fractions of the theoretical maximum.

Run:  python examples/limits_study.py
"""

from repro import M11BR5, RUUMachine, build_kernel, compute_limits
from repro.kernels import ALL_LOOPS, KERNEL_NAMES, classify


def main() -> None:
    machine = RUUMachine(4, 100)
    print(
        f"{'loop':<6}{'class':<14}{'pseudo-DF':>10}{'resource':>10}"
        f"{'bottleneck':>22}{'binding':>9}{'RUU x4':>8}{'achieved':>10}"
    )
    print("-" * 89)
    for number in ALL_LOOPS:
        kernel = build_kernel(number)
        trace = kernel.trace()
        limits = compute_limits(trace, M11BR5)
        achieved = machine.issue_rate(trace, M11BR5)
        fraction = achieved / limits.actual_rate
        print(
            f"{number:<6}{classify(number).value:<14}"
            f"{limits.pseudo_dataflow_rate:>10.2f}"
            f"{limits.resource_rate:>10.2f}"
            f"{limits.resource.bottleneck.value:>22}"
            f"{limits.actual_rate:>9.2f}"
            f"{achieved:>8.2f}"
            f"{fraction:>9.0%}"
        )
    print()
    print("'achieved' = RUU rate / binding limit; the gap is the paper's")
    print("motivation for multiple instruction issue beyond 4 units.")


if __name__ == "__main__":
    main()
