#!/usr/bin/env python
"""The vector unit the paper leaves idle: scalar vs vectorised execution.

The paper's machine is CRAY-like -- it *has* eight 64-element vector
registers -- but every experiment runs scalar code, because the subject is
scalar issue-rate limits.  This example compiles three of the
"vectorizable" loops for the vector unit (strip-mined, chained) and
compares cycles per element against the scalar encodings on the same
machine, with chaining on and off.

Run:  python examples/vectorization.py
"""

from repro import M11BR5, M5BR2, build_kernel
from repro.core import ScoreboardMachine, cray_like_machine
from repro.kernels.vectorized import VECTORIZED_LOOPS, build_vectorized


def main() -> None:
    chained = cray_like_machine()
    unchained = ScoreboardMachine(
        fu_pipelined=True, memory_interleaved=True, vector_chaining=False
    )

    print(
        f"{'loop':<6}{'n':>5}{'scalar cyc/elem':>17}"
        f"{'vector cyc/elem':>17}{'no-chain':>10}{'speedup':>9}"
    )
    print("-" * 64)
    for number in VECTORIZED_LOOPS:
        scalar = build_kernel(number)
        vector = build_vectorized(number)
        n = scalar.n

        scalar_cycles = chained.simulate(scalar.trace(), M11BR5).cycles
        vector_trace = vector.verify()
        vector_cycles = chained.simulate(vector_trace, M11BR5).cycles
        nochain_cycles = unchained.simulate(vector_trace, M11BR5).cycles

        print(
            f"{number:<6}{n:>5}{scalar_cycles / n:>17.2f}"
            f"{vector_cycles / n:>17.2f}{nochain_cycles / n:>10.2f}"
            f"{scalar_cycles / vector_cycles:>8.1f}x"
        )

    print()
    print("The vector encodings verify against the same NumPy references")
    print("as the scalar kernels.  Chaining (the CRAY-1 feature) lets a")
    print("dependent vector operation start one functional-unit latency")
    print("after its producer instead of a full vector later.")


if __name__ == "__main__":
    main()
