#!/usr/bin/env python
"""Behind the M5 idealisation: real caches and banked memories.

The paper prices memory at a flat 11 (CRAY-1) or 5 (cache-assumed) cycles.
This example puts an actual memory system behind the CRAY-like core using
the effective addresses recorded in the traces: a set-associative cache
with hit/miss latencies, and a CRAY-1-style 16-bank memory with a 4-cycle
bank-busy time.  It prints per-loop hit ratios and where each
configuration lands between the two idealisations.

Run:  python examples/memory_hierarchy.py
"""

from repro import M11BR5, build_kernel
from repro.kernels import ALL_LOOPS, classify
from repro.memsys import (
    BankedMemory,
    Cache,
    CachedMemory,
    ConflictMemory,
    MemoryAwareMachine,
    UniformMemory,
)


def main() -> None:
    ideal_slow = MemoryAwareMachine(lambda: UniformMemory(11))
    ideal_fast = MemoryAwareMachine(lambda: UniformMemory(5))

    print(
        f"{'loop':<6}{'class':<14}{'M11':>7}{'banked':>8}"
        f"{'cache 1K':>10}{'hit%':>6}{'M5':>7}"
    )
    print("-" * 58)
    for number in ALL_LOOPS:
        trace = build_kernel(number).trace()

        cache = Cache(1024, line_words=4, associativity=2)
        cached_model = CachedMemory(cache)
        cached = MemoryAwareMachine(lambda m=cached_model: m)
        banked = MemoryAwareMachine(
            lambda: ConflictMemory(BankedMemory(16, 4), 11)
        )

        slow = ideal_slow.issue_rate(trace, M11BR5)
        conflict = banked.issue_rate(trace, M11BR5)
        with_cache = cached.issue_rate(trace, M11BR5)
        fast = ideal_fast.issue_rate(trace, M11BR5)
        print(
            f"{number:<6}{classify(number).value:<14}{slow:>7.3f}"
            f"{conflict:>8.3f}{with_cache:>10.3f}"
            f"{cache.stats.hit_ratio:>6.0%}{fast:>7.3f}"
        )

    print()
    print("banked: 16 banks, 4-cycle busy -- conflicts are negligible at")
    print("single-issue rates, validating the paper's perfect interleaving.")
    print("cache: 1024 words, 4-word lines, 2-way LRU, hit 5 / miss 11 --")
    print("streaming kernels are compulsory-miss bound, so a cache delivers")
    print("most but not all of the M5 idealisation.")


if __name__ == "__main__":
    main()
