#!/usr/bin/env python
"""Quickstart: trace one Livermore loop and compare issue methods.

Builds Livermore loop 5 (the tri-diagonal recurrence), verifies the
assembly kernel against its NumPy reference while capturing the dynamic
trace, and replays that trace through the paper's main machine
organisations on the slow-memory/slow-branch variant (M11BR5).

Run:  python examples/quickstart.py
"""

from repro import (
    M11BR5,
    InOrderMultiIssueMachine,
    OutOfOrderMultiIssueMachine,
    RUUMachine,
    SimpleMachine,
    build_kernel,
    compute_limits,
    cray_like_machine,
    non_segmented_machine,
    serial_memory_machine,
    trace_stats,
)
from repro.trace import format_stats


def main() -> None:
    kernel = build_kernel(5)
    print(f"Livermore loop {kernel.number}: {kernel.name} "
          f"({kernel.loop_class.value}, n={kernel.n})")
    print()

    trace = kernel.trace()  # runs + verifies against the NumPy reference
    print(format_stats(trace_stats(trace)))
    print()

    simulators = [
        SimpleMachine(),
        serial_memory_machine(),
        non_segmented_machine(),
        cray_like_machine(),
        InOrderMultiIssueMachine(4),
        OutOfOrderMultiIssueMachine(4),
        RUUMachine(1, 50),
        RUUMachine(4, 50),
    ]

    print(f"{'machine':<28} {'issue rate (M11BR5)':>20}")
    print("-" * 50)
    for sim in simulators:
        result = sim.simulate(trace, M11BR5)
        print(f"{sim.name:<28} {result.issue_rate:>20.3f}")

    limits = compute_limits(trace, M11BR5)
    serial = compute_limits(trace, M11BR5, serial=True)
    print("-" * 50)
    print(f"{'pseudo-dataflow limit':<28} {limits.pseudo_dataflow_rate:>20.3f}")
    print(f"{'resource limit':<28} {limits.resource_rate:>20.3f}")
    print(f"{'actual (binding) limit':<28} {limits.actual_rate:>20.3f}")
    print(f"{'serial (WAW-ordered) limit':<28} {serial.actual_rate:>20.3f}")


if __name__ == "__main__":
    main()
