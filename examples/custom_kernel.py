#!/usr/bin/env python
"""Bring your own benchmark: write, verify, schedule and time a new kernel.

The paper's methodology is not tied to the Livermore loops; any program in
the base instruction set can be traced and replayed.  This example builds
SAXPY (y[i] += a*x[i]) from scratch with the assembly DSL, checks it
against NumPy, applies the list scheduler, and compares issue methods --
the complete workflow a user needs to study their own workload.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import (
    M11BR5,
    RUUMachine,
    compute_limits,
    cray_like_machine,
    generate_trace,
)
from repro.asm import Memory, ProgramBuilder
from repro.asm.scheduler import schedule_program
from repro.isa import A, S

N = 128
A_CONST = 2.5
X_BASE, Y_BASE = 16, 16 + N


def build_saxpy():
    b = ProgramBuilder("saxpy")
    b.si(S(1), A_CONST, comment="a")
    b.ai(A(1), 0, comment="i")
    b.ai(A(0), N, comment="trip count")
    b.label("loop")
    b.loads(S(2), A(1), X_BASE)
    b.loads(S(3), A(1), Y_BASE)
    b.fmul(S(2), S(1), S(2), comment="a*x[i]")
    b.fadd(S(3), S(3), S(2))
    b.stores(S(3), A(1), Y_BASE)
    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("loop")
    return b.build()


def main() -> None:
    program = build_saxpy()
    print(program.disassemble())
    print()

    rng = np.random.default_rng(7)
    x = rng.uniform(0.0, 1.0, N)
    y = rng.uniform(0.0, 1.0, N)

    for label, prog in (
        ("naive", program),
        ("scheduled", schedule_program(program)),
    ):
        memory = Memory(16 + 2 * N + 8)
        memory.write_block(X_BASE, x)
        memory.write_block(Y_BASE, y)
        trace = generate_trace(prog, memory, name=f"saxpy-{label}")

        # Verify against NumPy.
        got = memory.read_block(Y_BASE, N)
        expected = y + A_CONST * x
        assert np.allclose(got, expected, rtol=1e-12), "SAXPY result wrong!"

        cray = cray_like_machine().simulate(trace, M11BR5)
        ruu = RUUMachine(4, 50).simulate(trace, M11BR5)
        limit = compute_limits(trace, M11BR5).actual_rate
        print(
            f"{label:>9} code: CRAY-like {cray.issue_rate:.3f}   "
            f"RUU x4 {ruu.issue_rate:.3f}   dataflow limit {limit:.3f}"
        )


if __name__ == "__main__":
    main()
