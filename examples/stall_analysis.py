#!/usr/bin/env python
"""Where do the cycles go?  Stall attribution and pipeline timelines.

For a scalar recurrence (loop 5) and a parallel loop (loop 12), show the
CRAY-like machine's stall breakdown (which hazards burn cycles), a
pipeline diagram of two loop iterations, and the dataflow critical path
-- the diagnosis behind the paper's Table 1 -> Table 7 progression.

Run:  python examples/stall_analysis.py
"""

from repro import M11BR5, build_kernel
from repro.analysis import (
    critical_path,
    record_schedule,
    render_timeline,
    stall_breakdown,
)


def main() -> None:
    for number in (5, 12):
        kernel = build_kernel(number)
        trace = kernel.trace()
        print(f"### Livermore loop {number}: {kernel.name} "
              f"({kernel.loop_class.value})\n")

        breakdown = stall_breakdown(trace, M11BR5)
        print(breakdown.render())
        print()

        records = record_schedule(trace, M11BR5)
        body = len(kernel.program)  # roughly one iteration of instructions
        print(render_timeline(trace, records, first=body, count=min(body, 18)))
        print()

        path = critical_path(trace, M11BR5)
        print(path.render(trace, limit=8))
        print()


if __name__ == "__main__":
    main()
