#!/usr/bin/env python
"""Design-space exploration: issue methods x machine variants.

Sweeps a grid of machine organisations (built from registry specification
strings) over the scalar and vectorizable Livermore loop classes, printing
the harmonic-mean issue rate for each of the paper's four memory/branch
variants -- a condensed view of the whole paper in one run.

Run:  python examples/design_space.py            (full-size loops, ~1 min)
      python examples/design_space.py --small    (reduced sizes, seconds)
"""

import argparse

from repro import STANDARD_CONFIGS, build_simulator, harmonic_mean
from repro.kernels import SCALAR_LOOPS, SMALL_SIZES, VECTORIZABLE_LOOPS, build_kernel

SPECS = [
    "simple",
    "serialmemory",
    "nonsegmented",
    "cray",
    "inorder:2",
    "inorder:4",
    "ooo:4",
    "ooo:8",
    "ruu:1:50",
    "ruu:2:50",
    "ruu:4:50",
    "ruu:4:50:1bus",
]


def class_traces(loops, small: bool):
    traces = []
    for number in loops:
        kernel = build_kernel(number, SMALL_SIZES[number] if small else None)
        traces.append(kernel.trace() if not small else kernel.verify())
    return traces


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--small", action="store_true", help="reduced loop sizes")
    args = parser.parse_args()

    groups = {
        "scalar": class_traces(SCALAR_LOOPS, args.small),
        "vectorizable": class_traces(VECTORIZABLE_LOOPS, args.small),
    }

    for class_label, traces in groups.items():
        print(f"=== {class_label} loops "
              f"(harmonic mean over {len(traces)} kernels) ===")
        header = f"{'organisation':<18}" + "".join(
            f"{c.name:>9}" for c in STANDARD_CONFIGS
        )
        print(header)
        print("-" * len(header))
        for spec in SPECS:
            sim = build_simulator(spec)
            row = []
            for config in STANDARD_CONFIGS:
                rate = harmonic_mean(
                    sim.issue_rate(trace, config) for trace in traces
                )
                row.append(f"{rate:>9.3f}")
            print(f"{spec:<18}" + "".join(row))
        print()


if __name__ == "__main__":
    main()
