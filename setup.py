"""Setup shim for legacy editable installs (offline environment, no wheel)."""
from setuptools import setup

setup()
