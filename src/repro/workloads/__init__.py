"""Workload generators beyond the Livermore loops."""

from .synthetic import SyntheticSpec, build_synthetic, synthetic_memory, synthetic_trace

__all__ = [
    "SyntheticSpec",
    "build_synthetic",
    "synthetic_memory",
    "synthetic_trace",
]
