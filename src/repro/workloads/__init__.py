"""Workload generators beyond the Livermore loops."""

from .families import (
    BranchySpec,
    MixedSpec,
    PointerSpec,
    branchy_trace,
    mixed_trace,
    pointer_trace,
)
from .synthetic import SyntheticSpec, build_synthetic, synthetic_memory, synthetic_trace

__all__ = [
    "BranchySpec",
    "MixedSpec",
    "PointerSpec",
    "SyntheticSpec",
    "branchy_trace",
    "build_synthetic",
    "mixed_trace",
    "pointer_trace",
    "synthetic_memory",
    "synthetic_trace",
]
