"""Synthetic workload generator: loops with dialled-in characteristics.

The Livermore loops fix the paper's workload; this generator produces
loop kernels whose *characteristics* are parameters -- body size, memory
fraction, dependence-chain depth, loop-carried recurrence -- so the issue
methods can be swept against workload structure instead of against
specific benchmarks (e.g. "at what dependence depth does out-of-order
issue stop paying?").

Generated programs are real programs: they assemble, run on the
interpreter (values are kept numerically bounded by construction) and
trace like any kernel.  Generation is deterministic per spec (seeded).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..asm import Memory, ProgramBuilder, Program
from ..isa import A, S
from ..trace import Trace, generate_trace

#: Base address of the data the loop reads/writes.
_DATA_BASE = 64
_DATA_WORDS = 256


def _memory_words(spec: "SyntheticSpec") -> int:
    """Image size covering every reachable address (offset + displacement)."""
    return _DATA_BASE + _DATA_WORDS + spec.iterations + 8


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a synthetic loop kernel.

    Attributes:
        body_ops: non-control instructions per iteration.
        memory_fraction: share of body ops that reference memory
            (half loads, half stores).
        chains: independent dependence chains the arithmetic is spread
            over; fewer chains = deeper chains = less ILP.
            Must be 1..4 (chains live in S1..S4).
        loop_carried: if True the chains accumulate across iterations
            (a recurrence); if False each iteration restarts them.
        iterations: dynamic trip count.
        seed: RNG seed for the op sequence and data.
    """

    body_ops: int = 16
    memory_fraction: float = 0.3
    chains: int = 2
    loop_carried: bool = True
    iterations: int = 100
    seed: int = 0

    def __post_init__(self) -> None:
        if self.body_ops < 1:
            raise ValueError("body_ops must be >= 1")
        if not 0.0 <= self.memory_fraction <= 1.0:
            raise ValueError("memory_fraction must be in [0, 1]")
        if not 1 <= self.chains <= 4:
            raise ValueError("chains must be 1..4 (S1..S4)")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")

    @property
    def name(self) -> str:
        carried = "rec" if self.loop_carried else "par"
        return (
            f"synthetic-b{self.body_ops}-m{int(self.memory_fraction * 100)}"
            f"-c{self.chains}-{carried}-s{self.seed}"
        )


def build_synthetic(spec: SyntheticSpec) -> Program:
    """Generate the loop program for *spec*."""
    rng = np.random.default_rng(spec.seed + 7_777)
    b = ProgramBuilder(spec.name)

    chain_regs = [S(i + 1) for i in range(spec.chains)]
    temp_regs = [S(5), S(6), S(7)]

    for reg in chain_regs:
        b.si(reg, 0.0, comment="chain accumulator")
    b.ai(A(1), 0, comment="element offset")
    b.ai(A(0), spec.iterations)
    b.label("loop")

    if not spec.loop_carried:
        for reg in chain_regs:
            b.si(reg, 0.0, comment="restart chain (no recurrence)")

    temp_index = 0
    last_temp = None
    for op in range(spec.body_ops):
        chain = chain_regs[op % spec.chains]
        roll = rng.uniform()
        disp = _DATA_BASE + int(rng.integers(0, _DATA_WORDS - 1))
        if roll < spec.memory_fraction / 2:
            temp = temp_regs[temp_index % len(temp_regs)]
            temp_index += 1
            b.loads(temp, A(1), disp)
            last_temp = temp
        elif roll < spec.memory_fraction:
            b.stores(chain, A(1), disp)
        else:
            # Chain-extending arithmetic; FADD/FSUB keep values bounded
            # (loaded operands are in [-1, 1]).
            other = last_temp if last_temp is not None else chain_regs[0]
            if rng.uniform() < 0.5:
                b.fadd(chain, chain, other)
            else:
                b.fsub(chain, chain, other)

    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("loop")
    return b.build()


def synthetic_memory(spec: SyntheticSpec) -> Memory:
    """Deterministic input data for *spec* (values bounded in [-1, 1])."""
    rng = np.random.default_rng(spec.seed + 13_131)
    total = _memory_words(spec)
    memory = Memory(total)
    memory.write_block(
        _DATA_BASE, rng.uniform(-1.0, 1.0, total - _DATA_BASE - 1)
    )
    return memory


def synthetic_trace(spec: SyntheticSpec) -> Trace:
    """Generate, execute and trace the synthetic kernel for *spec*."""
    program = build_synthetic(spec)
    return generate_trace(program, synthetic_memory(spec))
