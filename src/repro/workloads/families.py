"""Parameterized workload families beyond the Livermore loops.

The paper's limit study draws every conclusion from 14 floating-point
Livermore kernels; the ILP literature shows those conclusions shift
sharply on branchy integer and pointer-chasing code.  This module grows
the workload catalog with three deterministic, seeded trace families:

* :func:`branchy_trace` -- control-dominated integer code: short
  integer dependence chains feeding ``A0``, a conditional branch every
  few instructions, data-dependent outcomes, mixed forward/backward
  targets.  Roughly a quarter of the dynamic stream is branches --
  the shape the Livermore loops (one backward branch per ~10-60
  instructions) never produce.
* :func:`pointer_trace` -- pointer-chasing with gathers: serial
  ``LOADA`` chains where each load's *address register is the previous
  load's result* (the linked-list walk that defeats wide issue), with
  gather ``LOADS`` hanging off the chased pointer and a little address
  arithmetic between hops.
* :func:`mixed_trace` -- mixed scalar-vector strips: CRAY-style
  strip-mined vector blocks (``VSETL``/``VLOAD``/``VSMUL``/``VVADD``/
  ``VSTORE``) interleaved with a scalar floating-point reduction and
  the strip-control address arithmetic.  Vector traces replay on the
  machines that model element streaming (Simple and the scoreboard
  family); the scalar machines reject them by design.

Every emitted trace is ISA-valid by construction -- each
:class:`~repro.isa.Instruction` and :class:`~repro.trace.TraceEntry`
validates itself on construction, exactly like the fuzzer's output --
and generation is deterministic per spec (stdlib :class:`random.Random`
only).  The trace-source registry (:mod:`repro.trace.sources`) exposes
the families as ``branchy:...``, ``pointer:...`` and ``mixed:...``
specs and publishes their per-family statistics envelopes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..isa import Instruction, Opcode, VECTOR_LENGTH_MAX
from ..isa.registers import A0, A, S, V, VL
from ..trace import Trace
from ..trace.generator import TraceItem, assemble_trace
from ..trace.record import TraceEntry

__all__ = [
    "BranchySpec",
    "MixedSpec",
    "PointerSpec",
    "branchy_trace",
    "mixed_trace",
    "pointer_trace",
]

_INT_OPS = (Opcode.AADD, Opcode.ASUB, Opcode.AMUL)
_COND_BRANCHES = (Opcode.JAZ, Opcode.JAN, Opcode.JAP, Opcode.JAM)


# ----------------------------------------------------------------------
# Branchy integer code
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BranchySpec:
    """Parameters of one branchy integer trace.

    Attributes:
        length: dynamic instruction count.
        seed: RNG seed (generation is deterministic per spec).
        taken_fraction: probability a conditional branch is taken.
        block: average non-branch instructions between branches.
    """

    length: int = 256
    seed: int = 0
    taken_fraction: float = 0.55
    block: int = 3

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("length must be >= 1")
        if not 0.0 <= self.taken_fraction <= 1.0:
            raise ValueError("taken_fraction must be in [0, 1]")
        if self.block < 1:
            raise ValueError("block must be >= 1")

    @property
    def name(self) -> str:
        return (
            f"branchy-n{self.length}-t{int(self.taken_fraction * 100)}"
            f"-b{self.block}-s{self.seed}"
        )


def branchy_trace(spec: BranchySpec = BranchySpec()) -> Trace:
    """Generate one deterministic branchy integer trace for *spec*.

    The stream alternates short integer compute blocks with conditional
    branches: each block ends by funnelling a fresh value into ``A0``
    (the only register conditional branches test), so every branch has a
    live data-dependent producer immediately upstream -- the pattern
    that stresses branch-latency modelling hardest.
    """
    rng = random.Random(spec.seed * 40_093 + 11)
    items: List[TraceItem] = []
    live = [A(i) for i in range(1, 6)]

    while len(items) < spec.length:
        budget = spec.length - len(items)
        block = min(budget, 1 + rng.randrange(spec.block * 2 - 1))
        for _ in range(block):
            roll = rng.random()
            if roll < 0.18:
                items.append(
                    Instruction(
                        Opcode.AI,
                        dest=rng.choice(live),
                        srcs=(rng.randrange(128),),
                    )
                )
            elif roll < 0.34:
                base = rng.choice(live)
                items.append(
                    TraceEntry(
                        seq=0,
                        static_index=len(items),
                        instruction=Instruction(
                            Opcode.LOADA,
                            dest=rng.choice(live),
                            srcs=(base, rng.randrange(64)),
                        ),
                        address=rng.randrange(2048),
                    )
                )
            else:
                opcode = _INT_OPS[rng.randrange(3)]
                second: object = (
                    rng.randrange(32)
                    if rng.random() < 0.3
                    else rng.choice(live)
                )
                items.append(
                    Instruction(
                        opcode,
                        dest=rng.choice(live),
                        srcs=(rng.choice(live), second),
                    )
                )
        if len(items) >= spec.length:
            break
        # The branch's test value: A0 <- f(live), then the branch itself.
        items.append(
            Instruction(
                Opcode.ASUB,
                dest=A0,
                srcs=(rng.choice(live), rng.choice(live)),
            )
        )
        if len(items) >= spec.length:
            break
        items.append(
            TraceEntry(
                seq=0,
                static_index=len(items),
                instruction=Instruction(
                    _COND_BRANCHES[rng.randrange(4)],
                    srcs=(A0,),
                    target=f"B{len(items)}",
                ),
                taken=rng.random() < spec.taken_fraction,
                backward=rng.random() < 0.5,
            )
        )
    return _renumber(items, spec.name)


# ----------------------------------------------------------------------
# Pointer chasing with gathers
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PointerSpec:
    """Parameters of one pointer-chasing trace.

    Attributes:
        length: dynamic instruction count.
        seed: RNG seed.
        chains: independent chase chains interleaved round-robin
            (1 = a single serial linked-list walk; more chains expose
            memory-level parallelism).  Must be 1..4 (chains live in
            A1..A4).
        gather_fraction: probability each hop is followed by a gather
            ``LOADS`` off the freshly chased pointer.
    """

    length: int = 256
    seed: int = 0
    chains: int = 1
    gather_fraction: float = 0.4

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("length must be >= 1")
        if not 1 <= self.chains <= 4:
            raise ValueError("chains must be 1..4 (A1..A4)")
        if not 0.0 <= self.gather_fraction <= 1.0:
            raise ValueError("gather_fraction must be in [0, 1]")

    @property
    def name(self) -> str:
        return (
            f"pointer-n{self.length}-c{self.chains}"
            f"-g{int(self.gather_fraction * 100)}-s{self.seed}"
        )


def pointer_trace(spec: PointerSpec = PointerSpec()) -> Trace:
    """Generate one deterministic pointer-chasing trace for *spec*.

    Each chain hop is ``LOADA Ac <- mem[Ac + disp]`` -- the next hop's
    address *is* this hop's loaded value, a true serial dependence no
    issue mechanism can break.  Gathers (``LOADS`` into S registers off
    the chased pointer) and occasional next-field offset arithmetic
    hang off the chain without lengthening it.
    """
    rng = random.Random(spec.seed * 48_271 + 7)
    items: List[TraceItem] = []
    chain_regs = [A(i + 1) for i in range(spec.chains)]
    gather_regs = [S(i) for i in range(6)]
    addresses = [64 + 8 * i for i in range(spec.chains)]

    hop = 0
    while len(items) < spec.length:
        reg = chain_regs[hop % spec.chains]
        index = hop % spec.chains
        # The chase itself: the address register feeds its own reload.
        addresses[index] = (addresses[index] * 1_103_515_245 + 12_345) % 4096
        items.append(
            TraceEntry(
                seq=0,
                static_index=len(items),
                instruction=Instruction(
                    Opcode.LOADA, dest=reg, srcs=(reg, rng.randrange(16))
                ),
                address=addresses[index],
            )
        )
        hop += 1
        if len(items) >= spec.length:
            break
        if rng.random() < spec.gather_fraction:
            items.append(
                TraceEntry(
                    seq=0,
                    static_index=len(items),
                    instruction=Instruction(
                        Opcode.LOADS,
                        dest=rng.choice(gather_regs),
                        srcs=(reg, rng.randrange(64)),
                    ),
                    address=(addresses[index] + rng.randrange(64)) % 4096,
                )
            )
        elif rng.random() < 0.5:
            # Next-field offset arithmetic on the freshly loaded pointer.
            items.append(
                Instruction(
                    Opcode.AADD, dest=reg, srcs=(reg, rng.randrange(1, 16))
                )
            )
    return _renumber(items, spec.name)


# ----------------------------------------------------------------------
# Mixed scalar-vector strips
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MixedSpec:
    """Parameters of one mixed scalar-vector trace.

    Attributes:
        elements: total elements processed (strip-mined into
            <=``strip``-element vector blocks, remainder strip first).
        seed: RNG seed for the scalar interludes.
        strip: maximum elements per strip (<= 64, the register length).
    """

    elements: int = 256
    seed: int = 0
    strip: int = VECTOR_LENGTH_MAX

    def __post_init__(self) -> None:
        if self.elements < 1:
            raise ValueError("elements must be >= 1")
        if not 1 <= self.strip <= VECTOR_LENGTH_MAX:
            raise ValueError(
                f"strip must be 1..{VECTOR_LENGTH_MAX} (the register length)"
            )

    @property
    def name(self) -> str:
        return f"mixed-e{self.elements}-v{self.strip}-s{self.seed}"


def mixed_trace(spec: MixedSpec = MixedSpec()) -> Trace:
    """Generate one deterministic mixed scalar-vector trace for *spec*.

    Each strip is the CFT strip-mine shape: set the vector length, load
    two vectors, combine them (one vector-vector and one scalar-vector
    operation), store the result -- then a scalar interlude updates the
    running FP reduction and bumps the strip offset.  Only machines
    modelling the vector unit (Simple, the scoreboard family) accept
    the result; see :data:`repro.trace.sources.MIXED_MACHINES`.
    """
    rng = random.Random(spec.seed * 69_621 + 3)
    items: List[TraceItem] = []

    remainder = spec.elements % spec.strip
    strips: List[int] = []
    if remainder:
        strips.append(remainder)
    strips.extend([spec.strip] * ((spec.elements - remainder) // spec.strip))

    items.append(Instruction(Opcode.AI, dest=A(1), srcs=(0,)))
    items.append(Instruction(Opcode.SI, dest=S(1), srcs=(0.0,)))
    items.append(
        Instruction(Opcode.SI, dest=S(2), srcs=(round(rng.uniform(0.5, 2.0), 3),))
    )
    for vl in strips:
        items.append(Instruction(Opcode.VSETL, dest=VL, srcs=(vl,)))

        def vec(instr: Instruction) -> TraceEntry:
            return TraceEntry(
                seq=0,
                static_index=0,
                instruction=instr,
                vector_length=vl,
            )

        items.append(
            vec(Instruction(Opcode.VLOAD, dest=V(1), srcs=(A(1), 1)))
        )
        items.append(
            vec(Instruction(Opcode.VLOAD, dest=V(2), srcs=(A(1), 1)))
        )
        items.append(
            vec(Instruction(Opcode.VSMUL, dest=V(3), srcs=(S(2), V(2))))
        )
        items.append(
            vec(Instruction(Opcode.VVADD, dest=V(4), srcs=(V(1), V(3))))
        )
        items.append(
            vec(Instruction(Opcode.VSTORE, srcs=(V(4), A(1), 1)))
        )
        # Scalar interlude: FP reduction step plus strip control.
        items.append(
            Instruction(
                Opcode.SI,
                dest=S(3),
                srcs=(round(rng.uniform(-1.0, 1.0), 3),),
            )
        )
        items.append(Instruction(Opcode.FMUL, dest=S(4), srcs=(S(3), S(2))))
        items.append(Instruction(Opcode.FADD, dest=S(1), srcs=(S(1), S(4))))
        items.append(Instruction(Opcode.AADD, dest=A(1), srcs=(A(1), vl)))
    return _renumber(items, spec.name)


# ----------------------------------------------------------------------
# Shared
# ----------------------------------------------------------------------

def _renumber(items: List[TraceItem], name: str) -> Trace:
    """Renumber *items* into a fresh trace, fixing static indices."""
    fixed: List[TraceItem] = []
    for index, item in enumerate(items):
        if isinstance(item, TraceEntry):
            fixed.append(
                TraceEntry(
                    seq=index,
                    static_index=index,
                    instruction=item.instruction,
                    taken=item.taken,
                    address=item.address,
                    backward=item.backward,
                    vector_length=item.vector_length,
                )
            )
        else:
            fixed.append(item)
    return assemble_trace(fixed, name=name)
