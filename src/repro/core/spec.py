"""Speculative machine family: branch + value prediction limit study.

The paper stops at real-dependency resolution ("we have not incorporated
any type of guessing or branch prediction"), yet branch resolution is a
first-order limit in every table.  This module follows *On the
Performance Potential of Speculative Execution based on Branch and Value
Prediction* and extends the RUU discipline (Section 5.3) with
speculation:

* **branch prediction** -- any predictor from :mod:`repro.predict`, plus
  the two oracle bounds (``perfect`` / ``wrong``).  A correctly
  predicted conditional branch (and, under any predictor, an
  unconditional branch -- its target is known at decode) redirects fetch
  in one cycle; a misprediction stalls correct-path issue until
  resolution (A0 available + branch time) plus a configurable *recovery
  penalty*, and emits a ``FLUSH`` event whose ``cycles`` field carries
  the whole wrong-path fetch window.
* **value prediction** -- the long-latency floating-point producers
  (``FP_MULTIPLY``, ``FP_RECIPROCAL``: the reciprocal/multiply divide
  chains) may have their results predicted at issue.  The model is a
  deterministic warm-up idealisation of a last-value / stride predictor:
  the first (``vp=last``) or first two (``vp=stride``) dynamic instances
  of each static producer mispredict, every later instance hits.  A hit
  publishes the destination tag one cycle after issue (consumers read
  the predicted value; verification at completion succeeds, and in-order
  commit already orders the producer before its consumers).  A miss is
  verified wrong when the real result returns: consumers are squashed
  and re-execute, modelled as the destination value becoming available
  ``value_penalty`` cycles late, with a ``FLUSH``
  (``reason="VALUE_MISPREDICT"``) anchored at the producer's commit.

**Limit-study timing.**  Like the speculation paper (and unlike the
paper's RUU, which contends for FU acceptance and the FU->RUU return
bus), the speculative family is contention-free past the issue stage: an
instruction begins execution the cycle after its operands are available
and its result returns exactly ``latency`` cycles later.  What remains
are the paper's first-order limits -- issue width, window size, in-order
commit bandwidth (the N-Bus / 1-Bus choice), operand dependences, and
branch resolution.  This is a deliberate modelling choice with a big
payoff: every timing dependence in the machine is *isotone* (max/+ over
earlier issue, availability and commit times), so relaxing any branch's
issue-resume window can never slow the machine down.  The oracle's
per-seed partial order

    perfect  <=  real predictor  <=  always-wrong  <=  no speculation

therefore holds by construction (each step is a pointwise relaxation of
per-branch resume constraints), not just empirically -- greedy contended
schedulers admit Graham anomalies that would make per-seed assertions
flaky.

Wrong-path instructions never enter the window (the trace is the correct
path), so no architectural state is ever polluted -- the cost of
speculation is carried entirely by the issue-resume window and the
``FLUSH`` accounting, which :mod:`repro.verify.invariants` checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import A0, FunctionalUnit, Register
from ..obs.events import EventKind, SimEvent, hook_installed
from ..predict import (
    AlwaysTakenPredictor,
    BackwardTakenPredictor,
    OneBitPredictor,
    OraclePredictor,
    TwoBitPredictor,
)
from ..trace import Trace
from . import fastpath
from .base import Simulator, require_scalar_trace
from .buses import BusKind
from .config import MachineConfig
from .result import SimulationResult

_UNKNOWN = -1

#: Guard against livelock bugs during development.
_MAX_CYCLES = 10_000_000

Tag = Tuple[Register, int]


def _perfect_predictor() -> OraclePredictor:
    return OraclePredictor(True)


def _wrong_predictor() -> OraclePredictor:
    return OraclePredictor(False)


#: Predictor vocabulary for the ``spec`` registry grammar.  ``None``
#: disables speculation entirely (non-speculative branch handling,
#: exactly the RUU's: even unconditional branches pay the full branch
#: latency, so the machine is the family's no-speculation baseline).
PREDICTOR_FACTORIES = {
    "none": None,
    "always": AlwaysTakenPredictor,
    "btfn": BackwardTakenPredictor,
    "1bit": OneBitPredictor,
    "2bit": TwoBitPredictor,
    "perfect": _perfect_predictor,
    "wrong": _wrong_predictor,
}

#: Value predictor vocabulary: warm-up instances before hits begin.
VALUE_PREDICTORS = ("off", "last", "stride")
_VP_WARMUP = {"last": 1, "stride": 2}

#: Long-latency producers eligible for value prediction (the divide
#: chain).  Unit-based, so the hit/miss pattern is identical across the
#: M11/M5 x BR5/BR2 configurations and across every spec machine.
VP_UNITS = (FunctionalUnit.FP_MULTIPLY, FunctionalUnit.FP_RECIPROCAL)

_SPEC_OPTION_KEYS = ("units", "bus", "rp", "vp", "vpp")


@dataclass(frozen=True)
class SpecParams:
    """Parsed ``spec[:window][:predictor][:key=value...]`` parameters."""

    window: int = 50
    predictor: str = "2bit"
    units: int = 4
    bus: str = "nbus"
    recovery_penalty: int = 0
    value_predictor: str = "off"
    value_penalty: int = 3


def parse_spec_params(params: Sequence[str]) -> SpecParams:
    """Parse the parameter tokens of a ``spec`` registry spec.

    Grammar: up to one bare integer (the window size), up to one bare
    predictor name, then ``key=value`` options: ``units=<n>``,
    ``bus=nbus|1bus``, ``rp=<recovery penalty>``,
    ``vp=off|last|stride``, ``vpp=<value misprediction penalty>``.
    Raises :class:`ValueError` with a human-readable reason.
    """
    window: Optional[int] = None
    predictor: Optional[str] = None
    options: Dict[str, str] = {}
    for token in params:
        if "=" in token:
            key, _, value = token.partition("=")
            if key not in _SPEC_OPTION_KEYS:
                raise ValueError(
                    f"unknown spec option {key!r} (options: "
                    f"{', '.join(_SPEC_OPTION_KEYS)})"
                )
            if key in options:
                raise ValueError(f"duplicate spec option {key!r}")
            options[key] = value
            continue
        if token.isdigit() and window is None and predictor is None:
            window = int(token)
            continue
        if token in PREDICTOR_FACTORIES and predictor is None:
            predictor = token
            continue
        raise ValueError(
            f"bad spec parameter {token!r} (expected a window size, a "
            f"predictor from {sorted(PREDICTOR_FACTORIES)}, or key=value)"
        )

    def _int_option(key: str, default: int, minimum: int) -> int:
        raw = options.get(key)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"spec option {key}= needs an integer") from None
        if value < minimum:
            raise ValueError(f"spec option {key}= must be >= {minimum}")
        return value

    bus = options.get("bus", "nbus")
    if bus not in ("nbus", "1bus"):
        raise ValueError("spec option bus= must be nbus or 1bus")
    value_predictor = options.get("vp", "off")
    if value_predictor not in VALUE_PREDICTORS:
        raise ValueError(
            f"spec option vp= must be one of {VALUE_PREDICTORS}"
        )
    resolved = SpecParams(
        window=50 if window is None else window,
        predictor="2bit" if predictor is None else predictor,
        units=_int_option("units", 4, 1),
        bus=bus,
        recovery_penalty=_int_option("rp", 0, 0),
        value_predictor=value_predictor,
        value_penalty=_int_option("vpp", 3, 0),
    )
    if resolved.window < 1:
        raise ValueError("spec window must be >= 1")
    return resolved


@dataclass
class _Entry:
    """One window entry."""

    seq: int
    unit: FunctionalUnit
    latency: int
    dest_tag: Optional[Tag]
    pending: int  # sources whose availability is not yet known
    operands_ready: int  # max(issue cycle + 1, known source avails)
    result_cycle: int = _UNKNOWN
    vp_hit: bool = False
    vp_miss: bool = False


class SpecMachine(Simulator):
    """The speculative window machine: N issue units, a window of R
    entries, branch prediction and optional value prediction.

    Args:
        issue_units: issue width N.
        window: window size R (entries issued but not yet committed).
        bus_kind: ``N_BUS`` (commit bandwidth N) or ``ONE_BUS``
            (commit bandwidth 1).
        predictor: branch predictor name (:data:`PREDICTOR_FACTORIES`);
            ``"none"`` disables speculation (the family baseline).
        recovery_penalty: extra wrong-path recovery cycles beyond the
            normal branch resolution on a mispredict.
        value_predictor: ``"off"``, ``"last"`` or ``"stride"``
            (see the module docstring for the warm-up model).
        value_penalty: squash/re-execute cycles a value misprediction
            adds to the producer's result availability.
    """

    def __init__(
        self,
        issue_units: int = 4,
        window: int = 50,
        bus_kind: BusKind = BusKind.N_BUS,
        *,
        predictor: str = "2bit",
        recovery_penalty: int = 0,
        value_predictor: str = "off",
        value_penalty: int = 3,
    ) -> None:
        if issue_units < 1:
            raise ValueError("need at least one issue unit")
        if window < 1:
            raise ValueError("the window needs at least one entry")
        if bus_kind is BusKind.X_BAR:
            raise ValueError(
                "the spec machine models N-Bus and 1-Bus organisations"
            )
        if predictor not in PREDICTOR_FACTORIES:
            raise ValueError(
                f"unknown predictor {predictor!r} "
                f"(known: {sorted(PREDICTOR_FACTORIES)})"
            )
        if recovery_penalty < 0:
            raise ValueError("recovery penalty cannot be negative")
        if value_predictor not in VALUE_PREDICTORS:
            raise ValueError(
                f"unknown value predictor {value_predictor!r} "
                f"(known: {VALUE_PREDICTORS})"
            )
        if value_penalty < 0:
            raise ValueError("value misprediction penalty cannot be negative")
        self.issue_units = issue_units
        self.window = window
        self.bus_kind = bus_kind
        self.predictor_name = predictor
        self.predictor_factory = PREDICTOR_FACTORIES[predictor]
        self.recovery_penalty = recovery_penalty
        self.value_predictor = value_predictor
        self.value_penalty = value_penalty

    @classmethod
    def from_params(
        cls, params: SpecParams, bus_kind: BusKind
    ) -> "SpecMachine":
        return cls(
            params.units,
            params.window,
            bus_kind,
            predictor=params.predictor,
            recovery_penalty=params.recovery_penalty,
            value_predictor=params.value_predictor,
            value_penalty=params.value_penalty,
        )

    @property
    def path_width(self) -> int:
        """Commit bandwidth (window -> register file path)."""
        return 1 if self.bus_kind is BusKind.ONE_BUS else self.issue_units

    @property
    def vp_warmup(self) -> Optional[int]:
        """Cold instances per static producer before value hits begin
        (``None`` when value prediction is off)."""
        return _VP_WARMUP.get(self.value_predictor)

    @property
    def name(self) -> str:
        extras = [f"predict:{self.predictor_name}"]
        if self.recovery_penalty:
            extras.append(f"rp={self.recovery_penalty}")
        if self.value_predictor != "off":
            extras.append(f"vp:{self.value_predictor}+{self.value_penalty}")
        return (
            f"Spec x{self.issue_units} W={self.window} "
            f"({self.bus_kind}, {', '.join(extras)})"
        )

    # ------------------------------------------------------------------
    def simulate(self, trace: Trace, config: MachineConfig) -> SimulationResult:
        # Unlike the RUU, the spec fast loop models the predictors (they
        # are deterministic), so a predictor never forces the reference
        # loop -- only an installed event hook does.  hook_installed is
        # re-read per call so a hook attached after construction always
        # gets the event-emitting loop.
        if fastpath.enabled() and not hook_installed(self):
            return fastpath.simulate_spec_fast(self, trace, config)
        return self._simulate(trace, config, self.on_event)

    def reference_simulate(
        self, trace: Trace, config: MachineConfig
    ) -> SimulationResult:
        """The event-capable speculative loop, hook plumbing disabled.

        The differential tests and the cross-machine oracle use this as
        the baseline the compiled fast loop must match bit-for-bit.
        """
        return self._simulate(trace, config, None)

    # ------------------------------------------------------------------
    def _speculate(
        self, t_entry, cycle, branch_latency, predictor, predicted_correct,
        operand_tag, tag_ready,
    ):
        """Handle one branch under speculation at the issue stage.

        Returns ``(handled, issue_resume)``.  ``handled`` is False when a
        mispredicted branch is still waiting for its A0 instance -- the
        issue stage stalls (wrong-path work is being fetched, which the
        trace cannot represent, so correct-path issue halts exactly as in
        the non-speculative machine).  Predictions route through
        ``predict_outcome`` so the oracle bounds (perfect / always-wrong)
        work without special casing.
        """
        instr = t_entry.instruction
        seq = t_entry.seq

        if not instr.is_conditional_branch:
            # Unconditional: the target is known at decode; one-cycle
            # fetch redirect.
            return True, cycle + 1

        if seq not in predicted_correct:
            backward = bool(t_entry.backward)
            taken = bool(t_entry.taken)
            prediction = predictor.predict_outcome(
                t_entry.static_index, backward, taken
            )
            correct = predictor.record(prediction, taken)
            predictor.update(t_entry.static_index, taken)
            predicted_correct[seq] = correct

        if predicted_correct[seq]:
            # Fetch already went the right way; continue next cycle.
            return True, cycle + 1

        # Misprediction: correct-path issue resumes only at resolution
        # (A0 available + branch time) plus the recovery penalty.
        a0_ready = tag_ready(operand_tag(A0))
        if a0_ready == _UNKNOWN or a0_ready > cycle:
            return False, 0
        return True, cycle + branch_latency + self.recovery_penalty

    def _simulate(
        self, trace: Trace, config: MachineConfig, emit
    ) -> SimulationResult:
        require_scalar_trace(trace, self.name)
        latencies = config.latencies
        branch_latency = config.branch_latency
        width = self.path_width
        #: Wrong-path fetch window a misprediction costs: the branch
        #: resolution plus the configured recovery penalty.  Carried on
        #: the FLUSH event so flush accounting is checkable.
        recovery_window = branch_latency + self.recovery_penalty
        vp_warmup = self.vp_warmup
        value_penalty = self.value_penalty

        latest_instance: Dict[Register, int] = {}
        tag_avail: Dict[Tag, int] = {}
        waiting_on: Dict[Tag, List[_Entry]] = {}

        # The window: program-ordered ring of live entries.
        ring: List[_Entry] = []
        head = 0
        live = 0

        predictor = (
            self.predictor_factory() if self.predictor_factory else None
        )
        predicted_correct: Dict[int, bool] = {}

        #: static index -> dynamic instances of this value producer seen.
        vp_seen: Dict[int, int] = {}
        vp_hits = 0
        vp_misses = 0

        occupancy_sum = 0
        full_stall_cycles = 0
        branch_stall_cycles = 0

        entries = trace.entries
        n_entries = len(entries)
        pos = 0
        issue_resume = 0
        cycle = 0
        last_commit = 0

        def operand_tag(reg: Register) -> Tag:
            return (reg, latest_instance.get(reg, 0))

        def tag_ready(tag: Tag) -> int:
            if tag[1] == 0 and tag not in tag_avail:
                return 0  # initial register contents
            return tag_avail.get(tag, _UNKNOWN)

        def settle(entry: _Entry) -> None:
            """All operands known: fix the entry's execution timing and
            propagate availability through waiting dependents.

            Contention-free limit timing: execution begins the cycle
            after the operands are available (``operands_ready`` already
            folds in "the cycle after issue") and the result returns
            ``latency`` cycles later.
            """
            stack = [entry]
            while stack:
                settled = stack.pop()
                result = settled.operands_ready + settled.latency
                settled.result_cycle = result
                if settled.dest_tag is None or settled.vp_hit:
                    # No register result, or the (correct) predicted
                    # value was already published at issue.
                    continue
                avail = result
                if settled.vp_miss:
                    # Verify-at-complete fails: consumers of the
                    # predicted value squash and re-execute.
                    avail += value_penalty
                tag_avail[settled.dest_tag] = avail
                for dependent in waiting_on.pop(settled.dest_tag, ()):
                    dependent.pending -= 1
                    if avail > dependent.operands_ready:
                        dependent.operands_ready = avail
                    if dependent.pending == 0:
                        stack.append(dependent)

        while pos < n_entries or live > 0:
            if cycle > _MAX_CYCLES:  # pragma: no cover - bug trap
                raise RuntimeError("spec simulation failed to make progress")

            # ---- commit: retire in order from the head -------------------
            commits = 0
            while live > 0 and commits < width:
                entry = ring[head]
                if entry.result_cycle == _UNKNOWN or entry.result_cycle > cycle:
                    break
                head += 1
                live -= 1
                commits += 1
                if cycle > last_commit:
                    last_commit = cycle
                if emit is not None:
                    emit(SimEvent(EventKind.COMPLETE, entry.seq, cycle))
                    if entry.vp_miss:
                        emit(SimEvent(
                            EventKind.FLUSH, entry.seq, cycle,
                            reason="VALUE_MISPREDICT",
                            cycles=value_penalty,
                        ))
            if head > 4096 and head * 2 > len(ring):
                del ring[:head]
                head = 0

            # ---- issue: up to N instructions, in program order ----------
            issued = 0
            while (
                pos < n_entries
                and issued < self.issue_units
                and cycle >= issue_resume
                and live < self.window
            ):
                t_entry = entries[pos]
                instr = t_entry.instruction

                if instr.is_branch:
                    if predictor is not None:
                        handled, resume = self._speculate(
                            t_entry, cycle, branch_latency, predictor,
                            predicted_correct, operand_tag, tag_ready,
                        )
                        if not handled:
                            break  # mispredicted branch awaiting A0
                        issue_resume = resume
                        if issue_resume > last_commit:
                            last_commit = issue_resume
                        if emit is not None:
                            emit(SimEvent(EventKind.ISSUE, t_entry.seq, cycle))
                            if not predicted_correct.get(t_entry.seq, True):
                                emit(SimEvent(
                                    EventKind.FLUSH, t_entry.seq, cycle,
                                    reason="MISPREDICT",
                                    cycles=recovery_window,
                                ))
                        pos += 1
                        issued += 1
                        break
                    a0_tag = operand_tag(A0)
                    a0_ready = tag_ready(a0_tag) if instr.is_conditional_branch else 0
                    if a0_ready == _UNKNOWN or a0_ready > cycle:
                        break  # branch waits at the issue stage
                    issue_resume = cycle + branch_latency
                    if issue_resume > last_commit:
                        # Branches never commit; their resolution still
                        # bounds the machine's finish time.
                        last_commit = issue_resume
                    if emit is not None:
                        emit(SimEvent(EventKind.ISSUE, t_entry.seq, cycle))
                    pos += 1
                    issued += 1
                    break  # nothing issues behind an unresolved branch

                latency = instr.latency(latencies)
                src_tags = [operand_tag(r) for r in instr.source_registers]
                dest_tag: Optional[Tag] = None
                if instr.dest is not None:
                    instance = latest_instance.get(instr.dest, 0) + 1
                    latest_instance[instr.dest] = instance
                    dest_tag = (instr.dest, instance)

                entry = _Entry(
                    seq=pos,
                    unit=instr.unit,
                    latency=latency,
                    dest_tag=dest_tag,
                    pending=0,
                    operands_ready=cycle + 1,
                )
                if (
                    vp_warmup is not None
                    and dest_tag is not None
                    and instr.unit in VP_UNITS
                ):
                    seen = vp_seen.get(t_entry.static_index, 0)
                    vp_seen[t_entry.static_index] = seen + 1
                    if seen >= vp_warmup:
                        vp_hits += 1
                        entry.vp_hit = True
                        # Predicted broadcast: consumers may read the
                        # (correct) predicted value next cycle.
                        tag_avail[dest_tag] = cycle + 1
                    else:
                        vp_misses += 1
                        entry.vp_miss = True
                for tag in src_tags:
                    ready = tag_ready(tag)
                    if ready == _UNKNOWN:
                        entry.pending += 1
                        waiting_on.setdefault(tag, []).append(entry)
                    elif ready > entry.operands_ready:
                        entry.operands_ready = ready
                ring.append(entry)
                live += 1
                if emit is not None:
                    emit(SimEvent(EventKind.ISSUE, entry.seq, cycle))
                pos += 1
                issued += 1
                if entry.pending == 0:
                    settle(entry)

            occupancy_sum += live
            if pos < n_entries and issued == 0:
                if cycle < issue_resume:
                    branch_stall_cycles += 1
                    if emit is not None:
                        emit(SimEvent(
                            EventKind.STALL, pos, cycle,
                            reason="BRANCH", cycles=1,
                        ))
                elif live >= self.window:
                    full_stall_cycles += 1
                    if emit is not None:
                        emit(SimEvent(
                            EventKind.STALL, pos, cycle,
                            reason="RUU_FULL", cycles=1,
                        ))
            cycle += 1

        cycles = max(last_commit, 1)
        detail = {
            "window_occupancy_mean": occupancy_sum / max(cycle, 1),
            "window_full_stall_cycles": float(full_stall_cycles),
            "branch_stall_cycles": float(branch_stall_cycles),
        }
        if predictor is not None:
            detail["prediction_accuracy"] = predictor.stats.accuracy
        if vp_warmup is not None:
            total = vp_hits + vp_misses
            detail["vp_accuracy"] = vp_hits / total if total else 0.0
        return SimulationResult(
            trace_name=trace.name,
            simulator=self.name,
            config=config,
            instructions=n_entries,
            cycles=cycles,
            detail=detail,
        )
