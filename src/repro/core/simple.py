"""The Simple (serial) machine of Section 3.1 -- the paper's lower bound.

Two pipeline stages: (i) fetch/decode/issue and (ii) execute.  At most one
instruction occupies each stage, and an instruction enters the execute
stage only when its predecessor has left it.  Because instructions never
overlap in execution, no dependence checking is needed at all.
"""

from __future__ import annotations

from ..trace import Trace
from .base import Simulator
from .config import MachineConfig
from .result import SimulationResult


class SimpleMachine(Simulator):
    """Strictly serial execution: one instruction in flight at a time."""

    @property
    def name(self) -> str:
        return "Simple"

    def simulate(self, trace: Trace, config: MachineConfig) -> SimulationResult:
        latencies = config.latencies
        # Cycle the previous instruction leaves the execute stage.
        prev_complete = 0
        # Cycle the current instruction occupies the issue stage.
        issue = 0
        last_complete = 0

        for entry in trace:
            latency = entry.instruction.latency(latencies)
            if entry.instruction.is_vector:
                # A vector operation streams its elements serially.
                latency += entry.vector_length or 0
            # The instruction sits in decode/issue (1 cycle minimum) and
            # moves to execute once the predecessor is done.
            exec_start = max(issue + 1, prev_complete)
            complete = exec_start + latency
            prev_complete = complete
            last_complete = complete
            # The issue stage frees when this instruction moves to execute.
            issue = exec_start

        return SimulationResult(
            trace_name=trace.name,
            simulator=self.name,
            config=config,
            instructions=len(trace),
            cycles=last_complete,
        )
