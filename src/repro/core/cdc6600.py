"""CDC 6600-style single-issue machine -- a Section 3.3 baseline.

The paper's Section 3.3 surveys single-issue-unit *dependency resolution*
schemes between plain issue blocking and the RUU:

    "the instruction issue scheme used in the CDC 6600 handles RAW hazards
    but blocks instruction issue when a WAW hazard is encountered"

This model reproduces that middle point (Thornton's scoreboard).  An
instruction issues to a functional unit even if its operands are not yet
ready -- it waits *at the unit* -- but issue still blocks when

* the destination register has an outstanding write (WAW),
* the functional unit is busy (a unit holds its instruction from issue
  until completion, like the 6600's single-instruction units), or
* a branch is unresolved.

Operands are read when they become available (the 6600 broadcasts "go"
to waiting units), so a RAW hazard delays only the dependent operation's
start, not the issue of everything behind it.
"""

from __future__ import annotations

from typing import Dict

from ..isa import FunctionalUnit, Register
from ..obs.events import EventKind, SimEvent, hook_installed
from ..trace import Trace
from . import fastpath
from .base import Simulator, require_scalar_trace
from .config import MachineConfig
from .result import SimulationResult


class CDC6600Machine(Simulator):
    """Single issue unit; RAW resolved at the units; WAW blocks issue.

    Args:
        fu_holds_until_complete: if True (the 6600 behaviour), a unit is
            occupied from issue to completion; if False, units are
            pipelined once the operation starts (a hybrid used to isolate
            the WAW-blocking effect).
    """

    def __init__(self, *, fu_holds_until_complete: bool = True) -> None:
        self.fu_holds_until_complete = fu_holds_until_complete

    @property
    def name(self) -> str:
        suffix = "" if self.fu_holds_until_complete else ", pipelined units"
        return f"CDC6600-style{suffix}"

    def simulate(self, trace: Trace, config: MachineConfig) -> SimulationResult:
        # hook_installed is re-read per call so a hook attached after
        # construction always gets the event-emitting loop.
        if fastpath.enabled() and not hook_installed(self):
            return fastpath.simulate_cdc6600_fast(self, trace, config)
        return self._simulate(trace, config, self.on_event)

    def _simulate(
        self, trace: Trace, config: MachineConfig, emit
    ) -> SimulationResult:
        """The reference recurrence plus optional event emission.

        Emits ISSUE at the issue cycle and COMPLETE at the completion
        cycle (branches: resolution at ``issue + branch_latency``), so
        the invariant checker can ride the event stream.
        """
        require_scalar_trace(trace, self.name)
        latencies = config.latencies
        branch_latency = config.branch_latency

        reg_ready: Dict[Register, int] = {}
        fu_free: Dict[FunctionalUnit, int] = {}
        next_issue = 0
        last_event = 0

        for entry in trace:
            instr = entry.instruction
            unit = instr.unit
            latency = instr.latency(latencies)

            # Issue conditions: in-order slot, unit free, no WAW.
            earliest = next_issue
            unit_free = fu_free.get(unit, 0)
            if unit_free > earliest:
                earliest = unit_free
            if instr.dest is not None:
                waw = reg_ready.get(instr.dest, 0)
                if waw > earliest:
                    earliest = waw
            if instr.is_branch:
                # The branch must read A0 before it can resolve; the 6600
                # has no branch prediction either.
                for src in instr.source_registers:
                    ready = reg_ready.get(src, 0)
                    if ready > earliest:
                        earliest = ready

            issue = earliest

            # Execution begins once the operands arrive at the unit.
            start = issue
            for src in instr.source_registers:
                ready = reg_ready.get(src, 0)
                if ready > start:
                    start = ready
            complete = start + latency

            if instr.is_branch:
                next_issue = issue + branch_latency
                complete = issue + branch_latency
                fu_free[unit] = issue + 1
            else:
                next_issue = issue + 1
                if unit is FunctionalUnit.MEMORY:
                    fu_free[unit] = start + 1
                else:
                    fu_free[unit] = (
                        complete if self.fu_holds_until_complete else start + 1
                    )
                if instr.dest is not None:
                    reg_ready[instr.dest] = complete

            if complete > last_event:
                last_event = complete
            if emit is not None:
                emit(SimEvent(EventKind.ISSUE, entry.seq, issue))
                emit(SimEvent(EventKind.COMPLETE, entry.seq, complete))

        return SimulationResult(
            trace_name=trace.name,
            simulator=self.name,
            config=config,
            instructions=len(trace),
            cycles=max(last_event, 1),
        )

    def reference_simulate(
        self, trace: Trace, config: MachineConfig
    ) -> SimulationResult:
        """The seed issue recurrence, kept verbatim as the oracle twin.

        The differential tests and the cross-machine oracle use this as
        the baseline the compiled fast loop must match bit-for-bit.
        """
        require_scalar_trace(trace, self.name)
        latencies = config.latencies
        branch_latency = config.branch_latency

        reg_ready: Dict[Register, int] = {}
        fu_free: Dict[FunctionalUnit, int] = {}
        next_issue = 0
        last_event = 0

        for entry in trace:
            instr = entry.instruction
            unit = instr.unit
            latency = instr.latency(latencies)

            # Issue conditions: in-order slot, unit free, no WAW.
            earliest = next_issue
            unit_free = fu_free.get(unit, 0)
            if unit_free > earliest:
                earliest = unit_free
            if instr.dest is not None:
                waw = reg_ready.get(instr.dest, 0)
                if waw > earliest:
                    earliest = waw
            if instr.is_branch:
                # The branch must read A0 before it can resolve; the 6600
                # has no branch prediction either.
                for src in instr.source_registers:
                    ready = reg_ready.get(src, 0)
                    if ready > earliest:
                        earliest = ready

            issue = earliest

            # Execution begins once the operands arrive at the unit.
            start = issue
            for src in instr.source_registers:
                ready = reg_ready.get(src, 0)
                if ready > start:
                    start = ready
            complete = start + latency

            if instr.is_branch:
                next_issue = issue + branch_latency
                complete = issue + branch_latency
                fu_free[unit] = issue + 1
            else:
                next_issue = issue + 1
                if unit is FunctionalUnit.MEMORY:
                    # The 6600's storage was organised in independent
                    # banks; keep the memory interleaved (as the paper
                    # fixes for all machines beyond SerialMemory) so the
                    # comparison isolates the issue scheme.
                    fu_free[unit] = start + 1
                else:
                    fu_free[unit] = (
                        complete if self.fu_holds_until_complete else start + 1
                    )
                if instr.dest is not None:
                    reg_ready[instr.dest] = complete

            if complete > last_event:
                last_event = complete

        return SimulationResult(
            trace_name=trace.name,
            simulator=self.name,
            config=config,
            instructions=len(trace),
            cycles=max(last_event, 1),
        )
