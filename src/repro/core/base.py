"""Simulator interface.

All issue-method models share one contract: replay a dynamic trace under a
:class:`~repro.core.config.MachineConfig` and report instructions, cycles
and the issue rate.  Simulators are stateless between calls; all per-run
state lives inside :meth:`Simulator.simulate`.
"""

from __future__ import annotations

import abc

from ..trace import Trace
from .config import MachineConfig
from .result import SimulationResult


def require_scalar_trace(trace: Trace, machine_name: str) -> None:
    """Reject traces containing vector instructions.

    The multi-issue and dependency-resolution models reproduce the
    paper's scalar experiments; the vector-unit extension is timed by the
    single-issue machines (Simple and the scoreboard family), which model
    vector element streaming and chaining.
    """
    for entry in trace.entries:
        if entry.instruction.is_vector:
            raise ValueError(
                f"{machine_name} models scalar instruction issue only; "
                "time vector code on SimpleMachine or a ScoreboardMachine"
            )


class Simulator(abc.ABC):
    """A timing model for one instruction-issue method."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable simulator name used in results and tables."""

    @abc.abstractmethod
    def simulate(self, trace: Trace, config: MachineConfig) -> SimulationResult:
        """Replay *trace* and return the timing outcome."""

    def issue_rate(self, trace: Trace, config: MachineConfig) -> float:
        """Convenience: just the issue rate."""
        return self.simulate(trace, config).issue_rate

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
