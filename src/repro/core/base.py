"""Simulator interface.

All issue-method models share one contract: replay a dynamic trace under a
:class:`~repro.core.config.MachineConfig` and report instructions, cycles
and the issue rate.  Simulators are stateless between calls; all per-run
state lives inside :meth:`Simulator.simulate`.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..obs.events import EventCallback
from ..trace import Trace
from .config import MachineConfig
from .result import SimulationResult


def scalar_only_error(machine_name: str) -> ValueError:
    """The error every scalar-only machine raises for a vector trace.

    Shared between :func:`require_scalar_trace` (reference loops) and
    the compiled fast paths (:mod:`repro.core.fastpath`), so both reject
    vector traces with the same message.
    """
    return ValueError(
        f"{machine_name} models scalar instruction issue only; "
        "time vector code on SimpleMachine or a ScoreboardMachine"
    )


def require_scalar_trace(trace: Trace, machine_name: str) -> None:
    """Reject traces containing vector instructions.

    The multi-issue and dependency-resolution models reproduce the
    paper's scalar experiments; the vector-unit extension is timed by the
    single-issue machines (Simple and the scoreboard family), which model
    vector element streaming and chaining.
    """
    for entry in trace.entries:
        if entry.instruction.is_vector:
            raise scalar_only_error(machine_name)


class Simulator(abc.ABC):
    """A timing model for one instruction-issue method.

    Every simulator exposes an optional event hook: set :attr:`on_event`
    to an :data:`repro.obs.events.EventCallback` and :meth:`simulate`
    emits typed issue/stall/complete/flush events
    (:class:`repro.obs.events.SimEvent`) as it models the run.  The hook
    is observational only -- it never changes timing -- and the disabled
    path costs one ``is not None`` test per instruction.
    """

    #: Optional observer for typed simulator events (None = disabled).
    on_event: Optional[EventCallback] = None

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable simulator name used in results and tables."""

    @abc.abstractmethod
    def simulate(self, trace: Trace, config: MachineConfig) -> SimulationResult:
        """Replay *trace* and return the timing outcome."""

    def simulate_observed(
        self,
        trace: Trace,
        config: MachineConfig,
        on_event: Optional[EventCallback],
    ) -> SimulationResult:
        """Run :meth:`simulate` with *on_event* installed for the call.

        The previous hook is restored afterwards, so a shared simulator
        instance is safe to observe temporarily (this is how
        :mod:`repro.analysis` attaches itself).
        """
        previous = self.on_event
        self.on_event = on_event
        try:
            return self.simulate(trace, config)
        finally:
            self.on_event = previous

    def issue_rate(self, trace: Trace, config: MachineConfig) -> float:
        """Convenience: just the issue rate."""
        return self.simulate(trace, config).issue_rate

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
