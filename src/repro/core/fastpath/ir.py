"""The compiled trace IR: per-trace lowering shared by every backend.

The reference simulators spend most of their wall time in
per-instruction Python object churn: property chains
(``entry.instruction.unit`` walks two dataclasses and an enum),
``Instruction.source_registers`` building fresh tuples with
``isinstance`` filtering, ``latency()`` method calls, and scoreboard
dictionaries keyed by frozen-dataclass :class:`~repro.isa.registers.Register`
objects whose ``__hash__`` is recomputed on every lookup.  None of that
work depends on the cycle being modelled -- it is the same for every
replay of the same trace.

:func:`compile_trace` therefore lowers a :class:`~repro.trace.Trace`
once into flat parallel tuples of small integers -- functional-unit
index, destination/source register ids, branch/vector/bus flags, vector
length -- resolved a single time up front and cached per trace object.
Backends (:mod:`repro.core.fastpath.backends`) replay the compiled form
with whatever evaluation strategy they implement; the lowering itself is
machine- and config-independent, so one compilation serves every machine
variant and every backend.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...isa.functional_units import FunctionalUnit
from ...isa.registers import RegFile
from ...trace import Trace
from ..config import MachineConfig

__all__ = [
    "CompiledTrace",
    "N_REGISTERS",
    "Op",
    "Schedule",
    "UNITS",
    "compile_trace",
    "unit_profile",
    "window_stats",
]

# ----------------------------------------------------------------------
# Dense id spaces: registers and functional units
# ----------------------------------------------------------------------

#: Functional units in enum order; a unit's id is its position here.
UNITS: Tuple[FunctionalUnit, ...] = tuple(FunctionalUnit)
_UNIT_INDEX: Dict[FunctionalUnit, int] = {u: i for i, u in enumerate(UNITS)}
_MEMORY = _UNIT_INDEX[FunctionalUnit.MEMORY]
_BRANCH = _UNIT_INDEX[FunctionalUnit.BRANCH]

#: file -> first register id, packing every architectural register into
#: one dense 0..N_REGISTERS-1 space (A, S, B, T, V, L in enum order).
_FILE_OFFSETS: Dict[RegFile, int] = {}
_offset = 0
for _file in RegFile:
    _FILE_OFFSETS[_file] = _offset
    _offset += _file.size
N_REGISTERS = _offset
del _offset, _file

#: Dense id of A0, the register conditional branches test.
_A0 = _FILE_OFFSETS[RegFile.A]

#: Sentinel for "availability not yet known" (matches the RUU/Tomasulo
#: reference loops) and livelock guard, shared by the windowed fast loops.
_UNKNOWN = -1
_MAX_CYCLES = 10_000_000


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------

#: One lowered trace entry:
#: ``(unit, dest, srcs, is_branch, taken, is_vector, vl, uses_bus, is_cond)``
#: where ``unit`` indexes :data:`UNITS`, ``dest`` is a register id or
#: -1, ``srcs`` is a tuple of register ids (implicit vector-length reads
#: included), ``uses_bus`` mirrors the scoreboard's result-bus test
#: (scalar A/B/S/T destination), and ``is_cond`` marks conditional
#: branches (which wait on an A0 instance in the RUU/Tomasulo machines;
#: unconditional branches resolve without reading a register).
Op = Tuple[int, int, Tuple[int, ...], bool, bool, bool, int, bool, bool]


@dataclass(frozen=True)
class CompiledTrace:
    """A trace lowered to flat per-instruction integer tuples.

    Machine- and config-independent: latencies and pipelining are
    resolved per :class:`~repro.core.config.MachineConfig` at simulation
    time from 12-entry per-unit tables, so one compilation serves every
    machine variant.
    """

    name: str
    n: int
    ops: Tuple[Op, ...]
    has_vector: bool


#: Compile results keyed by ``id(trace)``; the paired weak reference
#: both validates the key (id reuse after garbage collection) and evicts
#: the entry when the trace dies.
_CACHE: Dict[int, Tuple["weakref.ref[Trace]", CompiledTrace]] = {}

#: Compile-cache counters; backend run counters live in
#: :mod:`repro.core.fastpath.backends` (the combined view is
#: ``fastpath.stats()``).
_STATS = {
    "compiles": 0,
    "cache_hits": 0,
    "cache_misses": 0,
    "evictions": 0,
}


def reset_compile_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0


def compile_trace(trace: Trace) -> CompiledTrace:
    """Lower *trace* to flat integer tuples (cached per trace object)."""
    key = id(trace)
    hit = _CACHE.get(key)
    if hit is not None and hit[0]() is trace:
        _STATS["cache_hits"] += 1
        return hit[1]
    _STATS["cache_misses"] += 1

    file_offsets = _FILE_OFFSETS
    unit_index = _UNIT_INDEX
    ops: List[Op] = []
    has_vector = False
    for entry in trace.entries:
        instr = entry.instruction
        unit = unit_index[instr.unit]
        dest = instr.dest
        if dest is None:
            dest_id = -1
            uses_bus = False
        else:
            dest_id = file_offsets[dest.file] + dest.index
            uses_bus = dest.is_address or dest.is_scalar
        srcs = tuple(
            file_offsets[src.file] + src.index
            for src in instr.source_registers
        )
        is_vector = instr.is_vector
        if is_vector:
            has_vector = True
            uses_bus = False
            vl = entry.vector_length or 0
        else:
            vl = 0
        is_branch = instr.is_branch
        taken = bool(entry.taken) if is_branch else False
        is_cond = instr.is_conditional_branch if is_branch else False
        ops.append(
            (unit, dest_id, srcs, is_branch, taken, is_vector, vl, uses_bus,
             is_cond)
        )

    compiled = CompiledTrace(
        name=trace.name, n=len(ops), ops=tuple(ops), has_vector=has_vector
    )
    _STATS["compiles"] += 1

    def _evict(_ref: object, _key: int = key) -> None:
        if _CACHE.pop(_key, None) is not None:
            _STATS["evictions"] += 1

    _CACHE[key] = (weakref.ref(trace, _evict), compiled)
    return compiled


#: Per-unit op-count profiles keyed by ``id(compiled)``; weakref-validated
#: and -evicted exactly like :data:`_CACHE`.
_PROFILES: Dict[int, Tuple["weakref.ref[CompiledTrace]", tuple]] = {}


def unit_profile(
    compiled: CompiledTrace,
) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]:
    """Per-unit ``(non-branch ops, vector-length sum, branch ops)``.

    The telemetry closed forms use this to turn "cycles each unit was
    busy" into per-unit arithmetic: for machines whose per-op busy span
    is ``latency (+ vector length)`` for non-branches and the branch
    latency for branches, total busy per unit is
    ``count*latency + vl_sum`` plus ``branches*branch_latency`` --
    config-dependent only through the latency tables, so the counts are
    cached per compiled trace.
    """
    key = id(compiled)
    hit = _PROFILES.get(key)
    if hit is not None and hit[0]() is compiled:
        return hit[1]

    n_units = len(UNITS)
    counts = [0] * n_units
    vl_sums = [0] * n_units
    branches = [0] * n_units
    for unit, _d, _s, is_branch, _t, _v, vl, _b, _c in compiled.ops:
        if is_branch:
            branches[unit] += 1
        else:
            counts[unit] += 1
            vl_sums[unit] += vl

    profile = (tuple(counts), tuple(vl_sums), tuple(branches))

    def _evict(_ref: object, _key: int = key) -> None:
        _PROFILES.pop(_key, None)

    _PROFILES[key] = (weakref.ref(compiled, _evict), profile)
    return profile


#: Fetch-window statistics keyed by ``id(compiled)`` then issue width;
#: weakref-validated and -evicted exactly like :data:`_CACHE`.
_WINDOWS: Dict[int, Tuple["weakref.ref[CompiledTrace]", Dict[int, tuple]]] = {}


def window_stats(
    compiled: CompiledTrace, units: int
) -> Tuple[Dict[int, int], int, int]:
    """``(occupancy histogram, flushes, flush cycles)`` for a fetch
    window of *units* slots.

    The windowed machines (in-order and out-of-order multiple issue)
    fill fetch buffers of up to *units* instructions, cut after the
    first taken branch -- a pure function of the compiled ``taken``
    flags, independent of the machine config, so the telemetry loops
    share one cached walk per (trace, width) instead of recounting
    buffers on every replay.  A taken-branch cut flushes the unfilled
    remainder of the buffer (possibly zero slots), matching the
    reference loops' FLUSH events.
    """
    key = id(compiled)
    hit = _WINDOWS.get(key)
    if hit is not None and hit[0]() is compiled:
        per_width = hit[1]
        cached = per_width.get(units)
        if cached is not None:
            return cached
    else:
        per_width = {}

        def _evict(_ref: object, _key: int = key) -> None:
            _WINDOWS.pop(_key, None)

        _WINDOWS[key] = (weakref.ref(compiled, _evict), per_width)

    ops = compiled.ops
    n = compiled.n
    occupancy: Dict[int, int] = {}
    flushes = 0
    flush_cycles = 0
    pos = 0
    while pos < n:
        end = pos + units
        if end > n:
            end = n
        length = 0
        cut = False
        for index in range(pos, end):
            length += 1
            op = ops[index]
            if op[3] and op[4]:
                cut = True
                break
        occupancy[length] = occupancy.get(length, 0) + 1
        if cut:
            flushes += 1
            flush_cycles += units - length
        pos += length

    stats = (occupancy, flushes, flush_cycles)
    per_width[units] = stats
    return stats


def _unit_tables(
    config: MachineConfig, fu_pipelined: bool, memory_interleaved: bool
) -> Tuple[List[int], List[bool]]:
    """Per-unit latency and pipelining tables for one (machine, config)."""
    table = config.latencies
    latencies = [table.latency(unit) for unit in UNITS]
    pipelined = []
    for index, latency in enumerate(latencies):
        if index == _MEMORY:
            pipelined.append(memory_interleaved)
        elif index == _BRANCH:
            pipelined.append(True)  # branch spacing is modelled separately
        else:
            pipelined.append(fu_pipelined or latency <= 1)
    return latencies, pipelined


#: Per-instruction (issue, complete) pairs, matching the cycles an
#: ``on_event`` subscriber of the reference path would observe.
Schedule = List[Tuple[int, int]]
