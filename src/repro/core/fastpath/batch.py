"""The ``batch`` backend: structure-of-arrays sweep evaluation.

The paper's experiments are sweep-shaped: the same trace replayed
across many machine configurations (the four memory/branch variants of
a table, the oracle's machine set, an issue-width sweep).  The
per-spec loops pay the full replay cost per configuration even though
:func:`~repro.core.fastpath.ir.compile_trace` already shares the
decode.  This backend evaluates one :class:`CompiledTrace` through a
whole sweep in a single pass: per-spec machine state lives in parallel
integer arrays (one slot per sweep member), and everything that does
not depend on the configuration -- operand/flag unpacking, the
in-order window and out-of-order buffer decomposition, the per-buffer
hazard analysis -- is computed once and shared across the sweep.

Grouping: sweep items are bucketed by *structure key* -- the attributes
that shape the shared decomposition (machine family; issue width and
WAR policy for the windowed machines).  Flags that only parameterise
the per-spec recurrence (latency tables, branch latency, bus wiring,
result-bus modelling, chaining) stay per-spec inside a group, so e.g.
``cray``/``serialmemory``/``nonsegmented`` batch together and a
four-config table row is always one group.  The RUU, Tomasulo and
speculative machines keep their per-spec loops (per-cycle wakeup state
and predictor replay do not share across configs profitably); sweep
items for them are served by the ``python`` backend loops inside the
same sweep call -- counted as ``fallback_runs`` -- sharing the single
compiled trace.

For the out-of-order machine the shared analysis is the big win: the
reference (and the per-spec fast loop) re-derives control and data
hazards between buffer slots on every scan cycle -- an O(slot) walk per
slot per cycle.  Here each buffer is decomposed once into per-slot
dependency bitmasks (``dep_mask``: RAW/WAW/and optionally WAR against
earlier slots; ``branches_before``: earlier branch slots), so each scan
tests two integer ANDs instead of walking the earlier slots, and every
sweep member reuses the same masks.

The state arrays are deliberately plain Python ``int`` lists, not NumPy
vectors: the recurrences are data-dependent (issue decisions feed the
very next comparison), so vectorising across the sweep would have to
speculate and repair -- and at sweep widths of 4-20 the per-op ufunc
dispatch overhead dominates any arithmetic saved.  Bit-identity with
``reference_simulate`` is the contract here exactly as for the
``python`` backend; the differential sweep in
``tests/test_fastpath_batch.py`` and the oracle's ``fastpath-dual``
check enforce it.
"""

from __future__ import annotations

import weakref
from heapq import heappop, heappush
from typing import Dict, List, Tuple

from ...obs.telemetry import SimTelemetry
from ...obs.telemetry import collecting as telemetry_collecting
from ...trace import Trace
from ..buses import BusKind
from ..result import SimulationResult
from .backends import (
    Backend,
    count_run,
    family_of,
    get_backend,
    register_backend,
)
from .ir import (
    N_REGISTERS,
    UNITS,
    _UNKNOWN,
    _unit_tables,
    compile_trace,
    window_stats,
)
from .python_backend import _UNIT_NAMES, _closed_busy

__all__ = ["BatchBackend"]

#: Cap on buffer-drain scan passes, mirroring the per-spec loop's guard.
_MAX_BUFFER_CYCLES = 100_000

#: Families the batch kernels cover; the rest fall back to the
#: ``python`` backend's per-spec loops (still inside the one sweep).
_BATCHED_FAMILIES = frozenset({"scoreboard", "cdc6600", "inorder", "ooo"})


def _scalar_only(machine):
    from ..base import scalar_only_error

    raise scalar_only_error(machine.name)


def _result(compiled, machine, config, cycles, detail=None) -> SimulationResult:
    return SimulationResult(
        trace_name=compiled.name,
        simulator=machine.name,
        config=config,
        instructions=compiled.n,
        cycles=cycles,
        detail=detail if detail is not None else {},
    )


# ----------------------------------------------------------------------
# Scoreboard family: single issue, issue-blocking (Section 3.2)
# ----------------------------------------------------------------------

def _sweep_scoreboard(compiled, group) -> List[SimulationResult]:
    """All scoreboard variants over one trace: ops outer, specs inner.

    The per-spec body is the ``python`` backend's scoreboard recurrence
    verbatim (same max chains, same bus probe, same tie-breaks); only
    the operand unpacking is hoisted out of the sweep.
    """
    K = len(group)
    p_lat: List[List[int]] = []
    p_pipe: List[List[bool]] = []
    p_brlat: List[int] = []
    p_bus: List[bool] = []
    p_chain: List[bool] = []
    for item in group:
        machine, config = item.simulator, item.config
        latencies, pipelined = _unit_tables(
            config, machine.fu_pipelined, machine.memory_interleaved
        )
        p_lat.append(latencies)
        p_pipe.append(pipelined)
        p_brlat.append(config.branch_latency)
        p_bus.append(machine.model_result_bus)
        p_chain.append(machine.vector_chaining)

    n_units = len(UNITS)
    reg_ready = [[0] * N_REGISTERS for _ in range(K)]
    write_done = [[0] * N_REGISTERS for _ in range(K)]
    fu_free = [[0] * n_units for _ in range(K)]
    bus_reserved: List[set] = [set() for _ in range(K)]
    bus_heap: List[List[int]] = [[] for _ in range(K)]
    next_issue = [0] * K
    last_event = [0] * K
    records = [item.record for item in group]

    telemetry = telemetry_collecting()

    # Two copies of the recurrence, as in the ``python`` backend's
    # scoreboard loop: the plain copy is the replay verbatim, the
    # telemetry copy tags each issue-probe improvement with an integer
    # reason code and attributes whole issue gaps in closed form
    # (branch shadows pre-credited at the branch, refunded when a later
    # relabelled gap absorbs them).
    if not telemetry:
        for unit, dest, srcs, is_branch, _taken, is_vector, vl, uses_bus, \
                _c in compiled.ops:
            for k in range(K):
                latency = p_lat[k][unit]
                regs = reg_ready[k]

                earliest = next_issue[k]
                for src in srcs:
                    ready = regs[src]
                    if ready > earliest:
                        earliest = ready
                if dest >= 0:
                    ready = write_done[k][dest]
                    if ready > earliest:
                        earliest = ready
                ready = fu_free[k][unit]
                if ready > earliest:
                    earliest = ready
                if p_bus[k] and uses_bus:
                    reserved = bus_reserved[k]
                    heap = bus_heap[k]
                    front = next_issue[k]
                    while heap and heap[0] <= front:
                        reserved.discard(heappop(heap))
                    while earliest + latency in reserved:
                        earliest += 1

                issue = earliest

                complete = issue + latency + vl
                if p_bus[k] and uses_bus:
                    bus_reserved[k].add(complete)
                    heappush(bus_heap[k], complete)

                if is_vector:
                    fu_free[k][unit] = (
                        issue + vl if p_pipe[k][unit] else complete
                    )
                else:
                    fu_free[k][unit] = (
                        issue + 1 if p_pipe[k][unit] else complete
                    )

                if dest >= 0:
                    if is_vector and p_chain[k]:
                        regs[dest] = issue + latency
                    else:
                        regs[dest] = complete
                    write_done[k][dest] = complete

                if is_branch:
                    next_issue[k] = issue + p_brlat[k]
                    complete = next_issue[k]
                else:
                    next_issue[k] = issue + 1

                if complete > last_event[k]:
                    last_event[k] = complete
                if records[k] is not None:
                    records[k].append((issue, complete))
    else:
        # reason codes: 0 NONE, 1 RAW, 2 WAW, 3 UNIT, 4 BUS, 5 BRANCH
        t_acc = [[0] * 6 for _ in range(K)]
        t_prev = [-1] * K
        reason = 0
        for unit, dest, srcs, is_branch, _taken, is_vector, vl, uses_bus, \
                _c in compiled.ops:
            for k in range(K):
                latency = p_lat[k][unit]
                regs = reg_ready[k]

                front = next_issue[k]
                earliest = front
                for src in srcs:
                    ready = regs[src]
                    if ready > earliest:
                        earliest = ready
                        reason = 1
                if dest >= 0:
                    ready = write_done[k][dest]
                    if ready > earliest:
                        earliest = ready
                        reason = 2
                ready = fu_free[k][unit]
                if ready > earliest:
                    earliest = ready
                    reason = 3
                if p_bus[k] and uses_bus:
                    reserved = bus_reserved[k]
                    heap = bus_heap[k]
                    while heap and heap[0] <= front:
                        reserved.discard(heappop(heap))
                    while earliest + latency in reserved:
                        earliest += 1
                        reason = 4

                issue = earliest

                # A positive gap implies a strict improvement set
                # `reason` this iteration, so no per-op reseeding.
                if issue > front:
                    acc = t_acc[k]
                    gap = issue - t_prev[k] - 1
                    acc[reason] += gap
                    shadow = gap - issue + front
                    if shadow:
                        acc[5] -= shadow
                t_prev[k] = issue

                complete = issue + latency + vl
                if p_bus[k] and uses_bus:
                    bus_reserved[k].add(complete)
                    heappush(bus_heap[k], complete)

                if is_vector:
                    fu_free[k][unit] = (
                        issue + vl if p_pipe[k][unit] else complete
                    )
                else:
                    fu_free[k][unit] = (
                        issue + 1 if p_pipe[k][unit] else complete
                    )

                if dest >= 0:
                    if is_vector and p_chain[k]:
                        regs[dest] = issue + latency
                    else:
                        regs[dest] = complete
                    write_done[k][dest] = complete

                if is_branch:
                    next_issue[k] = issue + p_brlat[k]
                    complete = next_issue[k]
                    t_acc[k][5] += p_brlat[k] - 1
                else:
                    next_issue[k] = issue + 1

                if complete > last_event[k]:
                    last_event[k] = complete
                if records[k] is not None:
                    records[k].append((issue, complete))
        if compiled.n and compiled.ops[-1][3]:
            # The final branch's shadow has no successor to pay it.
            for k in range(K):
                t_acc[k][5] -= p_brlat[k] - 1

    details: List[Dict[str, float]] = [{}] * K
    if telemetry:
        details = [
            SimTelemetry(
                instructions=compiled.n,
                cycles=last_event[k],
                stall_cycles={
                    "RAW": t_acc[k][1],
                    "WAW": t_acc[k][2],
                    "UNIT": t_acc[k][3],
                    "BUS": t_acc[k][4],
                    "BRANCH": t_acc[k][5],
                },
                fu_busy_cycles=_closed_busy(compiled, p_lat[k], p_brlat[k]),
                issue_width={1: compiled.n},
            ).to_detail()
            for k in range(K)
        ]

    return [
        _result(compiled, item.simulator, item.config, last_event[k],
                details[k])
        for k, item in enumerate(group)
    ]


# ----------------------------------------------------------------------
# CDC 6600-style scoreboard: RAW waits at the units (Section 3.3)
# ----------------------------------------------------------------------

def _sweep_cdc6600(compiled, group) -> List[SimulationResult]:
    K = len(group)
    p_lat: List[List[int]] = []
    p_brlat: List[int] = []
    p_holds: List[bool] = []
    for item in group:
        table = item.config.latencies
        p_lat.append([table.latency(unit) for unit in UNITS])
        p_brlat.append(item.config.branch_latency)
        p_holds.append(item.simulator.fu_holds_until_complete)

    from .ir import _MEMORY

    n_units = len(UNITS)
    reg_ready = [[0] * N_REGISTERS for _ in range(K)]
    fu_free = [[0] * n_units for _ in range(K)]
    next_issue = [0] * K
    last_event = [0] * K
    records = [item.record for item in group]

    telemetry = telemetry_collecting()

    # Two copies of the recurrence (see the scoreboard sweep).  Busy
    # spans are mostly closed-form: a non-branch op occupies its unit
    # for ``latency`` cycles plus however long RAW delivery delays
    # execution start (``start - issue``), and a branch for the branch
    # latency exactly -- so the telemetry copy only accumulates the
    # start-delay excess and adds the closed form at the end.
    if not telemetry:
        for unit, dest, srcs, is_branch, _t, _v, _vl, _bus, _c in (
            compiled.ops
        ):
            for k in range(K):
                latency = p_lat[k][unit]
                regs = reg_ready[k]

                earliest = next_issue[k]
                ready = fu_free[k][unit]
                if ready > earliest:
                    earliest = ready
                if dest >= 0:
                    waw = regs[dest]
                    if waw > earliest:
                        earliest = waw
                if is_branch:
                    for src in srcs:
                        ready = regs[src]
                        if ready > earliest:
                            earliest = ready

                issue = earliest

                start = issue
                for src in srcs:
                    ready = regs[src]
                    if ready > start:
                        start = ready
                complete = start + latency

                if is_branch:
                    next_issue[k] = issue + p_brlat[k]
                    complete = next_issue[k]
                    fu_free[k][unit] = issue + 1
                else:
                    next_issue[k] = issue + 1
                    if unit == _MEMORY:
                        fu_free[k][unit] = start + 1
                    else:
                        fu_free[k][unit] = (
                            complete if p_holds[k] else start + 1
                        )
                    if dest >= 0:
                        regs[dest] = complete

                if complete > last_event[k]:
                    last_event[k] = complete
                if records[k] is not None:
                    records[k].append((issue, complete))
    else:
        t_extra = [[0] * n_units for _ in range(K)]
        for unit, dest, srcs, is_branch, _t, _v, _vl, _bus, _c in (
            compiled.ops
        ):
            for k in range(K):
                latency = p_lat[k][unit]
                regs = reg_ready[k]

                earliest = next_issue[k]
                ready = fu_free[k][unit]
                if ready > earliest:
                    earliest = ready
                if dest >= 0:
                    waw = regs[dest]
                    if waw > earliest:
                        earliest = waw
                if is_branch:
                    for src in srcs:
                        ready = regs[src]
                        if ready > earliest:
                            earliest = ready

                issue = earliest

                start = issue
                for src in srcs:
                    ready = regs[src]
                    if ready > start:
                        start = ready
                complete = start + latency
                if start > issue:
                    # RAW delivery held the unit past its closed-form
                    # span.  (Branches never take this path: their
                    # issue already waited on every source.)
                    t_extra[k][unit] += start - issue

                if is_branch:
                    next_issue[k] = issue + p_brlat[k]
                    complete = next_issue[k]
                    fu_free[k][unit] = issue + 1
                else:
                    next_issue[k] = issue + 1
                    if unit == _MEMORY:
                        fu_free[k][unit] = start + 1
                    else:
                        fu_free[k][unit] = (
                            complete if p_holds[k] else start + 1
                        )
                    if dest >= 0:
                        regs[dest] = complete

                if complete > last_event[k]:
                    last_event[k] = complete
                if records[k] is not None:
                    records[k].append((issue, complete))

    details: List[Dict[str, float]] = [{}] * K
    if telemetry:
        details = []
        for k in range(K):
            busy = _closed_busy(compiled, p_lat[k], p_brlat[k])
            for u in range(n_units):
                if t_extra[k][u]:
                    name = _UNIT_NAMES[u]
                    busy[name] = busy.get(name, 0) + t_extra[k][u]
            details.append(
                SimTelemetry(
                    instructions=compiled.n,
                    cycles=max(last_event[k], 1),
                    stall_cycles={},
                    fu_busy_cycles=busy,
                    issue_width={1: compiled.n},
                ).to_detail()
            )

    return [
        _result(compiled, item.simulator, item.config, max(last_event[k], 1),
                details[k])
        for k, item in enumerate(group)
    ]


# ----------------------------------------------------------------------
# In-order multiple issue (Section 5.1): shared window decomposition
# ----------------------------------------------------------------------

def _sweep_inorder(compiled, units, group) -> List[SimulationResult]:
    """One window walk, every spec: the window boundaries (up to
    *units* slots, cut at the first taken branch) depend only on the
    compiled taken flags, so the decomposition and operand unpacking
    are shared; the per-slot recurrence runs per spec."""
    K = len(group)
    p_lat: List[List[int]] = []
    p_brlat: List[int] = []
    p_nbus: List[int] = []
    p_xbar: List[bool] = []
    for item in group:
        latencies, _ = _unit_tables(item.config, True, True)
        p_lat.append(latencies)
        p_brlat.append(item.config.branch_latency)
        kind = item.simulator.bus_kind
        p_nbus.append(1 if kind is BusKind.ONE_BUS else units)
        p_xbar.append(kind is BusKind.X_BAR)

    n_units = len(UNITS)
    reg_ready = [[0] * N_REGISTERS for _ in range(K)]
    fu_free = [[0] * n_units for _ in range(K)]
    buses: List[List[set]] = [
        [set() for _ in range(p_nbus[k])] for k in range(K)
    ]
    bus_heap: List[List[Tuple[int, int]]] = [[] for _ in range(K)]
    cycles = [0] * K
    last_event = [0] * K
    records = [item.record for item in group]

    telemetry = telemetry_collecting()
    # Buffer shape (occupancy, flushes) is config-independent and comes
    # from the shared per-trace cache.  Issue-width run lengths depend
    # on latencies, so they stay per spec; runs never exceed the buffer
    # width, so the histograms live in flat lists.
    t_run = [0] * K
    t_run_cycle = [-1] * K
    t_width: List[List[int]] = [[0] * (units + 1) for _ in range(K)]

    ops = compiled.ops
    n_entries = compiled.n
    pos = 0
    while pos < n_entries:
        end = pos + units
        if end > n_entries:
            end = n_entries
        index = pos
        cut = False
        is_branch = False
        while index < end:
            unit, dest, srcs, is_branch, taken, _v, _vl, _bus, _c = ops[index]
            slot = index - pos
            for k in range(K):
                latency = p_lat[k][unit]
                regs = reg_ready[k]
                cycle = cycles[k]

                earliest = cycle
                for src in srcs:
                    ready = regs[src]
                    if ready > earliest:
                        earliest = ready
                if dest >= 0:
                    ready = regs[dest]
                    if ready > earliest:
                        earliest = ready
                ready = fu_free[k][unit]
                if ready > earliest:
                    earliest = ready

                if dest >= 0:
                    heap = bus_heap[k]
                    buses_k = buses[k]
                    while heap and heap[0][0] <= cycle:
                        done, bus_index = heappop(heap)
                        buses_k[bus_index].discard(done)
                    target = earliest + latency
                    if p_xbar[k]:
                        while True:
                            chosen = -1
                            for bus_index, reserved in enumerate(buses_k):
                                if target not in reserved:
                                    chosen = bus_index
                                    break
                            if chosen >= 0:
                                break
                            earliest += 1
                            target += 1
                    else:
                        chosen = slot % p_nbus[k]
                        reserved = buses_k[chosen]
                        while target in reserved:
                            earliest += 1
                            target += 1
                    buses_k[chosen].add(target)
                    heappush(heap, (target, chosen))

                cycle = earliest
                if telemetry:
                    # Issue cycles are globally nondecreasing, so equal
                    # neighbours form one multi-issue cycle: run-length
                    # encode them into the width histogram.
                    if cycle == t_run_cycle[k]:
                        t_run[k] += 1
                    else:
                        run = t_run[k]
                        if run:
                            t_width[k][run] += 1
                        t_run[k] = 1
                        t_run_cycle[k] = cycle
                complete = cycle + latency
                fu_free[k][unit] = cycle + 1
                if dest >= 0:
                    regs[dest] = complete
                if not is_branch and complete > last_event[k]:
                    last_event[k] = complete
                if records[k] is not None:
                    records[k].append((
                        cycle,
                        cycle + p_brlat[k] if is_branch else complete,
                    ))

                if is_branch:
                    resolve = cycle + p_brlat[k]
                    if resolve > last_event[k]:
                        last_event[k] = resolve
                    cycle = resolve
                cycles[k] = cycle
            index += 1
            if is_branch and taken:
                cut = True
                break

        pos = index
        if not cut and not is_branch:
            # Full buffer issued, straight-line tail: the refill is
            # overlapped, examinable the cycle after the last issue.
            for k in range(K):
                cycles[k] += 1

    details: List[Dict[str, float]] = [{}] * K
    if telemetry:
        t_occ, t_flushes, t_flush_cycles = window_stats(compiled, units)
        details = []
        for k in range(K):
            run = t_run[k]
            if run:
                t_width[k][run] += 1
            details.append(
                SimTelemetry(
                    instructions=compiled.n,
                    cycles=max(last_event[k], 1),
                    stall_cycles={},
                    fu_busy_cycles=_closed_busy(
                        compiled, p_lat[k], p_brlat[k]
                    ),
                    issue_width={
                        w: c for w, c in enumerate(t_width[k]) if c
                    },
                    occupancy=t_occ,
                    flushes=t_flushes,
                    flush_cycles=t_flush_cycles,
                ).to_detail()
            )

    return [
        _result(compiled, item.simulator, item.config, max(last_event[k], 1),
                details[k])
        for k, item in enumerate(group)
    ]


# ----------------------------------------------------------------------
# Out-of-order multiple issue (Section 5.2): shared hazard bitmasks
# ----------------------------------------------------------------------

#: Drain-variant tags for out-of-order buffer records (see
#: :func:`_ooo_plan`).
_SINGLE, _INDEP, _NOBRANCH, _GENERAL = 0, 1, 2, 3

#: Cached buffer plans keyed by ``(id(compiled), units, enforce_war)``;
#: the weak reference validates the key and evicts with the compiled
#: trace, mirroring :data:`repro.core.fastpath.ir._CACHE`.
_OOO_PLANS: Dict[Tuple[int, int, bool], Tuple["weakref.ref", list]] = {}


def _ooo_plan(compiled, units: int, enforce_war: bool) -> List[tuple]:
    """Decode every fetch buffer of *compiled* once for an out-of-order
    machine of the given issue width and WAR policy.

    The buffer cut (after the first taken branch) and the intra-buffer
    hazard structure are config-independent, so the plan is shared by
    every sweep member and cached across sweep calls on the same
    compiled trace.  Records are ``(pos, tag, payload, full_mask)``;
    payload is the op tuple for singles, else a tuple of per-slot
    tuples unpacked by the drains in :func:`_sweep_ooo`.
    """
    key = (id(compiled), units, enforce_war)
    hit = _OOO_PLANS.get(key)
    if hit is not None and hit[0]() is compiled:
        return hit[1]

    ops = compiled.ops
    n_entries = compiled.n
    buffers: List[tuple] = []
    pos = 0
    while pos < n_entries:
        end = pos + units
        if end > n_entries:
            end = n_entries
        blen = 0
        for index in range(pos, end):
            blen += 1
            op = ops[index]
            if op[3] and op[4]:
                break
        if blen == 1:
            buffers.append((pos, _SINGLE, ops[pos], 0))
            pos += 1
            continue

        s_unit = [0] * blen
        s_dest = [0] * blen
        s_srcs: List[Tuple[int, ...]] = [()] * blen
        s_isbr = [False] * blen
        any_branch = False
        units_seen = 0
        indep = True
        for slot in range(blen):
            op = ops[pos + slot]
            unit = op[0]
            s_unit[slot] = unit
            s_dest[slot] = op[1]
            s_srcs[slot] = op[2]
            unit_bit = 1 << unit
            if units_seen & unit_bit:
                indep = False
            units_seen |= unit_bit
            if op[3]:
                s_isbr[slot] = True
                any_branch = True

        # Per-slot hazard masks against earlier slots: dep_mask covers
        # RAW/WAW (and WAR when enforced) against *unissued* earlier
        # slots, branches_before the control dependence on earlier
        # branch slots.
        dep_mask = [0] * blen
        branches_before = [0] * blen
        br_slots_before: List[Tuple[int, ...]] = [()] * blen
        for slot in range(1, blen):
            dest = s_dest[slot]
            srcs = s_srcs[slot]
            mask = 0
            bb = 0
            brs: List[int] = []
            for earlier in range(slot):
                if s_isbr[earlier]:
                    bb |= 1 << earlier
                    brs.append(earlier)
                edest = s_dest[earlier]
                if edest >= 0 and (
                    edest in srcs or (dest >= 0 and edest == dest)
                ):
                    mask |= 1 << earlier
                elif dest >= 0 and dest in s_srcs[earlier]:
                    indep = False
                    if enforce_war:
                        mask |= 1 << earlier
            if mask:
                indep = False
            dep_mask[slot] = mask
            branches_before[slot] = bb
            br_slots_before[slot] = tuple(brs)

        full_mask = (1 << blen) - 1
        if any_branch:
            payload = tuple(
                (1 << slot, dep_mask[slot], branches_before[slot],
                 br_slots_before[slot], s_unit[slot], s_dest[slot],
                 s_srcs[slot], s_isbr[slot])
                for slot in range(blen)
            )
            buffers.append((pos, _GENERAL, payload, full_mask))
        else:
            payload = tuple(
                (1 << slot, dep_mask[slot], s_unit[slot], s_dest[slot],
                 s_srcs[slot])
                for slot in range(blen)
            )
            tag = _INDEP if indep else _NOBRANCH
            buffers.append((pos, tag, payload, full_mask))
        pos += blen

    def _evict(_ref: object, _key=key) -> None:
        _OOO_PLANS.pop(_key, None)

    _OOO_PLANS[key] = (weakref.ref(compiled, _evict), buffers)
    return buffers


def _sweep_ooo(compiled, units, enforce_war, group) -> List[SimulationResult]:
    """Shared buffer decomposition + per-buffer hazard bitmasks; the
    per-spec scan tests ``dep_mask & unissued`` / ``branches_before &
    unissued`` instead of walking earlier slots each cycle.

    The sweep runs in two phases.  Phase 1 decodes every fetch buffer
    once -- the buffer cut (after the first taken branch) and the
    intra-buffer hazard structure are config-independent -- and tags
    each with the cheapest drain that reproduces the reference:

    ``single``
        One slot (the tail, and right after a taken branch): no
        intra-buffer hazards, so the issue cycle is a closed-form max
        over operand/unit readiness plus a result-bus probe.
    ``independent``
        No branch, no shared functional unit, and no register shared in
        any direction (WAR overlap disqualifies even when not enforced,
        because a later write still raises an earlier read's floor once
        issued).  With per-slot result buses no slot can observe
        another, so each issues at its own closed-form cycle -- exactly
        where the reference scan lands via progress steps and jumps.
        Specs with a shared bus (1-Bus, crossbar) fall back to the
        branch-free drain.
    ``branch-free`` / ``general``
        The scan drain, with the reference's separate jump-candidate
        pass folded into the issue scan: candidates are only consulted
        when the scan issued nothing, exactly the case where no state
        changed during the scan, so inline candidates equal what a
        second pass over the same state would compute.

    Phase 2 replays the prebuilt buffer records once per sweep member
    with that member's latencies, bus wiring and machine state bound as
    locals for the whole trace.

    Bus reservations are grow-only sets rather than the reference's
    pruned set + heap: every membership probe targets a cycle strictly
    greater than the current one, while every entry pruning would drop
    is less than or equal to it, so stale entries can never satisfy a
    probe and the prune is unobservable.
    """
    K = len(group)
    p_lat: List[List[int]] = []
    p_brlat: List[int] = []
    p_nbus: List[int] = []
    p_xbar: List[bool] = []
    for item in group:
        table = item.config.latencies
        p_lat.append([table.latency(unit) for unit in UNITS])
        p_brlat.append(item.config.branch_latency)
        kind = item.simulator.bus_kind
        p_nbus.append(1 if kind is BusKind.ONE_BUS else units)
        p_xbar.append(kind is BusKind.X_BAR)

    buffers = _ooo_plan(compiled, units, enforce_war)

    telemetry = telemetry_collecting()
    # Buffer occupancy and taken-branch flushes depend only on the
    # taken flags (shared per-trace cache); single-slot buffers always
    # issue alone, so their width-1 contribution is one count, not one
    # dict update per buffer per spec.
    t_occ: Dict[int, int] = {}
    t_flushes = 0
    t_flush_cycles = 0
    t_singles = 0
    if telemetry:
        t_occ, t_flushes, t_flush_cycles = window_stats(compiled, units)
        for _pos, tag, _payload, _fm in buffers:
            if tag == _SINGLE:
                t_singles += 1
    t_details: List[Dict[str, float]] = [{}] * K

    # ------------------------------------------------------------------
    # Phase 2: replay the records once per sweep member.
    # ------------------------------------------------------------------
    n_units = len(UNITS)
    last_events = [0] * K
    tracking = [item.record is not None for item in group]
    issue_at = [
        [0] * compiled.n if tracking[k] else None for k in range(K)
    ]
    complete_at = [
        [0] * compiled.n if tracking[k] else None for k in range(K)
    ]

    for k in range(K):
        latencies = p_lat[k]
        brlat = p_brlat[k]
        nb = p_nbus[k]
        xb = p_xbar[k]
        regs = [0] * N_REGISTERS
        fuf = [0] * n_units
        buses_k = [set() for _ in range(nb)]
        # slot -> result bus, replacing `slot % nb` in the drains (a
        # slot index never exceeds the issue-unit count).
        busmap = buses_k if nb != 1 else buses_k * units
        track = tracking[k]
        issue_k = issue_at[k]
        complete_k = complete_at[k]
        cycle = 0
        last_event = 0
        closed_ok = nb != 1 and not xb
        # Scan passes issue at most `units` slots, so width counts live
        # in a flat list; single-slot buffers are added once at the end.
        t_width = [0] * (units + 1)
        t_cs: List[int] = []
        t_cs_append = t_cs.append

        for pos, tag, payload, full_mask in buffers:
            if tag == _SINGLE:
                unit, dest, srcs, is_branch = payload[:4]
                c = cycle
                for src in srcs:
                    ready = regs[src]
                    if ready > c:
                        c = ready
                if dest >= 0:
                    ready = regs[dest]
                    if ready > c:
                        c = ready
                    ready = fuf[unit]
                    if ready > c:
                        c = ready
                    complete = c + latencies[unit]
                    if xb:
                        chosen = -1
                        for bus_index in range(nb):
                            if complete not in buses_k[bus_index]:
                                chosen = bus_index
                                break
                        if chosen < 0:
                            while all(complete in bus for bus in buses_k):
                                c += 1
                                complete += 1
                            for bus_index in range(nb):
                                if complete not in buses_k[bus_index]:
                                    chosen = bus_index
                                    break
                        reserved = buses_k[chosen]
                    else:
                        reserved = buses_k[0]
                        while complete in reserved:
                            c += 1
                            complete += 1
                    reserved.add(complete)
                    regs[dest] = complete
                else:
                    ready = fuf[unit]
                    if ready > c:
                        c = ready
                    complete = c + latencies[unit]
                fuf[unit] = c + 1
                if is_branch:
                    resolve = c + brlat
                    if resolve > last_event:
                        last_event = resolve
                    cycle = c + 1 if c + 1 > resolve else resolve
                    if track:
                        issue_k[pos] = c
                        complete_k[pos] = resolve
                else:
                    if complete > last_event:
                        last_event = complete
                    cycle = c + 1
                    if track:
                        issue_k[pos] = c
                        complete_k[pos] = complete
                continue

            if tag == _INDEP and closed_ok:
                maxc = cycle
                for slot, (bit, dep, unit, dest, srcs) in enumerate(
                    payload
                ):
                    c = cycle
                    for src in srcs:
                        ready = regs[src]
                        if ready > c:
                            c = ready
                    ready = fuf[unit]
                    if ready > c:
                        c = ready
                    complete = c + latencies[unit]
                    if dest >= 0:
                        ready = regs[dest]
                        if ready > c:
                            c = ready
                            complete = c + latencies[unit]
                        reserved = buses_k[slot]
                        while complete in reserved:
                            c += 1
                            complete += 1
                        reserved.add(complete)
                        regs[dest] = complete
                    fuf[unit] = c + 1
                    if complete > last_event:
                        last_event = complete
                    if c > maxc:
                        maxc = c
                    if telemetry:
                        t_cs_append(c)
                    if track:
                        issue_k[pos + slot] = c
                        complete_k[pos + slot] = complete
                if telemetry:
                    # Slots may share an issue cycle only within this
                    # buffer (the next one starts past ``maxc``), so the
                    # per-buffer multiset gives the per-cycle widths;
                    # pairwise counting over <= `units` entries beats a
                    # per-slot dict by a wide margin.
                    m = len(t_cs)
                    if m == 1:
                        t_width[1] += 1
                    else:
                        counted = 0
                        for i in range(m):
                            if counted >> i & 1:
                                continue
                            ci = t_cs[i]
                            run = 1
                            for j in range(i + 1, m):
                                if t_cs[j] == ci:
                                    run += 1
                                    counted |= 1 << j
                            t_width[run] += 1
                    t_cs.clear()
                cycle = maxc + 1
                continue

            if tag != _GENERAL:
                # Branch-free drain: data hazards + structural conflicts
                # only.
                unissued = full_mask
                guard = 0
                while unissued:
                    guard += 1
                    if guard > _MAX_BUFFER_CYCLES:  # pragma: no cover
                        raise RuntimeError(
                            f"buffer failed to drain at trace pos {pos}"
                        )
                    progressed = False
                    nxt = -1
                    before = unissued
                    for slot, (bit, dep, unit, dest, srcs) in enumerate(
                        payload
                    ):
                        if not unissued & bit:
                            continue
                        # RAW/WAW (and optionally WAR) against unissued
                        # earlier slots; gated slots are bounded by the
                        # gating slot's own candidate.
                        if dep & unissued:
                            continue
                        earliest = cycle
                        for src in srcs:
                            ready = regs[src]
                            if ready > earliest:
                                earliest = ready
                        if dest >= 0:
                            ready = regs[dest]
                            if ready > earliest:
                                earliest = ready
                        ready = fuf[unit]
                        if ready > earliest:
                            earliest = ready
                        latency = latencies[unit]
                        if earliest > cycle:
                            # Not ready: jump candidate (used only when
                            # nothing issues this scan, i.e. when state
                            # did not change under us).
                            cand = earliest
                            if dest >= 0:
                                if xb:
                                    while all(
                                        cand + latency in bus
                                        for bus in buses_k
                                    ):
                                        cand += 1
                                else:
                                    reserved = busmap[slot]
                                    while cand + latency in reserved:
                                        cand += 1
                            if nxt < 0 or cand < nxt:
                                nxt = cand
                            continue
                        complete = cycle + latency
                        if dest >= 0:
                            if xb:
                                chosen = -1
                                for bus_index in range(nb):
                                    if complete not in buses_k[bus_index]:
                                        chosen = bus_index
                                        break
                                if chosen < 0:
                                    cand = cycle + 1
                                    while all(
                                        cand + latency in bus
                                        for bus in buses_k
                                    ):
                                        cand += 1
                                    if nxt < 0 or cand < nxt:
                                        nxt = cand
                                    continue
                                reserved = buses_k[chosen]
                            else:
                                reserved = busmap[slot]
                                if complete in reserved:
                                    cand = cycle + 1
                                    while cand + latency in reserved:
                                        cand += 1
                                    if nxt < 0 or cand < nxt:
                                        nxt = cand
                                    continue
                            regs[dest] = complete
                            reserved.add(complete)
                        # Issue slot at `cycle`.
                        unissued &= ~bit
                        progressed = True
                        fuf[unit] = cycle + 1
                        if complete > last_event:
                            last_event = complete
                        if track:
                            issue_k[pos + slot] = cycle
                            complete_k[pos + slot] = complete
                        if not unissued:
                            break
                    if telemetry:
                        # Scan passes visit strictly increasing cycles,
                        # so the issues of one pass are one cycle's
                        # issue width (issued bits = before ^ unissued,
                        # since unissued only ever loses bits).
                        issued = (before ^ unissued).bit_count()
                        if issued:
                            t_width[issued] += 1
                    if unissued:
                        if progressed:
                            cycle += 1
                        else:
                            cycle = nxt if nxt > cycle else cycle + 1
                # Next buffer starts the cycle after the last issue.
                cycle += 1
                continue

            # General drain: branches gate later slots until resolved.
            unissued = full_mask
            branch_resolve = [_UNKNOWN] * len(payload)
            barrier = 0
            guard = 0
            while unissued:
                guard += 1
                if guard > _MAX_BUFFER_CYCLES:  # pragma: no cover
                    raise RuntimeError(
                        f"buffer failed to drain at trace pos {pos}"
                    )
                progressed = False
                nxt = -1
                before = unissued
                for slot, (
                    bit, dep, bb, brs, unit, dest, srcs, isbr
                ) in enumerate(payload):
                    if not unissued & bit:
                        continue
                    # Gated by an earlier *unissued* slot (branch or
                    # hazard): that slot's own candidate bounds this
                    # one, so it contributes nothing to the jump.
                    if (dep | bb) & unissued:
                        continue
                    # Control: every earlier branch (all issued now)
                    # must also have resolved.
                    control_floor = 0
                    if bb:
                        for b in brs:
                            resolve = branch_resolve[b]
                            if resolve > control_floor:
                                control_floor = resolve
                    earliest = cycle
                    for src in srcs:
                        ready = regs[src]
                        if ready > earliest:
                            earliest = ready
                    if dest >= 0:
                        ready = regs[dest]
                        if ready > earliest:
                            earliest = ready
                    ready = fuf[unit]
                    if ready > earliest:
                        earliest = ready
                    latency = latencies[unit]
                    if earliest > cycle or control_floor > cycle:
                        cand = cycle + 1
                        if control_floor > cand:
                            cand = control_floor
                        if earliest > cand:
                            cand = earliest
                        if dest >= 0:
                            if xb:
                                while all(
                                    cand + latency in bus
                                    for bus in buses_k
                                ):
                                    cand += 1
                            else:
                                reserved = busmap[slot]
                                while cand + latency in reserved:
                                    cand += 1
                        if nxt < 0 or cand < nxt:
                            nxt = cand
                        continue
                    complete = cycle + latency
                    if dest >= 0:
                        if xb:
                            chosen = -1
                            for bus_index in range(nb):
                                if complete not in buses_k[bus_index]:
                                    chosen = bus_index
                                    break
                            if chosen < 0:
                                cand = cycle + 1
                                while all(
                                    cand + latency in bus
                                    for bus in buses_k
                                ):
                                    cand += 1
                                if nxt < 0 or cand < nxt:
                                    nxt = cand
                                continue
                            reserved = buses_k[chosen]
                        else:
                            reserved = busmap[slot]
                            if complete in reserved:
                                cand = cycle + 1
                                while cand + latency in reserved:
                                    cand += 1
                                if nxt < 0 or cand < nxt:
                                    nxt = cand
                                continue
                        regs[dest] = complete
                        reserved.add(complete)
                    # Issue slot at `cycle`.
                    unissued &= ~bit
                    progressed = True
                    fuf[unit] = cycle + 1
                    if isbr:
                        resolve = cycle + brlat
                        branch_resolve[slot] = resolve
                        if resolve > last_event:
                            last_event = resolve
                        if resolve > barrier:
                            barrier = resolve
                        if track:
                            issue_k[pos + slot] = cycle
                            complete_k[pos + slot] = resolve
                    else:
                        if complete > last_event:
                            last_event = complete
                        if track:
                            issue_k[pos + slot] = cycle
                            complete_k[pos + slot] = complete
                    if not unissued:
                        break
                if telemetry:
                    issued = (before ^ unissued).bit_count()
                    if issued:
                        t_width[issued] += 1
                if unissued:
                    if progressed:
                        cycle += 1
                    else:
                        cycle = nxt if nxt > cycle else cycle + 1
            # The next buffer is available the cycle after the last
            # issue, but never before every branch in this buffer has
            # resolved.
            cycle = cycle + 1 if cycle + 1 > barrier else barrier

        last_events[k] = last_event
        if telemetry:
            t_width[1] += t_singles
            t_details[k] = SimTelemetry(
                instructions=compiled.n,
                cycles=max(last_event, 1),
                stall_cycles={},
                fu_busy_cycles=_closed_busy(compiled, latencies, brlat),
                issue_width={w: c for w, c in enumerate(t_width) if c},
                occupancy=t_occ,
                flushes=t_flushes,
                flush_cycles=t_flush_cycles,
            ).to_detail()

    results = []
    for k, item in enumerate(group):
        if tracking[k]:
            item.record.extend(zip(issue_at[k], complete_at[k]))
        results.append(
            _result(compiled, item.simulator, item.config,
                    max(last_events[k], 1), t_details[k])
        )
    return results


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------

class BatchBackend(Backend):
    """Sweep-shaped replay: group by structure key, share the analysis."""

    name = "batch"
    counter_names = ("fast_runs", "sweeps", "fallback_runs")

    def simulate(self, simulator, trace, config, record=None):
        """A single replay has no sweep to amortise over; serve it with
        the per-spec loop (attributed to the ``python`` backend)."""
        return get_backend("python").simulate(simulator, trace, config, record)

    def simulate_sweep(self, trace: Trace, items) -> List[SimulationResult]:
        compiled = compile_trace(trace)
        if compiled.has_vector:
            # Mirror per-item dispatch: the first non-scoreboard machine
            # in item order raises the reference loops' scalar-only error.
            for item in items:
                if family_of(item.simulator) != "scoreboard":
                    _scalar_only(item.simulator)
        count_run("batch", "sweeps")

        groups: Dict[Tuple, List[int]] = {}
        for i, item in enumerate(items):
            family = family_of(item.simulator)
            if family not in _BATCHED_FAMILIES:
                key: Tuple = ("fallback",)
            elif family == "inorder":
                key = ("inorder", item.simulator.issue_units)
            elif family == "ooo":
                key = (
                    "ooo",
                    item.simulator.issue_units,
                    item.simulator.enforce_war,
                )
            else:
                key = (family,)
            groups.setdefault(key, []).append(i)

        results: List[SimulationResult] = [None] * len(items)  # type: ignore
        for key, indices in groups.items():
            group = [items[i] for i in indices]
            family = key[0]
            if family == "fallback":
                python = get_backend("python")
                count_run("batch", "fallback_runs", len(group))
                batch = python.simulate_sweep(trace, group)
            else:
                count_run("batch", "fast_runs", len(group))
                if family == "scoreboard":
                    batch = _sweep_scoreboard(compiled, group)
                elif family == "cdc6600":
                    batch = _sweep_cdc6600(compiled, group)
                elif family == "inorder":
                    batch = _sweep_inorder(compiled, key[1], group)
                else:
                    batch = _sweep_ooo(compiled, key[1], key[2], group)
            for i, result in zip(indices, batch):
                results[i] = result
        return results


register_backend(BatchBackend())
