"""The fast-path backend registry: gating, selection and statistics.

A *backend* is one strategy for replaying a :class:`CompiledTrace`
through machine timing models.  Two ship with the package (registered on
import by their modules, the same shape as :mod:`repro.core.registry`
for machines):

``python``
    The original per-spec compiled loops
    (:mod:`repro.core.fastpath.python_backend`): one machine, one
    config, one replay.  This is what ``simulate()`` dispatches to.

``batch``
    Structure-of-arrays sweep evaluation
    (:mod:`repro.core.fastpath.batch`): one compiled trace replayed
    through *many* (machine, config) pairs in one pass, amortising the
    decode, buffer decomposition and hazard analysis across the sweep.

Gating is uniform across backends and decided here, once, per
(simulator, call):

* ``REPRO_FASTPATH=0`` / :func:`set_enabled` disables every backend --
  ineligible work runs the reference loops via ``simulator.simulate``;
* an installed ``on_event`` hook (:func:`repro.obs.events.hook_installed`)
  forces the reference loop, which is the only event-emitting path;
* machines without a compiled loop (and RUU machines with a branch
  predictor) always take their own ``simulate`` path.

:func:`stats` merges the compile-cache counters from
:mod:`repro.core.fastpath.ir` with per-backend run counters
(``python.fast_runs``, ``batch.fast_runs``, ``batch.sweeps``, ...), so
manifests and ``repro stats`` can attribute every fast run to the
backend that served it; the flat ``fast_runs`` key remains the total
across backends.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..config import MachineConfig
from ..result import SimulationResult
from . import ir

__all__ = [
    "Backend",
    "SweepItem",
    "enabled",
    "fast_eligible",
    "get_backend",
    "list_backends",
    "register_backend",
    "reset_stats",
    "resolve_backend",
    "set_enabled",
    "stats",
]

_ENABLED = os.environ.get("REPRO_FASTPATH", "1") != "0"


def enabled() -> bool:
    """Is fast-path auto-selection on? (``REPRO_FASTPATH=0`` disables.)"""
    return _ENABLED


def set_enabled(value: bool) -> bool:
    """Toggle fast-path auto-selection; returns the previous setting.

    Applies to every backend: with the fast path disabled, machines and
    sweeps run the reference loops regardless of the backend requested.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(value)
    return previous


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

@dataclass
class SweepItem:
    """One member of a sweep: a machine, a config, and optionally a
    schedule list that receives per-instruction ``(issue, complete)``
    pairs (only honoured on the fast path; gated fallbacks run the
    reference loop, which reports through events instead)."""

    simulator: Any
    config: MachineConfig
    record: Optional[ir.Schedule] = None


class Backend:
    """One replay strategy over the compiled IR.

    Subclasses implement :meth:`simulate` (one machine, one config) and
    :meth:`simulate_sweep` (one trace, many machine/config pairs) and
    register an instance with :func:`register_backend`.  Both entry
    points assume the caller already passed the gating checks
    (:func:`fast_eligible`); ineligible work never reaches a backend.
    """

    name: str = ""
    #: Counters this backend reports; seeded to zero at registration so
    #: ``stats()`` exposes a stable key set (the engine diffs snapshots).
    counter_names: Tuple[str, ...] = ("fast_runs",)

    def simulate(
        self, simulator, trace, config, record=None
    ) -> SimulationResult:
        raise NotImplementedError

    def simulate_sweep(self, trace, items) -> List[SimulationResult]:
        raise NotImplementedError


_BACKENDS: Dict[str, Backend] = {}
_RUN_STATS: Dict[str, Dict[str, int]] = {}


def register_backend(backend: Backend) -> Backend:
    """Add *backend* to the registry (last registration wins per name)."""
    if not backend.name:
        raise ValueError("backend must carry a non-empty name")
    _BACKENDS[backend.name] = backend
    counters = _RUN_STATS.setdefault(backend.name, {})
    for key in backend.counter_names:
        counters.setdefault(key, 0)
    return backend


def get_backend(name: str) -> Backend:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown fastpath backend {name!r}; "
            f"registered: {', '.join(sorted(_BACKENDS))}"
        ) from None


def list_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def resolve_backend(name: str) -> Backend:
    """Resolve a backend request, mapping ``"auto"`` to the batch backend
    (the sweep-shaped entry points are the only callers that resolve)."""
    return get_backend("batch" if name == "auto" else name)


def count_run(backend: str, key: str, n: int = 1) -> None:
    """Bump a per-backend run counter (backends call this)."""
    counters = _RUN_STATS.setdefault(backend, {})
    counters[key] = counters.get(key, 0) + n


def stats() -> Dict[str, int]:
    """Compile-cache and per-backend dispatch counters, flattened.

    ``compiles`` / ``cache_hits`` / ``cache_misses`` / ``evictions``
    describe the per-trace compile cache (every miss compiles, so
    ``cache_misses == compiles`` unless the counters were reset between
    the two events; ``evictions`` counts entries dropped by the weak
    reference when their trace was garbage-collected).  ``fast_runs``
    totals fast replays across backends; ``<backend>.<counter>`` keys
    (``python.fast_runs``, ``batch.fast_runs``, ``batch.sweeps``,
    ``batch.fallback_runs``) attribute them to the backend that served
    them.
    """
    merged: Dict[str, int] = dict(ir._STATS)
    merged["fast_runs"] = 0
    for name in sorted(_RUN_STATS):
        for key, value in sorted(_RUN_STATS[name].items()):
            merged[f"{name}.{key}"] = value
            if key == "fast_runs":
                merged["fast_runs"] += value
    return merged


def reset_stats() -> None:
    """Zero every counter (tests and benchmarks use this)."""
    ir.reset_compile_stats()
    for counters in _RUN_STATS.values():
        for key in counters:
            counters[key] = 0


# ----------------------------------------------------------------------
# Gating
# ----------------------------------------------------------------------

_FAMILY_CLASSES: Optional[Tuple[Tuple[type, str], ...]] = None


def _family_classes() -> Tuple[Tuple[type, str], ...]:
    # Deferred: the machine modules import this package at module level.
    global _FAMILY_CLASSES
    if _FAMILY_CLASSES is None:
        from ..cdc6600 import CDC6600Machine
        from ..inorder_multi import InOrderMultiIssueMachine
        from ..ooo_multi import OutOfOrderMultiIssueMachine
        from ..ruu import RUUMachine
        from ..scoreboard import ScoreboardMachine
        from ..spec import SpecMachine
        from ..tomasulo import TomasuloMachine

        _FAMILY_CLASSES = (
            (ScoreboardMachine, "scoreboard"),
            (InOrderMultiIssueMachine, "inorder"),
            (OutOfOrderMultiIssueMachine, "ooo"),
            (RUUMachine, "ruu"),
            (SpecMachine, "spec"),
            (TomasuloMachine, "tomasulo"),
            (CDC6600Machine, "cdc6600"),
        )
    return _FAMILY_CLASSES


def family_of(simulator) -> Optional[str]:
    """The compiled-loop family of *simulator*, or ``None`` if it has no
    fast path (memory-system wrappers, the simple machine, ...)."""
    for cls, family in _family_classes():
        if isinstance(simulator, cls):
            return family
    return None


def fast_eligible(simulator) -> bool:
    """May *simulator* be served by a fast-path backend right now?

    The single gating rule every backend shares: the fast path must be
    enabled, the machine must have a compiled loop, no ``on_event`` hook
    may be installed (hooks only fire from the reference loops), and a
    RUU machine must not carry a branch predictor (the compiled loop
    models only the default resolve-at-issue policy).  The speculative
    family is exempt from the predictor rule: its compiled loop replays
    the machine's deterministic predictor itself.
    """
    if not _ENABLED:
        return False
    from ...obs.events import hook_installed

    if hook_installed(simulator):
        return False
    family = family_of(simulator)
    if family is None:
        return False
    if family == "ruu" and simulator.predictor_factory is not None:
        return False
    return True
