"""Fast replay: compiled trace IR + pluggable evaluation backends.

The package splits the fast path into three layers:

* :mod:`~repro.core.fastpath.ir` -- :func:`compile_trace` lowers a
  :class:`~repro.trace.Trace` once into flat parallel tuples of small
  integers (functional-unit index, register ids, branch/vector/bus
  flags), cached per trace object.  Machine- and config-independent:
  one compilation serves every machine variant and every backend.
* :mod:`~repro.core.fastpath.backends` -- the backend registry
  (parallel to :mod:`repro.core.registry` for machines), the uniform
  gating rules (``REPRO_FASTPATH`` / :func:`set_enabled`, installed
  ``on_event`` hooks force the reference loop), and the per-backend
  statistics behind :func:`stats`.
* the backends themselves -- ``python``
  (:mod:`~repro.core.fastpath.python_backend`): the per-spec compiled
  loops machines dispatch to; ``batch``
  (:mod:`~repro.core.fastpath.batch`): structure-of-arrays sweep
  evaluation that replays one compiled trace through many
  (machine, config) pairs in a single pass.

:func:`simulate_sweep` is the sweep entry point: it applies the gating
per item (ineligible members run their machine's own ``simulate``,
i.e. the reference loop), compiles the trace once, and hands the
eligible members to the requested backend (``auto`` resolves to
``batch``).  The experiment engine (:mod:`repro.harness.engine`) and
the differential oracle (:mod:`repro.verify.oracle`) route sweep-shaped
work through here; :func:`repro.api.run_sweep` exposes it publicly.

Bit-identity with ``reference_simulate`` is a hard invariant for every
backend, enforced by the differential suites
(``tests/test_fastpath_diff.py``, ``tests/test_fastpath_batch.py``),
the oracle's ``fastpath-dual`` check on every ``repro verify`` replay,
and the golden tables (which run with the fast path both on and off).

The module-level ``simulate_*_fast`` functions are re-exported for the
machines' dispatch gates; importing them directly elsewhere is
deprecated -- go through :func:`simulate_sweep` or the backend registry
instead (see ``docs/performance.md``).
"""

from __future__ import annotations

from typing import List, Sequence, Union

from ...trace import Trace
from ..result import SimulationResult
from . import backends
from .backends import (
    Backend,
    SweepItem,
    enabled,
    fast_eligible,
    family_of,
    get_backend,
    list_backends,
    register_backend,
    reset_stats,
    resolve_backend,
    set_enabled,
    stats,
)
from .ir import (
    _A0,
    _BRANCH,
    _CACHE,
    _FILE_OFFSETS,
    _MAX_CYCLES,
    _MEMORY,
    _UNIT_INDEX,
    _UNKNOWN,
    N_REGISTERS,
    UNITS,
    CompiledTrace,
    Op,
    Schedule,
    _unit_tables,
    compile_trace,
)
from .python_backend import (
    PythonBackend,
    simulate_cdc6600_fast,
    simulate_inorder_fast,
    simulate_ooo_fast,
    simulate_ruu_fast,
    simulate_scoreboard_fast,
    simulate_spec_fast,
    simulate_tomasulo_fast,
)
from .batch import BatchBackend

__all__ = [
    "Backend",
    "BatchBackend",
    "CompiledTrace",
    "N_REGISTERS",
    "PythonBackend",
    "SweepItem",
    "UNITS",
    "compile_trace",
    "enabled",
    "fast_eligible",
    "get_backend",
    "list_backends",
    "register_backend",
    "reset_stats",
    "resolve_backend",
    "set_enabled",
    "simulate_cdc6600_fast",
    "simulate_inorder_fast",
    "simulate_ooo_fast",
    "simulate_ruu_fast",
    "simulate_scoreboard_fast",
    "simulate_spec_fast",
    "simulate_sweep",
    "simulate_tomasulo_fast",
    "stats",
]


def simulate_sweep(
    trace: Trace,
    items: Sequence[Union[SweepItem, tuple]],
    backend: str = "auto",
) -> List[SimulationResult]:
    """Replay *trace* through every (simulator, config) sweep member.

    Items are :class:`SweepItem` instances or ``(simulator, config)`` /
    ``(simulator, config, record)`` tuples; results come back in item
    order.  Gating is per item and identical to the machines' own
    dispatch: a member whose simulator has no compiled loop, carries an
    ``on_event`` hook, or runs with the fast path disabled
    (``REPRO_FASTPATH=0`` / :func:`set_enabled`) is served by its own
    ``simulate`` -- the reference path -- while the rest share one
    compiled trace through the requested backend (``"auto"`` resolves
    to ``batch``; ``"python"`` forces per-spec fast loops).
    """
    resolved = [
        item if isinstance(item, SweepItem) else SweepItem(*item)
        for item in items
    ]
    chosen = resolve_backend(backend)
    results: List[SimulationResult] = [None] * len(resolved)  # type: ignore
    fast_indices: List[int] = []
    for index, item in enumerate(resolved):
        if fast_eligible(item.simulator):
            fast_indices.append(index)
        else:
            results[index] = item.simulator.simulate(trace, item.config)
    if fast_indices:
        # One lowering for the whole sweep; the local reference pins the
        # compile-cache entry until every member has replayed.
        compiled = compile_trace(trace)  # noqa: F841 -- keepalive
        subset = [resolved[index] for index in fast_indices]
        for index, result in zip(
            fast_indices, chosen.simulate_sweep(trace, subset)
        ):
            results[index] = result
    return results
