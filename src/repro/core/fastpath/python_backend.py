"""The ``python`` backend: the original per-spec compiled loops.

One compiled fast loop per machine family, each a bit-identical twin of
that family's ``reference_simulate``: state held in flat integer arrays
(one ``int`` slot per architectural register and per functional unit)
instead of hash tables, per-unit latency/pipelining tables built once
per call, and a min-heap of outstanding completion events so stale
result-bus reservations are pruned as the issue front passes them
(state stays O(outstanding writes), not O(trace length)).

Like the reference loops, the fast loops never scan idle cycles: both
jump straight from one issue decision to the next, so the only scans
left are the short result-bus conflict probes, which the heap keeps
bounded.

Bit-identity is a hard invariant, enforced three ways:

* machines auto-select this path **only** when no ``on_event`` hook is
  installed (:func:`repro.obs.events.hook_installed` is the single
  presence test) and fall back to the reference loop otherwise;
* ``tests/test_fastpath_diff.py`` replays hundreds of fuzzed traces
  through both paths and compares cycle counts, issue rates and
  per-instruction issue/completion schedules;
* the cross-machine oracle (:mod:`repro.verify.oracle`) checks the
  fast path against ``reference_simulate`` as an exact dual on every
  ``repro verify`` replay, including the nightly 1000-seed shards.

The module-level ``simulate_*_fast`` functions remain the machines\'
dispatch targets; :class:`PythonBackend` wraps them behind the backend
interface (:mod:`repro.core.fastpath.backends`) so sweep-shaped callers
can select per-spec replay explicitly (``backend="python"``).

Telemetry: when :func:`repro.obs.telemetry.collecting` is on (the
default), every loop additionally fills a closed-form
:class:`~repro.obs.telemetry.SimTelemetry` record -- stall cycles by
reason, per-unit busy cycles, issue-width and occupancy histograms,
flush counts -- attached to ``SimulationResult.detail`` as ``tlm.*``
entries.  The record is O(instructions) integer bookkeeping on the
loops' existing state (no event objects, timing untouched) and is
differentially tested against the event-derived record from the
reference loops (``tests/test_obs_telemetry.py``, the oracle's
telemetry check).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ...obs.telemetry import SimTelemetry
from ...obs.telemetry import collecting as telemetry_collecting
from ...trace import Trace
from ..buses import BusKind
from ..config import MachineConfig
from ..result import SimulationResult
from .backends import Backend, count_run, family_of, register_backend
from .ir import (
    N_REGISTERS,
    Schedule,
    UNITS,
    _A0,
    _MAX_CYCLES,
    _MEMORY,
    _UNKNOWN,
    _unit_tables,
    compile_trace,
    unit_profile,
    window_stats,
)

__all__ = [
    "PythonBackend",
    "simulate_cdc6600_fast",
    "simulate_inorder_fast",
    "simulate_ooo_fast",
    "simulate_ruu_fast",
    "simulate_scoreboard_fast",
    "simulate_spec_fast",
    "simulate_tomasulo_fast",
]

#: Functional-unit display names indexed like :data:`UNITS`.
_UNIT_NAMES = tuple(unit.name for unit in UNITS)


def _closed_busy(compiled, latencies, branch_latency) -> Dict[str, int]:
    """Per-unit busy cycles for machines whose per-op busy span is
    closed-form: ``latency (+ vector length)`` per non-branch op and the
    branch latency per branch (the ISSUE..COMPLETE window the reference
    event streams report)."""
    counts, vl_sums, branches = unit_profile(compiled)
    busy: Dict[str, int] = {}
    for unit in range(len(_UNIT_NAMES)):
        total = (
            counts[unit] * latencies[unit]
            + vl_sums[unit]
            + branches[unit] * branch_latency
        )
        if total:
            busy[_UNIT_NAMES[unit]] = total
    return busy


# ----------------------------------------------------------------------
# Scoreboard family (Section 3.2): single issue, issue-blocking
# ----------------------------------------------------------------------

def simulate_scoreboard_fast(
    machine,
    trace: Trace,
    config: MachineConfig,
    record: Optional[Schedule] = None,
) -> SimulationResult:
    """Fast twin of :meth:`ScoreboardMachine.reference_simulate`.

    Bit-identical by construction: same recurrence, same tie-breaks,
    state held in integer arrays instead of ``Register``/unit-keyed
    dictionaries.  *record*, when given, receives one ``(issue,
    complete)`` pair per instruction -- the same cycles the reference
    path's event stream reports (differential tests compare them).
    """
    compiled = compile_trace(trace)
    count_run("python", "fast_runs")
    latencies, pipelined = _unit_tables(
        config, machine.fu_pipelined, machine.memory_interleaved
    )
    branch_latency = config.branch_latency
    model_bus = machine.model_result_bus
    chaining = machine.vector_chaining

    reg_ready = [0] * N_REGISTERS
    write_done = [0] * N_REGISTERS
    fu_free = [0] * len(UNITS)
    # Result-bus reservations: membership set plus a completion-event
    # min-heap.  The issue front (`next_issue`) only ever probes cycles
    # >= next_issue + 1, so reservations at or before it are dead and
    # are pruned as the heap root passes behind the front.
    bus_reserved = set()
    bus_heap: List[int] = []
    next_issue = 0
    last_event = 0
    tracking = record is not None
    telemetry = telemetry_collecting()

    # Two copies of the same recurrence: the plain loop (telemetry off)
    # stays byte-identical to the pre-telemetry implementation, and the
    # telemetry variant fuses stall attribution into the existing
    # comparisons (one integer store per strict improvement) instead of
    # re-deriving the chain -- the differential suite pins the two to
    # identical issue/complete times.
    if not telemetry:
        for unit, dest, srcs, is_branch, _tk, is_vector, vl, uses_bus, _c in (
            compiled.ops
        ):
            latency = latencies[unit]

            earliest = next_issue
            for src in srcs:
                ready = reg_ready[src]
                if ready > earliest:
                    earliest = ready
            if dest >= 0:
                ready = write_done[dest]
                if ready > earliest:
                    earliest = ready
            ready = fu_free[unit]
            if ready > earliest:
                earliest = ready
            if model_bus and uses_bus:
                while bus_heap and bus_heap[0] <= next_issue:
                    bus_reserved.discard(heappop(bus_heap))
                while earliest + latency in bus_reserved:
                    earliest += 1

            issue = earliest

            complete = issue + latency + vl
            if model_bus and uses_bus:
                bus_reserved.add(complete)
                heappush(bus_heap, complete)

            if is_vector:
                fu_free[unit] = issue + vl if pipelined[unit] else complete
            else:
                fu_free[unit] = issue + 1 if pipelined[unit] else complete

            if dest >= 0:
                if is_vector and chaining:
                    reg_ready[dest] = issue + latency
                else:
                    reg_ready[dest] = complete
                write_done[dest] = complete

            if is_branch:
                next_issue = issue + branch_latency
                complete = next_issue
            else:
                next_issue = issue + 1

            if complete > last_event:
                last_event = complete
            if tracking:
                record.append((issue, complete))
    else:
        # Same recurrence with the binding constraint labelled by the
        # very comparisons that compute it: RAW -> WAW -> UNIT -> BUS,
        # each relabelling only on a strict improvement -- exactly the
        # reference tracking chain's attribution order.  All remaining
        # attribution work is confined to instructions that actually
        # stalled (``issue > next_issue``).  The branch shadow (the
        # ``branch_latency - 1`` slots behind every branch) is credited
        # to BRANCH when the branch issues; when the next instruction
        # stalls past the shadow the reference charges the *whole* gap
        # to the binding constraint, so the pre-credit is taken back on
        # that path (and after the loop for a trace ending in a branch,
        # whose shadow no instruction ever pays).
        t_acc = [0, 0, 0, 0, 0, 0]  # NONE, RAW, WAW, UNIT, BUS, BRANCH
        t_prev = -1
        t_shadow_credit = branch_latency - 1
        reason = 0
        for unit, dest, srcs, is_branch, _tk, is_vector, vl, uses_bus, _c in (
            compiled.ops
        ):
            latency = latencies[unit]

            earliest = next_issue
            for src in srcs:
                ready = reg_ready[src]
                if ready > earliest:
                    earliest = ready
                    reason = 1
            if dest >= 0:
                ready = write_done[dest]
                if ready > earliest:
                    earliest = ready
                    reason = 2
            ready = fu_free[unit]
            if ready > earliest:
                earliest = ready
                reason = 3
            if model_bus and uses_bus:
                while bus_heap and bus_heap[0] <= next_issue:
                    bus_reserved.discard(heappop(bus_heap))
                while earliest + latency in bus_reserved:
                    earliest += 1
                    reason = 4

            issue = earliest
            if issue > next_issue:
                # A strict improvement set `reason` this iteration; the
                # gap runs from the previous issue slot and is charged
                # whole, shadow cycles included.
                gap = issue - t_prev - 1
                t_acc[reason] += gap
                shadow = gap - issue + next_issue
                if shadow:
                    t_acc[5] -= shadow
            t_prev = issue

            complete = issue + latency + vl
            if model_bus and uses_bus:
                bus_reserved.add(complete)
                heappush(bus_heap, complete)

            if is_vector:
                fu_free[unit] = issue + vl if pipelined[unit] else complete
            else:
                fu_free[unit] = issue + 1 if pipelined[unit] else complete

            if dest >= 0:
                if is_vector and chaining:
                    reg_ready[dest] = issue + latency
                else:
                    reg_ready[dest] = complete
                write_done[dest] = complete

            if is_branch:
                next_issue = issue + branch_latency
                complete = next_issue
                t_acc[5] += t_shadow_credit
            else:
                next_issue = issue + 1

            if complete > last_event:
                last_event = complete
            if tracking:
                record.append((issue, complete))
        if compiled.n and compiled.ops[-1][3]:
            t_acc[5] -= t_shadow_credit

    detail: Dict[str, float] = {}
    if telemetry:
        detail = SimTelemetry(
            instructions=compiled.n,
            cycles=last_event,
            stall_cycles={
                "RAW": t_acc[1],
                "WAW": t_acc[2],
                "UNIT": t_acc[3],
                "BUS": t_acc[4],
                "BRANCH": t_acc[5],
            },
            fu_busy_cycles=_closed_busy(compiled, latencies, branch_latency),
            issue_width={1: compiled.n},
        ).to_detail()
    return SimulationResult(
        trace_name=compiled.name,
        simulator=machine.name,
        config=config,
        instructions=compiled.n,
        cycles=last_event,
        detail=detail,
    )


# ----------------------------------------------------------------------
# In-order multiple issue (Section 5.1)
# ----------------------------------------------------------------------

def simulate_inorder_fast(
    machine,
    trace: Trace,
    config: MachineConfig,
    record: Optional[Schedule] = None,
) -> SimulationResult:
    """Fast twin of the in-order multi-issue reference loop.

    The reference re-examines a blocked slot after bumping the cycle
    floor; because the machine state is untouched between the two
    examinations, the re-scan returns the same cycle, so this loop
    folds both passes into one ``max`` chain plus one bus probe.  The
    buffer cut (up to N slots, ending at the first taken branch) is
    derived from the compiled ``taken`` flags.
    """
    compiled = compile_trace(trace)
    if compiled.has_vector:
        from ..base import scalar_only_error

        raise scalar_only_error(machine.name)
    count_run("python", "fast_runs")
    latencies, _ = _unit_tables(config, True, True)
    branch_latency = config.branch_latency
    units = machine.issue_units
    kind = machine.bus_kind
    n_buses = 1 if kind is BusKind.ONE_BUS else units
    xbar = kind is BusKind.X_BAR

    reg_ready = [0] * N_REGISTERS
    fu_free = [0] * len(UNITS)
    buses: List[set] = [set() for _ in range(n_buses)]
    # Completion-event min-heap over reserved writeback cycles: the
    # cycle floor never decreases, so reservations behind it can be
    # dropped from the per-bus sets (same pruning as the scoreboard).
    bus_heap: List[Tuple[int, int]] = []

    ops = compiled.ops
    n_entries = compiled.n
    pos = 0
    cycle = 0
    last_event = 0
    is_branch = False
    tracking = record is not None
    telemetry = telemetry_collecting()
    if telemetry:
        # Buffer occupancy and flush totals are a pure function of the
        # compiled taken flags and the issue width, pulled from the
        # shared per-trace cache instead of recounted per replay; only
        # the issue-width histogram needs the loop, and runs never
        # exceed the buffer width, so it lives in a flat list.
        t_width = [0] * (units + 1)
        t_run = 0
        t_run_cycle = -1

    while pos < n_entries:
        end = pos + units
        if end > n_entries:
            end = n_entries
        index = pos
        cut = False
        while index < end:
            unit, dest, srcs, is_branch, taken, _v, _vl, _bus, _c = ops[index]
            latency = latencies[unit]

            earliest = cycle
            for src in srcs:
                ready = reg_ready[src]
                if ready > earliest:
                    earliest = ready
            if dest >= 0:
                ready = reg_ready[dest]
                if ready > earliest:
                    earliest = ready
            ready = fu_free[unit]
            if ready > earliest:
                earliest = ready

            if dest >= 0:
                while bus_heap and bus_heap[0][0] <= cycle:
                    done, bus_index = heappop(bus_heap)
                    buses[bus_index].discard(done)
                target = earliest + latency
                if xbar:
                    while True:
                        chosen = -1
                        for bus_index, reserved in enumerate(buses):
                            if target not in reserved:
                                chosen = bus_index
                                break
                        if chosen >= 0:
                            break
                        earliest += 1
                        target += 1
                else:
                    chosen = (index - pos) % n_buses
                    reserved = buses[chosen]
                    while target in reserved:
                        earliest += 1
                        target += 1
                buses[chosen].add(target)
                heappush(bus_heap, (target, chosen))

            cycle = earliest
            complete = cycle + latency
            fu_free[unit] = cycle + 1
            if dest >= 0:
                reg_ready[dest] = complete
            if not is_branch and complete > last_event:
                last_event = complete
            if tracking:
                record.append((
                    cycle,
                    cycle + branch_latency if is_branch else complete,
                ))
            if telemetry:
                # Issue cycles are globally nondecreasing (the cycle
                # floor never goes back, and every buffer transition
                # strictly advances it), so the per-cycle issue width is
                # a single run-length count over them.
                if cycle == t_run_cycle:
                    t_run += 1
                else:
                    if t_run:
                        t_width[t_run] += 1
                    t_run_cycle = cycle
                    t_run = 1
            index += 1

            if is_branch:
                resolve = cycle + branch_latency
                if resolve > last_event:
                    last_event = resolve
                cycle = resolve
                if taken:
                    cut = True
                    break

        pos = index
        if not cut and not is_branch:
            # Full buffer issued, straight-line tail: the refill is
            # overlapped, examinable the cycle after the last issue.
            cycle += 1

    detail: Dict[str, float] = {}
    if telemetry:
        if t_run:
            t_width[t_run] += 1
        occupancy, flushes, flush_cycles = window_stats(compiled, units)
        detail = SimTelemetry(
            instructions=n_entries,
            cycles=max(last_event, 1),
            fu_busy_cycles=_closed_busy(compiled, latencies, branch_latency),
            issue_width={w: c for w, c in enumerate(t_width) if c},
            occupancy=occupancy,
            flushes=flushes,
            flush_cycles=flush_cycles,
        ).to_detail()
    return SimulationResult(
        trace_name=compiled.name,
        simulator=machine.name,
        config=config,
        instructions=n_entries,
        cycles=max(last_event, 1),
        detail=detail,
    )


# ----------------------------------------------------------------------
# CDC 6600-style scoreboard (Section 3.3): RAW waits at the units
# ----------------------------------------------------------------------

def simulate_cdc6600_fast(
    machine,
    trace: Trace,
    config: MachineConfig,
    record: Optional[Schedule] = None,
) -> SimulationResult:
    """Fast twin of :meth:`CDC6600Machine.reference_simulate`.

    Single in-order issue with one ready cycle per register and per
    functional unit; the loop is a direct integer transcription of the
    reference recurrence (same max chains, same tie-breaks).
    """
    compiled = compile_trace(trace)
    if compiled.has_vector:
        from ..base import scalar_only_error

        raise scalar_only_error(machine.name)
    count_run("python", "fast_runs")
    table = config.latencies
    latencies = [table.latency(unit) for unit in UNITS]
    branch_latency = config.branch_latency
    holds = machine.fu_holds_until_complete

    reg_ready = [0] * N_REGISTERS
    fu_free = [0] * len(UNITS)
    next_issue = 0
    last_event = 0
    tracking = record is not None
    telemetry = telemetry_collecting()

    # Two copies of the same recurrence (see the scoreboard loop).  Busy
    # spans are mostly closed-form even here: a non-branch op occupies
    # its unit for ``latency`` cycles plus however long RAW delivery
    # delays execution start (``start - issue``), and a branch for the
    # branch latency exactly -- so the telemetry copy only accumulates
    # the start-delay excess and adds the closed form at the end.
    if not telemetry:
        for unit, dest, srcs, is_branch, _t, _v, _vl, _bus, _c in (
            compiled.ops
        ):
            latency = latencies[unit]

            # Issue conditions: in-order slot, unit free, no WAW; a
            # branch additionally reads its sources before resolving.
            earliest = next_issue
            ready = fu_free[unit]
            if ready > earliest:
                earliest = ready
            if dest >= 0:
                waw = reg_ready[dest]
                if waw > earliest:
                    earliest = waw
            if is_branch:
                for src in srcs:
                    ready = reg_ready[src]
                    if ready > earliest:
                        earliest = ready

            issue = earliest

            # Execution begins once the operands arrive at the unit.
            start = issue
            for src in srcs:
                ready = reg_ready[src]
                if ready > start:
                    start = ready
            complete = start + latency

            if is_branch:
                next_issue = issue + branch_latency
                complete = next_issue
                fu_free[unit] = issue + 1
            else:
                next_issue = issue + 1
                if unit == _MEMORY:
                    fu_free[unit] = start + 1
                else:
                    fu_free[unit] = complete if holds else start + 1
                if dest >= 0:
                    reg_ready[dest] = complete

            if complete > last_event:
                last_event = complete
            if tracking:
                record.append((issue, complete))
    else:
        t_extra = [0] * len(UNITS)
        for unit, dest, srcs, is_branch, _t, _v, _vl, _bus, _c in (
            compiled.ops
        ):
            latency = latencies[unit]

            earliest = next_issue
            ready = fu_free[unit]
            if ready > earliest:
                earliest = ready
            if dest >= 0:
                waw = reg_ready[dest]
                if waw > earliest:
                    earliest = waw
            if is_branch:
                for src in srcs:
                    ready = reg_ready[src]
                    if ready > earliest:
                        earliest = ready

            issue = earliest

            start = issue
            for src in srcs:
                ready = reg_ready[src]
                if ready > start:
                    start = ready
            complete = start + latency
            if start > issue:
                # RAW delivery held the unit past its closed-form span.
                # (Branches never take this path: their issue already
                # waited on every source.)
                t_extra[unit] += start - issue

            if is_branch:
                next_issue = issue + branch_latency
                complete = next_issue
                fu_free[unit] = issue + 1
            else:
                next_issue = issue + 1
                if unit == _MEMORY:
                    fu_free[unit] = start + 1
                else:
                    fu_free[unit] = complete if holds else start + 1
                if dest >= 0:
                    reg_ready[dest] = complete

            if complete > last_event:
                last_event = complete
            if tracking:
                record.append((issue, complete))

    detail: Dict[str, float] = {}
    if telemetry:
        busy = _closed_busy(compiled, latencies, branch_latency)
        for u in range(len(UNITS)):
            if t_extra[u]:
                name = _UNIT_NAMES[u]
                busy[name] = busy.get(name, 0) + t_extra[u]
        detail = SimTelemetry(
            instructions=compiled.n,
            cycles=max(last_event, 1),
            fu_busy_cycles=busy,
            issue_width={1: compiled.n},
        ).to_detail()
    return SimulationResult(
        trace_name=compiled.name,
        simulator=machine.name,
        config=config,
        instructions=compiled.n,
        cycles=max(last_event, 1),
        detail=detail,
    )


# ----------------------------------------------------------------------
# Tomasulo-style reservation stations (Section 3.3)
# ----------------------------------------------------------------------

def simulate_tomasulo_fast(
    machine,
    trace: Trace,
    config: MachineConfig,
    record: Optional[Schedule] = None,
) -> SimulationResult:
    """Fast twin of :meth:`TomasuloMachine.reference_simulate`.

    Stations live in flat per-seq arrays, operand tags are packed
    integers (``instance * N_REGISTERS + register``), and the per-cycle
    outer loop jumps straight to the next cycle anything can happen:
    the wakeup heap's root, the station release that unblocks issue, a
    known branch-operand availability, or branch resolution.  Inside an
    active cycle the start/issue order matches the reference exactly.
    """
    compiled = compile_trace(trace)
    if compiled.has_vector:
        from ..base import scalar_only_error

        raise scalar_only_error(machine.name)
    count_run("python", "fast_runs")
    table = config.latencies
    latencies = [table.latency(unit) for unit in UNITS]
    branch_latency = config.branch_latency
    capacity = machine.stations_per_unit
    cdb_width = machine.cdb_width

    ops = compiled.ops
    n_entries = compiled.n
    n_regs = N_REGISTERS
    n_units = len(UNITS)

    latest_instance = [0] * n_regs
    tag_avail: Dict[int, int] = {}
    waiting_on: Dict[int, List[int]] = {}

    st_unit = [0] * n_entries
    st_latency = [0] * n_entries
    st_dest = [-1] * n_entries
    st_pending = [0] * n_entries
    st_ready = [0] * n_entries

    busy_count = [0] * n_units
    release_heaps: List[List[int]] = [[] for _ in range(n_units)]
    fu_next = [0] * n_units
    ready_heap: List[Tuple[int, int]] = []
    cdb_used: Dict[int, int] = {}

    pos = 0
    issue_resume = 0
    cycle = 0
    in_flight = 0
    last_event = 0
    tracking = record is not None
    if tracking:
        issue_at = [0] * n_entries
        complete_at = [0] * n_entries
    telemetry = telemetry_collecting()
    if telemetry:
        # Stall attribution is per-issue, not per-cycle: between two
        # consecutive issues nothing changes `issue_resume` (only an
        # issuing branch moves it), so the no-issue gap in front of an
        # instruction splits in closed form -- cycles below the resume
        # point stall on the branch, the rest on full stations (or all
        # on the branch itself when the head *is* one, waiting for its
        # operand).  Busy spans accumulate as `release - issue` split
        # into two signed updates, saving the per-seq issue-cycle array.
        t_branch_stalls = 0
        t_full_stalls = 0
        t_busy = [0] * n_units
        t_prev_issue = -1

    while pos < n_entries or in_flight > 0:
        # ---- start ready operations on their (pipelined) units -------
        eligible: List[Tuple[int, int]] = []
        while ready_heap and ready_heap[0][0] <= cycle:
            eligible.append(heappop(ready_heap))
        if len(eligible) > 1:
            eligible.sort(key=lambda item: item[1])  # oldest first
        for ready_cycle, seq in eligible:
            unit = st_unit[seq]
            unit_free = fu_next[unit]
            if unit_free > cycle:
                heappush(
                    ready_heap,
                    (ready_cycle if ready_cycle > unit_free else unit_free,
                     seq),
                )
                continue
            fu_next[unit] = cycle + 1
            finish = cycle + st_latency[seq]
            dest_tag = st_dest[seq]
            if dest_tag >= 0:
                broadcast = finish
                while cdb_used.get(broadcast, 0) >= cdb_width:
                    broadcast += 1
                cdb_used[broadcast] = cdb_used.get(broadcast, 0) + 1
                tag_avail[dest_tag] = broadcast
                for dep in waiting_on.pop(dest_tag, ()):
                    pending = st_pending[dep] - 1
                    st_pending[dep] = pending
                    if broadcast > st_ready[dep]:
                        st_ready[dep] = broadcast
                    if pending == 0:
                        heappush(ready_heap, (st_ready[dep], dep))
                release = broadcast
            else:
                release = finish  # stores need no CDB slot
            heappush(release_heaps[unit], release)
            in_flight -= 1
            if release > last_event:
                last_event = release
            if tracking:
                complete_at[seq] = release
            if telemetry:
                # Station occupied from dispatch to release -- the
                # ISSUE..COMPLETE window the reference events report
                # (the dispatch cycle was subtracted at issue).
                t_busy[unit] += release

        # ---- issue: one instruction per cycle ------------------------
        if pos < n_entries and cycle >= issue_resume:
            op = ops[pos]
            if op[3]:  # branch
                a0_ready = 0
                if op[8]:  # conditional: reads the tested register
                    src = op[2][0]
                    tag = latest_instance[src] * n_regs + src
                    a0_ready = (
                        0 if tag < n_regs else tag_avail.get(tag, _UNKNOWN)
                    )
                if a0_ready != _UNKNOWN and a0_ready <= cycle:
                    resolve = cycle + branch_latency
                    if telemetry:
                        # Every no-issue cycle in front of a branch --
                        # shadow or operand wait -- stalls on the branch.
                        gap = cycle - t_prev_issue - 1
                        if gap > 0:
                            t_branch_stalls += gap
                        t_prev_issue = cycle
                    issue_resume = resolve
                    if resolve > last_event:
                        last_event = resolve
                    if tracking:
                        issue_at[pos] = cycle
                        complete_at[pos] = resolve
                    pos += 1
            else:
                unit = op[0]
                heap_u = release_heaps[unit]
                count = busy_count[unit]
                while heap_u and heap_u[0] <= cycle:
                    heappop(heap_u)
                    count -= 1
                busy_count[unit] = count
                if count < capacity:
                    dest = op[1]
                    srcs = op[2]
                    src_tags = [
                        latest_instance[src] * n_regs + src for src in srcs
                    ]
                    if dest >= 0:
                        instance = latest_instance[dest] + 1
                        latest_instance[dest] = instance
                        st_dest[pos] = instance * n_regs + dest
                    pending = 0
                    ready = cycle + 1  # earliest start: next cycle
                    for tag in src_tags:
                        avail = (
                            0 if tag < n_regs
                            else tag_avail.get(tag, _UNKNOWN)
                        )
                        if avail == _UNKNOWN:
                            pending += 1
                            waiting_on.setdefault(tag, []).append(pos)
                        elif avail > ready:
                            ready = avail
                    st_unit[pos] = unit
                    st_latency[pos] = latencies[unit]
                    st_pending[pos] = pending
                    st_ready[pos] = ready
                    busy_count[unit] = count + 1
                    in_flight += 1
                    if tracking:
                        issue_at[pos] = cycle
                    if telemetry:
                        t_busy[unit] -= cycle
                        gap = cycle - t_prev_issue - 1
                        if gap > 0:
                            blocked = issue_resume - t_prev_issue - 1
                            if blocked > gap:
                                blocked = gap
                            elif blocked < 0:
                                blocked = 0
                            t_branch_stalls += blocked
                            t_full_stalls += gap - blocked
                        t_prev_issue = cycle
                    if pending == 0:
                        heappush(ready_heap, (ready, pos))
                    pos += 1

        # ---- advance: next cycle anything can happen ------------------
        nxt = -1
        if ready_heap:
            c = ready_heap[0][0]
            if c <= cycle:
                c = cycle + 1
            nxt = c
        if pos < n_entries:
            cand = issue_resume if issue_resume > cycle + 1 else cycle + 1
            op = ops[pos]
            if op[3]:
                if op[8]:
                    src = op[2][0]
                    tag = latest_instance[src] * n_regs + src
                    avail = (
                        0 if tag < n_regs else tag_avail.get(tag, _UNKNOWN)
                    )
                    if avail == _UNKNOWN:
                        cand = -1  # producer must dispatch first
                    elif avail > cand:
                        cand = avail
            else:
                unit = op[0]
                heap_u = release_heaps[unit]
                count = busy_count[unit]
                while heap_u and heap_u[0] <= cycle:
                    heappop(heap_u)
                    count -= 1
                busy_count[unit] = count
                if count >= capacity and heap_u and heap_u[0] > cand:
                    cand = heap_u[0]
            if cand >= 0 and (nxt < 0 or cand < nxt):
                nxt = cand
        cycle = nxt if nxt > cycle else cycle + 1
        if cycle > _MAX_CYCLES:  # pragma: no cover - bug trap
            raise RuntimeError("Tomasulo simulation failed to progress")

    if tracking:
        record.extend(zip(issue_at, complete_at))
    detail: Dict[str, float] = {}
    if telemetry:
        detail = SimTelemetry(
            instructions=n_entries,
            cycles=max(last_event, 1),
            stall_cycles={
                "BRANCH": t_branch_stalls,
                "STATIONS_FULL": t_full_stalls,
            },
            fu_busy_cycles={
                _UNIT_NAMES[u]: t_busy[u]
                for u in range(n_units)
                if t_busy[u]
            },
            issue_width={1: n_entries},
        ).to_detail()
    return SimulationResult(
        trace_name=compiled.name,
        simulator=machine.name,
        config=config,
        instructions=n_entries,
        cycles=max(last_event, 1),
        detail=detail,
    )


# ----------------------------------------------------------------------
# RUU dependency resolution (Section 5.3)
# ----------------------------------------------------------------------

def simulate_ruu_fast(
    machine,
    trace: Trace,
    config: MachineConfig,
    record: Optional[Schedule] = None,
) -> SimulationResult:
    """Fast twin of :meth:`RUUMachine.reference_simulate`.

    RUU entries live in flat per-seq arrays with packed integer operand
    tags; the commit / dispatch / issue phase order inside a cycle is the
    reference's, and the outer loop jumps over idle cycles (crediting
    occupancy and stall statistics for the skipped span in closed form,
    so the ``detail`` dict stays bit-identical).  The next interesting
    cycle is the minimum of: the head entry's result return (commit),
    the wakeup heap's root (dispatch), branch resolution, and a known
    branch-operand availability (issue).

    Speculative runs (``predictor_factory``) keep the reference loop --
    prediction state and accuracy stats are not modelled here; the
    machine's dispatch gate never routes them this way.
    """
    compiled = compile_trace(trace)
    if compiled.has_vector:
        from ..base import scalar_only_error

        raise scalar_only_error(machine.name)
    count_run("python", "fast_runs")
    table = config.latencies
    latencies = [table.latency(unit) for unit in UNITS]
    branch_latency = config.branch_latency
    width = machine.path_width
    issue_units = machine.issue_units
    ruu_size = machine.ruu_size
    bypass = machine.bypass
    ordered_memory = machine.ordered_memory
    fu_copies = machine.fu_copies

    ops = compiled.ops
    n_entries = compiled.n
    n_regs = N_REGISTERS
    n_units = len(UNITS)

    latest_instance = [0] * n_regs
    tag_avail: Dict[int, int] = {}
    waiting_on: Dict[int, List[int]] = {}

    ent_unit = [0] * n_entries
    ent_latency = [0] * n_entries
    ent_dest = [-1] * n_entries
    ent_pending = [0] * n_entries
    ent_ready = [0] * n_entries
    ent_result = [_UNKNOWN] * n_entries
    ent_mem = [False] * n_entries

    ring: List[int] = []  # program-ordered live entries (seqs)
    head = 0
    live = 0
    ready_heap: List[Tuple[int, int]] = []
    ret_used: Dict[int, int] = {}  # FU->RUU return-path uses per cycle
    fu_cycle = [_UNKNOWN] * n_units
    fu_used = [0] * n_units

    if ordered_memory:
        memory_seqs = [
            seq for seq, op in enumerate(ops) if op[0] == _MEMORY
        ]
        memory_index = 0

    occupancy_sum = 0
    full_stall_cycles = 0
    branch_stall_cycles = 0

    pos = 0
    issue_resume = 0
    cycle = 0
    last_commit = 0
    tracking = record is not None
    if tracking:
        issue_at = [0] * n_entries
        complete_at = [0] * n_entries
    telemetry = telemetry_collecting()
    if telemetry:
        # Occupancy and issue-width counts share one flat histogram
        # indexed `live * stride + issued` -- a single list update per
        # simulated cycle, decomposed after the loop (both axes are
        # small: occupancy is bounded by the RUU size, per-cycle issues
        # by the issue width).  Busy spans accumulate as
        # `commit - issue` split into two signed updates, saving the
        # per-seq issue-cycle array.
        t_busy = [0] * n_units
        t_stride = issue_units + 1
        t_hist = [0] * ((ruu_size + 1) * t_stride)

    while True:
        if cycle > _MAX_CYCLES:  # pragma: no cover - bug trap
            raise RuntimeError("RUU simulation failed to make progress")

        # ---- commit: retire in order from the head -------------------
        commits = 0
        while live > 0 and commits < width:
            seq = ring[head]
            result = ent_result[seq]
            if result == _UNKNOWN or result > cycle:
                break
            head += 1
            live -= 1
            commits += 1
            if cycle > last_commit:
                last_commit = cycle
            if tracking:
                complete_at[seq] = cycle
            if telemetry:
                # RUU entry occupied from issue to commit -- the
                # ISSUE..COMPLETE window of the reference events (the
                # issue cycle was subtracted at issue).
                t_busy[ent_unit[seq]] += cycle
        if head > 4096 and head * 2 > len(ring):
            del ring[:head]
            head = 0

        # ---- dispatch: oldest ready entries, up to the path width ----
        eligible: List[Tuple[int, int]] = []
        while ready_heap and ready_heap[0][0] <= cycle:
            eligible.append(heappop(ready_heap))
        if len(eligible) > 1:
            eligible.sort(key=lambda item: item[1])  # oldest first
        dispatches = 0
        for ready_cycle, seq in eligible:
            unit = ent_unit[seq]
            blocked = dispatches >= width
            if not blocked and fu_cycle[unit] == cycle:
                blocked = fu_used[unit] >= fu_copies
            if not blocked and ordered_memory and ent_mem[seq]:
                blocked = seq != memory_seqs[memory_index]
            if blocked:
                heappush(ready_heap, (cycle + 1, seq))
                continue
            dispatches += 1
            if fu_cycle[unit] == cycle:
                fu_used[unit] += 1
            else:
                fu_cycle[unit] = cycle
                fu_used[unit] = 1
            if ordered_memory and ent_mem[seq]:
                memory_index += 1
            back = cycle + ent_latency[seq]
            while ret_used.get(back, 0) >= width:
                back += 1
            ret_used[back] = ret_used.get(back, 0) + 1
            ent_result[seq] = back
            dest_tag = ent_dest[seq]
            if dest_tag >= 0:
                avail = back if bypass else back + 1
                tag_avail[dest_tag] = avail
                for dep in waiting_on.pop(dest_tag, ()):
                    pending = ent_pending[dep] - 1
                    ent_pending[dep] = pending
                    if avail > ent_ready[dep]:
                        ent_ready[dep] = avail
                    if pending == 0:
                        heappush(ready_heap, (ent_ready[dep], dep))

        # ---- issue: up to N instructions, in program order -----------
        issued = 0
        while (
            pos < n_entries
            and issued < issue_units
            and cycle >= issue_resume
            and live < ruu_size
        ):
            op = ops[pos]
            if op[3]:  # branch
                if op[8]:
                    a0_tag = latest_instance[_A0] * n_regs + _A0
                    a0_ready = (
                        0 if a0_tag < n_regs
                        else tag_avail.get(a0_tag, _UNKNOWN)
                    )
                else:
                    a0_ready = 0
                if a0_ready == _UNKNOWN or a0_ready > cycle:
                    break  # branch waits at the issue stage
                issue_resume = cycle + branch_latency
                if issue_resume > last_commit:
                    # Branches never commit; their resolution still
                    # bounds the machine's finish time.
                    last_commit = issue_resume
                if tracking:
                    issue_at[pos] = cycle
                    complete_at[pos] = issue_resume
                pos += 1
                issued += 1
                break  # nothing issues behind an unresolved branch

            unit, dest, srcs = op[0], op[1], op[2]
            pending = 0
            ready = cycle
            for src in srcs:
                tag = latest_instance[src] * n_regs + src
                avail = 0 if tag < n_regs else tag_avail.get(tag, _UNKNOWN)
                if avail == _UNKNOWN:
                    pending += 1
                    waiting_on.setdefault(tag, []).append(pos)
                elif avail > ready:
                    ready = avail
            if dest >= 0:
                instance = latest_instance[dest] + 1
                latest_instance[dest] = instance
                ent_dest[pos] = instance * n_regs + dest
            ent_unit[pos] = unit
            ent_latency[pos] = latencies[unit]
            ent_pending[pos] = pending
            ent_ready[pos] = ready
            ent_mem[pos] = unit == _MEMORY
            ring.append(pos)
            live += 1
            if tracking:
                issue_at[pos] = cycle
            if telemetry:
                t_busy[unit] -= cycle
            if pending == 0:
                heappush(ready_heap, (ready, pos))
            pos += 1
            issued += 1

        occupancy_sum += live
        if telemetry:
            t_hist[live * t_stride + issued] += 1
        if pos < n_entries and issued == 0:
            if cycle < issue_resume:
                branch_stall_cycles += 1
            elif live >= ruu_size:
                full_stall_cycles += 1

        if pos >= n_entries and live == 0:
            cycle += 1
            break

        # ---- advance: next cycle anything can happen ------------------
        nxt = -1
        if live > 0:
            result = ent_result[ring[head]]
            if result != _UNKNOWN:
                nxt = result if result > cycle else cycle + 1
        if ready_heap:
            c = ready_heap[0][0]
            if c <= cycle:
                c = cycle + 1
            if nxt < 0 or c < nxt:
                nxt = c
        if pos < n_entries and live < ruu_size:
            cand = issue_resume if issue_resume > cycle + 1 else cycle + 1
            op = ops[pos]
            if op[3] and op[8]:
                a0_tag = latest_instance[_A0] * n_regs + _A0
                a0_ready = (
                    0 if a0_tag < n_regs
                    else tag_avail.get(a0_tag, _UNKNOWN)
                )
                if a0_ready == _UNKNOWN:
                    cand = -1  # A0 producer must dispatch first
                elif a0_ready > cand:
                    cand = a0_ready
            if cand >= 0 and (nxt < 0 or cand < nxt):
                nxt = cand
        if nxt < 0:  # pragma: no cover - deadlock trap advances
            nxt = cycle + 1

        # Credit the skipped idle cycles to the statistics exactly as
        # the reference's cycle-by-cycle walk would have.
        idle = nxt - cycle - 1
        if idle > 0:
            occupancy_sum += live * idle
            if telemetry:
                t_hist[live * t_stride] += idle
            if pos < n_entries:
                blocked = issue_resume - cycle - 1
                if blocked > idle:
                    blocked = idle
                elif blocked < 0:
                    blocked = 0
                branch_stall_cycles += blocked
                if live >= ruu_size:
                    full_stall_cycles += idle - blocked
        cycle = nxt

    if tracking:
        record.extend(zip(issue_at, complete_at))
    detail = {
        "ruu_occupancy_mean": occupancy_sum / max(cycle, 1),
        "ruu_full_stall_cycles": float(full_stall_cycles),
        "branch_stall_cycles": float(branch_stall_cycles),
    }
    if telemetry:
        t_width: Dict[int, int] = {}
        t_occupancy: Dict[int, int] = {}
        for index, count in enumerate(t_hist):
            if count:
                level, issued = divmod(index, t_stride)
                t_occupancy[level] = t_occupancy.get(level, 0) + count
                if issued:
                    t_width[issued] = t_width.get(issued, 0) + count
        detail.update(SimTelemetry(
            instructions=n_entries,
            cycles=max(last_commit, 1),
            stall_cycles={
                "BRANCH": branch_stall_cycles,
                "RUU_FULL": full_stall_cycles,
            },
            fu_busy_cycles={
                _UNIT_NAMES[u]: t_busy[u]
                for u in range(n_units)
                if t_busy[u]
            },
            issue_width=t_width,
            occupancy=t_occupancy,
        ).to_detail())
    return SimulationResult(
        trace_name=compiled.name,
        simulator=machine.name,
        config=config,
        instructions=n_entries,
        cycles=max(last_commit, 1),
        detail=detail,
    )


# ----------------------------------------------------------------------
# Out-of-order multiple issue (Section 5.2)
# ----------------------------------------------------------------------

#: Cap on buffer-drain scan passes, mirroring the reference's guard.
_MAX_BUFFER_CYCLES = 100_000


def simulate_ooo_fast(
    machine,
    trace: Trace,
    config: MachineConfig,
    record: Optional[Schedule] = None,
) -> SimulationResult:
    """Fast twin of :meth:`OutOfOrderMultiIssueMachine.reference_simulate`.

    Buffer cuts come from the compiled taken flags; the per-cycle slot
    scan is the reference's (same hazard tests in the same order against
    integer state), and whenever a full scan issues nothing the loop
    jumps to the earliest cycle any unblocked slot could issue -- the
    machine state is frozen in between, so the skipped scans are pure
    no-ops in the reference too.
    """
    compiled = compile_trace(trace)
    if compiled.has_vector:
        from ..base import scalar_only_error

        raise scalar_only_error(machine.name)
    count_run("python", "fast_runs")
    table = config.latencies
    latencies = [table.latency(unit) for unit in UNITS]
    branch_latency = config.branch_latency
    units = machine.issue_units
    kind = machine.bus_kind
    enforce_war = machine.enforce_war
    n_buses = 1 if kind is BusKind.ONE_BUS else units
    xbar = kind is BusKind.X_BAR

    reg_ready = [0] * N_REGISTERS
    fu_free = [0] * len(UNITS)
    buses: List[set] = [set() for _ in range(n_buses)]
    # Completion-event min-heap for pruning dead reservations (the
    # cycle floor never decreases across or within buffers).
    bus_heap: List[Tuple[int, int]] = []

    ops = compiled.ops
    n_entries = compiled.n
    pos = 0
    cycle = 0
    last_event = 0
    tracking = record is not None
    if tracking:
        issue_at = [0] * n_entries
        complete_at = [0] * n_entries
    telemetry = telemetry_collecting()
    if telemetry:
        # Buffer occupancy and flushes are pure functions of the compiled
        # taken flags (see window_stats); only issue width needs the loop.
        t_width = [0] * (units + 1)

    while pos < n_entries:
        # Fetch buffer: up to N slots, cut after the first taken branch.
        end = pos + units
        if end > n_entries:
            end = n_entries
        blen = 0
        for index in range(pos, end):
            blen += 1
            op = ops[index]
            if op[3] and op[4]:
                break

        issued = [False] * blen
        branch_resolve = [_UNKNOWN] * blen
        remaining = blen
        barrier = 0  # latest branch resolution; gates the next buffer
        guard = 0

        while remaining:
            guard += 1
            if guard > _MAX_BUFFER_CYCLES:  # pragma: no cover - bug trap
                raise RuntimeError(
                    f"buffer failed to drain at trace pos {pos}"
                )
            while bus_heap and bus_heap[0][0] <= cycle:
                done, bus_index = heappop(bus_heap)
                buses[bus_index].discard(done)
            progressed = False
            scan_issues = 0
            for slot in range(blen):
                if issued[slot]:
                    continue
                op = ops[pos + slot]
                unit, dest, srcs, is_branch = op[0], op[1], op[2], op[3]
                # Control: every earlier branch resolved (no speculation).
                blocked = False
                for earlier in range(slot):
                    if ops[pos + earlier][3]:
                        resolve = branch_resolve[earlier]
                        if resolve == _UNKNOWN or resolve > cycle:
                            blocked = True
                            break
                if blocked:
                    continue
                # RAW/WAW (and optionally WAR) against unissued earlier
                # slots.
                for earlier in range(slot):
                    if issued[earlier]:
                        continue
                    eop = ops[pos + earlier]
                    edest = eop[1]
                    if edest >= 0:
                        if edest in srcs:  # RAW
                            blocked = True
                            break
                        if dest >= 0 and edest == dest:  # WAW
                            blocked = True
                            break
                    if enforce_war and dest >= 0 and dest in eop[2]:  # WAR
                        blocked = True
                        break
                if blocked:
                    continue
                latency = latencies[unit]
                earliest = cycle
                for src in srcs:
                    ready = reg_ready[src]
                    if ready > earliest:
                        earliest = ready
                if dest >= 0:
                    ready = reg_ready[dest]
                    if ready > earliest:
                        earliest = ready
                ready = fu_free[unit]
                if ready > earliest:
                    earliest = ready
                if earliest > cycle:
                    continue
                complete = cycle + latency
                if dest >= 0:
                    if xbar:
                        chosen = -1
                        for bus_index in range(n_buses):
                            if complete not in buses[bus_index]:
                                chosen = bus_index
                                break
                        if chosen < 0:
                            continue
                    else:
                        chosen = slot % n_buses
                        if complete in buses[chosen]:
                            continue

                # Issue slot at `cycle`.
                issued[slot] = True
                remaining -= 1
                progressed = True
                scan_issues += 1
                fu_free[unit] = cycle + 1
                if dest >= 0:
                    reg_ready[dest] = complete
                    buses[chosen].add(complete)
                    heappush(bus_heap, (complete, chosen))
                if not is_branch and complete > last_event:
                    last_event = complete
                if tracking:
                    issue_at[pos + slot] = cycle
                    complete_at[pos + slot] = (
                        cycle + branch_latency if is_branch else complete
                    )
                if is_branch:
                    resolve = cycle + branch_latency
                    branch_resolve[slot] = resolve
                    if resolve > last_event:
                        last_event = resolve
                    if resolve > barrier:
                        barrier = resolve
            if telemetry and scan_issues:
                # Each scan pass runs at a distinct cycle (the cycle
                # strictly advances between passes and across buffers),
                # so the pass's issue count is that cycle's width.
                t_width[scan_issues] += 1
            if remaining:
                if progressed:
                    cycle += 1
                    continue
                # Nothing issued and nothing can until some floor
                # passes: jump to the earliest candidate issue cycle.
                nxt = -1
                for slot in range(blen):
                    if issued[slot]:
                        continue
                    op = ops[pos + slot]
                    unit, dest, srcs = op[0], op[1], op[2]
                    control_floor = 0
                    blocked = False
                    for earlier in range(slot):
                        eop = ops[pos + earlier]
                        if not issued[earlier]:
                            # Gated by an earlier unissued slot: that
                            # slot's own candidate bounds this one.
                            if eop[3]:
                                blocked = True
                                break
                            edest = eop[1]
                            if edest >= 0 and (
                                edest in srcs
                                or (dest >= 0 and edest == dest)
                            ):
                                blocked = True
                                break
                            if (
                                enforce_war
                                and dest >= 0
                                and dest in eop[2]
                            ):
                                blocked = True
                                break
                        elif eop[3]:
                            resolve = branch_resolve[earlier]
                            if resolve > control_floor:
                                control_floor = resolve
                    if blocked:
                        continue
                    cand = cycle + 1
                    if control_floor > cand:
                        cand = control_floor
                    for src in srcs:
                        ready = reg_ready[src]
                        if ready > cand:
                            cand = ready
                    if dest >= 0:
                        ready = reg_ready[dest]
                        if ready > cand:
                            cand = ready
                    ready = fu_free[unit]
                    if ready > cand:
                        cand = ready
                    if dest >= 0:
                        latency = latencies[unit]
                        if xbar:
                            while all(
                                cand + latency in bus for bus in buses
                            ):
                                cand += 1
                        else:
                            reserved = buses[slot % n_buses]
                            while cand + latency in reserved:
                                cand += 1
                    if nxt < 0 or cand < nxt:
                        nxt = cand
                cycle = nxt if nxt > cycle else cycle + 1

        pos += blen
        # The next buffer is available the cycle after the last issue,
        # but never before every branch in this buffer has resolved.
        cycle = cycle + 1 if cycle + 1 > barrier else barrier

    if tracking:
        record.extend(zip(issue_at, complete_at))
    detail: Dict[str, float] = {}
    if telemetry:
        occupancy, flushes, flush_cycles = window_stats(compiled, units)
        detail = SimTelemetry(
            instructions=n_entries,
            cycles=max(last_event, 1),
            fu_busy_cycles=_closed_busy(compiled, latencies, branch_latency),
            issue_width={w: c for w, c in enumerate(t_width) if c},
            occupancy=occupancy,
            flushes=flushes,
            flush_cycles=flush_cycles,
        ).to_detail()
    return SimulationResult(
        trace_name=compiled.name,
        simulator=machine.name,
        config=config,
        instructions=n_entries,
        cycles=max(last_event, 1),
        detail=detail,
    )


# ----------------------------------------------------------------------
# Speculative window machine (branch + value prediction limit study)
# ----------------------------------------------------------------------

#: Functional-unit indices eligible for value prediction, mirroring
#: :data:`repro.core.spec.VP_UNITS` (resolved by name to avoid importing
#: the machine module from its own dispatch target).
_VP_UNIT_IDS = frozenset(
    index for index, unit in enumerate(UNITS)
    if unit.name in ("FP_MULTIPLY", "FP_RECIPROCAL")
)


def simulate_spec_fast(
    machine,
    trace: Trace,
    config: MachineConfig,
    record: Optional[Schedule] = None,
) -> SimulationResult:
    """Fast twin of :meth:`SpecMachine.reference_simulate`.

    The speculative machine is contention-free past the issue stage, so
    every entry's result cycle is fixed analytically the moment it
    issues (``max(issue + 1, source avails) + latency``) -- no dispatch
    phase, no ready heap.  What remains cycle-accurate is the commit /
    issue walk (window gate, issue width, branch resume, in-order
    width-limited commit), and the outer loop jumps over idle cycles
    crediting occupancy and stall statistics in closed form, exactly
    like :func:`simulate_ruu_fast`.

    Unlike the RUU loop, predictors *are* modelled here: the loop
    instantiates the machine's real predictor object and replays it in
    program order (predictors are deterministic), so prediction accuracy
    and per-branch outcomes are bit-identical to the reference by
    sharing the implementation rather than by reimplementing it.  The
    static branch attributes the compiled IR does not carry
    (``backward``, ``static_index``) are read from ``trace.entries`` at
    branch positions only.

    Schedule records: non-branch entries report ``(issue, commit)``
    matching the reference's ISSUE/COMPLETE events; branches report
    ``(issue, resolution)`` where resolution is the cycle correct-path
    issue resumed (issue + 1 for a predicted-correct or decode-redirected
    branch, the full recovery window after a mispredict, issue + branch
    latency with prediction off).
    """
    compiled = compile_trace(trace)
    if compiled.has_vector:
        from ..base import scalar_only_error

        raise scalar_only_error(machine.name)
    count_run("python", "fast_runs")
    table = config.latencies
    latencies = [table.latency(unit) for unit in UNITS]
    branch_latency = config.branch_latency
    width = machine.path_width
    issue_units = machine.issue_units
    window = machine.window
    recovery_window = branch_latency + machine.recovery_penalty
    predictor = (
        machine.predictor_factory() if machine.predictor_factory else None
    )
    predicted_correct: Dict[int, bool] = {}
    vp_warmup = machine.vp_warmup
    value_penalty = machine.value_penalty
    vp_seen: Dict[int, int] = {}
    vp_hits = 0
    vp_misses = 0
    flushes = 0
    flush_cycles = 0

    ops = compiled.ops
    entries = trace.entries
    n_entries = compiled.n
    n_regs = N_REGISTERS
    n_units = len(UNITS)

    latest_instance = [0] * n_regs
    tag_avail: Dict[int, int] = {}

    ent_unit = [0] * n_entries
    ent_result = [0] * n_entries

    ring: List[int] = []  # program-ordered live entries (seqs)
    head = 0
    live = 0

    occupancy_sum = 0
    full_stall_cycles = 0
    branch_stall_cycles = 0

    pos = 0
    issue_resume = 0
    cycle = 0
    last_commit = 0
    tracking = record is not None
    if tracking:
        issue_at = [0] * n_entries
        complete_at = [0] * n_entries
    telemetry = telemetry_collecting()
    if telemetry:
        t_busy = [0] * n_units
        t_stride = issue_units + 1
        t_hist = [0] * ((window + 1) * t_stride)

    while True:
        if cycle > _MAX_CYCLES:  # pragma: no cover - bug trap
            raise RuntimeError("spec simulation failed to make progress")

        # ---- commit: retire in order from the head -------------------
        commits = 0
        while live > 0 and commits < width:
            seq = ring[head]
            if ent_result[seq] > cycle:
                break
            head += 1
            live -= 1
            commits += 1
            if cycle > last_commit:
                last_commit = cycle
            if tracking:
                complete_at[seq] = cycle
            if telemetry:
                t_busy[ent_unit[seq]] += cycle
        if head > 4096 and head * 2 > len(ring):
            del ring[:head]
            head = 0

        # ---- issue: up to N instructions, in program order -----------
        issued = 0
        while (
            pos < n_entries
            and issued < issue_units
            and cycle >= issue_resume
            and live < window
        ):
            op = ops[pos]
            if op[3]:  # branch
                if predictor is not None:
                    if not op[8]:
                        # Unconditional: decode redirect, one cycle.
                        issue_resume = cycle + 1
                    else:
                        correct = predicted_correct.get(pos)
                        if correct is None:
                            t_entry = entries[pos]
                            taken = bool(op[4])
                            prediction = predictor.predict_outcome(
                                t_entry.static_index,
                                bool(t_entry.backward),
                                taken,
                            )
                            correct = predictor.record(prediction, taken)
                            predictor.update(t_entry.static_index, taken)
                            predicted_correct[pos] = correct
                        if correct:
                            issue_resume = cycle + 1
                        else:
                            a0_tag = latest_instance[_A0] * n_regs + _A0
                            a0_ready = (
                                0 if a0_tag < n_regs else tag_avail[a0_tag]
                            )
                            if a0_ready > cycle:
                                break  # mispredicted branch awaiting A0
                            issue_resume = cycle + recovery_window
                            flushes += 1
                            flush_cycles += recovery_window
                else:
                    if op[8]:
                        a0_tag = latest_instance[_A0] * n_regs + _A0
                        a0_ready = (
                            0 if a0_tag < n_regs else tag_avail[a0_tag]
                        )
                        if a0_ready > cycle:
                            break  # branch waits at the issue stage
                    issue_resume = cycle + branch_latency
                if issue_resume > last_commit:
                    # Branches never commit; their resolution still
                    # bounds the machine's finish time.
                    last_commit = issue_resume
                if tracking:
                    issue_at[pos] = cycle
                    complete_at[pos] = issue_resume
                pos += 1
                issued += 1
                break  # nothing issues behind an unresolved branch

            unit, dest, srcs = op[0], op[1], op[2]
            ready = cycle + 1
            for src in srcs:
                tag = latest_instance[src] * n_regs + src
                avail = 0 if tag < n_regs else tag_avail[tag]
                if avail > ready:
                    ready = avail
            result = ready + latencies[unit]
            if dest >= 0:
                instance = latest_instance[dest] + 1
                latest_instance[dest] = instance
                dest_tag = instance * n_regs + dest
                if vp_warmup is not None and unit in _VP_UNIT_IDS:
                    seen = vp_seen.get(entries[pos].static_index, 0)
                    vp_seen[entries[pos].static_index] = seen + 1
                    if seen >= vp_warmup:
                        vp_hits += 1
                        # Predicted broadcast: consumers read the
                        # (correct) predicted value next cycle.
                        tag_avail[dest_tag] = cycle + 1
                    else:
                        # The reference emits this FLUSH at the
                        # producer's commit; every issued entry commits
                        # before the loop exits, so counting at issue
                        # keeps the totals identical.
                        vp_misses += 1
                        flushes += 1
                        flush_cycles += value_penalty
                        tag_avail[dest_tag] = result + value_penalty
                else:
                    tag_avail[dest_tag] = result
            ent_unit[pos] = unit
            ent_result[pos] = result
            ring.append(pos)
            live += 1
            if tracking:
                issue_at[pos] = cycle
            if telemetry:
                t_busy[unit] -= cycle
            pos += 1
            issued += 1

        occupancy_sum += live
        if telemetry:
            t_hist[live * t_stride + issued] += 1
        if pos < n_entries and issued == 0:
            if cycle < issue_resume:
                branch_stall_cycles += 1
            elif live >= window:
                full_stall_cycles += 1

        if pos >= n_entries and live == 0:
            cycle += 1
            break

        # ---- advance: next cycle anything can happen ------------------
        nxt = -1
        if live > 0:
            result = ent_result[ring[head]]
            nxt = result if result > cycle else cycle + 1
        if pos < n_entries and live < window:
            cand = issue_resume if issue_resume > cycle + 1 else cycle + 1
            op = ops[pos]
            if op[3] and op[8] and (
                predictor is None
                or predicted_correct.get(pos) is False
            ):
                a0_tag = latest_instance[_A0] * n_regs + _A0
                a0_ready = 0 if a0_tag < n_regs else tag_avail[a0_tag]
                if a0_ready > cand:
                    cand = a0_ready
            if nxt < 0 or cand < nxt:
                nxt = cand
        if nxt < 0:  # pragma: no cover - deadlock trap advances
            nxt = cycle + 1

        # Credit the skipped idle cycles to the statistics exactly as
        # the reference's cycle-by-cycle walk would have.
        idle = nxt - cycle - 1
        if idle > 0:
            occupancy_sum += live * idle
            if telemetry:
                t_hist[live * t_stride] += idle
            if pos < n_entries:
                blocked = issue_resume - cycle - 1
                if blocked > idle:
                    blocked = idle
                elif blocked < 0:
                    blocked = 0
                branch_stall_cycles += blocked
                if live >= window:
                    full_stall_cycles += idle - blocked
        cycle = nxt

    if tracking:
        record.extend(zip(issue_at, complete_at))
    detail = {
        "window_occupancy_mean": occupancy_sum / max(cycle, 1),
        "window_full_stall_cycles": float(full_stall_cycles),
        "branch_stall_cycles": float(branch_stall_cycles),
    }
    if predictor is not None:
        detail["prediction_accuracy"] = predictor.stats.accuracy
    if vp_warmup is not None:
        total = vp_hits + vp_misses
        detail["vp_accuracy"] = vp_hits / total if total else 0.0
    if telemetry:
        t_width: Dict[int, int] = {}
        t_occupancy: Dict[int, int] = {}
        for index, count in enumerate(t_hist):
            if count:
                level, issued = divmod(index, t_stride)
                t_occupancy[level] = t_occupancy.get(level, 0) + count
                if issued:
                    t_width[issued] = t_width.get(issued, 0) + count
        detail.update(SimTelemetry(
            instructions=n_entries,
            cycles=max(last_commit, 1),
            stall_cycles={
                "BRANCH": branch_stall_cycles,
                "RUU_FULL": full_stall_cycles,
            },
            fu_busy_cycles={
                _UNIT_NAMES[u]: t_busy[u]
                for u in range(n_units)
                if t_busy[u]
            },
            issue_width=t_width,
            occupancy=t_occupancy,
            flushes=flushes,
            flush_cycles=flush_cycles,
        ).to_detail())
    return SimulationResult(
        trace_name=compiled.name,
        simulator=machine.name,
        config=config,
        instructions=n_entries,
        cycles=max(last_commit, 1),
        detail=detail,
    )


# ----------------------------------------------------------------------
# The backend wrapper
# ----------------------------------------------------------------------

class PythonBackend(Backend):
    """Per-spec replay: each (machine, config) runs its own fast loop."""

    name = "python"

    _LOOPS = None  # family -> loop, bound lazily below

    def _loop_for(self, simulator):
        family = family_of(simulator)
        if family is None:
            raise ValueError(
                f"{simulator!r} has no compiled fast loop"
            )
        return _FAMILY_LOOPS[family]

    def simulate(
        self, simulator, trace: Trace, config: MachineConfig, record=None
    ) -> SimulationResult:
        return self._loop_for(simulator)(simulator, trace, config, record)

    def simulate_sweep(self, trace: Trace, items) -> List[SimulationResult]:
        compile_trace(trace)  # shared lowering, pinned by the caller
        return [
            self.simulate(item.simulator, trace, item.config, item.record)
            for item in items
        ]


_FAMILY_LOOPS = {
    "scoreboard": simulate_scoreboard_fast,
    "inorder": simulate_inorder_fast,
    "ooo": simulate_ooo_fast,
    "ruu": simulate_ruu_fast,
    "spec": simulate_spec_fast,
    "tomasulo": simulate_tomasulo_fast,
    "cdc6600": simulate_cdc6600_fast,
}

register_backend(PythonBackend())
