"""A name-based registry of the paper's machine organisations.

Convenient for examples and CLI-style exploration: build any simulator the
paper studies from a short specification string, e.g. ``"simple"``,
``"cray"``, ``"inorder:4:1bus"``, ``"ooo:8"``, ``"ruu:2:50:nbus"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .base import Simulator
from .buses import BusKind
from .cdc6600 import CDC6600Machine
from .inorder_multi import InOrderMultiIssueMachine
from .ooo_multi import OutOfOrderMultiIssueMachine
from .ruu import RUUMachine
from .scoreboard import (
    cray_like_machine,
    non_segmented_machine,
    serial_memory_machine,
)
from .simple import SimpleMachine
from .tomasulo import TomasuloMachine

_BUS_NAMES = {
    "nbus": BusKind.N_BUS,
    "1bus": BusKind.ONE_BUS,
    "xbar": BusKind.X_BAR,
}


class UnknownSpecError(ValueError):
    """An unrecognised or malformed simulator specification string.

    Carries the offending spec, the reason (for a known head with bad
    parameters) and the accepted grammar, so callers (CLI, ``repro.api``)
    can print an actionable message instead of a bare
    ``KeyError``/``ValueError``.  :func:`build_simulator` raises this for
    *every* rejected spec -- unknown heads and malformed parameters
    alike -- so spec consumers need exactly one except clause.
    """

    def __init__(self, spec: str, reason: Optional[str] = None) -> None:
        self.spec = spec
        self.reason = reason
        self.valid = available_specs()
        detail = (
            f"bad simulator spec {spec!r}: {reason}"
            if reason
            else f"unknown simulator spec {spec!r}"
        )
        super().__init__(f"{detail}; accepted: {self.valid}")

_FIXED: Dict[str, Callable[[], Simulator]] = {
    "simple": SimpleMachine,
    "serialmemory": serial_memory_machine,
    "nonsegmented": non_segmented_machine,
    "cray": cray_like_machine,
    "cray-like": cray_like_machine,
    "cdc6600": CDC6600Machine,
    "tomasulo": TomasuloMachine,
}


#: Parameterised spec templates accepted alongside the fixed names.
SPEC_TEMPLATES = (
    "inorder:<units>[:<bus>]",
    "ooo:<units>[:<bus>]",
    "ruu:<units>:<ruu-size>[:<bus>][:fu=<copies>]",
    "spec[:<window>][:<predictor>][:<key>=<value>...]",
    "cache:<words>[:<hit>:<miss>]",
    "banked:<banks>[:<busy>]",
)


def list_specs() -> tuple:
    """Every accepted specification: fixed names plus templates."""
    return tuple(sorted(_FIXED)) + SPEC_TEMPLATES


def available_specs() -> str:
    """Human-readable description of accepted specification strings."""
    return (
        "simple | serialmemory | nonsegmented | cray | cdc6600 | tomasulo | "
        "inorder:<units>[:<bus>] | ooo:<units>[:<bus>] | "
        "ruu:<units>:<ruu-size>[:<bus>][:fu=<copies>] | "
        "spec[:<window>][:<predictor>][:<key>=<value>...] | "
        "cache:<words>[:<hit>:<miss>] | banked:<banks>[:<busy>]"
        "  (bus: nbus, 1bus, xbar; spec predictors: none, always, btfn, "
        "1bit, 2bit, perfect, wrong; spec keys: units, bus, rp, vp, vpp)"
    )


@dataclass(frozen=True)
class ParsedSpec:
    """A specification string split into its head and parameters.

    The single parsing point shared by :func:`build_simulator` and
    spec-keyed consumers (the verification layer derives per-machine
    event profiles from the same normalised form, so the two can never
    disagree about what a spec means).
    """

    head: str
    params: Tuple[str, ...]


def parse_spec(spec: str) -> ParsedSpec:
    """Normalise a spec string: lowercase, strip, split on ``:``."""
    parts = [part.strip() for part in spec.lower().split(":")]
    return ParsedSpec(head=parts[0], params=tuple(parts[1:]))


def _parse_bus(token: str, default: BusKind) -> BusKind:
    if not token:
        return default
    try:
        return _BUS_NAMES[token.lower()]
    except KeyError:
        raise ValueError(
            f"unknown bus kind {token!r}; expected one of {sorted(_BUS_NAMES)}"
        ) from None


def build_simulator(spec: str) -> Simulator:
    """Build a simulator from a specification string (see module docstring).

    Any rejected spec -- unknown head or malformed parameters -- raises
    :class:`UnknownSpecError` (a ``ValueError`` subclass).
    """
    try:
        return _build_simulator(spec)
    except UnknownSpecError:
        raise
    except ValueError as exc:
        raise UnknownSpecError(spec, reason=str(exc)) from None


def _build_simulator(spec: str) -> Simulator:
    parsed = parse_spec(spec)
    head, parts = parsed.head, (parsed.head,) + parsed.params

    if head in _FIXED:
        if len(parts) > 1:
            raise ValueError(f"{head!r} takes no parameters")
        return _FIXED[head]()

    if head in ("inorder", "ooo"):
        if len(parts) < 2:
            raise ValueError(f"{head!r} needs an issue-unit count")
        units = int(parts[1])
        bus = _parse_bus(parts[2] if len(parts) > 2 else "", BusKind.N_BUS)
        if head == "inorder":
            return InOrderMultiIssueMachine(units, bus)
        return OutOfOrderMultiIssueMachine(units, bus)

    if head == "ruu":
        if len(parts) < 3:
            raise ValueError("'ruu' needs issue units and an RUU size")
        units = int(parts[1])
        size = int(parts[2])
        bus = BusKind.N_BUS
        fu_copies = 1
        saw_bus = saw_fu = False
        # Trailing tokens: at most one bus name and one fu=<copies>
        # duplication factor, in either order.
        for token in parts[3:]:
            if token.startswith("fu="):
                if saw_fu:
                    raise ValueError("duplicate fu= parameter")
                saw_fu = True
                try:
                    fu_copies = int(token[3:])
                except ValueError:
                    raise ValueError(
                        f"fu= needs an integer copy count, got {token!r}"
                    ) from None
            else:
                if saw_bus:
                    raise ValueError(f"unexpected parameter {token!r}")
                saw_bus = True
                bus = _parse_bus(token, BusKind.N_BUS)
        return RUUMachine(units, size, bus, fu_copies=fu_copies)

    if head == "spec":
        from .spec import SpecMachine, parse_spec_params

        params = parse_spec_params(parsed.params)
        return SpecMachine.from_params(params, _parse_bus(params.bus, BusKind.N_BUS))

    if head == "cache":
        from ..memsys import Cache, CachedMemory, MemoryAwareMachine

        if len(parts) < 2:
            raise ValueError("'cache' needs a size in words")
        words = int(parts[1])
        hit = int(parts[2]) if len(parts) > 2 else 5
        miss = int(parts[3]) if len(parts) > 3 else 11
        return MemoryAwareMachine(
            lambda: CachedMemory(Cache(words), hit_latency=hit, miss_latency=miss)
        )

    if head == "banked":
        from ..memsys import BankedMemory, ConflictMemory, MemoryAwareMachine

        if len(parts) < 2:
            raise ValueError("'banked' needs a bank count")
        banks = int(parts[1])
        busy = int(parts[2]) if len(parts) > 2 else 4
        return MemoryAwareMachine(
            lambda: ConflictMemory(BankedMemory(banks, busy), 11)
        )

    raise UnknownSpecError(spec)
