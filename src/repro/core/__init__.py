"""Timing simulators for every instruction-issue method in the paper."""

from . import fastpath
from .base import Simulator
from .buses import BusKind, ResultBuses, SlotPerCycle
from .cdc6600 import CDC6600Machine
from .config import (
    CONFIGS_BY_NAME,
    M5BR2,
    M5BR5,
    M11BR2,
    M11BR5,
    STANDARD_CONFIGS,
    MachineConfig,
    config_by_name,
)
from .inorder_multi import InOrderMultiIssueMachine
from .ooo_multi import OutOfOrderMultiIssueMachine
from .registry import (
    UnknownSpecError,
    available_specs,
    build_simulator,
    list_specs,
)
from .fastpath import CompiledTrace, compile_trace
from .result import SimulationResult
from .ruu import RUUMachine
from .scoreboard import (
    ScoreboardMachine,
    cray_like_machine,
    non_segmented_machine,
    serial_memory_machine,
)
from .simple import SimpleMachine
from .tomasulo import TomasuloMachine

__all__ = [
    "BusKind",
    "CDC6600Machine",
    "CompiledTrace",
    "CONFIGS_BY_NAME",
    "InOrderMultiIssueMachine",
    "M11BR2",
    "M11BR5",
    "M5BR2",
    "M5BR5",
    "MachineConfig",
    "OutOfOrderMultiIssueMachine",
    "RUUMachine",
    "ResultBuses",
    "ScoreboardMachine",
    "SimpleMachine",
    "SimulationResult",
    "Simulator",
    "SlotPerCycle",
    "STANDARD_CONFIGS",
    "TomasuloMachine",
    "UnknownSpecError",
    "available_specs",
    "build_simulator",
    "compile_trace",
    "fastpath",
    "list_specs",
    "config_by_name",
    "cray_like_machine",
    "non_segmented_machine",
    "serial_memory_machine",
]
