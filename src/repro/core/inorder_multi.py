"""Multiple issue units with sequential (in-order) issue -- Section 5.1.

The hardware fetches a block of N instructions into an instruction buffer
(one slot per issue unit).  The slots are examined in parallel, but issue
is strictly in program order: if any instruction cannot issue, no
succeeding instruction in the buffer may issue either.  The buffer is
refilled only after all of its instructions have issued -- except on a
taken branch, which flushes the remaining slots and refills from the
target once the branch resolves.

Functional units are CRAY-like (fully pipelined, interleaved memory), as
the paper fixes for all multiple-issue studies.  Each issuing instruction
must also reserve a result-bus slot for its writeback cycle
(:mod:`repro.core.buses`); stores and branches produce no result and skip
the reservation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa import FunctionalUnit, Register
from ..obs.events import EventCallback, EventKind, SimEvent, hook_installed
from ..trace import Trace, TraceEntry
from . import fastpath
from .base import Simulator, require_scalar_trace
from .buses import BusKind, ResultBuses
from .config import MachineConfig
from .result import SimulationResult


class InOrderMultiIssueMachine(Simulator):
    """N issue units, program-order issue, CRAY-like functional units.

    Args:
        issue_units: number of issue stations N (also the buffer length
            and, for N-Bus/X-Bar, the number of result buses).
        bus_kind: result-bus interconnect model.
    """

    def __init__(self, issue_units: int, bus_kind: BusKind = BusKind.N_BUS) -> None:
        if issue_units < 1:
            raise ValueError("need at least one issue unit")
        self.issue_units = issue_units
        self.bus_kind = bus_kind

    @property
    def name(self) -> str:
        return f"in-order x{self.issue_units} ({self.bus_kind})"

    # ------------------------------------------------------------------
    def simulate(self, trace: Trace, config: MachineConfig) -> SimulationResult:
        # Same dispatch rule as the scoreboard family: the hook test is
        # re-evaluated per call, so a subscriber attached at any point
        # forces the event-emitting reference loop; the compiled fast
        # path (bit-identical, event-free) runs otherwise.
        if fastpath.enabled() and not hook_installed(self):
            return fastpath.simulate_inorder_fast(self, trace, config)
        return self._simulate(trace, config, self.on_event)

    def reference_simulate(
        self, trace: Trace, config: MachineConfig
    ) -> SimulationResult:
        """The pre-fast-path issue loop, hook plumbing disabled.

        The oracle baseline for this machine: ``repro verify`` checks
        :meth:`simulate` against it as an exact dual (the
        ``fastpath-dual`` check), and the benchmark suite measures the
        fast path's speedup over it.  Keep it in lockstep with any
        timing-model change.
        """
        return self._simulate(trace, config, None)

    def _simulate(
        self,
        trace: Trace,
        config: MachineConfig,
        emit: Optional[EventCallback],
    ) -> SimulationResult:
        require_scalar_trace(trace, self.name)
        latencies = config.latencies
        branch_latency = config.branch_latency

        reg_ready: Dict[Register, int] = {}
        fu_free: Dict[FunctionalUnit, int] = {}
        buses = ResultBuses(self.bus_kind, self.issue_units)

        entries = trace.entries
        n_entries = len(entries)
        pos = 0  # next trace entry to fetch
        cycle = 0  # current issue cycle under consideration
        last_event = 0

        while pos < n_entries:
            buffer = self._fetch_buffer(entries, pos)
            slot = 0
            flushed = False
            while slot < len(buffer):
                entry = buffer[slot]
                instr = entry.instruction
                latency = instr.latency(latencies)

                earliest = self._earliest_issue(
                    instr, cycle, reg_ready, fu_free
                )
                if instr.dest is not None:
                    earliest = buses.earliest_slot_for_result(
                        slot, earliest, latency
                    )

                if earliest > cycle:
                    # In-order: this slot blocks everything behind it.
                    # Jump straight to the cycle it becomes issueable.
                    cycle = earliest
                    continue

                # Issue at `cycle`.
                complete = cycle + latency
                fu_free[instr.unit] = cycle + 1
                if instr.dest is not None:
                    reg_ready[instr.dest] = complete
                    buses.reserve(slot, complete)
                if not instr.is_branch and complete > last_event:
                    last_event = complete
                if emit is not None:
                    emit(SimEvent(EventKind.ISSUE, entry.seq, cycle))
                    emit(SimEvent(
                        EventKind.COMPLETE, entry.seq,
                        cycle + branch_latency if instr.is_branch else complete,
                    ))
                slot += 1

                if instr.is_branch:
                    resolve = cycle + branch_latency
                    if resolve > last_event:
                        last_event = resolve
                    cycle = resolve
                    if entry.taken:
                        flushed = True
                        if emit is not None:
                            # The remaining fetch slots are discarded and
                            # fetch redirects to the branch target.
                            emit(SimEvent(
                                EventKind.FLUSH, entry.seq, resolve,
                                reason="TAKEN_BRANCH",
                                cycles=self.issue_units - slot,
                            ))
                        break

            issued = slot if flushed else len(buffer)
            pos += issued
            if not flushed and buffer:
                # All slots issued this buffer; the refill is overlapped, so
                # the next buffer is examinable the cycle after the last
                # issue.  `cycle` already points past the last issue only
                # for branches; bump it for straight-line code.
                last_instr = buffer[-1].instruction
                if not last_instr.is_branch:
                    cycle = cycle + 1

        cycles = max(last_event, 1)
        return SimulationResult(
            trace_name=trace.name,
            simulator=self.name,
            config=config,
            instructions=n_entries,
            cycles=cycles,
        )

    # ------------------------------------------------------------------
    def _fetch_buffer(self, entries, pos: int) -> List[TraceEntry]:
        """Next instruction buffer: up to N entries, cut after a taken branch.

        A taken branch redirects fetch, so trace entries after it belong to
        the new buffer; untaken branches leave the fall-through prefetch
        valid and stay in the same buffer.
        """
        buffer: List[TraceEntry] = []
        for entry in entries[pos : pos + self.issue_units]:
            buffer.append(entry)
            if entry.is_branch and entry.taken:
                break
        return buffer

    @staticmethod
    def _earliest_issue(instr, cycle, reg_ready, fu_free) -> int:
        earliest = cycle
        for src in instr.source_registers:
            ready = reg_ready.get(src, 0)
            if ready > earliest:
                earliest = ready
        if instr.dest is not None:
            ready = reg_ready.get(instr.dest, 0)
            if ready > earliest:
                earliest = ready
        unit_free = fu_free.get(instr.unit, 0)
        if unit_free > earliest:
            earliest = unit_free
        return earliest
