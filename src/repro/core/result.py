"""Simulation results.

Every timing simulator returns a :class:`SimulationResult`: the dynamic
instruction count, the cycle count, and the issue rate -- the paper's one
performance measure ("the number of instructions that are issued per clock
cycle").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .config import MachineConfig


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of replaying one trace through one machine organisation.

    Attributes:
        trace_name: which benchmark trace was simulated.
        simulator: human-readable simulator description
            (e.g. ``"CRAY-like"``, ``"in-order x4 (1-Bus)"``).
        config: the memory/branch variant.
        instructions: dynamic instructions issued.
        cycles: total cycles from first issue to last completion.
        detail: optional per-simulator extras (stall breakdowns etc.).
    """

    trace_name: str
    simulator: str
    config: MachineConfig
    instructions: int
    cycles: int
    detail: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError("a simulation must issue at least one instruction")
        if self.cycles < 1:
            raise ValueError("a simulation must take at least one cycle")

    @property
    def issue_rate(self) -> float:
        """Instructions issued per clock cycle -- the paper's metric."""
        return self.instructions / self.cycles

    def __str__(self) -> str:
        return (
            f"{self.trace_name} on {self.simulator} [{self.config.name}]: "
            f"{self.instructions} instructions / {self.cycles} cycles = "
            f"{self.issue_rate:.3f} per cycle"
        )
