"""Result-bus interconnect models.

Section 5.1 of the paper studies three interconnects between the
functional-unit outputs and the register file:

* **X-Bar** -- N buses in a crossbar: a result may be routed to any bus
  with a free slot in its writeback cycle.
* **N-Bus** -- N buses, but the result of the instruction issued by issue
  unit *i* may use only bus *i*.
* **1-Bus** -- a single result bus (one register write per cycle).

A bus carries one result per cycle; an instruction issued at cycle ``c``
with latency ``L`` needs a bus slot at cycle ``c + L``.  Branches and
stores produce no register result and use no bus.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Set


class BusKind(enum.Enum):
    """Which of the paper's three interconnect organisations to model."""

    ONE_BUS = "1-Bus"
    N_BUS = "N-Bus"
    X_BAR = "X-Bar"

    def __str__(self) -> str:
        return self.value


class ResultBuses:
    """Per-run reservation state for a result-bus interconnect.

    Reservation is at single-cycle granularity: ``slot_free(i, c)`` asks
    whether bus *i* can carry a result in cycle *c*.
    """

    def __init__(self, kind: BusKind, n_buses: int) -> None:
        if n_buses < 1:
            raise ValueError("need at least one result bus")
        self.kind = kind
        self.n_buses = 1 if kind is BusKind.ONE_BUS else n_buses
        self._reserved: List[Set[int]] = [set() for _ in range(self.n_buses)]

    # ------------------------------------------------------------------
    def _bus_for_unit(self, issue_unit: int) -> int:
        if self.kind is BusKind.ONE_BUS:
            return 0
        return issue_unit % self.n_buses

    def can_reserve(self, issue_unit: int, cycle: int) -> bool:
        """Can a result from *issue_unit* be written back in *cycle*?"""
        if self.kind is BusKind.X_BAR:
            return any(cycle not in bus for bus in self._reserved)
        return cycle not in self._reserved[self._bus_for_unit(issue_unit)]

    def reserve(self, issue_unit: int, cycle: int) -> int:
        """Reserve a writeback slot; returns the bus index used.

        Raises:
            ValueError: if no slot is free (callers must check first).
        """
        if self.kind is BusKind.X_BAR:
            for index, bus in enumerate(self._reserved):
                if cycle not in bus:
                    bus.add(cycle)
                    return index
            raise ValueError(f"no free bus in cycle {cycle}")
        index = self._bus_for_unit(issue_unit)
        bus = self._reserved[index]
        if cycle in bus:
            raise ValueError(f"bus {index} already reserved in cycle {cycle}")
        bus.add(cycle)
        return index

    def earliest_slot(self, issue_unit: int, not_before: int) -> int:
        """Earliest cycle >= *not_before* with a free slot for *issue_unit*."""
        cycle = not_before
        while not self.can_reserve(issue_unit, cycle):
            cycle += 1
        return cycle

    def earliest_slot_for_result(
        self, issue_unit: int, earliest_issue: int, latency: int
    ) -> int:
        """Earliest issue cycle whose writeback slot (issue + latency) is free."""
        issue = earliest_issue
        while not self.can_reserve(issue_unit, issue + latency):
            issue += 1
        return issue


class SlotPerCycle:
    """A width-limited per-cycle resource (e.g. an RUU port group).

    Allows up to *width* uses per cycle; used for dispatch paths, return
    paths and commit ports in the RUU machine.
    """

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width
        self._used: Dict[int, int] = {}

    def available(self, cycle: int) -> bool:
        return self._used.get(cycle, 0) < self.width

    def take(self, cycle: int) -> None:
        used = self._used.get(cycle, 0)
        if used >= self.width:
            raise ValueError(f"cycle {cycle} already at width {self.width}")
        self._used[cycle] = used + 1

    def earliest(self, not_before: int) -> int:
        cycle = not_before
        while not self.available(cycle):
            cycle += 1
        return cycle
