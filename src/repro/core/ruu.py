"""Multiple issue units with RUU dependency resolution -- Section 5.3.

Models the Register Update Unit scheme of Sohi & Vajapeyam: reservation
stations are consolidated into a single FIFO (the RUU).  Per cycle, with N
issue units and an RUU of R entries:

* **issue**   -- up to N instructions enter the RUU in program order;
  issue blocks when the RUU is full or a branch is encountered (there is
  no branch prediction: the stream resumes only once the branch resolves,
  i.e. its A0 instance is available plus the branch execution time);
* **dispatch**-- any RUU entries whose operands are available may proceed
  to the (fully pipelined) functional units, oldest first, limited by the
  RUU->FU path width;
* **return**  -- results come back to the RUU ``latency`` cycles after
  dispatch, limited by the FU->RUU path width; with bypass (the paper's
  assumption) a returning result is usable by waiting entries in its
  return cycle;
* **commit**  -- results retire to the register file from the RUU head, in
  program order, limited by the RUU->regfile path width; the slot is then
  free for reuse.

Register *instances* (per-register counters) provide operand tags, so WAW
and WAR hazards never block issue -- exactly the paper's point.

Bus widths: the N-Bus organisation gives each of the three paths width N;
the 1-Bus organisation gives each path width 1.

Memory ordering: like the paper's dataflow treatment, the model tracks
register dependences only; loads and stores are not serialised against
each other (``ordered_memory=True`` restores program order among memory
operations as an ablation).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa import A0, FunctionalUnit, Register
from ..obs.events import EventKind, SimEvent, hook_installed
from ..trace import Trace
from . import fastpath
from .base import Simulator, require_scalar_trace
from .buses import BusKind, SlotPerCycle
from .config import MachineConfig
from .result import SimulationResult

_UNKNOWN = -1

#: Guard against livelock bugs during development.
_MAX_CYCLES = 10_000_000

Tag = Tuple[Register, int]


@dataclass
class _Entry:
    """One RUU entry (a consolidated reservation station)."""

    seq: int
    unit: FunctionalUnit
    latency: int
    dest_tag: Optional[Tag]
    pending: int  # sources whose availability is not yet known
    operands_ready: int  # max known source-availability cycle
    uses_memory_order: bool
    dispatched: bool = False
    result_cycle: int = _UNKNOWN  # cycle the result is back in the RUU
    committed: bool = False


class RUUMachine(Simulator):
    """N issue units with a Register Update Unit of R entries.

    Args:
        issue_units: issue width N (also dispatch/return/commit width for
            the N-Bus organisation).
        ruu_size: number of RUU entries R.
        bus_kind: ``N_BUS`` or ``ONE_BUS`` (the paper studies these two
            for the RUU machine).
        bypass: results usable by waiting entries in their return cycle
            (paper's assumption); if False, one cycle later.
        ordered_memory: if True, loads/stores dispatch in program order
            among themselves (ablation; the paper tracks register
            dependences only).
        predictor_factory: optional branch-predictor factory
            (:mod:`repro.predict`); enables speculative issue past
            correctly predicted branches.
        misprediction_penalty: extra recovery cycles beyond the normal
            branch resolution on a mispredict.
        fu_copies: copies of every functional unit (including the memory
            port); the paper's base machine has exactly one of each.
    """

    def __init__(
        self,
        issue_units: int,
        ruu_size: int,
        bus_kind: BusKind = BusKind.N_BUS,
        *,
        bypass: bool = True,
        ordered_memory: bool = False,
        predictor_factory=None,
        misprediction_penalty: int = 0,
        fu_copies: int = 1,
    ) -> None:
        if issue_units < 1:
            raise ValueError("need at least one issue unit")
        if ruu_size < 1:
            raise ValueError("the RUU needs at least one entry")
        if bus_kind is BusKind.X_BAR:
            raise ValueError(
                "the RUU machine models N-Bus and 1-Bus organisations"
            )
        if misprediction_penalty < 0:
            raise ValueError("misprediction penalty cannot be negative")
        if fu_copies < 1:
            raise ValueError("need at least one copy of each functional unit")
        self.issue_units = issue_units
        self.ruu_size = ruu_size
        self.bus_kind = bus_kind
        self.bypass = bypass
        self.ordered_memory = ordered_memory
        #: Optional branch speculation (see repro.predict): a factory
        #: producing a fresh BranchPredictor per run.  A correctly
        #: predicted branch lets issue continue the next cycle instead of
        #: waiting for resolution; a misprediction behaves like the
        #: paper's non-speculative branch plus `misprediction_penalty`.
        self.predictor_factory = predictor_factory
        self.misprediction_penalty = misprediction_penalty
        #: Copies of every functional unit (the paper's base machine has
        #: one of each; >1 relaxes the resource limit's bottleneck).
        self.fu_copies = fu_copies

    @property
    def path_width(self) -> int:
        """Width of each of the three buses (RUU->FU, FU->RUU, RUU->regfile)."""
        return 1 if self.bus_kind is BusKind.ONE_BUS else self.issue_units

    @property
    def name(self) -> str:
        extras = []
        if not self.bypass:
            extras.append("no-bypass")
        if self.ordered_memory:
            extras.append("ordered-mem")
        if self.predictor_factory is not None:
            extras.append(f"predict:{self.predictor_factory().name}")
        if self.fu_copies != 1:
            extras.append(f"{self.fu_copies}xFU")
        suffix = f", {'+'.join(extras)}" if extras else ""
        return (
            f"RUU x{self.issue_units} R={self.ruu_size} "
            f"({self.bus_kind}{suffix})"
        )

    # ------------------------------------------------------------------
    def simulate(self, trace: Trace, config: MachineConfig) -> SimulationResult:
        # Speculative runs keep the reference loop: the fast loop models
        # neither per-branch prediction state nor the accuracy detail.
        # hook_installed is re-read per call so a hook attached after
        # construction always gets the event-emitting loop.
        if (
            self.predictor_factory is None
            and fastpath.enabled()
            and not hook_installed(self)
        ):
            return fastpath.simulate_ruu_fast(self, trace, config)
        return self._simulate(trace, config, self.on_event)

    def reference_simulate(
        self, trace: Trace, config: MachineConfig
    ) -> SimulationResult:
        """The pre-fast-path RUU loop, hook plumbing disabled.

        The differential tests and the cross-machine oracle use this as
        the baseline the compiled fast loop must match bit-for-bit.
        """
        return self._simulate(trace, config, None)

    def _simulate(
        self, trace: Trace, config: MachineConfig, emit
    ) -> SimulationResult:
        require_scalar_trace(trace, self.name)
        latencies = config.latencies
        branch_latency = config.branch_latency
        width = self.path_width

        # Register instance bookkeeping.
        latest_instance: Dict[Register, int] = {}
        tag_avail: Dict[Tag, int] = {}  # tag -> cycle value is usable
        waiting_on: Dict[Tag, List[_Entry]] = {}

        # The RUU: program-ordered ring of live entries.
        ruu: List[_Entry] = []
        head = 0  # index of the oldest uncommitted entry
        live = 0

        # Dispatch-ready priority queue: (ready_cycle, seq, entry).
        ready_heap: List[Tuple[int, int, _Entry]] = []

        return_path = SlotPerCycle(width)
        # Per-unit acceptance: each of the fu_copies pipelined copies of a
        # unit accepts one operation per cycle.
        fu_cycle: Dict[FunctionalUnit, int] = {}
        fu_used: Dict[FunctionalUnit, int] = {}

        predictor = (
            self.predictor_factory() if self.predictor_factory else None
        )
        #: seq -> whether its (already scored) prediction was correct.
        predicted_correct: Dict[int, bool] = {}

        occupancy_sum = 0  # RUU entries live, integrated over cycles
        full_stall_cycles = 0  # cycles issue was blocked by a full RUU
        branch_stall_cycles = 0  # cycles issue waited on branch resolution

        entries = trace.entries
        if self.ordered_memory:
            memory_seqs = [
                seq
                for seq, t_entry in enumerate(entries)
                if t_entry.instruction.unit is FunctionalUnit.MEMORY
            ]
            memory_index = 0  # next memory seq allowed to dispatch
        n_entries = len(entries)
        pos = 0  # next trace entry to issue
        issue_resume = 0  # no issue before this cycle (branch blockage)
        cycle = 0
        last_commit = 0

        def operand_tag(reg: Register) -> Tag:
            return (reg, latest_instance.get(reg, 0))

        def tag_ready(tag: Tag) -> int:
            if tag[1] == 0 and tag not in tag_avail:
                return 0  # initial register contents
            return tag_avail.get(tag, _UNKNOWN)

        while pos < n_entries or live > 0:
            if cycle > _MAX_CYCLES:  # pragma: no cover - bug trap
                raise RuntimeError("RUU simulation failed to make progress")

            # ---- commit: retire in order from the head -------------------
            commits = 0
            while live > 0 and commits < width:
                entry = ruu[head]
                if entry.result_cycle == _UNKNOWN or entry.result_cycle > cycle:
                    break
                entry.committed = True
                head += 1
                live -= 1
                commits += 1
                if cycle > last_commit:
                    last_commit = cycle
                if emit is not None:
                    emit(SimEvent(EventKind.COMPLETE, entry.seq, cycle))
            if head > 4096 and head * 2 > len(ruu):
                del ruu[:head]
                head = 0

            # ---- dispatch: oldest ready entries, up to the path width ----
            eligible: List[Tuple[int, int, _Entry]] = []
            while ready_heap and ready_heap[0][0] <= cycle:
                eligible.append(heapq.heappop(ready_heap))
            eligible.sort(key=lambda item: item[1])  # oldest first
            dispatches = 0
            for ready_cycle, seq, entry in eligible:
                blocked = dispatches >= width
                if not blocked:
                    if fu_cycle.get(entry.unit) == cycle:
                        blocked = fu_used[entry.unit] >= self.fu_copies
                if not blocked and self.ordered_memory and entry.uses_memory_order:
                    blocked = seq != memory_seqs[memory_index]
                if blocked:
                    heapq.heappush(ready_heap, (cycle + 1, seq, entry))
                    continue
                # Dispatch now.
                entry.dispatched = True
                dispatches += 1
                if fu_cycle.get(entry.unit) == cycle:
                    fu_used[entry.unit] += 1
                else:
                    fu_cycle[entry.unit] = cycle
                    fu_used[entry.unit] = 1
                if self.ordered_memory and entry.uses_memory_order:
                    memory_index += 1
                back = return_path.earliest(cycle + entry.latency)
                return_path.take(back)
                entry.result_cycle = back
                if entry.dest_tag is not None:
                    # Stores (and PASS) produce no register result; for them
                    # result_cycle just marks completion for in-order commit.
                    avail = back if self.bypass else back + 1
                    tag_avail[entry.dest_tag] = avail
                    for dependent in waiting_on.pop(entry.dest_tag, ()):
                        dependent.pending -= 1
                        if avail > dependent.operands_ready:
                            dependent.operands_ready = avail
                        if dependent.pending == 0:
                            heapq.heappush(
                                ready_heap,
                                (dependent.operands_ready, dependent.seq, dependent),
                            )

            # ---- issue: up to N instructions, in program order ----------
            issued = 0
            while (
                pos < n_entries
                and issued < self.issue_units
                and cycle >= issue_resume
                and live < self.ruu_size
            ):
                t_entry = entries[pos]
                instr = t_entry.instruction

                if instr.is_branch:
                    if predictor is not None:
                        handled, resume = self._speculate(
                            t_entry, cycle, branch_latency, predictor,
                            predicted_correct, operand_tag, tag_ready,
                        )
                        if not handled:
                            break  # mispredicted branch awaiting A0
                        issue_resume = resume
                        if issue_resume > last_commit:
                            last_commit = issue_resume
                        if emit is not None:
                            emit(SimEvent(EventKind.ISSUE, t_entry.seq, cycle))
                            if not predicted_correct.get(t_entry.seq, True):
                                emit(SimEvent(
                                    EventKind.FLUSH, t_entry.seq, cycle,
                                    reason="MISPREDICT",
                                ))
                        pos += 1
                        issued += 1
                        break
                    a0_tag = operand_tag(A0)
                    a0_ready = tag_ready(a0_tag) if instr.is_conditional_branch else 0
                    if a0_ready == _UNKNOWN or a0_ready > cycle:
                        break  # branch waits at the issue stage
                    issue_resume = cycle + branch_latency
                    if issue_resume > last_commit:
                        # Branches never commit; their resolution still
                        # bounds the machine's finish time (a trace ending
                        # in a branch ends when the branch resolves).
                        last_commit = issue_resume
                    if emit is not None:
                        emit(SimEvent(EventKind.ISSUE, t_entry.seq, cycle))
                    pos += 1
                    issued += 1
                    break  # nothing issues behind an unresolved branch

                latency = instr.latency(latencies)
                src_tags = [operand_tag(r) for r in instr.source_registers]
                dest_tag: Optional[Tag] = None
                if instr.dest is not None:
                    instance = latest_instance.get(instr.dest, 0) + 1
                    latest_instance[instr.dest] = instance
                    dest_tag = (instr.dest, instance)

                entry = _Entry(
                    seq=pos,
                    unit=instr.unit,
                    latency=latency,
                    dest_tag=dest_tag,
                    pending=0,
                    operands_ready=cycle,
                    uses_memory_order=instr.unit is FunctionalUnit.MEMORY,
                )
                for tag in src_tags:
                    ready = tag_ready(tag)
                    if ready == _UNKNOWN:
                        entry.pending += 1
                        waiting_on.setdefault(tag, []).append(entry)
                    elif ready > entry.operands_ready:
                        entry.operands_ready = ready
                ruu.append(entry)
                live += 1
                if emit is not None:
                    emit(SimEvent(EventKind.ISSUE, entry.seq, cycle))
                pos += 1
                issued += 1
                if entry.pending == 0:
                    heapq.heappush(
                        ready_heap, (entry.operands_ready, entry.seq, entry)
                    )

            occupancy_sum += live
            if pos < n_entries and issued == 0:
                if cycle < issue_resume:
                    branch_stall_cycles += 1
                    if emit is not None:
                        emit(SimEvent(
                            EventKind.STALL, pos, cycle,
                            reason="BRANCH", cycles=1,
                        ))
                elif live >= self.ruu_size:
                    full_stall_cycles += 1
                    if emit is not None:
                        emit(SimEvent(
                            EventKind.STALL, pos, cycle,
                            reason="RUU_FULL", cycles=1,
                        ))
            cycle += 1

        cycles = max(last_commit, 1)
        detail = {
            "ruu_occupancy_mean": occupancy_sum / max(cycle, 1),
            "ruu_full_stall_cycles": float(full_stall_cycles),
            "branch_stall_cycles": float(branch_stall_cycles),
        }
        if predictor is not None and predictor.stats.predictions:
            detail["prediction_accuracy"] = predictor.stats.accuracy
        return SimulationResult(
            trace_name=trace.name,
            simulator=self.name,
            config=config,
            instructions=n_entries,
            cycles=cycles,
            detail=detail,
        )

    # ------------------------------------------------------------------
    def _speculate(
        self, t_entry, cycle, branch_latency, predictor,
        predicted_correct, operand_tag, tag_ready,
    ):
        """Handle one branch under speculation at the issue stage.

        Returns ``(handled, issue_resume)``.  ``handled`` is False when a
        mispredicted branch is still waiting for its A0 instance -- the
        issue stage stalls (wrong-path work is being executed, which the
        trace cannot represent, so correct-path issue halts exactly as in
        the non-speculative machine).
        """
        instr = t_entry.instruction
        seq = t_entry.seq

        if not instr.is_conditional_branch:
            # Unconditional: the target is known at decode; one-cycle
            # fetch redirect.
            return True, cycle + 1

        if seq not in predicted_correct:
            backward = bool(t_entry.backward)
            prediction = predictor.predict(t_entry.static_index, backward)
            correct = predictor.record(prediction, bool(t_entry.taken))
            predictor.update(t_entry.static_index, bool(t_entry.taken))
            predicted_correct[seq] = correct

        if predicted_correct[seq]:
            # Fetch already went the right way; continue next cycle.
            return True, cycle + 1

        # Misprediction: correct-path issue resumes only at resolution
        # (A0 available + branch time) plus the recovery penalty.
        a0_ready = tag_ready(operand_tag(A0))
        if a0_ready == _UNKNOWN or a0_ready > cycle:
            return False, 0
        return True, cycle + branch_latency + self.misprediction_penalty
