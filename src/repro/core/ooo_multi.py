"""Multiple issue units with out-of-order issue -- Section 5.2.

Same instruction buffer as the in-order machine (N slots, refilled only
when every slot has issued, flushed by a taken branch), but a blocked
instruction no longer stops its successors: any buffer slot may issue once

* it has no RAW or WAW hazard against *unissued earlier* slots or against
  in-flight instructions,
* every branch earlier in the buffer has resolved (no speculation -- the
  machine has no branch prediction),
* its functional unit and a result-bus slot are available.

The paper does not mention WAR hazards ("write after read hazards are not
important in a single processor situation") because its earlier machines
read operands in program order at issue.  Once issue is out of order a
later write can overtake an earlier unissued read, so a correct
implementation must block it; we enforce WAR by default and expose the
paper's implicit behaviour as an ablation flag (``enforce_war=False``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa import FunctionalUnit, Register
from ..obs.events import EventKind, SimEvent, hook_installed
from ..trace import Trace, TraceEntry
from . import fastpath
from .base import Simulator, require_scalar_trace
from .buses import BusKind, ResultBuses
from .config import MachineConfig
from .result import SimulationResult

#: Cap on how long a single buffer may take to drain; generous enough for
#: any real schedule, small enough to catch livelock bugs in development.
_MAX_BUFFER_CYCLES = 100_000


class OutOfOrderMultiIssueMachine(Simulator):
    """N issue units, out-of-order issue within the instruction buffer.

    Args:
        issue_units: number of issue stations N.
        bus_kind: result-bus interconnect model.
        enforce_war: block WAR hazards between buffer slots (correct
            hardware); disable only for the ablation discussed in the
            module docstring.
    """

    def __init__(
        self,
        issue_units: int,
        bus_kind: BusKind = BusKind.N_BUS,
        *,
        enforce_war: bool = True,
    ) -> None:
        if issue_units < 1:
            raise ValueError("need at least one issue unit")
        self.issue_units = issue_units
        self.bus_kind = bus_kind
        self.enforce_war = enforce_war

    @property
    def name(self) -> str:
        war = "" if self.enforce_war else ", no-WAR"
        return f"out-of-order x{self.issue_units} ({self.bus_kind}{war})"

    # ------------------------------------------------------------------
    def simulate(self, trace: Trace, config: MachineConfig) -> SimulationResult:
        # hook_installed is re-read per call so a hook attached after
        # construction always gets the event-emitting reference loop.
        if fastpath.enabled() and not hook_installed(self):
            return fastpath.simulate_ooo_fast(self, trace, config)
        return self._simulate(trace, config, self.on_event)

    def reference_simulate(
        self, trace: Trace, config: MachineConfig
    ) -> SimulationResult:
        """The pre-fast-path out-of-order loop, hook plumbing disabled.

        The differential tests and the cross-machine oracle use this as
        the baseline the compiled fast loop must match bit-for-bit.
        """
        return self._simulate(trace, config, None)

    def _simulate(
        self, trace: Trace, config: MachineConfig, emit
    ) -> SimulationResult:
        require_scalar_trace(trace, self.name)
        latencies = config.latencies
        branch_latency = config.branch_latency

        reg_ready: Dict[Register, int] = {}
        fu_free: Dict[FunctionalUnit, int] = {}
        buses = ResultBuses(self.bus_kind, self.issue_units)

        entries = trace.entries
        n_entries = len(entries)
        pos = 0
        cycle = 0
        last_event = 0

        while pos < n_entries:
            buffer = self._fetch_buffer(entries, pos)
            issued: List[bool] = [False] * len(buffer)
            # Resolution cycle of each issued branch slot (None = unissued).
            branch_resolve: List[Optional[int]] = [None] * len(buffer)
            remaining = len(buffer)
            barrier = 0  # latest branch resolution; gates the next buffer
            guard = 0

            while remaining:
                guard += 1
                if guard > _MAX_BUFFER_CYCLES:  # pragma: no cover - bug trap
                    raise RuntimeError(
                        f"buffer failed to drain at trace pos {pos}"
                    )
                progressed = False
                for slot, entry in enumerate(buffer):
                    if issued[slot]:
                        continue
                    if not self._control_ready(buffer, branch_resolve, slot, cycle):
                        continue
                    instr = entry.instruction
                    if self._register_conflict(buffer, issued, slot, instr):
                        continue
                    latency = instr.latency(latencies)
                    if self._earliest_issue(instr, cycle, reg_ready, fu_free) > cycle:
                        continue
                    if instr.dest is not None and not buses.can_reserve(
                        slot, cycle + latency
                    ):
                        continue

                    # Issue slot at `cycle`.
                    issued[slot] = True
                    remaining -= 1
                    progressed = True
                    complete = cycle + latency
                    fu_free[instr.unit] = cycle + 1
                    if instr.dest is not None:
                        reg_ready[instr.dest] = complete
                        buses.reserve(slot, complete)
                    if not instr.is_branch and complete > last_event:
                        last_event = complete
                    if emit is not None:
                        emit(SimEvent(EventKind.ISSUE, entry.seq, cycle))
                        emit(SimEvent(
                            EventKind.COMPLETE, entry.seq,
                            cycle + branch_latency if instr.is_branch
                            else complete,
                        ))
                    if instr.is_branch:
                        resolve = cycle + branch_latency
                        branch_resolve[slot] = resolve
                        if resolve > last_event:
                            last_event = resolve
                        if resolve > barrier:
                            barrier = resolve
                if remaining:
                    cycle += 1

            if emit is not None and buffer:
                tail = buffer[-1]
                if tail.is_branch and tail.taken:
                    # Fetch redirected at the taken branch: the rest of
                    # the fetch group never entered the buffer.
                    emit(SimEvent(
                        EventKind.FLUSH, tail.seq, barrier,
                        reason="TAKEN_BRANCH",
                        cycles=self.issue_units - len(buffer),
                    ))
            pos += len(buffer)
            # The next buffer is available the cycle after the last issue,
            # but never before every branch in this buffer has resolved
            # (instructions after a branch are control-dependent on it,
            # taken or not -- the machine does not speculate).
            cycle = max(cycle + 1, barrier)

        cycles = max(last_event, 1)
        return SimulationResult(
            trace_name=trace.name,
            simulator=self.name,
            config=config,
            instructions=n_entries,
            cycles=cycles,
        )

    # ------------------------------------------------------------------
    def _fetch_buffer(self, entries, pos: int) -> List[TraceEntry]:
        """Up to N entries, cut after the first taken branch (fetch redirect)."""
        buffer: List[TraceEntry] = []
        for entry in entries[pos : pos + self.issue_units]:
            buffer.append(entry)
            if entry.is_branch and entry.taken:
                break
        return buffer

    @staticmethod
    def _control_ready(buffer, branch_resolve, slot, cycle) -> bool:
        """No unresolved branch in an earlier slot (no speculation)."""
        for earlier in range(slot):
            if buffer[earlier].instruction.is_branch:
                resolve = branch_resolve[earlier]
                if resolve is None or resolve > cycle:
                    return False
        return True

    def _register_conflict(self, buffer, issued, slot, instr) -> bool:
        """RAW/WAW (and optionally WAR) against unissued earlier slots."""
        sources = instr.source_registers
        dest = instr.dest
        for earlier in range(slot):
            if issued[earlier]:
                continue
            other = buffer[earlier].instruction
            other_dest = other.dest
            if other_dest is not None:
                if other_dest in sources:  # RAW
                    return True
                if dest is not None and other_dest == dest:  # WAW
                    return True
            if (
                self.enforce_war
                and dest is not None
                and dest in other.source_registers
            ):  # WAR
                return True
        return False

    @staticmethod
    def _earliest_issue(instr, cycle, reg_ready, fu_free) -> int:
        earliest = cycle
        for src in instr.source_registers:
            ready = reg_ready.get(src, 0)
            if ready > earliest:
                earliest = ready
        if instr.dest is not None:
            ready = reg_ready.get(instr.dest, 0)
            if ready > earliest:
                earliest = ready
        unit_free = fu_free.get(instr.unit, 0)
        if unit_free > earliest:
            earliest = unit_free
        return earliest
