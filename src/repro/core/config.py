"""Machine configurations: the paper's four memory/branch variants.

Section 2: "Since the memory access time and the branch execution time are
orthogonal parameters, for each issue method, four machine variations were
studied: (1) M11BR5, (2) M11BR2, (3) M5BR5, and (4) M5BR2."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..isa import (
    FAST_BRANCH_LATENCY,
    FAST_MEMORY_LATENCY,
    SLOW_BRANCH_LATENCY,
    SLOW_MEMORY_LATENCY,
    LatencyTable,
)


@dataclass(frozen=True)
class MachineConfig:
    """Timing parameters shared by every issue method.

    Attributes:
        memory_latency: cycles from load issue to register availability
            (11 = CRAY-1 memory, 5 = fast intermediate storage).
        branch_latency: cycles from branch issue until the instruction
            stream resumes (5 = CRAY-1S slow branch, 2 = fast branch).
    """

    memory_latency: int = SLOW_MEMORY_LATENCY
    branch_latency: int = SLOW_BRANCH_LATENCY

    def __post_init__(self) -> None:
        if self.memory_latency < 1:
            raise ValueError("memory latency must be >= 1")
        if self.branch_latency < 1:
            raise ValueError("branch latency must be >= 1")

    @property
    def name(self) -> str:
        """The paper's naming scheme, e.g. ``"M11BR5"``."""
        return f"M{self.memory_latency}BR{self.branch_latency}"

    @property
    def latencies(self) -> LatencyTable:
        """The full functional-unit latency table for this variant."""
        return LatencyTable(
            memory_latency=self.memory_latency,
            branch_latency=self.branch_latency,
        )

    def __str__(self) -> str:
        return self.name


#: The paper's four standard machine variants, in table order.
M11BR5 = MachineConfig(SLOW_MEMORY_LATENCY, SLOW_BRANCH_LATENCY)
M11BR2 = MachineConfig(SLOW_MEMORY_LATENCY, FAST_BRANCH_LATENCY)
M5BR5 = MachineConfig(FAST_MEMORY_LATENCY, SLOW_BRANCH_LATENCY)
M5BR2 = MachineConfig(FAST_MEMORY_LATENCY, FAST_BRANCH_LATENCY)

STANDARD_CONFIGS: Tuple[MachineConfig, ...] = (M11BR5, M11BR2, M5BR5, M5BR2)

CONFIGS_BY_NAME: Dict[str, MachineConfig] = {
    config.name: config for config in STANDARD_CONFIGS
}


def config_by_name(name: str) -> MachineConfig:
    """Look up a standard configuration (``"M11BR5"`` etc.) by name."""
    try:
        return CONFIGS_BY_NAME[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown machine configuration {name!r}; standard names are "
            f"{sorted(CONFIGS_BY_NAME)}"
        ) from None
