"""Single-issue, issue-blocking machines of Section 3.2.

One instruction may issue per cycle, in program order.  Issue blocks on:

* RAW hazards -- a source register with an outstanding write;
* WAW hazards -- the destination register with an outstanding write;
* structural hazards -- the functional unit cannot accept the operation
  (a non-pipelined unit is busy for its whole latency; a pipelined unit
  accepts one new operation per cycle);
* branches -- after a branch issues (which itself waits for A0), no
  instruction issues for ``branch_latency`` cycles.

Three of the paper's four basic organisations are instances of this model
(the fourth, the Simple machine, lives in :mod:`repro.core.simple`):

====================  ====================  =====================
organisation          functional units      memory
====================  ====================  =====================
``SerialMemory``      non-pipelined         one request at a time
``NonSegmented``      non-pipelined         interleaved
``CRAY-like``         pipelined             interleaved
====================  ====================  =====================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from ..isa import FunctionalUnit, Register
from ..trace import Trace
from .base import Simulator
from .config import MachineConfig
from .result import SimulationResult


class StallReason(enum.Enum):
    """What finally gated an instruction's issue cycle."""

    NONE = "no stall"
    RAW = "waiting for a source register"
    WAW = "waiting for the destination register"
    UNIT = "functional unit busy"
    BUS = "result bus conflict"
    BRANCH = "waiting for a branch to resolve"


@dataclass(frozen=True)
class IssueRecord:
    """Per-instruction schedule record (produced with ``record=``).

    Attributes:
        seq: dynamic instruction index.
        issue: cycle the instruction issued.
        complete: cycle its result (or branch resolution) was available.
        stall: the binding constraint, i.e. the reason the instruction did
            not issue earlier (``NONE`` when it issued back-to-back).
        stall_cycles: cycles lost to that constraint beyond the earliest
            in-order slot.
    """

    seq: int
    issue: int
    complete: int
    stall: StallReason
    stall_cycles: int


#: Callback receiving one IssueRecord per simulated instruction.
ScheduleRecorder = Callable[[IssueRecord], None]


class ScoreboardMachine(Simulator):
    """Single-issue in-order machine with configurable unit pipelining.

    Args:
        fu_pipelined: if True, non-memory functional units accept a new
            operation every cycle; otherwise a unit is busy for the whole
            latency of each operation.
        memory_interleaved: if True, the memory accepts a new request every
            cycle (an interleaved/pipelined memory); otherwise it services
            a single request at a time.
        model_result_bus: if True (default), the machine has a single
            result bus to the register file -- one register write per
            cycle, checked at issue time like the CRAY-1 does.  With this
            on, the CRAY-like machine is numerically identical to the
            multi-issue machines at one issue station.
        label: display name; defaults to the paper's name for the
            flag combination.
    """

    def __init__(
        self,
        *,
        fu_pipelined: bool,
        memory_interleaved: bool,
        model_result_bus: bool = True,
        vector_chaining: bool = True,
        label: str = "",
    ) -> None:
        self.fu_pipelined = fu_pipelined
        self.memory_interleaved = memory_interleaved
        self.model_result_bus = model_result_bus
        #: Vector extension: with chaining (the CRAY-1 feature) a vector
        #: result can feed a dependent vector operation as elements are
        #: produced (ready at issue + latency); without it the consumer
        #: waits for the full vector (issue + latency + VL).
        self.vector_chaining = vector_chaining
        self._label = label or self._default_label()

    def _default_label(self) -> str:
        if self.fu_pipelined and self.memory_interleaved:
            return "CRAY-like"
        if self.memory_interleaved:
            return "NonSegmented"
        if not self.fu_pipelined:
            return "SerialMemory"
        return "Pipelined/SerialMemory"

    @property
    def name(self) -> str:
        return self._label

    # ------------------------------------------------------------------
    def simulate(self, trace: Trace, config: MachineConfig) -> SimulationResult:
        return self.simulate_recorded(trace, config, None)

    def simulate_recorded(
        self,
        trace: Trace,
        config: MachineConfig,
        recorder: Optional[ScheduleRecorder],
    ) -> SimulationResult:
        """Like :meth:`simulate`, optionally emitting an
        :class:`IssueRecord` per instruction (used by
        :mod:`repro.analysis` for stall attribution and timelines)."""
        latencies = config.latencies
        branch_latency = config.branch_latency

        reg_ready: Dict[Register, int] = {}
        reg_write_done: Dict[Register, int] = {}  # full completion (WAW)
        fu_free: Dict[FunctionalUnit, int] = {}
        bus_reserved: Set[int] = set()
        next_issue = 0
        prev_issue = -1
        after_branch = False
        last_event = 0

        for entry in trace:
            instr = entry.instruction
            unit = instr.unit
            latency = instr.latency(latencies)
            is_vector = instr.is_vector
            vl = entry.vector_length if is_vector else 0
            uses_bus = instr.dest is not None and not is_vector and (
                instr.dest.is_address or instr.dest.is_scalar
            )

            earliest = next_issue
            reason = StallReason.BRANCH if after_branch else StallReason.NONE
            for src in instr.source_registers:
                ready = reg_ready.get(src, 0)
                if ready > earliest:
                    earliest = ready
                    reason = StallReason.RAW
            if instr.dest is not None:
                ready = reg_write_done.get(
                    instr.dest, reg_ready.get(instr.dest, 0)
                )
                if ready > earliest:
                    earliest = ready
                    reason = StallReason.WAW
            unit_free = fu_free.get(unit, 0)
            if unit_free > earliest:
                earliest = unit_free
                reason = StallReason.UNIT
            if self.model_result_bus and uses_bus:
                while earliest + latency in bus_reserved:
                    earliest += 1
                    reason = StallReason.BUS

            issue = earliest
            # A vector operation streams vl elements: its full result
            # exists at issue + latency + vl, its first at issue + latency.
            complete = issue + latency + (vl if is_vector else 0)
            if self.model_result_bus and uses_bus:
                bus_reserved.add(complete)

            if unit is FunctionalUnit.MEMORY:
                pipelined = self.memory_interleaved
            elif unit is FunctionalUnit.BRANCH:
                pipelined = True  # branch spacing is handled below
            else:
                pipelined = self.fu_pipelined or latency <= 1
            if is_vector:
                # The unit streams one element per cycle for vl cycles
                # (non-pipelined units additionally drain their latency).
                fu_free[unit] = issue + vl if pipelined else complete
            else:
                fu_free[unit] = issue + 1 if pipelined else complete

            if instr.dest is not None:
                if is_vector and self.vector_chaining:
                    reg_ready[instr.dest] = issue + latency  # chain point
                else:
                    reg_ready[instr.dest] = complete
                reg_write_done[instr.dest] = complete

            if instr.is_branch:
                # The stream resumes only after the branch executes.
                next_issue = issue + branch_latency
                complete = issue + branch_latency
                after_branch = True
            else:
                next_issue = issue + 1
                after_branch = False

            if complete > last_event:
                last_event = complete

            if recorder is not None:
                stall_cycles = max(0, issue - (prev_issue + 1))
                recorder(
                    IssueRecord(
                        seq=entry.seq,
                        issue=issue,
                        complete=complete,
                        stall=reason if stall_cycles else StallReason.NONE,
                        stall_cycles=stall_cycles,
                    )
                )
            prev_issue = issue

        return SimulationResult(
            trace_name=trace.name,
            simulator=self.name,
            config=config,
            instructions=len(trace),
            cycles=last_event,
        )


def serial_memory_machine() -> ScoreboardMachine:
    """Non-pipelined units, one-at-a-time memory (Section 3.2)."""
    return ScoreboardMachine(fu_pipelined=False, memory_interleaved=False)


def non_segmented_machine() -> ScoreboardMachine:
    """Non-pipelined units, interleaved memory (the CDC 6600 layout)."""
    return ScoreboardMachine(fu_pipelined=False, memory_interleaved=True)


def cray_like_machine() -> ScoreboardMachine:
    """Fully pipelined units, interleaved memory (the CRAY organisation)."""
    return ScoreboardMachine(fu_pipelined=True, memory_interleaved=True)
