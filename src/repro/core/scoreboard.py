"""Single-issue, issue-blocking machines of Section 3.2.

One instruction may issue per cycle, in program order.  Issue blocks on:

* RAW hazards -- a source register with an outstanding write;
* WAW hazards -- the destination register with an outstanding write;
* structural hazards -- the functional unit cannot accept the operation
  (a non-pipelined unit is busy for its whole latency; a pipelined unit
  accepts one new operation per cycle);
* branches -- after a branch issues (which itself waits for A0), no
  instruction issues for ``branch_latency`` cycles.

Three of the paper's four basic organisations are instances of this model
(the fourth, the Simple machine, lives in :mod:`repro.core.simple`):

====================  ====================  =====================
organisation          functional units      memory
====================  ====================  =====================
``SerialMemory``      non-pipelined         one request at a time
``NonSegmented``      non-pipelined         interleaved
``CRAY-like``         pipelined             interleaved
====================  ====================  =====================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from ..isa import FunctionalUnit, Register
from ..obs.events import EventCallback, EventKind, SimEvent, hook_installed, tee
from ..trace import Trace
from . import fastpath
from .base import Simulator
from .config import MachineConfig
from .result import SimulationResult


class StallReason(enum.Enum):
    """What finally gated an instruction's issue cycle."""

    NONE = "no stall"
    RAW = "waiting for a source register"
    WAW = "waiting for the destination register"
    UNIT = "functional unit busy"
    BUS = "result bus conflict"
    BRANCH = "waiting for a branch to resolve"


@dataclass(frozen=True)
class IssueRecord:
    """Per-instruction schedule record (produced with ``record=``).

    Attributes:
        seq: dynamic instruction index.
        issue: cycle the instruction issued.
        complete: cycle its result (or branch resolution) was available.
        stall: the binding constraint, i.e. the reason the instruction did
            not issue earlier (``NONE`` when it issued back-to-back).
        stall_cycles: cycles lost to that constraint beyond the earliest
            in-order slot.
    """

    seq: int
    issue: int
    complete: int
    stall: StallReason
    stall_cycles: int


#: Callback receiving one IssueRecord per simulated instruction.
ScheduleRecorder = Callable[[IssueRecord], None]


class EventRecorder:
    """Adapts the typed event stream back into :class:`IssueRecord`\\ s.

    The scoreboard emits, per instruction and in order: an optional
    ``STALL`` (when issue was delayed), an ``ISSUE``, then a
    ``COMPLETE``.  This adapter folds that triple back into the
    per-instruction record shape that :mod:`repro.analysis` aggregates,
    so stall attribution and timelines consume the same stream as any
    other event subscriber.
    """

    def __init__(self, recorder: ScheduleRecorder) -> None:
        self._recorder = recorder
        self._issue_cycle = 0
        self._stall = StallReason.NONE
        self._stall_cycles = 0

    def __call__(self, event: SimEvent) -> None:
        if event.kind is EventKind.STALL:
            self._stall = StallReason[event.reason]
            self._stall_cycles = event.cycles
        elif event.kind is EventKind.ISSUE:
            self._issue_cycle = event.cycle
        elif event.kind is EventKind.COMPLETE:
            self._recorder(
                IssueRecord(
                    seq=event.seq,
                    issue=self._issue_cycle,
                    complete=event.cycle,
                    stall=self._stall,
                    stall_cycles=self._stall_cycles,
                )
            )
            self._stall = StallReason.NONE
            self._stall_cycles = 0


class ScoreboardMachine(Simulator):
    """Single-issue in-order machine with configurable unit pipelining.

    Args:
        fu_pipelined: if True, non-memory functional units accept a new
            operation every cycle; otherwise a unit is busy for the whole
            latency of each operation.
        memory_interleaved: if True, the memory accepts a new request every
            cycle (an interleaved/pipelined memory); otherwise it services
            a single request at a time.
        model_result_bus: if True (default), the machine has a single
            result bus to the register file -- one register write per
            cycle, checked at issue time like the CRAY-1 does.  With this
            on, the CRAY-like machine is numerically identical to the
            multi-issue machines at one issue station.
        label: display name; defaults to the paper's name for the
            flag combination.
    """

    def __init__(
        self,
        *,
        fu_pipelined: bool,
        memory_interleaved: bool,
        model_result_bus: bool = True,
        vector_chaining: bool = True,
        label: str = "",
    ) -> None:
        self.fu_pipelined = fu_pipelined
        self.memory_interleaved = memory_interleaved
        self.model_result_bus = model_result_bus
        #: Vector extension: with chaining (the CRAY-1 feature) a vector
        #: result can feed a dependent vector operation as elements are
        #: produced (ready at issue + latency); without it the consumer
        #: waits for the full vector (issue + latency + VL).
        self.vector_chaining = vector_chaining
        self._label = label or self._default_label()

    def _default_label(self) -> str:
        if self.fu_pipelined and self.memory_interleaved:
            return "CRAY-like"
        if self.memory_interleaved:
            return "NonSegmented"
        if not self.fu_pipelined:
            return "SerialMemory"
        return "Pipelined/SerialMemory"

    @property
    def name(self) -> str:
        return self._label

    # ------------------------------------------------------------------
    def simulate(self, trace: Trace, config: MachineConfig) -> SimulationResult:
        # Hook presence is re-read on every call (never cached), so a
        # subscriber attached after construction -- or installed
        # temporarily via simulate_observed -- always gets the
        # event-emitting reference loop.  The compiled fast path is
        # bit-identical (tests/test_fastpath_diff.py, the oracle's
        # fastpath-dual check) but emits no events.
        if fastpath.enabled() and not hook_installed(self):
            return fastpath.simulate_scoreboard_fast(self, trace, config)
        return self._simulate(trace, config, self.on_event)

    def simulate_recorded(
        self,
        trace: Trace,
        config: MachineConfig,
        recorder: Optional[ScheduleRecorder],
    ) -> SimulationResult:
        """Like :meth:`simulate`, optionally emitting an
        :class:`IssueRecord` per instruction (used by
        :mod:`repro.analysis` for stall attribution and timelines).

        The records are derived from the same typed event stream any
        ``on_event`` subscriber sees, via :class:`EventRecorder`; an
        installed ``on_event`` hook keeps receiving events alongside.
        """
        if recorder is None:
            return self.simulate(trace, config)
        if self.on_event is None:
            emit: Optional[EventCallback] = EventRecorder(recorder)
        else:
            emit = tee(self.on_event, EventRecorder(recorder))
        return self._simulate(trace, config, emit)

    def _simulate(
        self,
        trace: Trace,
        config: MachineConfig,
        emit: Optional[EventCallback],
    ) -> SimulationResult:
        latencies = config.latencies
        branch_latency = config.branch_latency

        reg_ready: Dict[Register, int] = {}
        reg_write_done: Dict[Register, int] = {}  # full completion (WAW)
        fu_free: Dict[FunctionalUnit, int] = {}
        bus_reserved: Set[int] = set()
        next_issue = 0
        prev_issue = -1
        after_branch = False
        last_event = 0
        # Hoisted so reason tracking costs local stores, not enum
        # attribute lookups; with no subscriber the per-instruction price
        # of the hook plumbing is just the `emit is not None` tests
        # (bench_hooks.py gates that price in CI).
        tracking = emit is not None
        reason_none = StallReason.NONE
        reason_raw = StallReason.RAW
        reason_waw = StallReason.WAW
        reason_unit = StallReason.UNIT
        reason_bus = StallReason.BUS
        reason_branch = StallReason.BRANCH
        reason = reason_none

        for entry in trace:
            instr = entry.instruction
            unit = instr.unit
            latency = instr.latency(latencies)
            is_vector = instr.is_vector
            vl = entry.vector_length if is_vector else 0
            uses_bus = instr.dest is not None and not is_vector and (
                instr.dest.is_address or instr.dest.is_scalar
            )

            earliest = next_issue
            for src in instr.source_registers:
                ready = reg_ready.get(src, 0)
                if ready > earliest:
                    earliest = ready
                    reason = reason_raw
            if instr.dest is not None:
                ready = reg_write_done.get(
                    instr.dest, reg_ready.get(instr.dest, 0)
                )
                if ready > earliest:
                    earliest = ready
                    reason = reason_waw
            unit_free = fu_free.get(unit, 0)
            if unit_free > earliest:
                earliest = unit_free
                reason = reason_unit
            if self.model_result_bus and uses_bus:
                while earliest + latency in bus_reserved:
                    earliest += 1
                    reason = reason_bus

            issue = earliest
            # A vector operation streams vl elements: its full result
            # exists at issue + latency + vl, its first at issue + latency.
            complete = issue + latency + (vl if is_vector else 0)
            if self.model_result_bus and uses_bus:
                bus_reserved.add(complete)

            if unit is FunctionalUnit.MEMORY:
                pipelined = self.memory_interleaved
            elif unit is FunctionalUnit.BRANCH:
                pipelined = True  # branch spacing is handled below
            else:
                pipelined = self.fu_pipelined or latency <= 1
            if is_vector:
                # The unit streams one element per cycle for vl cycles
                # (non-pipelined units additionally drain their latency).
                fu_free[unit] = issue + vl if pipelined else complete
            else:
                fu_free[unit] = issue + 1 if pipelined else complete

            if instr.dest is not None:
                if is_vector and self.vector_chaining:
                    reg_ready[instr.dest] = issue + latency  # chain point
                else:
                    reg_ready[instr.dest] = complete
                reg_write_done[instr.dest] = complete

            if instr.is_branch:
                # The stream resumes only after the branch executes.
                next_issue = issue + branch_latency
                complete = issue + branch_latency
                after_branch = True
            else:
                next_issue = issue + 1
                after_branch = False

            if complete > last_event:
                last_event = complete

            if tracking:
                stall_cycles = issue - prev_issue - 1
                if stall_cycles > 0:
                    emit(SimEvent(
                        EventKind.STALL, entry.seq, issue,
                        reason=reason.name, cycles=stall_cycles,
                    ))
                emit(SimEvent(EventKind.ISSUE, entry.seq, issue))
                emit(SimEvent(EventKind.COMPLETE, entry.seq, complete))
                prev_issue = issue
                # Seed the next instruction's binding constraint here (one
                # tracking test per instruction, not two): `after_branch`
                # already reflects the instruction just handled.
                reason = reason_branch if after_branch else reason_none

        return SimulationResult(
            trace_name=trace.name,
            simulator=self.name,
            config=config,
            instructions=len(trace),
            cycles=last_event,
        )

    # ------------------------------------------------------------------
    def reference_simulate(
        self, trace: Trace, config: MachineConfig
    ) -> SimulationResult:
        """The seed implementation, kept verbatim with no hook plumbing.

        This is the golden baseline for the event-hook work: tests assert
        :meth:`simulate` (hooks disabled) is bit-identical to it, and
        ``benchmarks/bench_hooks.py`` measures the disabled-hook overhead
        against it (CI gates at <2%).  Keep it in lockstep with any
        timing-model change to :meth:`_simulate`.
        """
        latencies = config.latencies
        branch_latency = config.branch_latency

        reg_ready: Dict[Register, int] = {}
        reg_write_done: Dict[Register, int] = {}
        fu_free: Dict[FunctionalUnit, int] = {}
        bus_reserved: Set[int] = set()
        next_issue = 0
        last_event = 0

        for entry in trace:
            instr = entry.instruction
            unit = instr.unit
            latency = instr.latency(latencies)
            is_vector = instr.is_vector
            vl = entry.vector_length if is_vector else 0
            uses_bus = instr.dest is not None and not is_vector and (
                instr.dest.is_address or instr.dest.is_scalar
            )

            earliest = next_issue
            for src in instr.source_registers:
                ready = reg_ready.get(src, 0)
                if ready > earliest:
                    earliest = ready
            if instr.dest is not None:
                ready = reg_write_done.get(
                    instr.dest, reg_ready.get(instr.dest, 0)
                )
                if ready > earliest:
                    earliest = ready
            unit_free = fu_free.get(unit, 0)
            if unit_free > earliest:
                earliest = unit_free
            if self.model_result_bus and uses_bus:
                while earliest + latency in bus_reserved:
                    earliest += 1

            issue = earliest
            complete = issue + latency + (vl if is_vector else 0)
            if self.model_result_bus and uses_bus:
                bus_reserved.add(complete)

            if unit is FunctionalUnit.MEMORY:
                pipelined = self.memory_interleaved
            elif unit is FunctionalUnit.BRANCH:
                pipelined = True
            else:
                pipelined = self.fu_pipelined or latency <= 1
            if is_vector:
                fu_free[unit] = issue + vl if pipelined else complete
            else:
                fu_free[unit] = issue + 1 if pipelined else complete

            if instr.dest is not None:
                if is_vector and self.vector_chaining:
                    reg_ready[instr.dest] = issue + latency
                else:
                    reg_ready[instr.dest] = complete
                reg_write_done[instr.dest] = complete

            if instr.is_branch:
                next_issue = issue + branch_latency
                complete = issue + branch_latency
            else:
                next_issue = issue + 1

            if complete > last_event:
                last_event = complete

        return SimulationResult(
            trace_name=trace.name,
            simulator=self.name,
            config=config,
            instructions=len(trace),
            cycles=last_event,
        )


def serial_memory_machine() -> ScoreboardMachine:
    """Non-pipelined units, one-at-a-time memory (Section 3.2)."""
    return ScoreboardMachine(fu_pipelined=False, memory_interleaved=False)


def non_segmented_machine() -> ScoreboardMachine:
    """Non-pipelined units, interleaved memory (the CDC 6600 layout)."""
    return ScoreboardMachine(fu_pipelined=False, memory_interleaved=True)


def cray_like_machine() -> ScoreboardMachine:
    """Fully pipelined units, interleaved memory (the CRAY organisation)."""
    return ScoreboardMachine(fu_pipelined=True, memory_interleaved=True)
