"""Fast replay path: per-trace precompilation + flat-integer inner loops.

The reference simulators (:mod:`repro.core.scoreboard`,
:mod:`repro.core.inorder_multi`) spend most of their wall time in
per-instruction Python object churn: property chains
(``entry.instruction.unit`` walks two dataclasses and an enum),
``Instruction.source_registers`` building fresh tuples with
``isinstance`` filtering, ``latency()`` method calls, and scoreboard
dictionaries keyed by frozen-dataclass :class:`~repro.isa.registers.Register`
objects whose ``__hash__`` is recomputed on every lookup.  None of that
work depends on the cycle being modelled -- it is the same for every
replay of the same trace.

:func:`compile_trace` therefore lowers a :class:`~repro.trace.Trace`
once into flat parallel tuples of small integers -- functional-unit
index, destination/source register ids, branch/vector/bus flags, vector
length -- resolved a single time up front and cached per trace object.
The rewritten inner loops (:func:`simulate_scoreboard_fast`,
:func:`simulate_inorder_fast`) then run on integer ready-cycle arrays
(one ``int`` slot per architectural register and per functional unit)
instead of hash tables, index per-unit latency/pipelining tables built
once per call, and keep a min-heap of outstanding completion events so
stale result-bus reservations are pruned as the issue front passes them
(state stays O(outstanding writes), not O(trace length)).

Like the reference loops, the fast loops never scan idle cycles: both
jump straight from one issue decision to the next, so the only scans
left are the short result-bus conflict probes, which the heap keeps
bounded.

Bit-identity is a hard invariant, enforced three ways:

* machines auto-select this path **only** when no ``on_event`` hook is
  installed (:func:`repro.obs.events.hook_installed` is the single
  presence test) and fall back to the reference loop otherwise;
* ``tests/test_fastpath_diff.py`` replays hundreds of fuzzed traces
  through both paths and compares cycle counts, issue rates and
  per-instruction issue/completion schedules;
* the cross-machine oracle (:mod:`repro.verify.oracle`) checks the
  fast path against ``reference_simulate`` as an exact dual on every
  ``repro verify`` replay, including the nightly 1000-seed shards.

Setting ``REPRO_FASTPATH=0`` in the environment (or calling
:func:`set_enabled`) disables the fast path globally; the golden-table
tests exercise both modes.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..isa.functional_units import FunctionalUnit
from ..isa.registers import RegFile
from ..trace import Trace
from .buses import BusKind
from .config import MachineConfig
from .result import SimulationResult

__all__ = [
    "CompiledTrace",
    "compile_trace",
    "enabled",
    "reset_stats",
    "set_enabled",
    "simulate_inorder_fast",
    "simulate_scoreboard_fast",
    "stats",
]

# ----------------------------------------------------------------------
# Dense id spaces: registers and functional units
# ----------------------------------------------------------------------

#: Functional units in enum order; a unit's id is its position here.
UNITS: Tuple[FunctionalUnit, ...] = tuple(FunctionalUnit)
_UNIT_INDEX: Dict[FunctionalUnit, int] = {u: i for i, u in enumerate(UNITS)}
_MEMORY = _UNIT_INDEX[FunctionalUnit.MEMORY]
_BRANCH = _UNIT_INDEX[FunctionalUnit.BRANCH]

#: file -> first register id, packing every architectural register into
#: one dense 0..N_REGISTERS-1 space (A, S, B, T, V, L in enum order).
_FILE_OFFSETS: Dict[RegFile, int] = {}
_offset = 0
for _file in RegFile:
    _FILE_OFFSETS[_file] = _offset
    _offset += _file.size
N_REGISTERS = _offset
del _offset, _file


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------

#: One lowered trace entry:
#: ``(unit, dest, srcs, is_branch, taken, is_vector, vl, uses_bus)``
#: where ``unit`` indexes :data:`UNITS`, ``dest`` is a register id or
#: -1, ``srcs`` is a tuple of register ids (implicit vector-length reads
#: included), and ``uses_bus`` mirrors the scoreboard's result-bus test
#: (scalar A/B/S/T destination).
Op = Tuple[int, int, Tuple[int, ...], bool, bool, bool, int, bool]


@dataclass(frozen=True)
class CompiledTrace:
    """A trace lowered to flat per-instruction integer tuples.

    Machine- and config-independent: latencies and pipelining are
    resolved per :class:`~repro.core.config.MachineConfig` at simulation
    time from 12-entry per-unit tables, so one compilation serves every
    machine variant.
    """

    name: str
    n: int
    ops: Tuple[Op, ...]
    has_vector: bool


#: Compile results keyed by ``id(trace)``; the paired weak reference
#: both validates the key (id reuse after garbage collection) and evicts
#: the entry when the trace dies.
_CACHE: Dict[int, Tuple["weakref.ref[Trace]", CompiledTrace]] = {}

_STATS = {"compiles": 0, "cache_hits": 0, "fast_runs": 0}

_ENABLED = os.environ.get("REPRO_FASTPATH", "1") != "0"


def enabled() -> bool:
    """Is fast-path auto-selection on? (``REPRO_FASTPATH=0`` disables.)"""
    return _ENABLED


def set_enabled(value: bool) -> bool:
    """Toggle fast-path auto-selection; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(value)
    return previous


def stats() -> Dict[str, int]:
    """Counters: ``compiles``, ``cache_hits``, ``fast_runs``."""
    return dict(_STATS)


def reset_stats() -> None:
    """Zero the counters (tests and benchmarks use this)."""
    for key in _STATS:
        _STATS[key] = 0


def compile_trace(trace: Trace) -> CompiledTrace:
    """Lower *trace* to flat integer tuples (cached per trace object)."""
    key = id(trace)
    hit = _CACHE.get(key)
    if hit is not None and hit[0]() is trace:
        _STATS["cache_hits"] += 1
        return hit[1]

    file_offsets = _FILE_OFFSETS
    unit_index = _UNIT_INDEX
    ops: List[Op] = []
    has_vector = False
    for entry in trace.entries:
        instr = entry.instruction
        unit = unit_index[instr.unit]
        dest = instr.dest
        if dest is None:
            dest_id = -1
            uses_bus = False
        else:
            dest_id = file_offsets[dest.file] + dest.index
            uses_bus = dest.is_address or dest.is_scalar
        srcs = tuple(
            file_offsets[src.file] + src.index
            for src in instr.source_registers
        )
        is_vector = instr.is_vector
        if is_vector:
            has_vector = True
            uses_bus = False
            vl = entry.vector_length or 0
        else:
            vl = 0
        is_branch = instr.is_branch
        taken = bool(entry.taken) if is_branch else False
        ops.append(
            (unit, dest_id, srcs, is_branch, taken, is_vector, vl, uses_bus)
        )

    compiled = CompiledTrace(
        name=trace.name, n=len(ops), ops=tuple(ops), has_vector=has_vector
    )
    _STATS["compiles"] += 1

    def _evict(_ref: object, _key: int = key) -> None:
        _CACHE.pop(_key, None)

    _CACHE[key] = (weakref.ref(trace, _evict), compiled)
    return compiled


def _unit_tables(
    config: MachineConfig, fu_pipelined: bool, memory_interleaved: bool
) -> Tuple[List[int], List[bool]]:
    """Per-unit latency and pipelining tables for one (machine, config)."""
    table = config.latencies
    latencies = [table.latency(unit) for unit in UNITS]
    pipelined = []
    for index, latency in enumerate(latencies):
        if index == _MEMORY:
            pipelined.append(memory_interleaved)
        elif index == _BRANCH:
            pipelined.append(True)  # branch spacing is modelled separately
        else:
            pipelined.append(fu_pipelined or latency <= 1)
    return latencies, pipelined


#: Per-instruction (issue, complete) pairs, matching the cycles an
#: ``on_event`` subscriber of the reference path would observe.
Schedule = List[Tuple[int, int]]


# ----------------------------------------------------------------------
# Scoreboard family (Section 3.2): single issue, issue-blocking
# ----------------------------------------------------------------------

def simulate_scoreboard_fast(
    machine,
    trace: Trace,
    config: MachineConfig,
    record: Optional[Schedule] = None,
) -> SimulationResult:
    """Fast twin of :meth:`ScoreboardMachine.reference_simulate`.

    Bit-identical by construction: same recurrence, same tie-breaks,
    state held in integer arrays instead of ``Register``/unit-keyed
    dictionaries.  *record*, when given, receives one ``(issue,
    complete)`` pair per instruction -- the same cycles the reference
    path's event stream reports (differential tests compare them).
    """
    compiled = compile_trace(trace)
    _STATS["fast_runs"] += 1
    latencies, pipelined = _unit_tables(
        config, machine.fu_pipelined, machine.memory_interleaved
    )
    branch_latency = config.branch_latency
    model_bus = machine.model_result_bus
    chaining = machine.vector_chaining

    reg_ready = [0] * N_REGISTERS
    write_done = [0] * N_REGISTERS
    fu_free = [0] * len(UNITS)
    # Result-bus reservations: membership set plus a completion-event
    # min-heap.  The issue front (`next_issue`) only ever probes cycles
    # >= next_issue + 1, so reservations at or before it are dead and
    # are pruned as the heap root passes behind the front.
    bus_reserved = set()
    bus_heap: List[int] = []
    next_issue = 0
    last_event = 0
    tracking = record is not None

    for unit, dest, srcs, is_branch, _taken, is_vector, vl, uses_bus in (
        compiled.ops
    ):
        latency = latencies[unit]

        earliest = next_issue
        for src in srcs:
            ready = reg_ready[src]
            if ready > earliest:
                earliest = ready
        if dest >= 0:
            ready = write_done[dest]
            if ready > earliest:
                earliest = ready
        ready = fu_free[unit]
        if ready > earliest:
            earliest = ready
        if model_bus and uses_bus:
            while bus_heap and bus_heap[0] <= next_issue:
                bus_reserved.discard(heappop(bus_heap))
            while earliest + latency in bus_reserved:
                earliest += 1

        issue = earliest
        complete = issue + latency + vl
        if model_bus and uses_bus:
            bus_reserved.add(complete)
            heappush(bus_heap, complete)

        if is_vector:
            fu_free[unit] = issue + vl if pipelined[unit] else complete
        else:
            fu_free[unit] = issue + 1 if pipelined[unit] else complete

        if dest >= 0:
            if is_vector and chaining:
                reg_ready[dest] = issue + latency
            else:
                reg_ready[dest] = complete
            write_done[dest] = complete

        if is_branch:
            next_issue = issue + branch_latency
            complete = next_issue
        else:
            next_issue = issue + 1

        if complete > last_event:
            last_event = complete
        if tracking:
            record.append((issue, complete))

    return SimulationResult(
        trace_name=compiled.name,
        simulator=machine.name,
        config=config,
        instructions=compiled.n,
        cycles=last_event,
    )


# ----------------------------------------------------------------------
# In-order multiple issue (Section 5.1)
# ----------------------------------------------------------------------

def simulate_inorder_fast(
    machine,
    trace: Trace,
    config: MachineConfig,
    record: Optional[Schedule] = None,
) -> SimulationResult:
    """Fast twin of the in-order multi-issue reference loop.

    The reference re-examines a blocked slot after bumping the cycle
    floor; because the machine state is untouched between the two
    examinations, the re-scan returns the same cycle, so this loop
    folds both passes into one ``max`` chain plus one bus probe.  The
    buffer cut (up to N slots, ending at the first taken branch) is
    derived from the compiled ``taken`` flags.
    """
    compiled = compile_trace(trace)
    if compiled.has_vector:
        from .base import scalar_only_error

        raise scalar_only_error(machine.name)
    _STATS["fast_runs"] += 1
    latencies, _ = _unit_tables(config, True, True)
    branch_latency = config.branch_latency
    units = machine.issue_units
    kind = machine.bus_kind
    n_buses = 1 if kind is BusKind.ONE_BUS else units
    xbar = kind is BusKind.X_BAR

    reg_ready = [0] * N_REGISTERS
    fu_free = [0] * len(UNITS)
    buses: List[set] = [set() for _ in range(n_buses)]
    # Completion-event min-heap over reserved writeback cycles: the
    # cycle floor never decreases, so reservations behind it can be
    # dropped from the per-bus sets (same pruning as the scoreboard).
    bus_heap: List[Tuple[int, int]] = []

    ops = compiled.ops
    n_entries = compiled.n
    pos = 0
    cycle = 0
    last_event = 0
    is_branch = False
    tracking = record is not None

    while pos < n_entries:
        end = pos + units
        if end > n_entries:
            end = n_entries
        index = pos
        cut = False
        while index < end:
            unit, dest, srcs, is_branch, taken, _v, _vl, _bus = ops[index]
            latency = latencies[unit]

            earliest = cycle
            for src in srcs:
                ready = reg_ready[src]
                if ready > earliest:
                    earliest = ready
            if dest >= 0:
                ready = reg_ready[dest]
                if ready > earliest:
                    earliest = ready
            ready = fu_free[unit]
            if ready > earliest:
                earliest = ready

            if dest >= 0:
                while bus_heap and bus_heap[0][0] <= cycle:
                    done, bus_index = heappop(bus_heap)
                    buses[bus_index].discard(done)
                target = earliest + latency
                if xbar:
                    while True:
                        chosen = -1
                        for bus_index, reserved in enumerate(buses):
                            if target not in reserved:
                                chosen = bus_index
                                break
                        if chosen >= 0:
                            break
                        earliest += 1
                        target += 1
                else:
                    chosen = (index - pos) % n_buses
                    reserved = buses[chosen]
                    while target in reserved:
                        earliest += 1
                        target += 1
                buses[chosen].add(target)
                heappush(bus_heap, (target, chosen))

            cycle = earliest
            complete = cycle + latency
            fu_free[unit] = cycle + 1
            if dest >= 0:
                reg_ready[dest] = complete
            if not is_branch and complete > last_event:
                last_event = complete
            if tracking:
                record.append((
                    cycle,
                    cycle + branch_latency if is_branch else complete,
                ))
            index += 1

            if is_branch:
                resolve = cycle + branch_latency
                if resolve > last_event:
                    last_event = resolve
                cycle = resolve
                if taken:
                    cut = True
                    break

        pos = index
        if not cut and not is_branch:
            # Full buffer issued, straight-line tail: the refill is
            # overlapped, examinable the cycle after the last issue.
            cycle += 1

    return SimulationResult(
        trace_name=compiled.name,
        simulator=machine.name,
        config=config,
        instructions=n_entries,
        cycles=max(last_event, 1),
    )
