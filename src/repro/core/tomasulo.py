"""Tomasulo-style single-issue machine -- a Section 3.3 baseline.

The second dependency-resolution scheme the paper cites:

    "The instruction issuing scheme used in the IBM 360/91 floating point
    unit issues instructions in spite of RAW and WAW hazards."

Reservation stations in front of each functional unit accept the
instruction at issue; register renaming through station tags removes WAW
(and WAR) blocking entirely.  Issue stalls only when the target unit's
stations are all full or a branch is unresolved.  Results broadcast on a
common data bus (CDB); the bus carries a configurable number of results
per cycle (the 360/91 had one).

This machine brackets the RUU from above on register dataflow: it has no
in-order-commit constraint, so (unlike the RUU) completed instructions
free their stations as soon as their result broadcasts.  The price is
imprecise interrupts -- the paper's motivation for preferring the RUU.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa import FunctionalUnit, Register
from ..obs.events import EventKind, SimEvent, hook_installed
from ..trace import Trace
from . import fastpath
from .base import Simulator, require_scalar_trace
from .buses import SlotPerCycle
from .config import MachineConfig
from .result import SimulationResult

_UNKNOWN = -1
_MAX_CYCLES = 10_000_000


@dataclass
class _Station:
    """One reservation station entry."""

    seq: int
    unit: FunctionalUnit
    latency: int
    dest_tag: Optional[Tuple[Register, int]]
    pending: int
    operands_ready: int


class TomasuloMachine(Simulator):
    """Single issue unit with per-unit reservation stations and a CDB.

    Args:
        stations_per_unit: reservation stations in front of each unit.
        cdb_width: results broadcast per cycle on the common data bus
            (1 on the IBM 360/91).
    """

    def __init__(self, stations_per_unit: int = 4, cdb_width: int = 1) -> None:
        if stations_per_unit < 1:
            raise ValueError("need at least one reservation station per unit")
        if cdb_width < 1:
            raise ValueError("the CDB must carry at least one result per cycle")
        self.stations_per_unit = stations_per_unit
        self.cdb_width = cdb_width

    @property
    def name(self) -> str:
        return (
            f"Tomasulo-style (RS={self.stations_per_unit}, "
            f"CDB={self.cdb_width})"
        )

    # ------------------------------------------------------------------
    def simulate(self, trace: Trace, config: MachineConfig) -> SimulationResult:
        # hook_installed is re-read per call so a hook attached after
        # construction always gets the event-emitting reference loop.
        if fastpath.enabled() and not hook_installed(self):
            return fastpath.simulate_tomasulo_fast(self, trace, config)
        return self._simulate(trace, config, self.on_event)

    def reference_simulate(
        self, trace: Trace, config: MachineConfig
    ) -> SimulationResult:
        """The pre-fast-path Tomasulo loop, hook plumbing disabled.

        The differential tests and the cross-machine oracle use this as
        the baseline the compiled fast loop must match bit-for-bit.
        """
        return self._simulate(trace, config, None)

    def _simulate(
        self, trace: Trace, config: MachineConfig, emit
    ) -> SimulationResult:
        require_scalar_trace(trace, self.name)
        latencies = config.latencies
        branch_latency = config.branch_latency

        latest_instance: Dict[Register, int] = {}
        tag_avail: Dict[Tuple[Register, int], int] = {}
        waiting_on: Dict[Tuple[Register, int], List[_Station]] = {}

        # Station occupancy per unit: stations allocated at issue, freed
        # when the result has broadcast (stores: when the access finishes).
        busy_count: Dict[FunctionalUnit, int] = {}
        release_heap: Dict[FunctionalUnit, List[int]] = {}

        fu_next: Dict[FunctionalUnit, int] = {}
        ready_heap: List[Tuple[int, int, _Station]] = []
        cdb = SlotPerCycle(self.cdb_width)

        entries = trace.entries
        pos = 0
        issue_resume = 0
        cycle = 0
        in_flight = 0
        last_event = 0

        def operand_tag(reg: Register) -> Tuple[Register, int]:
            return (reg, latest_instance.get(reg, 0))

        def tag_ready(tag: Tuple[Register, int]) -> int:
            if tag[1] == 0 and tag not in tag_avail:
                return 0
            return tag_avail.get(tag, _UNKNOWN)

        def release_station(unit: FunctionalUnit, when: int) -> None:
            heapq.heappush(release_heap[unit], when)

        def station_available(unit: FunctionalUnit) -> bool:
            heap = release_heap.setdefault(unit, [])
            count = busy_count.get(unit, 0)
            while heap and heap[0] <= cycle:
                heapq.heappop(heap)
                count -= 1
            busy_count[unit] = count
            return count < self.stations_per_unit

        while pos < len(entries) or in_flight > 0:
            # ---- start ready operations on their (pipelined) units -------
            eligible: List[Tuple[int, int, _Station]] = []
            while ready_heap and ready_heap[0][0] <= cycle:
                eligible.append(heapq.heappop(ready_heap))
            eligible.sort(key=lambda item: item[1])  # oldest first
            for ready_cycle, seq, station in eligible:
                unit_free = fu_next.get(station.unit, 0)
                if unit_free > cycle:
                    heapq.heappush(
                        ready_heap, (max(ready_cycle, unit_free), seq, station)
                    )
                    continue
                fu_next[station.unit] = cycle + 1
                finish = cycle + station.latency
                if station.dest_tag is not None:
                    broadcast = cdb.earliest(finish)
                    cdb.take(broadcast)
                    tag_avail[station.dest_tag] = broadcast
                    for dependent in waiting_on.pop(station.dest_tag, ()):
                        dependent.pending -= 1
                        if broadcast > dependent.operands_ready:
                            dependent.operands_ready = broadcast
                        if dependent.pending == 0:
                            heapq.heappush(
                                ready_heap,
                                (
                                    dependent.operands_ready,
                                    dependent.seq,
                                    dependent,
                                ),
                            )
                    release = broadcast
                else:
                    release = finish  # stores need no CDB slot
                release_station(station.unit, release)
                in_flight -= 1
                if release > last_event:
                    last_event = release
                if emit is not None:
                    emit(SimEvent(EventKind.COMPLETE, station.seq, release))

            # ---- issue: one instruction per cycle ------------------------
            if pos < len(entries) and cycle >= issue_resume:
                instr = entries[pos].instruction
                if instr.is_branch:
                    a0_ready = 0
                    if instr.is_conditional_branch:
                        a0_ready = tag_ready(
                            operand_tag(instr.source_registers[0])
                        )
                    if a0_ready != _UNKNOWN and a0_ready <= cycle:
                        resolve = cycle + branch_latency
                        issue_resume = resolve
                        if resolve > last_event:
                            last_event = resolve
                        if emit is not None:
                            emit(SimEvent(EventKind.ISSUE, pos, cycle))
                        pos += 1
                    elif emit is not None:
                        emit(SimEvent(
                            EventKind.STALL, pos, cycle,
                            reason="BRANCH", cycles=1,
                        ))
                elif station_available(instr.unit):
                    latency = instr.latency(latencies)
                    dest_tag = None
                    src_tags = [operand_tag(r) for r in instr.source_registers]
                    if instr.dest is not None:
                        instance = latest_instance.get(instr.dest, 0) + 1
                        latest_instance[instr.dest] = instance
                        dest_tag = (instr.dest, instance)
                    station = _Station(
                        seq=pos,
                        unit=instr.unit,
                        latency=latency,
                        dest_tag=dest_tag,
                        pending=0,
                        operands_ready=cycle + 1,  # earliest start: next cycle
                    )
                    for tag in src_tags:
                        ready = tag_ready(tag)
                        if ready == _UNKNOWN:
                            station.pending += 1
                            waiting_on.setdefault(tag, []).append(station)
                        elif ready > station.operands_ready:
                            station.operands_ready = ready
                    busy_count[instr.unit] = busy_count.get(instr.unit, 0) + 1
                    in_flight += 1
                    if emit is not None:
                        emit(SimEvent(EventKind.ISSUE, pos, cycle))
                    pos += 1
                    if station.pending == 0:
                        heapq.heappush(
                            ready_heap,
                            (station.operands_ready, station.seq, station),
                        )
                elif emit is not None:
                    emit(SimEvent(
                        EventKind.STALL, pos, cycle,
                        reason="STATIONS_FULL", cycles=1,
                    ))
            elif emit is not None and pos < len(entries):
                emit(SimEvent(
                    EventKind.STALL, pos, cycle, reason="BRANCH", cycles=1,
                ))

            cycle += 1
            if cycle > _MAX_CYCLES:  # pragma: no cover - bug trap
                raise RuntimeError("Tomasulo simulation failed to progress")

        return SimulationResult(
            trace_name=trace.name,
            simulator=self.name,
            config=config,
            instructions=len(entries),
            cycles=max(last_event, 1),
        )
