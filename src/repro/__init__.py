"""repro -- a reproduction of Pleszkun & Sohi (1988),
"The Performance Potential of Multiple Functional Unit Processors".

The package is organised bottom-up:

* :mod:`repro.isa`     -- the CRAY-like base instruction set and unit timings;
* :mod:`repro.asm`     -- assembly DSL, assembler, memory and functional
  interpreter (the trace-capture substrate);
* :mod:`repro.kernels` -- the 14 Lawrence Livermore Loops as assembly
  kernels with NumPy reference verification;
* :mod:`repro.trace`   -- dynamic traces, statistics and caching;
* :mod:`repro.core`    -- the timing simulators for every issue method the
  paper studies (Simple, SerialMemory, NonSegmented, CRAY-like, in-order
  and out-of-order multi-issue, RUU dependency resolution);
* :mod:`repro.limits`  -- pseudo-dataflow / resource / serial limits;
* :mod:`repro.harness` -- experiments regenerating Tables 1-8, paper data
  and comparison machinery.

Quickstart::

    from repro import build_kernel, cray_like_machine, M11BR5

    kernel = build_kernel(5)          # Livermore loop 5 (tri-diagonal)
    trace = kernel.trace()            # verified dynamic trace
    result = cray_like_machine().simulate(trace, M11BR5)
    print(result.issue_rate)
"""

from .core import (
    BusKind,
    InOrderMultiIssueMachine,
    M5BR2,
    M5BR5,
    M11BR2,
    M11BR5,
    MachineConfig,
    OutOfOrderMultiIssueMachine,
    RUUMachine,
    SimpleMachine,
    SimulationResult,
    Simulator,
    STANDARD_CONFIGS,
    build_simulator,
    config_by_name,
    cray_like_machine,
    non_segmented_machine,
    serial_memory_machine,
)
from .harness import harmonic_mean
from .kernels import (
    ALL_LOOPS,
    SCALAR_LOOPS,
    VECTORIZABLE_LOOPS,
    KernelInstance,
    LoopClass,
    build_kernel,
    classify,
)
from .limits import compute_limits, pseudo_dataflow_schedule, resource_limit
from .trace import Trace, TraceEntry, generate_trace, trace_stats

__version__ = "1.0.0"

__all__ = [
    "ALL_LOOPS",
    "BusKind",
    "InOrderMultiIssueMachine",
    "KernelInstance",
    "LoopClass",
    "M11BR2",
    "M11BR5",
    "M5BR2",
    "M5BR5",
    "MachineConfig",
    "OutOfOrderMultiIssueMachine",
    "RUUMachine",
    "SCALAR_LOOPS",
    "STANDARD_CONFIGS",
    "SimpleMachine",
    "SimulationResult",
    "Simulator",
    "Trace",
    "TraceEntry",
    "VECTORIZABLE_LOOPS",
    "build_kernel",
    "build_simulator",
    "classify",
    "compute_limits",
    "config_by_name",
    "cray_like_machine",
    "generate_trace",
    "harmonic_mean",
    "non_segmented_machine",
    "pseudo_dataflow_schedule",
    "resource_limit",
    "serial_memory_machine",
    "trace_stats",
    "__version__",
]
