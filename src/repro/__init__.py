"""repro -- a reproduction of Pleszkun & Sohi (1988),
"The Performance Potential of Multiple Functional Unit Processors".

The package is organised bottom-up:

* :mod:`repro.isa`     -- the CRAY-like base instruction set and unit timings;
* :mod:`repro.asm`     -- assembly DSL, assembler, memory and functional
  interpreter (the trace-capture substrate);
* :mod:`repro.kernels` -- the 14 Lawrence Livermore Loops as assembly
  kernels with NumPy reference verification;
* :mod:`repro.trace`   -- dynamic traces, statistics and caching;
* :mod:`repro.core`    -- the timing simulators for every issue method the
  paper studies (Simple, SerialMemory, NonSegmented, CRAY-like, in-order
  and out-of-order multi-issue, RUU dependency resolution);
* :mod:`repro.limits`  -- pseudo-dataflow / resource / serial limits;
* :mod:`repro.harness` -- experiments regenerating Tables 1-8, paper data
  and comparison machinery (cell plans + the parallel engine);
* :mod:`repro.obs`     -- observability: process-safe metrics, run/span
  tracing, simulator event hooks, durable run manifests;
* :mod:`repro.api`     -- the one public facade: ``run_table``,
  ``simulate``, ``limits``, ``list_machines`` and friends, with process
  fan-out and a persistent result store underneath.

Quickstart::

    import repro

    run = repro.run_table("table1", workers=4)   # parallel + cached
    print(run.render_report())

    result = repro.simulate(5, "ruu:2:50")       # loop 5 on one machine
    print(result.issue_rate)

Lower-level building blocks stay importable::

    from repro import build_kernel, cray_like_machine, M11BR5

    kernel = build_kernel(5)          # Livermore loop 5 (tri-diagonal)
    trace = kernel.trace()            # verified dynamic trace
    result = cray_like_machine().simulate(trace, M11BR5)
    print(result.issue_rate)
"""

# ``repro.api`` is the facade; its table/kernel entry points are also
# re-exported at top level (``api.limits`` stays namespaced to avoid
# shadowing the :mod:`repro.limits` subpackage).
from . import api, obs
from .api import (
    TableRun,
    list_machines,
    list_tables,
    run_table,
    simulate,
)
from .core import (
    BusKind,
    UnknownSpecError,
    InOrderMultiIssueMachine,
    M5BR2,
    M5BR5,
    M11BR2,
    M11BR5,
    MachineConfig,
    OutOfOrderMultiIssueMachine,
    RUUMachine,
    SimpleMachine,
    SimulationResult,
    Simulator,
    STANDARD_CONFIGS,
    build_simulator,
    config_by_name,
    cray_like_machine,
    non_segmented_machine,
    serial_memory_machine,
)
from .harness import harmonic_mean
from .kernels import (
    ALL_LOOPS,
    SCALAR_LOOPS,
    VECTORIZABLE_LOOPS,
    KernelInstance,
    LoopClass,
    build_kernel,
    classify,
)
from .limits import (
    compute_limits,
    pseudo_dataflow_schedule,
    resource_limit,
)
from .trace import Trace, TraceEntry, generate_trace, trace_stats

__version__ = "1.0.0"

__all__ = [
    "ALL_LOOPS",
    "BusKind",
    "InOrderMultiIssueMachine",
    "KernelInstance",
    "LoopClass",
    "M11BR2",
    "M11BR5",
    "M5BR2",
    "M5BR5",
    "MachineConfig",
    "OutOfOrderMultiIssueMachine",
    "RUUMachine",
    "SCALAR_LOOPS",
    "STANDARD_CONFIGS",
    "SimpleMachine",
    "SimulationResult",
    "Simulator",
    "TableRun",
    "Trace",
    "TraceEntry",
    "UnknownSpecError",
    "VECTORIZABLE_LOOPS",
    "api",
    "build_kernel",
    "obs",
    "build_simulator",
    "list_machines",
    "list_tables",
    "run_table",
    "simulate",
    "classify",
    "compute_limits",
    "config_by_name",
    "cray_like_machine",
    "generate_trace",
    "harmonic_mean",
    "non_segmented_machine",
    "pseudo_dataflow_schedule",
    "resource_limit",
    "serial_memory_machine",
    "trace_stats",
    "__version__",
]
