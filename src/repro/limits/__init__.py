"""Performance-limit analyses (the paper's Section 4 / Table 2)."""

from .dataflow import DataflowSchedule, pseudo_dataflow_schedule
from .report import LoopLimits, compute_limits
from .resource import ResourceBound, resource_limit

__all__ = [
    "DataflowSchedule",
    "LoopLimits",
    "ResourceBound",
    "compute_limits",
    "pseudo_dataflow_schedule",
    "resource_limit",
]
