"""Pseudo-dataflow limits -- Section 4 of the paper.

The pseudo-dataflow limit assumes the program is stored as a dataflow
graph and every instruction executes the moment its operands exist, with
*unlimited* resources.  The only sequencing constraints are:

* true data dependences, with real functional-unit latencies, and
* control: "different portions of the dynamic program graph, i.e.,
  different loop iterations, cannot start until the appropriate branch
  conditions have been resolved" -- no instruction may start before the
  resolution of the latest branch that precedes it in the dynamic stream.

The limit is ``instructions / critical-path length``.

The *serial* variant (lower half of Table 2) adds the paper's
WAW-in-order constraint: "instructions that write into the same register
... finish, at best, at the same time" as the previous writer -- i.e.
register writes complete in program order.  This models a machine with no
result buffering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.config import MachineConfig
from ..core.fastpath import N_REGISTERS, UNITS, compile_trace
from ..trace import Trace

#: Critical-predecessor marker: the instruction was gated by nothing (it
#: started at cycle 0).
NO_PREDECESSOR = -1


@dataclass(frozen=True)
class DataflowSchedule:
    """Outcome of a pseudo-dataflow scheduling pass.

    Attributes:
        trace_name: the scheduled benchmark.
        instructions: dynamic instruction count.
        makespan: critical-path length in cycles.
        serial_waw: whether the WAW-in-order constraint was applied.
        starts: per-instruction start cycles (only with ``detail=True``).
        completes: per-instruction completion cycles (only with
            ``detail=True``).
        critical_pred: per-instruction index of the predecessor whose
            result/resolution set its start time, or
            :data:`NO_PREDECESSOR` (only with ``detail=True``).
    """

    trace_name: str
    instructions: int
    makespan: int
    serial_waw: bool
    starts: Optional[Tuple[int, ...]] = None
    completes: Optional[Tuple[int, ...]] = None
    critical_pred: Optional[Tuple[int, ...]] = None

    @property
    def issue_rate_limit(self) -> float:
        """The dataflow bound on instructions per cycle."""
        return self.instructions / self.makespan

    def critical_path(self) -> Tuple[int, ...]:
        """Instruction indices on the critical path, in execution order.

        Requires the schedule to have been computed with ``detail=True``.
        """
        if self.completes is None or self.critical_pred is None:
            raise ValueError(
                "critical_path() needs a detailed schedule "
                "(pseudo_dataflow_schedule(..., detail=True))"
            )
        tail = max(range(len(self.completes)), key=self.completes.__getitem__)
        path: List[int] = []
        current = tail
        while current != NO_PREDECESSOR:
            path.append(current)
            current = self.critical_pred[current]
        path.reverse()
        return tuple(path)


def pseudo_dataflow_schedule(
    trace: Trace,
    config: MachineConfig,
    *,
    serial_waw: bool = False,
    detail: bool = False,
) -> DataflowSchedule:
    """Schedule *trace* at the dataflow limit and return its makespan.

    Walks the dynamic stream once; because the stream is in program order,
    the most recent write to a register is exactly the value instance a
    later reader consumes, so a per-register ready time suffices.  The
    walk runs on the compiled flat-integer tuples shared with the fast
    replay path (:func:`repro.core.fastpath.compile_trace`), so a trace
    replayed across machines and limits is lowered exactly once.

    With ``detail=True`` the per-instruction schedule and critical
    predecessors are retained (used by :mod:`repro.analysis`).
    """
    compiled = compile_trace(trace)
    table = config.latencies
    latencies = [table.latency(unit) for unit in UNITS]
    branch_latency = config.branch_latency

    # Per-register value/write ready times and producer indices, over
    # the dense 0..N_REGISTERS-1 id space.
    val_ready = [0] * N_REGISTERS
    val_prod = [NO_PREDECESSOR] * N_REGISTERS
    wr_done = [0] * N_REGISTERS  # for serial_waw
    wr_prod = [NO_PREDECESSOR] * N_REGISTERS
    control = 0  # resolution time of the latest preceding branch
    control_pred = NO_PREDECESSOR
    makespan = 1

    starts: List[int] = []
    completes: List[int] = []
    critical_pred: List[int] = []

    for index, op in enumerate(compiled.ops):
        unit, dest, srcs, is_branch, _t, is_vector, vl, _bus, _c = op

        start = control
        pred = control_pred
        for src in srcs:
            ready = val_ready[src]
            if ready > start:
                start = ready
                pred = val_prod[src]

        if is_branch:
            control = start + branch_latency
            control_pred = index
            complete = control
        else:
            complete = start + latencies[unit]
            if is_vector and vl:
                # The full vector result exists only after all elements
                # stream through (consumers may chain earlier, but the
                # value-ready time below already models perfect chaining
                # via the unchanged producer start).
                complete += vl
            if dest >= 0:
                if serial_waw:
                    previous = wr_done[dest]
                    if previous > complete:
                        complete = previous  # "at best, at the same time"
                        pred = wr_prod[dest]
                    wr_done[dest] = complete
                    wr_prod[dest] = index
                if is_vector and vl:
                    # Perfect chaining: dependents consume elements as
                    # they are produced, i.e. latency after the start.
                    val_ready[dest] = start + latencies[unit]
                else:
                    val_ready[dest] = complete
                val_prod[dest] = index

        if complete > makespan:
            makespan = complete

        if detail:
            starts.append(start)
            completes.append(complete)
            critical_pred.append(pred)

    return DataflowSchedule(
        trace_name=compiled.name,
        instructions=compiled.n,
        makespan=makespan,
        serial_waw=serial_waw,
        starts=tuple(starts) if detail else None,
        completes=tuple(completes) if detail else None,
        critical_pred=tuple(critical_pred) if detail else None,
    )
