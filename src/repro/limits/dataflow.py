"""Pseudo-dataflow limits -- Section 4 of the paper.

The pseudo-dataflow limit assumes the program is stored as a dataflow
graph and every instruction executes the moment its operands exist, with
*unlimited* resources.  The only sequencing constraints are:

* true data dependences, with real functional-unit latencies, and
* control: "different portions of the dynamic program graph, i.e.,
  different loop iterations, cannot start until the appropriate branch
  conditions have been resolved" -- no instruction may start before the
  resolution of the latest branch that precedes it in the dynamic stream.

The limit is ``instructions / critical-path length``.

The *serial* variant (lower half of Table 2) adds the paper's
WAW-in-order constraint: "instructions that write into the same register
... finish, at best, at the same time" as the previous writer -- i.e.
register writes complete in program order.  This models a machine with no
result buffering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa import Register
from ..trace import Trace
from ..core.config import MachineConfig

#: Critical-predecessor marker: the instruction was gated by nothing (it
#: started at cycle 0).
NO_PREDECESSOR = -1


@dataclass(frozen=True)
class DataflowSchedule:
    """Outcome of a pseudo-dataflow scheduling pass.

    Attributes:
        trace_name: the scheduled benchmark.
        instructions: dynamic instruction count.
        makespan: critical-path length in cycles.
        serial_waw: whether the WAW-in-order constraint was applied.
        starts: per-instruction start cycles (only with ``detail=True``).
        completes: per-instruction completion cycles (only with
            ``detail=True``).
        critical_pred: per-instruction index of the predecessor whose
            result/resolution set its start time, or
            :data:`NO_PREDECESSOR` (only with ``detail=True``).
    """

    trace_name: str
    instructions: int
    makespan: int
    serial_waw: bool
    starts: Optional[Tuple[int, ...]] = None
    completes: Optional[Tuple[int, ...]] = None
    critical_pred: Optional[Tuple[int, ...]] = None

    @property
    def issue_rate_limit(self) -> float:
        """The dataflow bound on instructions per cycle."""
        return self.instructions / self.makespan

    def critical_path(self) -> Tuple[int, ...]:
        """Instruction indices on the critical path, in execution order.

        Requires the schedule to have been computed with ``detail=True``.
        """
        if self.completes is None or self.critical_pred is None:
            raise ValueError(
                "critical_path() needs a detailed schedule "
                "(pseudo_dataflow_schedule(..., detail=True))"
            )
        tail = max(range(len(self.completes)), key=self.completes.__getitem__)
        path: List[int] = []
        current = tail
        while current != NO_PREDECESSOR:
            path.append(current)
            current = self.critical_pred[current]
        path.reverse()
        return tuple(path)


def pseudo_dataflow_schedule(
    trace: Trace,
    config: MachineConfig,
    *,
    serial_waw: bool = False,
    detail: bool = False,
) -> DataflowSchedule:
    """Schedule *trace* at the dataflow limit and return its makespan.

    Walks the dynamic stream once; because the stream is in program order,
    the most recent write to a register is exactly the value instance a
    later reader consumes, so a per-register ready time suffices.

    With ``detail=True`` the per-instruction schedule and critical
    predecessors are retained (used by :mod:`repro.analysis`).
    """
    latencies = config.latencies
    branch_latency = config.branch_latency

    # value_ready / write_done map registers to (cycle, producer index).
    value_ready: Dict[Register, Tuple[int, int]] = {}
    write_done: Dict[Register, Tuple[int, int]] = {}  # for serial_waw
    control = 0  # resolution time of the latest preceding branch
    control_pred = NO_PREDECESSOR
    makespan = 1

    starts: List[int] = []
    completes: List[int] = []
    critical_pred: List[int] = []

    for index, entry in enumerate(trace):
        instr = entry.instruction

        start = control
        pred = control_pred
        for src in instr.source_registers:
            ready, producer = value_ready.get(src, (0, NO_PREDECESSOR))
            if ready > start:
                start = ready
                pred = producer

        if instr.is_branch:
            control = start + branch_latency
            control_pred = index
            complete = control
        else:
            complete = start + instr.latency(latencies)
            if instr.is_vector and entry.vector_length:
                # The full vector result exists only after all elements
                # stream through (consumers may chain earlier, but the
                # value-ready time below already models perfect chaining
                # via the unchanged producer start).
                complete += entry.vector_length
            if instr.dest is not None:
                if serial_waw:
                    previous, prev_writer = write_done.get(
                        instr.dest, (0, NO_PREDECESSOR)
                    )
                    if previous > complete:
                        complete = previous  # "at best, at the same time"
                        pred = prev_writer
                    write_done[instr.dest] = (complete, index)
                if instr.is_vector and entry.vector_length:
                    # Perfect chaining: dependents consume elements as
                    # they are produced, i.e. latency after the start.
                    ready = start + instr.latency(latencies)
                    value_ready[instr.dest] = (ready, index)
                else:
                    value_ready[instr.dest] = (complete, index)

        if complete > makespan:
            makespan = complete

        if detail:
            starts.append(start)
            completes.append(complete)
            critical_pred.append(pred)

    return DataflowSchedule(
        trace_name=trace.name,
        instructions=len(trace),
        makespan=makespan,
        serial_waw=serial_waw,
        starts=tuple(starts) if detail else None,
        completes=tuple(completes) if detail else None,
        critical_pred=tuple(critical_pred) if detail else None,
    )
