"""Resource limits -- Section 4 of the paper.

The pseudo-dataflow limit assumes unlimited hardware.  The resource limit
re-imposes the base machine's functional units: each unit is fully
pipelined (accepts one operation per cycle), so a program that uses unit
*f* for ``count_f`` operations cannot finish before
``count_f - 1 + latency_f`` cycles (the first operation starts at cycle 0;
the paper phrases the same idea as "12 clock cycles plus the latency of
the multiply unit").  The bound is

    instructions / max over units of (count_f - 1 + latency_f).

The ``-1`` keeps the bound *tight*: a single 1-cycle operation really can
finish in one cycle, and the dominance property (no machine beats the
limit) must hold even on one-instruction traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..core.config import MachineConfig
from ..core.fastpath import UNITS, compile_trace
from ..isa import FunctionalUnit
from ..trace import Trace


@dataclass(frozen=True)
class ResourceBound:
    """Resource-limit computation for one trace and machine variant.

    Attributes:
        trace_name: the analysed benchmark.
        instructions: dynamic instruction count.
        unit_times: per-unit best-case busy spans (count + latency).
        bottleneck: the unit with the largest span.
    """

    trace_name: str
    instructions: int
    unit_times: Mapping[FunctionalUnit, int]
    bottleneck: FunctionalUnit

    @property
    def makespan(self) -> int:
        return self.unit_times[self.bottleneck]

    @property
    def issue_rate_limit(self) -> float:
        """The resource bound on instructions per cycle."""
        return self.instructions / self.makespan


def resource_limit(trace: Trace, config: MachineConfig) -> ResourceBound:
    """Compute the resource limit of *trace* under *config*.

    Every unit -- including the memory port and the branch mechanism -- is
    modelled at a throughput of one operation per cycle.  Counting runs
    on the compiled flat-integer tuples shared with the fast replay path
    (:func:`repro.core.fastpath.compile_trace`), so a trace replayed
    across machines and limits is lowered exactly once.
    """
    compiled = compile_trace(trace)
    latencies = config.latencies

    # Insertion order (first occurrence in the trace) is the tie-break
    # `max` inherits below, so count into an ordered dict, not an array.
    counts: Dict[int, int] = {}
    for op in compiled.ops:
        # A vector operation occupies its unit for one cycle per element.
        occupancy = op[6] if op[5] else 1
        counts[op[0]] = counts.get(op[0], 0) + (occupancy or 1)

    unit_times: Dict[FunctionalUnit, int] = {}
    for unit_id, count in counts.items():
        unit = UNITS[unit_id]
        unit_times[unit] = count - 1 + latencies.latency(unit)

    bottleneck = max(unit_times, key=lambda unit: unit_times[unit])
    return ResourceBound(
        trace_name=compiled.name,
        instructions=compiled.n,
        unit_times=unit_times,
        bottleneck=bottleneck,
    )
