"""Combined performance limits: the paper's Table 2 quantities.

For one trace and machine variant the paper reports three numbers:

* the **pseudo-dataflow limit** (critical path, unlimited resources),
* the **resource limit** (fully pipelined base-machine units),
* the **actual limit** -- per loop, the *smaller* of the two bounds (both
  are upper bounds, so the binding one is the minimum); class results are
  harmonic means of per-loop actual limits, which is why the class actual
  limit is not simply the min of the two class columns.

The "Serial" rows repeat the computation with the WAW-in-order constraint
(:func:`~repro.limits.dataflow.pseudo_dataflow_schedule` with
``serial_waw=True``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from ..trace import Trace
from ..core.config import MachineConfig
from .dataflow import DataflowSchedule, pseudo_dataflow_schedule
from .resource import ResourceBound, resource_limit


@dataclass(frozen=True)
class LoopLimits:
    """All limit quantities for one trace under one machine variant.

    Attributes:
        trace_name: the analysed benchmark.
        config: machine variant.
        serial: whether the WAW-in-order (Serial) constraint was applied.
        dataflow: the pseudo-dataflow schedule.
        resource: the resource bound.
    """

    trace_name: str
    config: MachineConfig
    serial: bool
    dataflow: DataflowSchedule
    resource: ResourceBound

    @property
    def pseudo_dataflow_rate(self) -> float:
        return self.dataflow.issue_rate_limit

    @property
    def resource_rate(self) -> float:
        return self.resource.issue_rate_limit

    @property
    def actual_rate(self) -> float:
        """The binding (smaller) bound for this loop."""
        return min(self.pseudo_dataflow_rate, self.resource_rate)

    def to_payload(self) -> Dict[str, Any]:
        """A JSON-serialisable encoding of every limit quantity.

        The shape behind ``repro limits --format json`` and the
        explorer's anchor tests: rates plus the makespans they derive
        from, and the per-unit busy spans that identify the resource
        bottleneck.
        """
        return {
            "trace": self.trace_name,
            "config": self.config.name,
            "serial": self.serial,
            "instructions": self.dataflow.instructions,
            "pseudo_dataflow": {
                "makespan": self.dataflow.makespan,
                "rate": self.pseudo_dataflow_rate,
            },
            "resource": {
                "makespan": self.resource.makespan,
                "rate": self.resource_rate,
                "bottleneck": self.resource.bottleneck.value,
                "unit_times": {
                    unit.value: span
                    for unit, span in self.resource.unit_times.items()
                },
            },
            "actual_rate": self.actual_rate,
        }


def compute_limits(
    trace: Trace,
    config: MachineConfig,
    *,
    serial: bool = False,
) -> LoopLimits:
    """Compute all Table 2 quantities for *trace* under *config*."""
    dataflow = pseudo_dataflow_schedule(trace, config, serial_waw=serial)
    resource = resource_limit(trace, config)
    return LoopLimits(
        trace_name=trace.name,
        config=config,
        serial=serial,
        dataflow=dataflow,
        resource=resource,
    )
