"""The public facade: one entry path for every experiment.

``repro.api`` is the single surface through which the CLI, the legacy
runner, and the benchmark scripts run experiments::

    import repro.api as api

    run = api.run_table("table7", workers=4)     # parallel + cached
    print(run.render_report())

    result = api.simulate(5, "ruu:2:50")         # one kernel, one machine
    report = api.limits(5)                       # dataflow/resource limits

Key facts:

* :func:`run_table` decomposes a table into independent
  ``(kernel, machine-spec, config)`` cells, fans them out over a process
  pool (``workers``, default ``os.cpu_count()``), and merges results
  deterministically -- parallel output is bit-identical to serial.
* Results and traces persist in a content-addressed store under
  ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``); pass ``cache=False``
  to opt out.  Cache state can only affect timing, never results.
* ``observe=True`` additionally records a span trace and writes a durable
  run manifest (config, git SHA, timings, metric snapshot) next to the
  cache entries; :func:`list_runs` / :func:`find_run` read them back for
  ``repro stats`` and ``repro trace-export``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .analysis import stall_breakdown
from .bench import (
    BenchOptions,
    BenchReport,
    Comparison,
    compare_reports as _compare_reports,
    load_report as _load_bench_report,
    options_from as _bench_options_from,
    run_suite as _run_bench_suite,
)
from .core import SimulationResult, build_simulator, config_by_name
from .core import fastpath
from .explore import ExploreRun, SpaceError, explore as _explore
from .core.registry import (
    ParsedSpec,
    UnknownSpecError,
    available_specs,
    list_specs,
    parse_spec as _parse_spec_string,
)
from .harness import experiments as _experiments
from .harness.aggregate import harmonic_mean, relative_error
from .harness.engine import EngineStats, run_plan
from .harness.progress import ProgressCallback, ProgressEvent
from .harness.paper import PAPER_SECTION33, PAPER_TABLES
from .harness.plans import PLAN_BUILDERS, build_plan
from .harness.tables import ResultTable, compare_tables
from .kernels import build_kernel
from .limits import LoopLimits, compute_limits
from .obs.manifest import RunManifest, find_manifest, list_manifests
from .verify import (
    FuzzSpec,
    VerifyOptions,
    VerifyReport,
    run_verification,
)
from .verify.oracle import DEFAULT_ORACLE_MACHINES
from .trace import (
    DiskCache,
    Trace,
    TraceStats,
    default_cache_dir,
    read_trace,
    trace_stats,
    write_trace,
)
from .trace.importer import TraceImportError, export_trace, import_trace
from .trace.sources import (
    ParsedTraceSpec,
    SourceStats,
    TraceSource,
    UnknownTraceSourceError,
    available_sources as _available_sources,
    list_sources as _list_sources,
    parse_trace_spec as _parse_trace_spec_string,
    source_statistics,
    trace_source,
)

Sizes = Optional[Mapping[int, int]]

__all__ = [
    "BenchOptions",
    "BenchReport",
    "ExploreRun",
    "MachineInfo",
    "ParsedSpec",
    "ParsedTraceSpec",
    "ProgressCallback",
    "ProgressEvent",
    "RunManifest",
    "SourceStats",
    "SpaceError",
    "SweepRun",
    "TableRun",
    "TraceImportError",
    "TraceSource",
    "UnknownSpecError",
    "UnknownTraceSourceError",
    "VerifyReport",
    "bench_options",
    "capture",
    "capture_source",
    "compare_bench",
    "disassemble",
    "explore",
    "find_run",
    "kernel_stats",
    "limits",
    "limits_source",
    "list_backends",
    "list_machines",
    "list_runs",
    "list_tables",
    "list_trace_sources",
    "load_bench_report",
    "machine_info",
    "parse_spec",
    "parse_trace_spec",
    "replay",
    "resolve_trace",
    "run_bench",
    "run_sweep",
    "run_table",
    "section33",
    "simulate",
    "simulate_source",
    "source_stats",
    "stalls",
    "trace_source_help",
    "verify_machines",
]


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TableRun:
    """A finished table regeneration: the table, its stats, the paper data."""

    table: ResultTable
    stats: EngineStats
    reference: Optional[ResultTable] = None
    manifest: Optional[RunManifest] = None

    def comparison(self) -> List[Tuple[str, str, float, float]]:
        """(row, column, measured, paper) pairs, empty without a reference."""
        if self.reference is None:
            return []
        return compare_tables(self.table, self.reference)

    def render_report(self, *, compare: bool = False) -> str:
        """The full textual report: table, run footer, optional paper diff."""
        lines = [self.table.render(), self.stats.footer()]
        if compare and self.reference is not None:
            lines += ["", self.reference.render()]
            pairs = self.comparison()
            if pairs:
                errors = [relative_error(m, r) for _, _, m, r in pairs]
                mean_abs = sum(abs(e) for e in errors) / len(errors)
                lines.append(
                    f"[{len(pairs)} comparable cells; "
                    f"mean |relative deviation| = {mean_abs:.1%}]"
                )
        return "\n".join(lines)


def list_tables() -> Tuple[str, ...]:
    """Every table id :func:`run_table` accepts, in numeric order."""
    return tuple(sorted(PLAN_BUILDERS, key=lambda tid: int(tid[5:])))


def run_table(
    table_id: str,
    *,
    compare: bool = False,
    workers: Optional[int] = None,
    cache: bool = True,
    sizes: Sizes = None,
    observe: bool = False,
    backend: str = "auto",
    progress: Optional[ProgressCallback] = None,
    **plan_overrides,
) -> TableRun:
    """Regenerate one of the paper's tables.

    Args:
        table_id: ``"table1"`` ... ``"table8"``.
        compare: attach the paper's reported table for cell-by-cell diffs.
        workers: process fan-out width (default ``os.cpu_count()``).
        cache: consult/feed the persistent store under ``REPRO_CACHE_DIR``.
        sizes: loop-number -> problem-size overrides (tests use this).
        observe: record a span trace and write a durable run manifest
            under the cache root; returned as ``run.manifest``.
        backend: fast-path backend for sweep-shaped cell groups
            (``"auto"`` -- the batch backend -- or ``"python"`` /
            ``"batch"`` explicitly); results are bit-identical either
            way, only timing changes.
        progress: optional per-cell completion callback; invoked in this
            process with one :class:`~repro.harness.progress.
            ProgressEvent` per finished cell, in completion order (the
            CLI renders it as the ``tables --progress`` ticker).
        plan_overrides: table-specific sweep parameters (``stations``,
            ``ruu_sizes``, ``units``).

    Returns:
        A :class:`TableRun`; ``run.table`` is bit-identical for any
        ``workers`` value and any cache state.
    """
    plan = build_plan(table_id, sizes, **plan_overrides)
    store = DiskCache() if cache else None
    outcome = run_plan(
        plan,
        workers=workers,
        cache=store,
        observe=observe,
        backend=backend,
        progress=progress,
    )
    reference = PAPER_TABLES.get(table_id) if compare else None
    return TableRun(
        table=outcome.table,
        stats=outcome.stats,
        reference=reference,
        manifest=outcome.manifest,
    )


def section33(sizes: Sizes = None) -> Dict[str, float]:
    """The Section 3.3 quote: single-issue RUU rates per loop class."""
    return _experiments.section33(sizes)


def paper_section33() -> Dict[str, float]:
    """The paper's reported Section 3.3 numbers."""
    return dict(PAPER_SECTION33)


# ----------------------------------------------------------------------
# Run manifests (observability)
# ----------------------------------------------------------------------

def list_runs(limit: Optional[int] = None) -> List[RunManifest]:
    """Manifests of past ``observe=True`` runs, newest first.

    Reads ``<cache root>/manifests``; corrupt files are skipped.
    """
    return list_manifests(default_cache_dir(), limit=limit)


def find_run(run_id: str) -> Optional[RunManifest]:
    """Look one run up by id (exact match or unique prefix)."""
    return find_manifest(default_cache_dir(), run_id)


# ----------------------------------------------------------------------
# Single-kernel operations
# ----------------------------------------------------------------------

def _kernel(
    kernel: int,
    n: Optional[int],
    *,
    schedule: bool = True,
    unroll: int = 1,
    vector: bool = False,
    explicit_addressing: bool = False,
):
    if vector:
        from .kernels.vectorized import build_vectorized

        return build_vectorized(kernel, n)
    return build_kernel(
        kernel,
        n,
        schedule=schedule,
        unroll=unroll,
        explicit_addressing=explicit_addressing,
    )


def simulate(
    kernel: int,
    machine: str = "cray",
    *,
    n: Optional[int] = None,
    config: str = "M11BR5",
    schedule: bool = True,
    unroll: int = 1,
    vector: bool = False,
    explicit_addressing: bool = False,
) -> SimulationResult:
    """Time one kernel on one machine organisation.

    *machine* is a registry spec string (see :func:`list_machines`);
    unknown specs raise :class:`UnknownSpecError`.
    """
    simulator = build_simulator(machine)
    instance = _kernel(
        kernel, n,
        schedule=schedule, unroll=unroll, vector=vector,
        explicit_addressing=explicit_addressing,
    )
    return simulator.simulate(instance.trace(), config_by_name(config))


def limits(
    kernel: int,
    *,
    n: Optional[int] = None,
    config: str = "M11BR5",
    serial: bool = False,
    schedule: bool = True,
    unroll: int = 1,
) -> LoopLimits:
    """Pseudo-dataflow / resource / actual limits for one kernel."""
    instance = _kernel(kernel, n, schedule=schedule, unroll=unroll)
    return compute_limits(
        instance.trace(), config_by_name(config), serial=serial
    )


def stalls(
    kernel: int,
    *,
    n: Optional[int] = None,
    config: str = "M11BR5",
    schedule: bool = True,
    unroll: int = 1,
):
    """Stall attribution for one kernel on an issue-blocking machine."""
    instance = _kernel(kernel, n, schedule=schedule, unroll=unroll)
    return stall_breakdown(instance.trace(), config_by_name(config))


def disassemble(
    kernel: int,
    *,
    n: Optional[int] = None,
    schedule: bool = True,
    unroll: int = 1,
    vector: bool = False,
    explicit_addressing: bool = False,
) -> str:
    """A kernel's assembly listing."""
    instance = _kernel(
        kernel, n,
        schedule=schedule, unroll=unroll, vector=vector,
        explicit_addressing=explicit_addressing,
    )
    return instance.program.disassemble()


def kernel_stats(
    kernel: int,
    *,
    n: Optional[int] = None,
    schedule: bool = True,
    unroll: int = 1,
    vector: bool = False,
) -> TraceStats:
    """Dynamic instruction-mix statistics for one kernel."""
    instance = _kernel(kernel, n, schedule=schedule, unroll=unroll, vector=vector)
    return trace_stats(instance.trace())


def capture(
    kernel: int,
    out: str,
    *,
    n: Optional[int] = None,
    schedule: bool = True,
    unroll: int = 1,
    vector: bool = False,
) -> int:
    """Save a kernel's verified dynamic trace as JSON lines; entry count."""
    instance = _kernel(kernel, n, schedule=schedule, unroll=unroll, vector=vector)
    trace = instance.trace()
    write_trace(trace, out)
    return len(trace)


def replay(
    trace_path: str,
    machine: str = "cray",
    *,
    config: str = "M11BR5",
) -> SimulationResult:
    """Time a previously captured trace on any machine.

    The archive goes through the strict importer, so a malformed file
    fails with one ``path:line`` diagnostic
    (:class:`TraceImportError`) instead of a parse backtrace.
    """
    trace: Trace = import_trace(trace_path)
    simulator = build_simulator(machine)
    return simulator.simulate(trace, config_by_name(config))


# ----------------------------------------------------------------------
# Trace sources (the unified registry)
# ----------------------------------------------------------------------

def parse_trace_spec(spec: str) -> ParsedTraceSpec:
    """Validate and normalise a trace-source spec string.

    The trace-side twin of :func:`parse_spec`: returns the
    :class:`~repro.trace.sources.ParsedTraceSpec` the registry itself
    uses, after checking the head is a registered source; unknown heads
    raise :class:`UnknownTraceSourceError`.  (Parameter problems surface
    when the trace is actually built -- building can be expensive, so
    this check is head-only.)
    """
    from .trace.sources import _SOURCES

    parsed = _parse_trace_spec_string(spec)
    if parsed.head not in _SOURCES:
        raise UnknownTraceSourceError(spec)
    return parsed


def resolve_trace(spec: str) -> Trace:
    """Resolve a trace-source spec (``kernel:5``, ``branchy:n=256``,
    ``file:trace.jsonl`` ...) to its :class:`~repro.trace.Trace`.

    Every rejected spec raises :class:`UnknownTraceSourceError`;
    malformed ``file:`` archives raise :class:`TraceImportError` with a
    ``path:line`` diagnostic.
    """
    return trace_source(spec)


def list_trace_sources() -> Tuple[TraceSource, ...]:
    """Every registered trace source, sorted by name."""
    return _list_sources()


def trace_source_help() -> str:
    """One-line grammar of accepted trace-source specification strings."""
    return _available_sources()


def source_stats(spec: str) -> SourceStats:
    """Dependence-distance and FU-demand summary of one source's trace.

    Computed from the compiled-trace IR (see
    :func:`repro.trace.sources.source_statistics`).
    """
    return source_statistics(trace_source(spec))


def simulate_source(
    source: str,
    machine: str = "cray",
    *,
    config: str = "M11BR5",
) -> SimulationResult:
    """Time any trace source on one machine organisation.

    The source-spec generalisation of :func:`simulate`:
    ``simulate_source("kernel:5", "ruu:2:50")`` is
    ``simulate(5, "ruu:2:50")``, and the same call replays synthetic
    families or external ``file:`` archives.
    """
    simulator = build_simulator(machine)
    return simulator.simulate(trace_source(source), config_by_name(config))


def limits_source(
    source: str,
    *,
    config: str = "M11BR5",
    serial: bool = False,
) -> LoopLimits:
    """Pseudo-dataflow / resource / actual limits for any trace source."""
    return compute_limits(
        trace_source(source), config_by_name(config), serial=serial
    )


def capture_source(source: str, out: str) -> int:
    """Resolve any trace source and save it as a JSONL archive.

    Returns the entry count; the written file round-trips byte-stably
    through ``file:<out>`` / :func:`resolve_trace`.
    """
    trace = trace_source(source)
    export_trace(trace, out)
    return len(trace)


# ----------------------------------------------------------------------
# Design-space exploration
# ----------------------------------------------------------------------

def explore(
    space: str,
    sources: Sequence[str],
    *,
    config: str = "M11BR5",
    budget: Optional[int] = None,
    audit: int = 16,
    seed: int = 0,
    slack: float = 0.15,
    band_per_segment: int = 4,
    workers: Optional[int] = None,
    cache: bool = True,
    observe: bool = False,
    backend: str = "auto",
    exhaustive: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> ExploreRun:
    """Screen a design space analytically, then simulate only its frontier.

    *space* is a declarative grid spec (``family=ruu;width=1..8;...``,
    see :mod:`repro.explore.space`); *sources* are scalar trace specs.
    The analytic model scores every candidate in one vectorised pass,
    the (cost, rate) Pareto frontier plus a bounded verification band
    and a seeded audit sample go through exact simulation, and the
    returned :class:`ExploreRun` reports predicted-vs-simulated error.
    With ``exhaustive=True`` every candidate is simulated as well and
    frontier recall is measured (small spaces only).
    """
    store = DiskCache() if cache else None
    return _explore(
        space,
        sources,
        config=config,
        budget=budget,
        audit=audit,
        seed=seed,
        slack=slack,
        band_per_segment=band_per_segment,
        workers=workers,
        cache=store,
        observe=observe,
        backend=backend,
        exhaustive=exhaustive,
        progress=progress,
    )


# ----------------------------------------------------------------------
# Differential verification
# ----------------------------------------------------------------------

def verify_machines(
    seeds: int = 50,
    *,
    machines: Optional[Sequence[str]] = None,
    configs: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
    fuzz: Optional[FuzzSpec] = None,
    shrink: bool = True,
    dump_dir: Optional[str] = None,
    first_seed: int = 0,
    check_telemetry: bool = False,
    source: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> VerifyReport:
    """Fuzz-verify machine models against each other and the limits.

    Generates *seeds* deterministic synthetic traces, replays each
    through every spec in *machines* (default: the full oracle set),
    and runs both verification layers -- the per-cycle invariant
    checker and the cross-machine ordering/bound oracle.  Failing
    traces are delta-debugged down to minimal reproducers, written as
    JSON lines under *dump_dir* when given (replayable with
    :func:`replay`).

    Args:
        seeds: number of fuzzed traces (seeds ``first_seed ..
            first_seed + seeds - 1``).
        machines: registry spec strings; unknown specs raise
            :class:`UnknownSpecError` up front.
        configs: machine-variant names (default: all four paper
            variants); seeds rotate through them.
        trace_length: override the fuzzed trace length only.
        fuzz: full trace-shape control (overrides *trace_length*).
        source: seeded trace-source spec to draw the campaign's traces
            from instead of the default fuzzer (``"branchy"``,
            ``"fuzz:pointer"``, ``"synthetic:deep"`` ...); the runner
            appends ``:seed=<seed>`` per iteration.
        shrink: minimise failing traces before reporting.
        dump_dir: directory for reproducer dumps.
        first_seed: base seed, letting shards cover disjoint ranges.
        check_telemetry: additionally require each fast-path machine's
            aggregate telemetry record to be bit-identical to the
            event-derived reduction (``repro verify --telemetry``).
        log: optional progress sink (the CLI passes ``print``).
    """
    shape = fuzz if fuzz is not None else FuzzSpec()
    if fuzz is None and trace_length is not None:
        shape = replace(shape, length=trace_length)
    options = VerifyOptions(
        seeds=seeds,
        machines=tuple(machines) if machines else DEFAULT_ORACLE_MACHINES,
        configs=tuple(
            config_by_name(name) for name in configs
        ) if configs else VerifyOptions().configs,
        fuzz=shape,
        shrink=shrink,
        dump_dir=Path(dump_dir) if dump_dir is not None else None,
        first_seed=first_seed,
        check_telemetry=check_telemetry,
        source=source,
    )
    return run_verification(options, log=log)


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------

def bench_options(
    *,
    quick: bool = False,
    seeds: Optional[int] = None,
    trace_length: Optional[int] = None,
    rounds: Optional[int] = None,
    machines: Optional[Sequence[str]] = None,
    no_engine: bool = False,
    no_explore: bool = False,
    backend: str = "auto",
) -> BenchOptions:
    """Suite options: the quick/full preset plus explicit overrides."""
    return _bench_options_from(
        quick=quick,
        seeds=seeds,
        trace_length=trace_length,
        rounds=rounds,
        machines=tuple(machines) if machines is not None else None,
        no_engine=no_engine,
        no_explore=no_explore,
        backend=backend,
    )


def run_bench(
    options: Optional[BenchOptions] = None,
    *,
    name: str = "fastpath",
    log: Optional[Callable[[str], None]] = None,
) -> BenchReport:
    """Run the seeded micro-benchmark suite (see :mod:`repro.bench`).

    Measures fast-path vs reference replay throughput per machine,
    per-table wall time and engine cold/warm cache behaviour; returns a
    :class:`~repro.bench.BenchReport` (``report.write(path)`` persists
    it as ``repro-bench/v1`` JSON).
    """
    return _run_bench_suite(options, name=name, log=log)


def load_bench_report(path: str) -> BenchReport:
    """Read and schema-validate a ``repro-bench/v1`` report file."""
    return _load_bench_report(path)


def compare_bench(
    current: BenchReport,
    baseline: BenchReport,
    *,
    threshold: float = 0.25,
) -> Comparison:
    """Flag benchmarks that regressed beyond the noise *threshold*."""
    return _compare_reports(current, baseline, threshold=threshold)


# ----------------------------------------------------------------------
# Machine specs and sweeps
# ----------------------------------------------------------------------

def parse_spec(spec: str) -> ParsedSpec:
    """Validate and normalise a machine spec string.

    Returns the :class:`~repro.core.registry.ParsedSpec` (lower-cased
    head plus parameter tuple) the registry itself uses, after checking
    the spec actually builds; *every* rejected spec -- unknown head or
    malformed parameters -- raises :class:`UnknownSpecError`.  The CLI's
    spec-taking subcommands (``simulate``, ``verify``, ``bench``,
    ``sweep``) all validate through here, so they fail fast with the
    same message before any expensive work starts.
    """
    parsed = _parse_spec_string(spec)
    build_simulator(spec)
    return parsed


@dataclass(frozen=True)
class MachineInfo:
    """Everything the registry knows about one machine spec."""

    #: The normalised spec string (lower-cased, whitespace-stripped).
    spec: str
    head: str
    params: Tuple[str, ...]
    #: The simulator class the spec builds.
    machine: str
    #: Compiled fast-path family (``"scoreboard"``, ``"ooo"``, ...) or
    #: ``None`` for machines that always run their reference loop.
    family: Optional[str]
    #: Whether the fast-path backends can ever serve this machine.
    fast_path: bool


def machine_info(spec: str) -> MachineInfo:
    """Describe a machine spec: class, fast-path family, normalised form.

    Raises :class:`UnknownSpecError` for any rejected spec.
    """
    parsed = _parse_spec_string(spec)
    simulator = build_simulator(spec)
    family = fastpath.family_of(simulator)
    if family == "ruu" and simulator.predictor_factory is not None:
        family = None
    return MachineInfo(
        spec=":".join((parsed.head,) + parsed.params),
        head=parsed.head,
        params=parsed.params,
        machine=type(simulator).__name__,
        family=family,
        fast_path=family is not None,
    )


@dataclass(frozen=True)
class SweepRun:
    """One finished :func:`run_sweep`: every replay plus the aggregates.

    ``results[spec]`` holds one :class:`SimulationResult` per trace, in
    trace order; ``rates[spec]`` is the harmonic mean of the per-trace
    issue rates (instructions per cycle), the paper's aggregate.
    ``manifest`` is shared across the whole sweep: the specs, traces,
    backend, wall time and the fast-path counter deltas attributing the
    replays to the backend that served them.
    """

    specs: Tuple[str, ...]
    config: str
    backend: str
    results: Mapping[str, Tuple[SimulationResult, ...]]
    rates: Mapping[str, float]
    manifest: Mapping[str, object]

    def render(self) -> str:
        """A small fixed-width report: one line per spec."""
        lines = [
            f"sweep: {len(self.specs)} machines x "
            f"{len(self.manifest['traces'])} traces on {self.config} "
            f"(backend {self.backend})"
        ]
        for spec in self.specs:
            lines.append(f"  {spec:<16} rate {self.rates[spec]:.3f}")
        return "\n".join(lines)


def run_sweep(
    specs: Sequence[str],
    traces: Sequence,
    *,
    config: str = "M11BR5",
    backend: str = "auto",
) -> SweepRun:
    """Replay a set of traces through a set of machine specs as sweeps.

    The sweep-shaped entry point: each trace is lowered once and
    replayed through *every* spec in one pass of the selected fast-path
    backend (``"auto"`` resolves to the batch structure-of-arrays
    backend; ``"python"`` forces per-spec compiled loops).  Machines
    without a compiled loop -- and every machine when the fast path is
    disabled -- run their reference loops; results are bit-identical
    across backends either way.

    Args:
        specs: registry spec strings; every spec is validated up front
            and an :class:`UnknownSpecError` names the first bad one.
        traces: :class:`~repro.trace.Trace` objects, trace-source spec
            strings (``"branchy:n=256"``, ``"file:trace.jsonl"`` ...),
            or Livermore kernel numbers (ints) to build at their
            default sizes.
        config: machine-variant name (``M11BR5`` ...).
        backend: ``"auto"`` | ``"python"`` | ``"batch"``.

    Returns:
        A :class:`SweepRun` with per-(spec, trace) results, per-spec
        harmonic-mean rates, and one shared manifest.
    """
    import time as _time

    spec_list = tuple(specs)
    for spec in spec_list:
        parse_spec(spec)
    fastpath.resolve_backend(backend)  # fail fast on unknown backends
    machine_config = config_by_name(config)
    simulators = [build_simulator(spec) for spec in spec_list]
    resolved: List[Trace] = []
    for item in traces:
        if isinstance(item, Trace):
            resolved.append(item)
        elif isinstance(item, str):
            resolved.append(trace_source(item))
        else:
            resolved.append(_kernel(item, None).trace())

    stats_before = fastpath.stats()
    start = _time.perf_counter()
    per_spec: Dict[str, List[SimulationResult]] = {
        spec: [] for spec in spec_list
    }
    for trace in resolved:
        swept = fastpath.simulate_sweep(
            trace,
            [(simulator, machine_config) for simulator in simulators],
            backend=backend,
        )
        for spec, result in zip(spec_list, swept):
            per_spec[spec].append(result)
    wall = _time.perf_counter() - start
    stats_after = fastpath.stats()

    rates = {
        spec: harmonic_mean(
            [r.instructions / r.cycles for r in results]
        )
        for spec, results in per_spec.items()
    }
    manifest = {
        "specs": list(spec_list),
        "traces": [trace.name for trace in resolved],
        "config": config,
        "backend": backend,
        "wall_seconds": wall,
        "fastpath": {
            key: stats_after[key] - stats_before.get(key, 0)
            for key in stats_after
            if stats_after[key] - stats_before.get(key, 0)
        },
    }
    return SweepRun(
        specs=spec_list,
        config=config,
        backend=backend,
        results={
            spec: tuple(results) for spec, results in per_spec.items()
        },
        rates=rates,
        manifest=manifest,
    )


# ----------------------------------------------------------------------
# Introspection
# ----------------------------------------------------------------------

def list_machines() -> Tuple[str, ...]:
    """Every accepted machine spec: fixed names plus templates."""
    return list_specs()


def list_backends() -> Tuple[str, ...]:
    """Registered fast-path backend names (``batch``, ``python``)."""
    return fastpath.list_backends()


def machine_spec_help() -> str:
    """One-line grammar of accepted machine specification strings."""
    return available_specs()
