"""Persistent content-addressed store for traces and per-cell results.

The in-process :class:`~repro.trace.cache.TraceCache` forgets everything
between runs; this module makes the paper's capture-once/replay-many split
durable.  Entries are keyed by a SHA-256 hash over a canonical JSON
encoding of the identifying parameters (kernel id, problem size, unroll
factor, schedule flags, machine spec, machine config, ...), so a key can
never collide across semantically different cells and never misses across
semantically identical ones.

Layout (under ``$REPRO_CACHE_DIR``, default ``~/.cache/repro``)::

    traces/<sha256>.jsonl    -- JSON-lines trace archives (repro.trace.io)
    results/<sha256>.jsonl   -- one header line + one result record

Every read is fail-soft: a missing, truncated, or otherwise corrupted
entry behaves exactly like a cache miss (the file is deleted and rebuilt),
so the cache can only ever change timing, never results.  Writes go
through a temporary file and :func:`os.replace`, so concurrent writers
(the parallel engine's worker processes) never expose partial entries.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from .io import read_trace, write_trace
from .record import Trace

logger = logging.getLogger(__name__)

#: Environment variable overriding the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every existing entry after a format change.
STORE_VERSION = 1


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def content_key(parts: Mapping[str, Any]) -> str:
    """SHA-256 over a canonical JSON encoding of *parts*.

    *parts* must be JSON-serialisable; key order is normalised so
    logically equal mappings hash identically.
    """
    canonical = json.dumps(
        dict(parts, _store_version=STORE_VERSION),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class DiskCache:
    """Content-addressed persistent store for traces and cell results.

    All loads are fail-soft; all stores are atomic and best-effort (an
    unwritable cache directory degrades to a no-op cache rather than
    failing the experiment).
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.trace_hits = 0
        self.trace_misses = 0
        self.result_hits = 0
        self.result_misses = 0
        # Corrupted-entry rebuilds.  A rebuild is silent for correctness
        # (it behaves like a miss) but never silent for observability:
        # each one is counted and logged, and the engine republishes the
        # counts through the repro.obs metrics registry.
        self.trace_corruptions = 0
        self.result_corruptions = 0

    # -- paths ---------------------------------------------------------

    def trace_path(self, key_parts: Mapping[str, Any]) -> Path:
        return self.root / "traces" / f"{content_key(key_parts)}.jsonl"

    def result_path(self, key_parts: Mapping[str, Any]) -> Path:
        return self.root / "results" / f"{content_key(key_parts)}.jsonl"

    # -- traces --------------------------------------------------------

    def load_trace(self, key_parts: Mapping[str, Any]) -> Optional[Trace]:
        """The stored trace for this key, or None on miss/corruption."""
        path = self.trace_path(key_parts)
        try:
            trace = read_trace(path)
        except FileNotFoundError:
            self.trace_misses += 1
            return None
        except (OSError, ValueError) as exc:
            # Corrupted archive: drop it and report a miss so the caller
            # rebuilds (and re-stores) the trace.
            self.trace_corruptions += 1
            logger.warning(
                "corrupted trace cache entry %s (%s); discarding, "
                "it will be rebuilt", path, exc,
            )
            self._discard(path)
            self.trace_misses += 1
            return None
        self.trace_hits += 1
        return trace

    def store_trace(self, key_parts: Mapping[str, Any], trace: Trace) -> None:
        import io as _io

        buffer = _io.StringIO()
        write_trace(trace, buffer)
        try:
            _atomic_write(self.trace_path(key_parts), buffer.getvalue())
        except OSError:
            pass

    # -- cell results --------------------------------------------------

    def load_result(
        self, key_parts: Mapping[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """The stored result record for this key, or None."""
        path = self.result_path(key_parts)
        try:
            lines = [
                line for line in path.read_text().splitlines() if line.strip()
            ]
            if len(lines) != 2:
                raise ValueError("result entry must be header + record")
            header = json.loads(lines[0])
            if header.get("kind") != "header":
                raise ValueError("missing header record")
            if header.get("version") != STORE_VERSION:
                raise ValueError("stale store version")
            record = json.loads(lines[1])
            if not isinstance(record, dict):
                raise ValueError("result record must be an object")
        except FileNotFoundError:
            self.result_misses += 1
            return None
        except (OSError, ValueError) as exc:
            self.result_corruptions += 1
            logger.warning(
                "corrupted result cache entry %s (%s); discarding, "
                "it will be recomputed", path, exc,
            )
            self._discard(path)
            self.result_misses += 1
            return None
        self.result_hits += 1
        return record

    def store_result(
        self, key_parts: Mapping[str, Any], record: Mapping[str, Any]
    ) -> None:
        header = {"kind": "header", "version": STORE_VERSION}
        text = json.dumps(header) + "\n" + json.dumps(dict(record)) + "\n"
        try:
            _atomic_write(self.result_path(key_parts), text)
        except OSError:
            pass

    # -- maintenance ---------------------------------------------------

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def clear(self) -> None:
        """Delete every cached entry (leaves the root directory)."""
        for sub in ("traces", "results"):
            directory = self.root / sub
            if not directory.is_dir():
                continue
            for entry in directory.glob("*.jsonl"):
                self._discard(entry)

    def counters(self) -> Dict[str, int]:
        return {
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "trace_corruptions": self.trace_corruptions,
            "result_corruptions": self.result_corruptions,
        }
