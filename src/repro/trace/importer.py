"""External trace import: strict, diagnosable JSONL archive loading.

:mod:`repro.trace.io` defines the archive format (one JSON object per
line: a header record, then one record per dynamic instruction) and a
reader tuned for archives the repo wrote itself.  This module is the
*border checkpoint* for third-party traces -- the ``file:`` head of the
trace-source registry: the same schema, but validated line by line so a
malformed archive fails with one precise ``path:line: message``
diagnostic (:class:`TraceImportError`) instead of a stack trace from
deep inside trace construction.

The schema is versioned (``FORMAT_VERSION`` in the header) and
documented with a worked example in ``docs/traces.md``.  Imported traces
are ordinary :class:`~repro.trace.Trace` objects: they replay through
every machine, limit bound, telemetry record and verifier, and
re-exporting one (:func:`export_trace` /
:func:`~repro.trace.io.write_trace`) is byte-stable -- export, import
and export again produce identical files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, List, Optional, Union

from .io import (
    FORMAT_VERSION,
    PathOrFile,
    TraceFormatError,
    _entry_from_record,
    write_trace,
)
from .record import Trace, TraceEntry

__all__ = [
    "SUPPORTED_VERSIONS",
    "TraceImportError",
    "export_trace",
    "import_trace",
]

#: Archive format versions this importer understands.
SUPPORTED_VERSIONS = (FORMAT_VERSION,)

#: Keys an instruction record may carry (anything else is a typo or a
#: foreign format, and strict import says so rather than guessing).
_RECORD_KEYS = frozenset(
    ("op", "static", "dest", "srcs", "target", "taken", "addr",
     "backward", "vl", "comment")
)
_HEADER_KEYS = frozenset(("kind", "name", "entries", "version"))


class TraceImportError(TraceFormatError):
    """A malformed external trace archive, located to one line.

    Carries the offending path and 1-based line number; the message is
    always a single ``path:line: reason`` diagnostic, suitable for
    printing verbatim by the CLI.
    """

    def __init__(
        self, reason: str, *, path: str, line: Optional[int] = None
    ) -> None:
        self.path = path
        self.line = line
        self.reason = reason
        location = f"{path}:{line}" if line is not None else path
        super().__init__(f"{location}: {reason}")


def import_trace(source: PathOrFile, *, name: str = "") -> Trace:
    """Read an external JSONL trace archive, validating line by line.

    Accepts a path or an open text handle (*name* labels handle input
    in diagnostics).  Raises :class:`TraceImportError` -- never a bare
    parse or construction error -- for any malformed input.
    """
    if isinstance(source, (str, Path)):
        path = str(source)
        try:
            with open(source) as handle:
                return _import_lines(handle, path)
        except OSError as exc:
            raise TraceImportError(
                f"cannot read trace archive ({exc.strerror or exc})",
                path=path,
            ) from None
    return _import_lines(source, name or "<trace>")


def export_trace(trace: Trace, destination: PathOrFile) -> None:
    """Write *trace* in the importable archive format.

    Thin alias of :func:`repro.trace.io.write_trace`, re-exported here
    so import and export live behind one module; the output round-trips
    through :func:`import_trace` byte-stably.
    """
    write_trace(trace, destination)


# ----------------------------------------------------------------------
# Line-by-line validation
# ----------------------------------------------------------------------

def _fail(path: str, line: int, reason: str) -> TraceImportError:
    return TraceImportError(reason, path=path, line=line)


def _import_lines(handle: IO[str], path: str) -> Trace:
    header = None
    header_line = 0
    entries: List[TraceEntry] = []
    declared: Optional[int] = None
    trace_name = "imported"

    line_number = 0
    for line_number, line in enumerate(handle, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise _fail(path, line_number, f"not valid JSON ({exc.msg})")
        if not isinstance(record, dict):
            raise _fail(
                path, line_number,
                f"expected a JSON object, got {type(record).__name__}",
            )

        if header is None:
            header = _check_header(record, path, line_number)
            header_line = line_number
            trace_name = header.get("name") or "imported"
            declared = header.get("entries")
            continue
        if record.get("kind") == "header":
            raise _fail(path, line_number, "second header record")
        entries.append(_check_entry(record, len(entries), path, line_number))

    if header is None:
        raise _fail(path, max(line_number, 1), "empty trace archive")
    if not entries:
        raise _fail(path, header_line, "archive has a header but no entries")
    if declared is not None and declared != len(entries):
        raise _fail(
            path, header_line,
            f"header declares {declared} entries, archive has {len(entries)}",
        )
    return Trace(name=str(trace_name), entries=tuple(entries))


def _check_header(record: dict, path: str, line: int) -> dict:
    if record.get("kind") != "header":
        raise _fail(
            path, line,
            "first record must be the header "
            '({"kind": "header", "name": ..., "version": 1})',
        )
    unknown = set(record) - _HEADER_KEYS
    if unknown:
        raise _fail(
            path, line,
            f"unknown header field(s): {', '.join(sorted(unknown))}",
        )
    version = record.get("version")
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise _fail(
            path, line,
            f"unsupported trace format version {version!r} "
            f"(this importer reads version {supported})",
        )
    declared = record.get("entries")
    if declared is not None and (
        isinstance(declared, bool) or not isinstance(declared, int)
        or declared < 0
    ):
        raise _fail(
            path, line,
            f"header field 'entries' must be a non-negative integer, "
            f"got {declared!r}",
        )
    name = record.get("name")
    if name is not None and not isinstance(name, str):
        raise _fail(
            path, line, f"header field 'name' must be a string, got {name!r}"
        )
    return record


def _check_entry(
    record: dict, seq: int, path: str, line: int
) -> TraceEntry:
    unknown = set(record) - _RECORD_KEYS
    if unknown:
        raise _fail(
            path, line,
            f"unknown record field(s): {', '.join(sorted(unknown))}",
        )
    if "op" not in record:
        raise _fail(path, line, "record is missing the 'op' field")
    try:
        return _entry_from_record(seq, record)
    except TraceFormatError as exc:
        # io's reader prefixes "record N:"; strip it for the path:line form.
        reason = str(exc)
        prefix = f"record {seq}: "
        if reason.startswith(prefix):
            reason = reason[len(prefix):]
        raise _fail(path, line, reason)
    except ValueError as exc:
        # Instruction/TraceEntry construction errors: ISA-invalid records.
        raise _fail(path, line, str(exc))
