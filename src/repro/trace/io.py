"""Trace serialisation: JSON-lines archives of dynamic traces.

The paper's workflow separates trace capture from timing simulation;
persisting traces makes that split concrete -- capture once (slow,
verifies the kernel), replay through any number of machine models later
or on another machine.  The format is one JSON object per line: a header
record followed by one record per dynamic instruction.

Example::

    {"kind": "header", "name": "livermore-05", "entries": 1595, "version": 1}
    {"op": "LOADS", "dest": "S2", "srcs": ["A1", 216], "static": 3}
    {"op": "JAN", "srcs": ["A0"], "target": "loop", "taken": true, "static": 8}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, List, Union

from ..isa import Instruction, Opcode, Operand, Register, parse_register
from .record import Trace, TraceEntry

FORMAT_VERSION = 1

PathOrFile = Union[str, Path, IO[str]]


class TraceFormatError(ValueError):
    """Raised when a trace archive is malformed."""


def _encode_operand(operand: Operand):
    if isinstance(operand, Register):
        return operand.name
    return operand


def _decode_operand(value) -> Operand:
    if isinstance(value, str):
        return parse_register(value)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TraceFormatError(f"bad operand in archive: {value!r}")
    return value


def _entry_record(entry: TraceEntry) -> dict:
    instr = entry.instruction
    record = {
        "op": instr.opcode.value,
        "static": entry.static_index,
    }
    if instr.dest is not None:
        record["dest"] = instr.dest.name
    if instr.srcs:
        record["srcs"] = [_encode_operand(s) for s in instr.srcs]
    if instr.target is not None:
        record["target"] = instr.target
    if entry.taken is not None:
        record["taken"] = entry.taken
    if entry.address is not None:
        record["addr"] = entry.address
    if entry.backward is not None:
        record["backward"] = entry.backward
    if entry.vector_length is not None:
        record["vl"] = entry.vector_length
    if instr.comment:
        record["comment"] = instr.comment
    return record


def _entry_from_record(seq: int, record: dict) -> TraceEntry:
    try:
        opcode = Opcode(record["op"])
    except (KeyError, ValueError) as exc:
        raise TraceFormatError(f"record {seq}: bad opcode") from exc
    dest = parse_register(record["dest"]) if "dest" in record else None
    srcs = tuple(_decode_operand(v) for v in record.get("srcs", ()))
    instr = Instruction(
        opcode,
        dest,
        srcs,
        target=record.get("target"),
        comment=record.get("comment", ""),
    )
    return TraceEntry(
        seq=seq,
        static_index=int(record.get("static", seq)),
        instruction=instr,
        taken=record.get("taken"),
        address=record.get("addr"),
        backward=record.get("backward"),
        vector_length=record.get("vl"),
    )


def write_trace(trace: Trace, destination: PathOrFile) -> None:
    """Write *trace* as a JSON-lines archive."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w") as handle:
            write_trace(trace, handle)
        return
    header = {
        "kind": "header",
        "name": trace.name,
        "entries": len(trace),
        "version": FORMAT_VERSION,
    }
    destination.write(json.dumps(header) + "\n")
    for entry in trace:
        destination.write(json.dumps(_entry_record(entry)) + "\n")


def read_trace(source: PathOrFile) -> Trace:
    """Read a JSON-lines trace archive back into a :class:`Trace`."""
    if isinstance(source, (str, Path)):
        with open(source) as handle:
            return read_trace(handle)

    lines = [line for line in source if line.strip()]
    if not lines:
        raise TraceFormatError("empty trace archive")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceFormatError("malformed header line") from exc
    if header.get("kind") != "header":
        raise TraceFormatError("archive does not start with a header record")
    if header.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {header.get('version')!r}"
        )

    entries: List[TraceEntry] = []
    for seq, line in enumerate(lines[1:]):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"malformed record {seq}") from exc
        entries.append(_entry_from_record(seq, record))

    declared = header.get("entries")
    if declared is not None and declared != len(entries):
        raise TraceFormatError(
            f"header declares {declared} entries, archive has {len(entries)}"
        )
    return Trace(name=header.get("name", "archived"), entries=tuple(entries))
