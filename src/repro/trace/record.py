"""Dynamic instruction traces.

A :class:`Trace` is the dynamic instruction stream of one benchmark run:
the sequence of instructions a single-stream machine would fetch, with
every branch already resolved.  Traces are what the paper's methodology
feeds to each timing model -- the *same* trace is replayed through every
issue mechanism, so differences in issue rate come only from the machine
organisation, never from the workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..isa import Instruction


@dataclass(frozen=True)
class TraceEntry:
    """One dynamically executed instruction.

    Attributes:
        seq: position in the dynamic stream (0-based).
        static_index: index of the instruction in the static program.
        instruction: the instruction itself.
        taken: branch outcome (``True``/``False``) or ``None`` for
            non-branch instructions.
        address: effective memory address for loads/stores, ``None``
            otherwise.  Used by the memory-system models
            (:mod:`repro.memsys`); the paper-level machines ignore it.
        backward: for branches, whether the target precedes the branch in
            the static program (used by static branch-prediction
            heuristics); ``None`` when unknown or for non-branches.
        vector_length: element count of a vector instruction (the L0
            value when it executed); ``None`` for scalar instructions.
    """

    seq: int
    static_index: int
    instruction: Instruction
    taken: Optional[bool] = None
    address: Optional[int] = None
    backward: Optional[bool] = None
    vector_length: Optional[int] = None

    def __post_init__(self) -> None:
        if self.instruction.is_branch and self.taken is None:
            raise ValueError(
                f"branch at seq={self.seq} must record its outcome"
            )
        if not self.instruction.is_branch and self.taken is not None:
            raise ValueError(
                f"non-branch at seq={self.seq} cannot record an outcome"
            )
        is_memory = self.instruction.is_load or self.instruction.is_store
        if self.address is not None and not is_memory:
            raise ValueError(
                f"non-memory instruction at seq={self.seq} cannot carry "
                "an address"
            )
        if self.backward is not None and not self.instruction.is_branch:
            raise ValueError(
                f"non-branch at seq={self.seq} cannot carry direction info"
            )
        if self.instruction.is_vector and (
            self.vector_length is None or self.vector_length < 1
        ):
            raise ValueError(
                f"vector instruction at seq={self.seq} must record its "
                "vector length"
            )
        if self.vector_length is not None and not self.instruction.is_vector:
            raise ValueError(
                f"scalar instruction at seq={self.seq} cannot carry a "
                "vector length"
            )

    @property
    def is_branch(self) -> bool:
        return self.instruction.is_branch


@dataclass(frozen=True)
class Trace:
    """A complete dynamic instruction trace for one benchmark.

    Attributes:
        name: benchmark name (e.g. ``"livermore-05"``).
        entries: the dynamic instruction stream, in execution order.
    """

    name: str
    entries: Tuple[TraceEntry, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.entries, tuple):
            object.__setattr__(self, "entries", tuple(self.entries))
        if not self.entries:
            raise ValueError(f"trace {self.name!r} is empty")
        for expected_seq, entry in enumerate(self.entries):
            if entry.seq != expected_seq:
                raise ValueError(
                    f"trace {self.name!r}: entry {expected_seq} has "
                    f"seq={entry.seq}"
                )

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self.entries[index]

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """Just the instruction stream, without trace metadata."""
        return tuple(entry.instruction for entry in self.entries)

    @property
    def branch_count(self) -> int:
        return sum(1 for entry in self.entries if entry.is_branch)
