"""Descriptive statistics over dynamic traces.

These are used by the resource-limit computation (functional-unit usage
counts), by tests (instruction-mix sanity checks on the kernels) and by the
harness reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Mapping

from ..isa import FunctionalUnit, OpKind, Opcode
from ..isa.encoding import mean_parcels
from .record import Trace


@dataclass(frozen=True)
class TraceStats:
    """Instruction-mix summary of one dynamic trace.

    Attributes:
        name: trace name.
        total: dynamic instruction count.
        by_unit: dynamic instruction count per functional unit.
        by_opcode: dynamic instruction count per opcode.
        by_kind: dynamic instruction count per opcode kind.
        branches: dynamic branch count.
        taken_branches: dynamic taken-branch count.
        loads: dynamic load count.
        stores: dynamic store count.
        mean_parcels: average instruction width in parcels.
        vector_instructions: dynamic vector-instruction count (extension).
        vector_elements: total elements processed by vector instructions.
    """

    name: str
    total: int
    by_unit: Mapping[FunctionalUnit, int]
    by_opcode: Mapping[Opcode, int]
    by_kind: Mapping[OpKind, int]
    branches: int
    taken_branches: int
    loads: int
    stores: int
    mean_parcels: float
    vector_instructions: int = 0
    vector_elements: int = 0

    @property
    def memory_references(self) -> int:
        """Dynamic loads + stores."""
        return self.loads + self.stores

    @property
    def memory_fraction(self) -> float:
        """Fraction of dynamic instructions that reference memory."""
        return self.memory_references / self.total if self.total else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.total if self.total else 0.0

    def unit_fraction(self, unit: FunctionalUnit) -> float:
        """Fraction of dynamic instructions executed by *unit*."""
        return self.by_unit.get(unit, 0) / self.total if self.total else 0.0


def trace_stats(trace: Trace) -> TraceStats:
    """Compute the instruction-mix summary of *trace*."""
    by_unit: Counter = Counter()
    by_opcode: Counter = Counter()
    by_kind: Counter = Counter()
    branches = 0
    taken = 0
    loads = 0
    stores = 0
    vector_instructions = 0
    vector_elements = 0

    for entry in trace:
        instr = entry.instruction
        by_unit[instr.unit] += 1
        by_opcode[instr.opcode] += 1
        by_kind[instr.kind] += 1
        if instr.is_branch:
            branches += 1
            if entry.taken:
                taken += 1
        elif instr.is_load:
            loads += 1
        elif instr.is_store:
            stores += 1
        if instr.is_vector:
            vector_instructions += 1
            vector_elements += entry.vector_length or 0
            if instr.kind is OpKind.VECTOR_LOAD:
                loads += 1
            elif instr.kind is OpKind.VECTOR_STORE:
                stores += 1

    return TraceStats(
        name=trace.name,
        total=len(trace),
        by_unit=dict(by_unit),
        by_opcode=dict(by_opcode),
        by_kind=dict(by_kind),
        branches=branches,
        taken_branches=taken,
        loads=loads,
        stores=stores,
        mean_parcels=mean_parcels(trace.instructions),
        vector_instructions=vector_instructions,
        vector_elements=vector_elements,
    )


def format_stats(stats: TraceStats) -> str:
    """Human-readable rendering of a :class:`TraceStats`."""
    lines = [
        f"trace {stats.name}: {stats.total} dynamic instructions",
        f"  memory references: {stats.memory_references} "
        f"({stats.memory_fraction:.1%})",
        f"  branches: {stats.branches} ({stats.branch_fraction:.1%}), "
        f"{stats.taken_branches} taken",
        f"  mean width: {stats.mean_parcels:.2f} parcels",
        "  per functional unit:",
    ]
    if stats.vector_instructions:
        lines.insert(
            -1,
            f"  vector: {stats.vector_instructions} instructions / "
            f"{stats.vector_elements} elements",
        )
    for unit, count in sorted(
        stats.by_unit.items(), key=lambda item: -item[1]
    ):
        lines.append(f"    {unit.value:<26} {count:>8} ({count / stats.total:.1%})")
    return "\n".join(lines)
