"""Descriptive statistics over dynamic traces.

These are used by the resource-limit computation (functional-unit usage
counts), by tests (instruction-mix sanity checks on the kernels) and by the
harness reports.

Two statistic families live here:

* :func:`trace_stats` -- instruction-mix summaries over the high-level
  trace records (opcodes, kinds, parcel widths);
* :func:`ir_statistics` -- dependence and demand statistics over the
  *compiled* IR (:mod:`repro.core.fastpath.ir`), the exact lowering every
  fast backend and limit computation replays.  These feed the analytic
  design-space estimator (:mod:`repro.explore.model`) and the per-source
  summaries (:func:`repro.trace.sources.source_statistics`), and are
  cacheable per trace-source spec through :func:`cached_ir_stats` so
  repeated explore/screen runs never recompile unchanged traces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from ..isa import FunctionalUnit, OpKind, Opcode
from ..isa.encoding import mean_parcels
from .record import Trace

#: Bump to invalidate cached :class:`IRStats` payloads after a change to
#: the statistics themselves (new fields recompute via the fail-soft
#: decode path, so only semantic changes need a bump).
IR_STATS_VERSION = 1


@dataclass(frozen=True)
class TraceStats:
    """Instruction-mix summary of one dynamic trace.

    Attributes:
        name: trace name.
        total: dynamic instruction count.
        by_unit: dynamic instruction count per functional unit.
        by_opcode: dynamic instruction count per opcode.
        by_kind: dynamic instruction count per opcode kind.
        branches: dynamic branch count.
        taken_branches: dynamic taken-branch count.
        loads: dynamic load count.
        stores: dynamic store count.
        mean_parcels: average instruction width in parcels.
        vector_instructions: dynamic vector-instruction count (extension).
        vector_elements: total elements processed by vector instructions.
    """

    name: str
    total: int
    by_unit: Mapping[FunctionalUnit, int]
    by_opcode: Mapping[Opcode, int]
    by_kind: Mapping[OpKind, int]
    branches: int
    taken_branches: int
    loads: int
    stores: int
    mean_parcels: float
    vector_instructions: int = 0
    vector_elements: int = 0

    @property
    def memory_references(self) -> int:
        """Dynamic loads + stores."""
        return self.loads + self.stores

    @property
    def memory_fraction(self) -> float:
        """Fraction of dynamic instructions that reference memory."""
        return self.memory_references / self.total if self.total else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.total if self.total else 0.0

    def unit_fraction(self, unit: FunctionalUnit) -> float:
        """Fraction of dynamic instructions executed by *unit*."""
        return self.by_unit.get(unit, 0) / self.total if self.total else 0.0


def trace_stats(trace: Trace) -> TraceStats:
    """Compute the instruction-mix summary of *trace*."""
    by_unit: Counter = Counter()
    by_opcode: Counter = Counter()
    by_kind: Counter = Counter()
    branches = 0
    taken = 0
    loads = 0
    stores = 0
    vector_instructions = 0
    vector_elements = 0

    for entry in trace:
        instr = entry.instruction
        by_unit[instr.unit] += 1
        by_opcode[instr.opcode] += 1
        by_kind[instr.kind] += 1
        if instr.is_branch:
            branches += 1
            if entry.taken:
                taken += 1
        elif instr.is_load:
            loads += 1
        elif instr.is_store:
            stores += 1
        if instr.is_vector:
            vector_instructions += 1
            vector_elements += entry.vector_length or 0
            if instr.kind is OpKind.VECTOR_LOAD:
                loads += 1
            elif instr.kind is OpKind.VECTOR_STORE:
                stores += 1

    return TraceStats(
        name=trace.name,
        total=len(trace),
        by_unit=dict(by_unit),
        by_opcode=dict(by_opcode),
        by_kind=dict(by_kind),
        branches=branches,
        taken_branches=taken,
        loads=loads,
        stores=stores,
        mean_parcels=mean_parcels(trace.instructions),
        vector_instructions=vector_instructions,
        vector_elements=vector_elements,
    )


def format_stats(stats: TraceStats) -> str:
    """Human-readable rendering of a :class:`TraceStats`."""
    lines = [
        f"trace {stats.name}: {stats.total} dynamic instructions",
        f"  memory references: {stats.memory_references} "
        f"({stats.memory_fraction:.1%})",
        f"  branches: {stats.branches} ({stats.branch_fraction:.1%}), "
        f"{stats.taken_branches} taken",
        f"  mean width: {stats.mean_parcels:.2f} parcels",
        "  per functional unit:",
    ]
    if stats.vector_instructions:
        lines.insert(
            -1,
            f"  vector: {stats.vector_instructions} instructions / "
            f"{stats.vector_elements} elements",
        )
    for unit, count in sorted(
        stats.by_unit.items(), key=lambda item: -item[1]
    ):
        lines.append(f"    {unit.value:<26} {count:>8} ({count / stats.total:.1%})")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Compiled-IR statistics (the analytic estimator's inputs)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class IRStats:
    """Dependence and functional-unit demand summary of one compiled trace.

    Computed in a single walk over the compiled IR tuples
    (:func:`repro.core.fastpath.compile_trace`), so the numbers describe
    exactly what the simulators and the limit computations see.  This is
    the config-independent half of the analytic estimator's inputs; the
    config-dependent anchors (serial/dataflow/resource limits) are
    derived in :mod:`repro.explore.model`.

    Attributes:
        name: trace name.
        length: dynamic instruction count.
        branch_fraction: branches / length.
        memory_fraction: memory-port instructions / length.
        vector_fraction: vector instructions / length.
        mean_dependence_distance: mean over instructions with at least
            one in-trace producer of the distance (dynamic instructions)
            to the *nearest* producer of any source register.
        p50_dependence_distance: median of the same nearest-producer
            distances (nearest-rank method; 0.0 with no dependents).
        p90_dependence_distance: 90th percentile of the distances.
        dependent_fraction: instructions with an in-trace producer /
            length.
        bus_fraction: instructions that write their result over a result
            bus / length (the 1-bus completion bottleneck's demand).
        unit_counts: functional-unit name -> dynamic instruction count.
        unit_occupancy: functional-unit name -> busy-cycle demand at one
            op per cycle (vector operations occupy their unit once per
            element), exactly as the resource limit counts it.
    """

    name: str
    length: int
    branch_fraction: float
    memory_fraction: float
    vector_fraction: float
    mean_dependence_distance: float
    p50_dependence_distance: float
    p90_dependence_distance: float
    dependent_fraction: float
    bus_fraction: float
    unit_counts: Mapping[str, int]
    unit_occupancy: Mapping[str, int]

    def to_payload(self) -> Dict[str, Any]:
        """A JSON-serialisable encoding (DiskCache record)."""
        return {
            "name": self.name,
            "length": self.length,
            "branch_fraction": self.branch_fraction,
            "memory_fraction": self.memory_fraction,
            "vector_fraction": self.vector_fraction,
            "mean_dependence_distance": self.mean_dependence_distance,
            "p50_dependence_distance": self.p50_dependence_distance,
            "p90_dependence_distance": self.p90_dependence_distance,
            "dependent_fraction": self.dependent_fraction,
            "bus_fraction": self.bus_fraction,
            "unit_counts": dict(self.unit_counts),
            "unit_occupancy": dict(self.unit_occupancy),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "IRStats":
        """Decode a :meth:`to_payload` record; raises on malformed input
        (callers treat that exactly like a cache miss)."""
        return cls(
            name=str(payload["name"]),
            length=int(payload["length"]),
            branch_fraction=float(payload["branch_fraction"]),
            memory_fraction=float(payload["memory_fraction"]),
            vector_fraction=float(payload["vector_fraction"]),
            mean_dependence_distance=float(
                payload["mean_dependence_distance"]
            ),
            p50_dependence_distance=float(payload["p50_dependence_distance"]),
            p90_dependence_distance=float(payload["p90_dependence_distance"]),
            dependent_fraction=float(payload["dependent_fraction"]),
            bus_fraction=float(payload["bus_fraction"]),
            unit_counts={
                str(k): int(v) for k, v in payload["unit_counts"].items()
            },
            unit_occupancy={
                str(k): int(v) for k, v in payload["unit_occupancy"].items()
            },
        )


def _nearest_rank(sorted_values: List[int], quantile: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-int(quantile * 1000) * len(sorted_values) // 1000))
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


def ir_statistics(trace: Trace) -> IRStats:
    """Compute the :class:`IRStats` summary of *trace* from its compiled IR."""
    from ..core.fastpath.ir import UNITS, compile_trace

    compiled = compile_trace(trace)
    n = compiled.n
    last_writer: Dict[int, int] = {}
    distances: List[int] = []
    branches = 0
    memory = 0
    vector = 0
    bus_writes = 0
    unit_counts = [0] * len(UNITS)
    unit_occupancy = [0] * len(UNITS)
    memory_unit = next(i for i, u in enumerate(UNITS) if u.name == "MEMORY")

    for index, op in enumerate(compiled.ops):
        unit, dest, srcs, is_branch, _taken, is_vector, vl, uses_bus, _c = op
        unit_counts[unit] += 1
        unit_occupancy[unit] += (vl if is_vector else 1) or 1
        if is_branch:
            branches += 1
        if unit == memory_unit:
            memory += 1
        if is_vector:
            vector += 1
        if uses_bus:
            bus_writes += 1
        nearest = None
        for src in srcs:
            producer = last_writer.get(src)
            if producer is not None:
                distance = index - producer
                if nearest is None or distance < nearest:
                    nearest = distance
        if nearest is not None:
            distances.append(nearest)
        if dest >= 0:
            last_writer[dest] = index

    distances.sort()
    dependent = len(distances)
    return IRStats(
        name=trace.name,
        length=n,
        branch_fraction=branches / n,
        memory_fraction=memory / n,
        vector_fraction=vector / n,
        mean_dependence_distance=(
            sum(distances) / dependent if dependent else 0.0
        ),
        p50_dependence_distance=_nearest_rank(distances, 0.5),
        p90_dependence_distance=_nearest_rank(distances, 0.9),
        dependent_fraction=dependent / n,
        bus_fraction=bus_writes / n,
        unit_counts={
            UNITS[i].value: unit_counts[i]
            for i in range(len(UNITS))
            if unit_counts[i]
        },
        unit_occupancy={
            UNITS[i].value: unit_occupancy[i]
            for i in range(len(UNITS))
            if unit_occupancy[i]
        },
    )


def _ir_stats_key(source: str) -> Dict[str, Any]:
    """DiskCache identity of one source's compiled-IR statistics.

    Seeded generator parameters (``seed=``, ``n=`` ...) are part of the
    normalised spec text, so every (trace spec, seed) pair keys its own
    entry.
    """
    return {
        "kind": "ir-stats",
        "source": source,
        "version": IR_STATS_VERSION,
    }


def cached_ir_stats(
    spec: str,
    cache=None,
    *,
    trace: Optional[Trace] = None,
) -> IRStats:
    """:func:`ir_statistics` for a trace-source spec, via the DiskCache.

    With *cache* (a :class:`~repro.trace.DiskCache`), the statistics are
    looked up content-addressed by the normalised spec text before the
    trace is built or compiled -- a hit skips trace generation entirely.
    ``file:`` sources are never cached (the file's content can change
    under the same path).  Hits, misses and stores are counted as
    ``fastpath.ir_stats.*`` (surfaced by manifests and ``repro stats``).

    *trace* short-circuits trace resolution on a miss when the caller
    already holds the resolved trace.
    """
    from ..core.fastpath.backends import count_run
    from .sources import format_trace_spec, parse_trace_spec, trace_source

    parsed = parse_trace_spec(spec)
    source = format_trace_spec(parsed)
    cacheable = cache is not None and parsed.head != "file"
    if cacheable:
        record = cache.load_result(_ir_stats_key(source))
        if record is not None:
            try:
                stats = IRStats.from_payload(record)
            except (KeyError, TypeError, ValueError):
                stats = None  # corrupt payload: recompute and overwrite
            if stats is not None:
                count_run("ir_stats", "hits")
                return stats
        count_run("ir_stats", "misses")
    stats = ir_statistics(trace if trace is not None else trace_source(spec))
    if cacheable:
        cache.store_result(_ir_stats_key(source), stats.to_payload())
        count_run("ir_stats", "stores")
    return stats
