"""In-process trace cache.

A kernel's dynamic trace depends only on the kernel and its problem size --
*not* on any machine parameter (memory latency, branch time, issue method
are all timing-level concerns).  The paper exploits the same property: one
trace per benchmark drives every machine variant.  Caching traces therefore
makes whole-table experiments dramatically cheaper without changing any
result.
"""

from __future__ import annotations

from threading import Lock
from typing import Callable, Dict, Hashable, Optional, Tuple

from .record import Trace

_CacheKey = Tuple[Hashable, ...]


class TraceCache:
    """A small thread-safe memoisation table for traces."""

    def __init__(self) -> None:
        self._traces: Dict[_CacheKey, Trace] = {}
        self._lock = Lock()

    def get_or_build(self, key: _CacheKey, build: Callable[[], Trace]) -> Trace:
        """Return the cached trace for *key*, building it on first use."""
        with self._lock:
            cached = self._traces.get(key)
        if cached is not None:
            return cached
        trace = build()
        with self._lock:
            # Another thread may have raced us; keep the first one stored so
            # callers always see a single canonical object per key.
            return self._traces.setdefault(key, trace)

    def peek(self, key: _CacheKey) -> Optional[Trace]:
        """Return the cached trace for *key*, or None."""
        with self._lock:
            return self._traces.get(key)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


#: Process-wide cache used by :mod:`repro.kernels` helpers and the harness.
GLOBAL_TRACE_CACHE = TraceCache()
