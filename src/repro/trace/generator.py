"""Trace capture: run a program functionally and record the dynamic stream.

This module plays the role of the paper's trace-generation step ("instruction
traces were generated for each of the benchmark programs and then used to
drive the simulations").  Because the functional interpreter resolves every
branch on real data, the captured stream is exactly the dynamic instruction
sequence of the program for its input.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..asm import DEFAULT_MAX_STEPS, ExecutionResult, Memory, Program
from ..asm import run as run_program
from ..isa import Instruction
from .record import Trace, TraceEntry


def generate_trace(
    program: Program,
    memory: Memory,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    name: Optional[str] = None,
) -> Trace:
    """Execute *program* on *memory* and capture its dynamic trace.

    The memory image is mutated (the program really runs); callers that
    need the pre-run image should pass ``memory.copy()``.
    """
    trace, _ = generate_trace_with_result(
        program, memory, max_steps=max_steps, name=name
    )
    return trace


def generate_trace_with_result(
    program: Program,
    memory: Memory,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    name: Optional[str] = None,
):
    """Like :func:`generate_trace` but also returns the execution result.

    Returns:
        ``(trace, result)`` where *result* is the interpreter's
        :class:`~repro.asm.ExecutionResult` (final memory and registers),
        used by kernel verification.
    """
    entries: List[TraceEntry] = []

    def observe(
        static_index: int, instruction: Instruction, taken, address, vl
    ) -> None:
        backward = None
        if instruction.is_branch:
            backward = program.target_index(instruction) <= static_index
        entries.append(
            TraceEntry(
                seq=len(entries),
                static_index=static_index,
                instruction=instruction,
                taken=taken,
                address=address,
                backward=backward,
                vector_length=vl,
            )
        )

    result: ExecutionResult = run_program(
        program, memory, max_steps=max_steps, observer=observe
    )
    trace = Trace(name=name or program.name, entries=tuple(entries))
    return trace, result


#: One item of a synthesised trace: a bare instruction, or an existing
#: :class:`TraceEntry` whose metadata (branch outcome, address, direction)
#: should be preserved under a fresh sequence number.
TraceItem = Union[Instruction, TraceEntry]


def assemble_trace(items: Sequence[TraceItem], name: str) -> Trace:
    """Build a dynamic trace directly from instructions or entries.

    The trace-capture path above derives entries by running a program;
    this is the synthetic counterpart used by the fuzzer
    (:mod:`repro.verify.fuzz`) and the failure minimiser
    (:mod:`repro.verify.shrink`): items are renumbered into a fresh,
    well-formed dynamic stream.  Bare :class:`Instruction` items must not
    be branches (a branch needs its outcome recorded -- pass a
    :class:`TraceEntry` for those).
    """
    entries: List[TraceEntry] = []
    for seq, item in enumerate(items):
        if isinstance(item, TraceEntry):
            entries.append(
                TraceEntry(
                    seq=seq,
                    static_index=item.static_index,
                    instruction=item.instruction,
                    taken=item.taken,
                    address=item.address,
                    backward=item.backward,
                    vector_length=item.vector_length,
                )
            )
        else:
            entries.append(
                TraceEntry(seq=seq, static_index=seq, instruction=item)
            )
    return Trace(name=name, entries=tuple(entries))


def subset_trace(trace: Trace, keep: Iterable[int], name: Optional[str] = None) -> Trace:
    """A new trace containing only the entries at indices *keep* (sorted).

    Sequence numbers are renumbered to stay contiguous; everything else
    (instructions, branch outcomes, addresses) is preserved.  Used by the
    verification shrinker to minimise failing traces.
    """
    indices = sorted(set(keep))
    return assemble_trace(
        [trace.entries[i] for i in indices],
        name or f"{trace.name}-subset",
    )
