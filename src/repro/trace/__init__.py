"""Dynamic trace layer: capture, representation, statistics and caching."""

from .cache import GLOBAL_TRACE_CACHE, TraceCache
from .diskcache import CACHE_DIR_ENV, DiskCache, content_key, default_cache_dir
from .generator import (
    assemble_trace,
    generate_trace,
    generate_trace_with_result,
    subset_trace,
)
from .io import TraceFormatError, read_trace, write_trace
from .record import Trace, TraceEntry
from .stats import TraceStats, format_stats, trace_stats

__all__ = [
    "CACHE_DIR_ENV",
    "DiskCache",
    "GLOBAL_TRACE_CACHE",
    "Trace",
    "TraceCache",
    "content_key",
    "default_cache_dir",
    "TraceEntry",
    "TraceFormatError",
    "TraceStats",
    "assemble_trace",
    "format_stats",
    "generate_trace",
    "generate_trace_with_result",
    "read_trace",
    "subset_trace",
    "trace_stats",
    "write_trace",
]
