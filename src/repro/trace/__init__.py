"""Dynamic trace layer: capture, representation, statistics and caching."""

from .cache import GLOBAL_TRACE_CACHE, TraceCache
from .diskcache import CACHE_DIR_ENV, DiskCache, content_key, default_cache_dir
from .generator import (
    assemble_trace,
    generate_trace,
    generate_trace_with_result,
    subset_trace,
)
from .importer import (
    SUPPORTED_VERSIONS,
    TraceImportError,
    export_trace,
    import_trace,
)
from .io import TraceFormatError, read_trace, write_trace
from .record import Trace, TraceEntry
from .sources import (
    FAMILY_ENVELOPES,
    MIXED_MACHINES,
    ParsedTraceSpec,
    SourceStats,
    TraceSource,
    UnknownTraceSourceError,
    available_sources,
    format_trace_spec,
    list_sources,
    parse_trace_spec,
    register_source,
    source_names,
    source_statistics,
    trace_source,
)
from .stats import TraceStats, format_stats, trace_stats

__all__ = [
    "CACHE_DIR_ENV",
    "DiskCache",
    "FAMILY_ENVELOPES",
    "GLOBAL_TRACE_CACHE",
    "MIXED_MACHINES",
    "ParsedTraceSpec",
    "SUPPORTED_VERSIONS",
    "SourceStats",
    "Trace",
    "TraceCache",
    "TraceEntry",
    "TraceFormatError",
    "TraceImportError",
    "TraceSource",
    "TraceStats",
    "UnknownTraceSourceError",
    "assemble_trace",
    "available_sources",
    "content_key",
    "default_cache_dir",
    "export_trace",
    "format_stats",
    "format_trace_spec",
    "generate_trace",
    "generate_trace_with_result",
    "import_trace",
    "list_sources",
    "parse_trace_spec",
    "read_trace",
    "register_source",
    "source_names",
    "source_statistics",
    "subset_trace",
    "trace_source",
    "trace_stats",
    "write_trace",
]
