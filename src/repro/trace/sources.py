"""Unified trace-source registry: every workload behind one spec syntax.

The paper's methodology replays *the same dynamic trace* through every
machine organisation; this module does for traces what
:mod:`repro.core.registry` does for machines -- one string grammar,
resolvable from the CLI, :mod:`repro.api`, the harness and the verifier,
covering every way the repo can produce a trace:

======================  ==============================================
spec                    trace
======================  ==============================================
``kernel:5``            Livermore loop 5 at its default size
``kernel:k2:n=50``      loop 2 at n=50 (``unroll=``, ``schedule=``,
                        ``vector=`` also accepted)
``synthetic:stride``    a `workloads.synthetic` preset (``default``,
                        ``stride``, ``deep``, ``wide``; override with
                        ``n=``, ``body=``, ``mem=``, ``chains=``,
                        ``carried=``, ``seed=``)
``fuzz:seed=7:branchy`` a `verify.fuzz` trace: preset family plus
                        ``seed=``/``len=`` overrides
``branchy:n=256``       control-dominated integer code
                        (:mod:`repro.workloads.families`)
``pointer:chains=2``    pointer-chasing with gathers
``mixed:n=192``         mixed scalar-vector strips (vector-capable
                        machines only, see :data:`MIXED_MACHINES`)
``file:trace.jsonl``    an external JSONL trace archive
                        (:mod:`repro.trace.importer`)
======================  ==============================================

Grammar: ``head[:token]...`` where each token is either a bare preset
name (``stride``, ``branchy``) or a ``key=value`` override; tokens are
order-insensitive.  The ``file`` head is special: everything after the
first ``:`` is the path, taken verbatim (case and further colons
preserved).  :func:`parse_trace_spec` and :func:`format_trace_spec` are
inverses on normalised specs, mirroring ``core.registry.parse_spec``;
every rejected spec raises :class:`UnknownTraceSourceError` carrying
``.spec``/``.reason``/``.valid`` exactly like
:class:`~repro.core.registry.UnknownSpecError`.

Per-family statistics (:func:`source_statistics`) are computed from the
compiled-trace IR -- dependence distances and functional-unit demand --
and each seeded family documents the envelope those statistics stay
inside (:data:`FAMILY_ENVELOPES`); the calibration tests hold 200 seeds
per family to it so the oracle's partial-order edges stay sound as the
generators evolve.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from .record import Trace

__all__ = [
    "FAMILY_ENVELOPES",
    "MIXED_MACHINES",
    "ParsedTraceSpec",
    "SourceStats",
    "TraceSource",
    "UnknownTraceSourceError",
    "available_sources",
    "format_trace_spec",
    "list_sources",
    "parse_trace_spec",
    "register_source",
    "source_names",
    "source_statistics",
    "trace_source",
]


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ParsedTraceSpec:
    """A trace-source spec split into its head and parameter tokens.

    The single parsing point shared by :func:`trace_source` and every
    spec-keyed consumer, mirroring
    :class:`repro.core.registry.ParsedSpec` for machines.
    """

    head: str
    params: Tuple[str, ...]


def parse_trace_spec(spec: str) -> ParsedTraceSpec:
    """Normalise a trace-source spec: strip, lowercase, split on ``:``.

    The ``file`` head keeps everything after the first ``:`` verbatim
    (paths are case-sensitive and may themselves contain colons), so
    ``file:Traces/App:v2.jsonl`` parses to one path parameter.
    """
    text = spec.strip()
    head, sep, rest = text.partition(":")
    head = head.strip().lower()
    if head == "file":
        rest = rest.strip()
        return ParsedTraceSpec(head=head, params=(rest,) if rest else ())
    parts = [part.strip() for part in text.lower().split(":")]
    return ParsedTraceSpec(head=parts[0], params=tuple(parts[1:]))


def format_trace_spec(parsed: ParsedTraceSpec) -> str:
    """Render *parsed* back to spec text; inverse of :func:`parse_trace_spec`.

    ``parse_trace_spec(format_trace_spec(p)) == p`` for every parse
    result (the property suite holds the round trip over fuzzed specs).
    """
    return ":".join((parsed.head,) + parsed.params)


class UnknownTraceSourceError(ValueError):
    """An unrecognised or malformed trace-source specification.

    The trace-side twin of :class:`repro.core.registry.UnknownSpecError`:
    carries the offending spec, the reason (for a known head with bad
    parameters) and the accepted grammar, and is raised for *every*
    rejected spec so consumers need exactly one except clause.
    """

    def __init__(self, spec: str, reason: Optional[str] = None) -> None:
        self.spec = spec
        self.reason = reason
        self.valid = available_sources()
        detail = (
            f"bad trace-source spec {spec!r}: {reason}"
            if reason
            else f"unknown trace source {spec!r}"
        )
        super().__init__(f"{detail}; accepted: {self.valid}")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TraceSource:
    """One registered way of producing a trace.

    Attributes:
        name: the spec head this source answers to.
        description: one-line summary for listings.
        templates: accepted spec shapes, for help output.
        builder: maps the parsed parameter tokens to a trace.
        seeded: True for deterministic seeded generator families (the
            ones the verifier can sweep and the calibration envelopes
            cover); False for fixed programs and external files.
    """

    name: str
    description: str
    templates: Tuple[str, ...]
    builder: Callable[[Tuple[str, ...]], Trace]
    seeded: bool = False


_SOURCES: Dict[str, TraceSource] = {}


def register_source(source: TraceSource) -> TraceSource:
    """Register *source* under its name (last registration wins)."""
    _SOURCES[source.name] = source
    return source


def source_names() -> Tuple[str, ...]:
    """The registered spec heads, sorted."""
    return tuple(sorted(_SOURCES))


def list_sources() -> Tuple[TraceSource, ...]:
    """Every registered source, sorted by name."""
    return tuple(_SOURCES[name] for name in sorted(_SOURCES))


def available_sources() -> str:
    """Human-readable description of accepted trace-source specs."""
    templates = []
    for name in sorted(_SOURCES):
        templates.extend(_SOURCES[name].templates)
    return " | ".join(templates)


def trace_source(spec: str) -> Trace:
    """Resolve a trace-source spec to a :class:`Trace`.

    Any rejected spec -- unknown head or malformed parameters -- raises
    :class:`UnknownTraceSourceError` (a ``ValueError`` subclass).  File
    archive problems keep their own precise diagnostics
    (:class:`~repro.trace.importer.TraceImportError` with path and line
    number) instead of being folded into the spec error.
    """
    from .io import TraceFormatError

    parsed = parse_trace_spec(spec)
    source = _SOURCES.get(parsed.head)
    if source is None:
        raise UnknownTraceSourceError(spec)
    try:
        return source.builder(parsed.params)
    except (UnknownTraceSourceError, TraceFormatError):
        raise
    except ValueError as exc:
        raise UnknownTraceSourceError(spec, reason=str(exc)) from None


# ----------------------------------------------------------------------
# Parameter-token helpers
# ----------------------------------------------------------------------

def _split_params(
    params: Tuple[str, ...], presets: Tuple[str, ...] = ()
) -> Tuple[Optional[str], Dict[str, str]]:
    """Split tokens into at most one bare preset plus key=value pairs."""
    preset: Optional[str] = None
    pairs: Dict[str, str] = {}
    for token in params:
        if not token:
            raise ValueError("empty parameter token")
        if "=" in token:
            key, _, value = token.partition("=")
            key = key.strip()
            value = value.strip()
            if not key or not value:
                raise ValueError(f"malformed parameter {token!r}")
            if key in pairs:
                raise ValueError(f"duplicate parameter {key!r}")
            pairs[key] = value
        elif token in presets:
            if preset is not None:
                raise ValueError(
                    f"more than one preset name ({preset!r}, {token!r})"
                )
            preset = token
        else:
            raise ValueError(
                f"unknown token {token!r}"
                + (f"; presets: {', '.join(presets)}" if presets else "")
            )
    return preset, pairs


def _take_int(pairs: Dict[str, str], key: str, default: int) -> int:
    value = pairs.pop(key, None)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"{key} must be an integer, got {value!r}") from None


def _take_float(pairs: Dict[str, str], key: str, default: float) -> float:
    value = pairs.pop(key, None)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        raise ValueError(f"{key} must be a number, got {value!r}") from None


_BOOL_TOKENS = {
    "on": True, "off": False, "true": True, "false": False,
    "yes": True, "no": False, "1": True, "0": False,
}


def _take_bool(pairs: Dict[str, str], key: str, default: bool) -> bool:
    value = pairs.pop(key, None)
    if value is None:
        return default
    try:
        return _BOOL_TOKENS[value]
    except KeyError:
        raise ValueError(
            f"{key} must be on/off, got {value!r}"
        ) from None


def _reject_leftovers(pairs: Dict[str, str], accepted: str) -> None:
    if pairs:
        unknown = ", ".join(sorted(pairs))
        raise ValueError(
            f"unknown parameter(s) {unknown}; accepted: {accepted}"
        )


# ----------------------------------------------------------------------
# Built-in sources.  Builders import their producers lazily: the kernel
# and workload layers themselves import ``repro.trace``, so eager
# imports here would be circular.
# ----------------------------------------------------------------------

def _build_kernel_source(params: Tuple[str, ...]) -> Trace:
    from ..kernels import ALL_LOOPS, build_kernel
    from ..kernels.vectorized import VECTORIZED_LOOPS, build_vectorized

    if not params:
        raise ValueError(
            f"'kernel' needs a loop number (1..{max(ALL_LOOPS)})"
        )
    token = params[0]
    number_text = token[1:] if token.startswith("k") else token
    try:
        number = int(number_text)
    except ValueError:
        raise ValueError(f"bad loop number {token!r}") from None
    if number not in ALL_LOOPS:
        raise ValueError(f"no Livermore loop numbered {number}")

    _, pairs = _split_params(params[1:])
    n = _take_int(pairs, "n", 0) or None
    unroll = _take_int(pairs, "unroll", 1)
    schedule = _take_bool(pairs, "schedule", True)
    vector = _take_bool(pairs, "vector", False)
    _reject_leftovers(pairs, "n, unroll, schedule, vector")
    if vector:
        if number not in VECTORIZED_LOOPS:
            raise ValueError(
                f"loop {number} has no vectorised encoding "
                f"(available: {', '.join(map(str, VECTORIZED_LOOPS))})"
            )
        if unroll != 1 or not schedule:
            raise ValueError(
                "vector=on does not combine with unroll/schedule overrides"
            )
        return build_vectorized(number, n).trace()
    return build_kernel(number, n, schedule=schedule, unroll=unroll).trace()


#: ``synthetic`` presets: named corners of the SyntheticSpec space.
_SYNTHETIC_PRESETS: Dict[str, Dict[str, object]] = {
    "default": {},
    # Memory-dominated streaming: most of the body touches memory.
    "stride": {"body_ops": 12, "memory_fraction": 0.7, "chains": 2},
    # One deep recurrence: the least ILP the generator can express.
    "deep": {"body_ops": 16, "memory_fraction": 0.15, "chains": 1,
             "loop_carried": True},
    # Four independent chains restarted per iteration: the most ILP.
    "wide": {"body_ops": 16, "memory_fraction": 0.15, "chains": 4,
             "loop_carried": False},
}


def _build_synthetic_source(params: Tuple[str, ...]) -> Trace:
    from ..workloads.synthetic import SyntheticSpec, synthetic_trace

    preset, pairs = _split_params(params, tuple(_SYNTHETIC_PRESETS))
    base = dict(_SYNTHETIC_PRESETS[preset or "default"])
    spec = SyntheticSpec(**base)
    spec = dataclasses.replace(
        spec,
        iterations=_take_int(pairs, "n", spec.iterations),
        body_ops=_take_int(pairs, "body", spec.body_ops),
        memory_fraction=_take_float(pairs, "mem", spec.memory_fraction),
        chains=_take_int(pairs, "chains", spec.chains),
        loop_carried=_take_bool(pairs, "carried", spec.loop_carried),
        seed=_take_int(pairs, "seed", spec.seed),
    )
    _reject_leftovers(pairs, "n, body, mem, chains, carried, seed")
    return synthetic_trace(spec)


def _build_fuzz_source(params: Tuple[str, ...]) -> Trace:
    from ..verify.fuzz import FUZZ_FAMILIES, fuzz_trace

    preset, pairs = _split_params(params, tuple(FUZZ_FAMILIES))
    spec = FUZZ_FAMILIES[preset or "default"]
    seed = _take_int(pairs, "seed", 0)
    spec = dataclasses.replace(
        spec,
        length=_take_int(pairs, "len", spec.length),
        dependency_density=_take_float(pairs, "dep", spec.dependency_density),
        memory_fraction=_take_float(pairs, "mem", spec.memory_fraction),
        branch_fraction=_take_float(pairs, "branch", spec.branch_fraction),
        taken_fraction=_take_float(pairs, "taken", spec.taken_fraction),
    )
    _reject_leftovers(pairs, "seed, len, dep, mem, branch, taken")
    return fuzz_trace(seed, spec)


def _build_branchy_source(params: Tuple[str, ...]) -> Trace:
    from ..workloads.families import BranchySpec, branchy_trace

    _, pairs = _split_params(params)
    base = BranchySpec()
    spec = BranchySpec(
        length=_take_int(pairs, "n", base.length),
        seed=_take_int(pairs, "seed", base.seed),
        taken_fraction=_take_float(pairs, "taken", base.taken_fraction),
        block=_take_int(pairs, "block", base.block),
    )
    _reject_leftovers(pairs, "n, seed, taken, block")
    return branchy_trace(spec)


def _build_pointer_source(params: Tuple[str, ...]) -> Trace:
    from ..workloads.families import PointerSpec, pointer_trace

    _, pairs = _split_params(params)
    base = PointerSpec()
    spec = PointerSpec(
        length=_take_int(pairs, "n", base.length),
        seed=_take_int(pairs, "seed", base.seed),
        chains=_take_int(pairs, "chains", base.chains),
        gather_fraction=_take_float(pairs, "gather", base.gather_fraction),
    )
    _reject_leftovers(pairs, "n, seed, chains, gather")
    return pointer_trace(spec)


def _build_mixed_source(params: Tuple[str, ...]) -> Trace:
    from ..workloads.families import MixedSpec, mixed_trace

    _, pairs = _split_params(params)
    base = MixedSpec()
    spec = MixedSpec(
        elements=_take_int(pairs, "n", base.elements),
        seed=_take_int(pairs, "seed", base.seed),
        strip=_take_int(pairs, "strip", base.strip),
    )
    _reject_leftovers(pairs, "n, seed, strip")
    return mixed_trace(spec)


def _build_file_source(params: Tuple[str, ...]) -> Trace:
    from .importer import import_trace

    if not params or not params[0]:
        raise ValueError("'file' needs a path, e.g. file:trace.jsonl")
    return import_trace(params[0])


register_source(TraceSource(
    name="kernel",
    description="Livermore loop kernels (the paper's 14 benchmarks)",
    templates=(
        "kernel:<loop>[:n=<size>][:unroll=<k>][:schedule=on|off]"
        "[:vector=on|off]",
    ),
    builder=_build_kernel_source,
))
register_source(TraceSource(
    name="synthetic",
    description="synthetic loops with dialled-in characteristics",
    templates=(
        "synthetic[:default|stride|deep|wide][:n=<iters>][:body=<ops>]"
        "[:mem=<frac>][:chains=<1-4>][:carried=on|off][:seed=<s>]",
    ),
    builder=_build_synthetic_source,
    seeded=True,
))
register_source(TraceSource(
    name="fuzz",
    description="seeded random well-formed scalar traces (verify.fuzz)",
    templates=(
        "fuzz[:default|branchy|pointer|parallel][:seed=<s>][:len=<n>]"
        "[:dep=<frac>][:mem=<frac>][:branch=<frac>][:taken=<frac>]",
    ),
    builder=_build_fuzz_source,
    seeded=True,
))
register_source(TraceSource(
    name="branchy",
    description="control-dominated integer code (~25% branches)",
    templates=(
        "branchy[:n=<len>][:seed=<s>][:taken=<frac>][:block=<ops>]",
    ),
    builder=_build_branchy_source,
    seeded=True,
))
register_source(TraceSource(
    name="pointer",
    description="pointer-chasing loads with gathers off the chain",
    templates=(
        "pointer[:n=<len>][:seed=<s>][:chains=<1-4>][:gather=<frac>]",
    ),
    builder=_build_pointer_source,
    seeded=True,
))
register_source(TraceSource(
    name="mixed",
    description="mixed scalar-vector strips (vector-capable machines)",
    templates=("mixed[:n=<elements>][:seed=<s>][:strip=<1-64>]",),
    builder=_build_mixed_source,
    seeded=True,
))
register_source(TraceSource(
    name="file",
    description="external JSONL trace archive (docs/traces.md schema)",
    templates=("file:<path.jsonl>",),
    builder=_build_file_source,
))

#: Machine specs that accept vector traces: only Simple and the
#: scoreboard family model element streaming; every other machine
#: rejects vector instructions by design.
MIXED_MACHINES: Tuple[str, ...] = (
    "simple", "serialmemory", "nonsegmented", "cray",
)


# ----------------------------------------------------------------------
# Per-source statistics from the compiled-trace IR
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SourceStats:
    """Dependence and functional-unit demand summary of one trace.

    Computed from the compiled IR (:mod:`repro.core.fastpath.ir`), the
    same lowering every fast backend replays, so the statistics describe
    exactly what the simulators see.

    Attributes:
        name: trace name.
        length: dynamic instruction count.
        branch_fraction: branches / length.
        memory_fraction: memory-port instructions / length
            (vector loads/stores included).
        vector_fraction: vector instructions / length.
        mean_dependence_distance: mean over instructions with at least
            one in-trace producer of the distance (in dynamic
            instructions) to the *nearest* producer of any source
            register -- the tightness of RAW chains.
        dependent_fraction: instructions with at least one in-trace
            producer / length (how connected the dataflow is).
        fu_demand: functional-unit name -> fraction of dynamic
            instructions executed by that unit.
    """

    name: str
    length: int
    branch_fraction: float
    memory_fraction: float
    vector_fraction: float
    mean_dependence_distance: float
    dependent_fraction: float
    fu_demand: Mapping[str, float]


def source_statistics(trace: Trace) -> SourceStats:
    """Compute the :class:`SourceStats` summary of *trace*.

    A view over :func:`repro.trace.stats.ir_statistics` -- the richer
    compiled-IR summary the design-space explorer consumes -- so both
    report identical numbers from a single walk of the IR.
    """
    from .stats import ir_statistics

    ir = ir_statistics(trace)
    return SourceStats(
        name=ir.name,
        length=ir.length,
        branch_fraction=ir.branch_fraction,
        memory_fraction=ir.memory_fraction,
        vector_fraction=ir.vector_fraction,
        mean_dependence_distance=ir.mean_dependence_distance,
        dependent_fraction=ir.dependent_fraction,
        fu_demand={
            unit: count / ir.length for unit, count in ir.unit_counts.items()
        },
    )


#: Documented calibration envelopes: for each seeded family, the closed
#: interval each statistic stays inside across seeds (held to 200 seeds
#: per family by the calibration tests; see docs/traces.md for the
#: measured ranges the bounds were set from).  The oracle's
#: partial-order reasoning leans on these shapes -- e.g. branchy traces
#: really exercising branch latency, pointer traces really carrying
#: serial address chains -- so a generator drifting outside its envelope
#: is a test failure, not a silent change of what the suite covers.
FAMILY_ENVELOPES: Dict[str, Dict[str, Tuple[float, float]]] = {
    "branchy": {
        "branch_fraction": (0.15, 0.30),
        "memory_fraction": (0.02, 0.20),
        "mean_dependence_distance": (2.5, 7.0),
        "dependent_fraction": (0.70, 1.0),
        "vector_fraction": (0.0, 0.0),
    },
    "pointer": {
        "branch_fraction": (0.0, 0.0),
        "memory_fraction": (0.50, 0.95),
        "mean_dependence_distance": (1.0, 3.5),
        "dependent_fraction": (0.80, 1.0),
        "vector_fraction": (0.0, 0.0),
    },
    "mixed": {
        "branch_fraction": (0.0, 0.0),
        "memory_fraction": (0.20, 0.45),
        "mean_dependence_distance": (1.0, 4.0),
        "dependent_fraction": (0.55, 1.0),
        "vector_fraction": (0.35, 0.65),
    },
    "fuzz": {
        "branch_fraction": (0.0, 0.35),
        "memory_fraction": (0.0, 0.55),
        "mean_dependence_distance": (1.0, 30.0),
        "dependent_fraction": (0.10, 1.0),
        "vector_fraction": (0.0, 0.0),
    },
    "synthetic": {
        "branch_fraction": (0.005, 0.35),
        "memory_fraction": (0.0, 0.80),
        "mean_dependence_distance": (1.0, 30.0),
        "dependent_fraction": (0.50, 1.0),
        "vector_fraction": (0.0, 0.0),
    },
}
