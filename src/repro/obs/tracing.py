"""Span tracing for experiment runs.

A run trace is a tree of spans -- *plan* at the root, one *cell* span per
experiment cell, *simulate*/*limits*/*trace:resolve* spans underneath --
with parent ids and monotonic timestamps.  Worker processes cannot share
the parent's tracer, so they record their spans as plain ``(name, start,
end)`` tuples (monotonic clocks are system-wide on Linux, hence directly
comparable across fork) and the parent adopts them with
:meth:`Tracer.adopt`.

Two export formats:

* :meth:`Tracer.to_payload` -- a JSON-safe list of span dicts, stored in
  the run manifest;
* :func:`spans_to_chrome` -- the Chrome ``trace_event`` format (load the
  file in ``chrome://tracing`` or https://ui.perfetto.dev), produced by
  ``python -m repro trace-export``;
* :func:`spans_to_perfetto` -- the same events plus process/thread
  naming metadata, so Perfetto labels one track per worker
  (``repro trace-export --format perfetto``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

__all__ = ["Span", "Tracer", "spans_to_chrome", "spans_to_perfetto"]


@dataclass
class Span:
    """One timed operation in a run trace.

    Attributes:
        name: operation label (``plan:table1``, ``cell:5/cray/M11BR5``...).
        span_id: unique id within the trace.
        parent_id: id of the enclosing span, or None at the root.
        start: monotonic start time (seconds).
        end: monotonic end time (seconds); None while still open.
        pid: OS process the operation ran in (0 = unknown).
        attrs: free-form JSON-safe attributes.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    pid: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            span_id=int(data["span_id"]),
            parent_id=(
                None if data.get("parent_id") is None
                else int(data["parent_id"])
            ),
            start=float(data["start"]),
            end=None if data.get("end") is None else float(data["end"]),
            pid=int(data.get("pid", 0)),
            attrs=dict(data.get("attrs", {})),
        )


class Tracer:
    """Collects spans for one run; single-threaded by design.

    Use :meth:`span` as a context manager for in-process work and
    :meth:`adopt` for spans timed elsewhere (worker processes).
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._next_id = 1
        self._stack: List[int] = []
        self.spans: List[Span] = []

    def _new_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    @property
    def current_id(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, *, pid: int = 0, **attrs: Any) -> Iterator[Span]:
        record = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=self.current_id,
            start=self._clock(),
            pid=pid,
            attrs=attrs,
        )
        self.spans.append(record)
        self._stack.append(record.span_id)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end = self._clock()

    def adopt(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent_id: Optional[int] = None,
        pid: int = 0,
        **attrs: Any,
    ) -> Span:
        """Record a span timed in another process (or earlier)."""
        record = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=parent_id if parent_id is not None else self.current_id,
            start=start,
            end=end,
            pid=pid,
            attrs=attrs,
        )
        self.spans.append(record)
        return record

    def to_payload(self) -> List[Dict[str, Any]]:
        """JSON-safe export of every span (open spans get end=None)."""
        return [span.to_dict() for span in self.spans]


def spans_to_chrome(
    spans: Sequence[Mapping[str, Any]], *, default_pid: int = 0
) -> Dict[str, Any]:
    """Convert a span payload into Chrome ``trace_event`` JSON.

    Every span becomes a complete ("ph": "X") event; timestamps are
    rebased to the earliest span and expressed in microseconds, as the
    format requires.  The result is directly loadable in
    ``chrome://tracing`` and Perfetto.
    """
    records = [Span.from_dict(s) for s in spans]
    closed = [s for s in records if s.end is not None]
    origin = min((s.start for s in closed), default=0.0)
    events = []
    for span in closed:
        pid = span.pid or default_pid
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": round((span.start - origin) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": pid,
            "tid": pid,
            "args": dict(
                span.attrs,
                span_id=span.span_id,
                parent_id=span.parent_id,
            ),
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }


def spans_to_perfetto(
    spans: Sequence[Mapping[str, Any]], *, default_pid: int = 0
) -> Dict[str, Any]:
    """Chrome ``trace_event`` JSON with named per-worker tracks.

    Same complete events as :func:`spans_to_chrome`, prefixed with
    ``"ph": "M"`` ``process_name``/``thread_name`` metadata: the pid
    that owns a root span is labelled as the engine parent, every other
    pid as a worker, so Perfetto renders one labelled track per process
    instead of bare numbers.
    """
    payload = spans_to_chrome(spans, default_pid=default_pid)
    records = [Span.from_dict(s) for s in spans]
    root_pids = {
        s.pid or default_pid for s in records if s.parent_id is None
    }
    metadata: List[Dict[str, Any]] = []
    for pid in sorted({s.pid or default_pid for s in records if s.end is not None}):
        label = (
            f"repro engine (pid {pid})"
            if pid in root_pids
            else f"repro worker (pid {pid})"
        )
        for kind in ("process_name", "thread_name"):
            metadata.append({
                "name": kind,
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": label},
            })
    payload["traceEvents"] = metadata + payload["traceEvents"]
    return payload
