"""Aggregate simulation telemetry: attribution without per-cycle events.

The paper's limit-study methodology is about *attribution* -- which
resource (functional-unit conflicts, result-bus contention, window
occupancy, dependency wait) ate the cycles.  Until now that attribution
required installing an ``on_event`` hook, which
:func:`repro.core.fastpath.backends.fast_eligible` rightly treats as a
request for the reference loops: you could be fast or observable, never
both.

:class:`SimTelemetry` closes the gap.  It is a closed-form, aggregate
record -- stall cycles by reason, per-functional-unit busy cycles, an
issue-width histogram, a window/RUU occupancy histogram, flush counts --
that the compiled fast loops fill from their integer ready-cycle arrays
with O(instructions) extra work and attach to
:attr:`repro.core.result.SimulationResult.detail` as flat ``tlm.*``
float entries.  No event objects are allocated and the loops' issue
timing is untouched; the cost is a few integer updates per instruction
(gated under :func:`collecting`, benchmarked <5% by
``benchmarks/bench_hooks.py``).

The reference loops are left exactly as they are -- verbatim, with only
the event hooks.  :func:`telemetry_from_events` derives the *same*
record from a reference replay's event stream, which turns telemetry
into a differential-test contract exactly like cycle counts: the fuzzed
suite in ``tests/test_obs_telemetry.py`` and the oracle's optional
telemetry check assert ``fast-loop telemetry == event-derived
telemetry`` bit-for-bit.

Detail-key encoding (all values are integral floats)::

    tlm.instructions   dynamic instruction count
    tlm.cycles         total cycles (same as the result's cycle count)
    tlm.flushes        discarded-fetch events (taken-branch buffer cuts)
    tlm.flush_cycles   total issue slots lost to those flushes
    tlm.stall.<REASON> cycles lost per stall reason (RAW, WAW, UNIT,
                       BUS, BRANCH, RUU_FULL, STATIONS_FULL, ...)
    tlm.fu.<UNIT>      busy/occupied cycles per functional unit
    tlm.width.<k>      cycles on which exactly k instructions issued
    tlm.occ.<k>        cycles (or fetch buffers) at occupancy k
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from .events import EventKind, SimEvent

__all__ = [
    "SimTelemetry",
    "TELEMETRY_PREFIX",
    "collecting",
    "set_collection",
    "strip_telemetry",
    "telemetry_from_events",
]

#: Prefix under which telemetry entries ride in ``SimulationResult.detail``.
TELEMETRY_PREFIX = "tlm."

#: Module-level collection switch.  Defaults on -- telemetry is the
#: cheap path -- and can be disabled for overhead measurement via the
#: ``REPRO_TELEMETRY`` environment variable or :func:`set_collection`.
_COLLECT = os.environ.get("REPRO_TELEMETRY", "1").lower() not in (
    "0", "off", "false", "no",
)


def collecting() -> bool:
    """Should the fast loops fill telemetry on this run?"""
    return _COLLECT


def set_collection(enabled: bool) -> bool:
    """Set the collection switch; returns the previous value."""
    global _COLLECT
    previous = _COLLECT
    _COLLECT = bool(enabled)
    return previous


def _clean(mapping: Mapping) -> Dict:
    """Normalised copy: int values, zero-valued entries dropped.

    Both producers (closed-form fast loops, the event reducer) funnel
    through :class:`SimTelemetry`, so normalising here is what makes
    ``==`` a meaningful differential check -- a reducer that touches a
    key with a zero total and a closed form that never creates it must
    still compare equal.
    """
    if not mapping:
        return {}
    return {key: int(value) for key, value in mapping.items() if value}


#: Flattened detail keys for the default prefix, built lazily: the fast
#: loops call :meth:`SimTelemetry.to_detail` once per replay, and the
#: key alphabet (stall reasons, unit names, small widths/levels) is tiny,
#: so interned lookups beat re-formatting the same f-strings every call.
_DETAIL_KEYS: Dict[str, Dict[object, str]] = {
    "stall.": {}, "fu.": {}, "width.": {}, "occ.": {},
}


def _detail_key(section: str, token: object) -> str:
    cache = _DETAIL_KEYS[section]
    key = cache.get(token)
    if key is None:
        key = f"{TELEMETRY_PREFIX}{section}{token}"
        cache[token] = key
    return key


@dataclass(frozen=True)
class SimTelemetry:
    """Aggregate attribution for one (trace, machine, config) replay.

    Attributes:
        instructions: dynamic instructions issued.
        cycles: total cycles (the result's cycle count).
        stall_cycles: issue cycles lost per stall reason, in the
            emitting machine's vocabulary (see :mod:`repro.obs.events`).
        fu_busy_cycles: cycles each functional unit was busy/occupied,
            keyed by :class:`~repro.isa.functional_units.FunctionalUnit`
            name.  For the buffered machines this spans dispatch to
            result/commit (matching the ISSUE..COMPLETE event window).
        issue_width: histogram of instructions issued per issuing cycle
            (``{k: cycles on which exactly k issued}``; idle cycles are
            not counted).
        occupancy: occupancy histogram where the machine has a window:
            RUU entries live per cycle (RUU machines) or instructions
            per fetch buffer (multi-issue window machines); empty for
            the single-issue and reservation-station machines.
        flushes: discarded-fetch events (taken-branch buffer cuts,
            mispredict recoveries).
        flush_cycles: total issue slots lost to those flushes.
    """

    instructions: int
    cycles: int
    stall_cycles: Mapping[str, int] = field(default_factory=dict)
    fu_busy_cycles: Mapping[str, int] = field(default_factory=dict)
    issue_width: Mapping[int, int] = field(default_factory=dict)
    occupancy: Mapping[int, int] = field(default_factory=dict)
    flushes: int = 0
    flush_cycles: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "stall_cycles", _clean(self.stall_cycles))
        object.__setattr__(
            self, "fu_busy_cycles", _clean(self.fu_busy_cycles)
        )
        object.__setattr__(self, "issue_width", _clean(self.issue_width))
        object.__setattr__(self, "occupancy", _clean(self.occupancy))

    @property
    def stall_cycles_total(self) -> int:
        return sum(self.stall_cycles.values())

    @property
    def bus_contention_cycles(self) -> int:
        """Cycles lost to result-bus conflicts (the paper's Section 6)."""
        return self.stall_cycles.get("BUS", 0)

    def to_detail(
        self, prefix: str = TELEMETRY_PREFIX
    ) -> Dict[str, float]:
        """Flatten to ``SimulationResult.detail`` entries."""
        detail: Dict[str, float] = {
            prefix + "instructions": float(self.instructions),
            prefix + "cycles": float(self.cycles),
        }
        if self.flushes:
            detail[prefix + "flushes"] = float(self.flushes)
        if self.flush_cycles:
            detail[prefix + "flush_cycles"] = float(self.flush_cycles)
        if prefix == TELEMETRY_PREFIX:
            key = _detail_key
            for reason, cycles in self.stall_cycles.items():
                detail[key("stall.", reason)] = float(cycles)
            for unit, cycles in self.fu_busy_cycles.items():
                detail[key("fu.", unit)] = float(cycles)
            for width, count in self.issue_width.items():
                detail[key("width.", width)] = float(count)
            for level, count in self.occupancy.items():
                detail[key("occ.", level)] = float(count)
            return detail
        for reason, cycles in self.stall_cycles.items():
            detail[f"{prefix}stall.{reason}"] = float(cycles)
        for unit, cycles in self.fu_busy_cycles.items():
            detail[f"{prefix}fu.{unit}"] = float(cycles)
        for width, count in self.issue_width.items():
            detail[f"{prefix}width.{width}"] = float(count)
        for level, count in self.occupancy.items():
            detail[f"{prefix}occ.{level}"] = float(count)
        return detail

    @classmethod
    def from_detail(
        cls,
        detail: Optional[Mapping[str, float]],
        prefix: str = TELEMETRY_PREFIX,
    ) -> Optional["SimTelemetry"]:
        """Recover the record from flattened detail entries.

        Returns ``None`` when *detail* carries no telemetry (reference
        results, hooked runs, collection disabled).
        """
        if not detail or prefix + "instructions" not in detail:
            return None
        stall: Dict[str, int] = {}
        busy: Dict[str, int] = {}
        width: Dict[int, int] = {}
        occupancy: Dict[int, int] = {}
        plen = len(prefix)
        for key, value in detail.items():
            if not key.startswith(prefix):
                continue
            tail = key[plen:]
            if tail.startswith("stall."):
                stall[tail[6:]] = int(value)
            elif tail.startswith("fu."):
                busy[tail[3:]] = int(value)
            elif tail.startswith("width."):
                width[int(tail[6:])] = int(value)
            elif tail.startswith("occ."):
                occupancy[int(tail[4:])] = int(value)
        grab = lambda name: int(detail.get(prefix + name, 0))  # noqa: E731
        return cls(
            instructions=grab("instructions"),
            cycles=grab("cycles"),
            stall_cycles=stall,
            fu_busy_cycles=busy,
            issue_width=width,
            occupancy=occupancy,
            flushes=grab("flushes"),
            flush_cycles=grab("flush_cycles"),
        )


def strip_telemetry(
    detail: Optional[Mapping[str, float]],
    prefix: str = TELEMETRY_PREFIX,
) -> Dict[str, float]:
    """*detail* without its telemetry entries (for comparisons against
    reference results, which never carry any)."""
    if not detail:
        return {}
    return {
        key: value
        for key, value in detail.items()
        if not key.startswith(prefix)
    }


# ----------------------------------------------------------------------
# The event-stream reducer: the reference loops' side of the contract
# ----------------------------------------------------------------------

def telemetry_from_events(
    events: Iterable[SimEvent],
    *,
    trace,
    cycles: int,
    family: Optional[str] = None,
    issue_units: int = 0,
) -> SimTelemetry:
    """Fold a reference replay's event stream into a :class:`SimTelemetry`.

    This is the reducer half of the differential contract: the fast
    loops compute the record in closed form from their integer state;
    this function derives the identical record from the ISSUE / STALL /
    COMPLETE / FLUSH events the preserved ``reference_simulate`` twins
    emit.  *cycles* is the reference result's cycle count; *family* is
    the fast-path family name (:func:`repro.core.fastpath.family_of`),
    which selects the occupancy reconstruction; *issue_units* is the
    fetch-buffer width for the windowed (in-order / out-of-order)
    machines.

    Occupancy is the one component that needs more than the stream:

    * the RUU machines' per-cycle occupancy is rebuilt with a
      difference array over the dispatch (ISSUE) and commit (COMPLETE)
      cycles of every buffered instruction, walked over every cycle the
      reference loop visited;
    * the windowed machines' per-buffer fill is a pure function of the
      compiled taken flags and the issue width, recomputed here exactly
      as the reference cuts its fetch buffers;
    * the remaining families have no window and report none.
    """
    from ..core.fastpath.ir import UNITS, compile_trace

    compiled = compile_trace(trace)
    ops = compiled.ops

    stall: Dict[str, int] = {}
    issues: Dict[int, int] = {}
    completes: Dict[int, int] = {}
    per_cycle: Dict[int, int] = {}
    flushes = 0
    flush_cycles = 0
    for event in events:
        kind = event.kind
        if kind is EventKind.ISSUE:
            if event.seq not in issues:
                issues[event.seq] = event.cycle
                per_cycle[event.cycle] = per_cycle.get(event.cycle, 0) + 1
        elif kind is EventKind.COMPLETE:
            if event.seq not in completes:
                completes[event.seq] = event.cycle
        elif kind is EventKind.STALL:
            stall[event.reason] = stall.get(event.reason, 0) + event.cycles
        elif kind is EventKind.FLUSH:
            flushes += 1
            flush_cycles += event.cycles

    busy: Dict[str, int] = {}
    for seq, complete in completes.items():
        issue = issues.get(seq)
        if issue is None:
            continue
        name = UNITS[ops[seq][0]].name
        busy[name] = busy.get(name, 0) + (complete - issue)

    width: Dict[int, int] = {}
    for count in per_cycle.values():
        width[count] = width.get(count, 0) + 1

    occupancy: Dict[int, int] = {}
    if family in ("ruu", "spec"):
        # Difference array over dispatch/commit; the reference loop
        # visits every cycle from 0 through the last event cycle.
        delta: Dict[int, int] = {}
        horizon = 0
        for seq, complete in completes.items():
            issue = issues.get(seq)
            if issue is None:
                continue
            delta[issue] = delta.get(issue, 0) + 1
            delta[complete] = delta.get(complete, 0) - 1
        for cycle in issues.values():
            if cycle > horizon:
                horizon = cycle
        for cycle in completes.values():
            if cycle > horizon:
                horizon = cycle
        live = 0
        for cycle in range(horizon + 1):
            live += delta.get(cycle, 0)
            occupancy[live] = occupancy.get(live, 0) + 1
    elif family in ("inorder", "ooo") and issue_units > 0:
        # Fetch-buffer fills: up to issue_units entries, cut after the
        # first taken branch -- config-independent, so recomputed from
        # the compiled flags exactly as the reference cuts them.
        n = compiled.n
        pos = 0
        while pos < n:
            end = pos + issue_units
            if end > n:
                end = n
            length = 0
            for index in range(pos, end):
                length += 1
                op = ops[index]
                if op[3] and op[4]:
                    break
            occupancy[length] = occupancy.get(length, 0) + 1
            pos += length

    return SimTelemetry(
        instructions=compiled.n,
        cycles=cycles,
        stall_cycles=stall,
        fu_busy_cycles=busy,
        issue_width=width,
        occupancy=occupancy,
        flushes=flushes,
        flush_cycles=flush_cycles,
    )
