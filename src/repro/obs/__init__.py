"""Observability: structured metrics, run tracing, simulator event hooks.

The paper's core question is *where issue cycles go*; this package is the
repo-wide answer to the engineering version of that question -- where
wall time, cache traffic and simulator cycles go:

* :mod:`repro.obs.metrics` -- a merge-based, process-safe registry of
  counters, gauges and fixed-bucket histograms.  The experiment engine
  aggregates per-cell wall time, queue wait, cache hit/miss/corruption
  counts and per-worker utilization through it.
* :mod:`repro.obs.tracing` -- span traces (plan -> cell ->
  simulate/limits) with parent ids and monotonic timestamps, exportable
  as JSON or Chrome ``trace_event`` format (``repro trace-export``).
* :mod:`repro.obs.events` -- typed issue/stall/complete/flush events
  emitted by every timing simulator through an optional ``on_event``
  hook; :mod:`repro.analysis` consumes the same stream.
* :mod:`repro.obs.telemetry` -- closed-form aggregate telemetry
  (:class:`SimTelemetry`): stall/busy/width/occupancy attribution the
  compiled fast loops fill with O(instructions) work and the reference
  loops derive from their event streams, making attribution available
  at fast-path speed.
* :mod:`repro.obs.manifest` -- durable per-run manifests (config, git
  SHA, timings, metric snapshots) written next to the cache entries and
  rendered by ``repro stats``.
"""

from .events import EventCallback, EventCollector, EventKind, SimEvent, tee
from .telemetry import (
    SimTelemetry,
    TELEMETRY_PREFIX,
    strip_telemetry,
    telemetry_from_events,
)
from .manifest import (
    RunManifest,
    current_git_sha,
    find_manifest,
    latest_manifest,
    list_manifests,
    load_manifest,
    manifest_dir,
    new_run_id,
    write_manifest,
)
from .metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracing import Span, Tracer, spans_to_chrome, spans_to_perfetto

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "EventCallback",
    "EventCollector",
    "EventKind",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunManifest",
    "SimEvent",
    "SimTelemetry",
    "Span",
    "TELEMETRY_PREFIX",
    "Tracer",
    "current_git_sha",
    "find_manifest",
    "latest_manifest",
    "list_manifests",
    "load_manifest",
    "manifest_dir",
    "new_run_id",
    "spans_to_chrome",
    "spans_to_perfetto",
    "strip_telemetry",
    "tee",
    "telemetry_from_events",
    "write_manifest",
]
