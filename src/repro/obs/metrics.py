"""Process-safe structured metrics: counters, gauges, histograms.

The registry is the measurement substrate for the experiment engine and
the persistent store.  Its process model is *merge-based*: every process
(the engine parent, each ``ProcessPoolExecutor`` worker) owns a private
:class:`MetricsRegistry`; workers ship plain-dict :meth:`snapshot`\\ s back
with their results and the parent folds them together with :meth:`merge`.
Nothing is ever shared between processes, so there is nothing to lock
across them -- a thread lock covers in-process concurrency.

Metric kinds:

* **counter** -- a monotonically increasing number (float-valued, so
  accumulated seconds work too).  Merging sums.
* **gauge** -- a last-written value (a level, not a rate).  Merging keeps
  the incoming value.
* **histogram** -- fixed upper-bound buckets plus ``sum`` and ``count``.
  Merging adds bucket-wise; histograms with different bucket layouts
  cannot merge (that is a programming error and raises).

Naming convention (used across the engine, the disk cache and the CLI):
dotted lowercase paths, e.g. ``cache.result.hits``,
``engine.cell.seconds``, ``worker.12345.busy_seconds``.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

_OM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _om_name(name: str) -> str:
    """Sanitise a dotted metric name to the OpenMetrics charset."""
    sanitised = _OM_INVALID.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _om_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    value = float(value)
    if value.is_integer():
        return str(int(value))
    return repr(value)


#: Default histogram layout for wall-time observations (seconds).
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
    math.inf,
)


@dataclass
class Counter:
    """A monotonically increasing value."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge instead")
        self.value += amount


@dataclass
class Gauge:
    """A last-written level (worker utilization, queue depth, ...)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-bucket histogram: cumulative-style upper bounds.

    ``buckets`` are inclusive upper bounds, strictly increasing, and must
    end with ``inf`` so every observation lands somewhere.  ``counts[i]``
    is the number of observations ``<= buckets[i]`` and ``> buckets[i-1]``
    (per-bucket, not cumulative, so merging is a plain vector add).
    """

    buckets: Tuple[float, ...] = DEFAULT_SECONDS_BUCKETS
    counts: List[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.buckets or self.buckets[-1] != math.inf:
            raise ValueError("histogram buckets must end with inf")
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        if not self.counts:
            self.counts = [0] * len(self.buckets)
        elif len(self.counts) != len(self.buckets):
            raise ValueError("counts and buckets must have the same length")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            seen += bucket_count
            if seen >= target:
                return bound
        return self.buckets[-1]


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Thread-safe within a process; across processes, use
    :meth:`snapshot` / :meth:`merge` (see the module docstring).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access / creation ---------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(
                    buckets=tuple(buckets) if buckets else DEFAULT_SECONDS_BUCKETS
                )
                self._histograms[name] = histogram
            return histogram

    # -- convenience mutators ------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(
        self, name: str, value: float,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.histogram(name, buckets).observe(value)

    def value(self, name: str) -> float:
        """Counter (or gauge) value by name; 0.0 when never touched."""
        with self._lock:
            if name in self._counters:
                return self._counters[name].value
            if name in self._gauges:
                return self._gauges[name].value
        return 0.0

    # -- cross-process plumbing ----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain, JSON- and pickle-safe copy of every metric."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: {
                        "buckets": [
                            "inf" if b == math.inf else b for b in h.buckets
                        ],
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for k, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            buckets = tuple(
                math.inf if b == "inf" else float(b)
                for b in data["buckets"]
            )
            histogram = self.histogram(name, buckets)
            if histogram.buckets != buckets:
                raise ValueError(
                    f"histogram {name!r} bucket layouts differ; cannot merge"
                )
            with self._lock:
                for i, c in enumerate(data["counts"]):
                    histogram.counts[i] += c
                histogram.sum += data["sum"]
                histogram.count += data["count"]

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry

    def to_openmetrics(self) -> str:
        """Render every metric as an OpenMetrics text exposition.

        Counters become ``<name>_total`` samples, gauges plain samples,
        histograms cumulative ``_bucket{le="..."}`` series plus
        ``_sum``/``_count``; dotted names are sanitised to the
        OpenMetrics charset (dots to underscores).  The exposition ends
        with ``# EOF`` as the spec requires, so Prometheus (or any
        OpenMetrics parser) can scrape a ``repro stats --format
        openmetrics`` dump without bespoke parsing.
        """
        with self._lock:
            counters = {k: c.value for k, c in self._counters.items()}
            gauges = {k: g.value for k, g in self._gauges.items()}
            histograms = {
                k: (h.buckets, tuple(h.counts), h.sum, h.count)
                for k, h in self._histograms.items()
            }
        lines: List[str] = []
        for name in sorted(counters):
            metric = _om_name(name)
            # The metric name excludes the _total suffix; the sample
            # carries it.  Strip a pre-existing one so "x.seconds_total"
            # does not expose "x_seconds_total_total".
            if metric.endswith("_total"):
                metric = metric[: -len("_total")]
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}_total {_om_number(counters[name])}")
        for name in sorted(gauges):
            metric = _om_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_om_number(gauges[name])}")
        for name in sorted(histograms):
            metric = _om_name(name)
            buckets, counts, total, count = histograms[name]
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, bucket_count in zip(buckets, counts):
                cumulative += bucket_count
                le = "+Inf" if bound == math.inf else _om_number(bound)
                lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{metric}_sum {_om_number(total)}")
            lines.append(f"{metric}_count {count}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>"
            )
