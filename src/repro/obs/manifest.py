"""Run manifests: a durable record of every observed experiment run.

A manifest is written next to the cache entries (``<cache
root>/manifests/<run_id>.json``) whenever a plan is evaluated with
observation on (``repro.api.run_table(..., observe=True)``, or the CLI
``tables`` command, which observes by default).  It captures everything
needed to account for the run after the fact:

* identity -- run id, table id, creation time, git SHA of the checkout;
* configuration -- worker count, cache enablement, cell count;
* timings -- wall seconds, summed cell seconds, max cell seconds;
* a full metrics snapshot (:mod:`repro.obs.metrics`);
* the span trace (:mod:`repro.obs.tracing`), per-cell timings included.

``python -m repro stats`` renders manifests as a per-run breakdown
table; ``python -m repro trace-export`` converts a manifest's spans to
Chrome ``trace_event`` JSON.
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "RunManifest",
    "current_git_sha",
    "latest_manifest",
    "list_manifests",
    "load_manifest",
    "manifest_dir",
    "new_run_id",
    "write_manifest",
]

#: Manifest schema version; bump on incompatible layout changes.
MANIFEST_VERSION = 1


def current_git_sha(cwd: Optional[os.PathLike] = None) -> Optional[str]:
    """The checkout's HEAD SHA, or None outside a repository (fail-soft)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def new_run_id(table_id: str) -> str:
    """A sortable, collision-resistant run id."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{table_id}-{os.getpid()}-{os.urandom(3).hex()}"


@dataclass
class RunManifest:
    """Everything recorded about one observed plan evaluation."""

    run_id: str
    table_id: str
    created: str  # ISO-8601 UTC
    git_sha: Optional[str]
    config: Dict[str, Any] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    version: int = MANIFEST_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "run_id": self.run_id,
            "table_id": self.table_id,
            "created": self.created,
            "git_sha": self.git_sha,
            "config": dict(self.config),
            "timings": dict(self.timings),
            "metrics": dict(self.metrics),
            "spans": list(self.spans),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        return cls(
            run_id=data["run_id"],
            table_id=data["table_id"],
            created=data["created"],
            git_sha=data.get("git_sha"),
            config=dict(data.get("config", {})),
            timings=dict(data.get("timings", {})),
            metrics=dict(data.get("metrics", {})),
            spans=list(data.get("spans", [])),
            version=int(data.get("version", MANIFEST_VERSION)),
        )

    # -- derived accounting (used by ``repro stats``) ------------------

    def counter(self, name: str) -> float:
        return float(self.metrics.get("counters", {}).get(name, 0.0))

    @property
    def cache_hit_rate(self) -> Optional[float]:
        hits = self.counter("cache.result.hits")
        misses = self.counter("cache.result.misses")
        total = hits + misses
        return hits / total if total else None

    @property
    def worker_utilization(self) -> Dict[str, float]:
        """Per-worker busy fraction of the run's wall time."""
        gauges = self.metrics.get("gauges", {})
        return {
            name.split(".")[1]: value
            for name, value in gauges.items()
            if name.startswith("worker.") and name.endswith(".utilization")
        }

    def cell_timings(self) -> List[Dict[str, Any]]:
        """Per-cell spans (name, seconds, pid), slowest first."""
        cells = [
            {
                "name": span["name"],
                "seconds": float(span["end"]) - float(span["start"]),
                "pid": span.get("pid", 0),
                "attrs": span.get("attrs", {}),
            }
            for span in self.spans
            if span.get("end") is not None
            and span["name"].startswith("cell:")
        ]
        cells.sort(key=lambda c: c["seconds"], reverse=True)
        return cells


# ----------------------------------------------------------------------
# Storage (next to the cache entries)
# ----------------------------------------------------------------------

def manifest_dir(root: os.PathLike) -> Path:
    return Path(root) / "manifests"


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_manifest(manifest: RunManifest, root: os.PathLike) -> Optional[Path]:
    """Persist *manifest* under ``<root>/manifests``; best-effort."""
    path = manifest_dir(root) / f"{manifest.run_id}.json"
    try:
        _atomic_write_text(
            path, json.dumps(manifest.to_dict(), sort_keys=True, indent=1)
        )
    except OSError:
        return None
    return path


def load_manifest(path: os.PathLike) -> RunManifest:
    with open(path) as handle:
        return RunManifest.from_dict(json.load(handle))


def list_manifests(
    root: os.PathLike, *, limit: Optional[int] = None
) -> List[RunManifest]:
    """Stored manifests under *root*, newest first; corrupt files skipped."""
    directory = manifest_dir(root)
    if not directory.is_dir():
        return []
    manifests: List[RunManifest] = []
    for path in directory.glob("*.json"):
        try:
            manifests.append(load_manifest(path))
        except (OSError, ValueError, KeyError):
            continue
    manifests.sort(key=lambda m: (m.created, m.run_id), reverse=True)
    return manifests[:limit] if limit is not None else manifests


def latest_manifest(root: os.PathLike) -> Optional[RunManifest]:
    manifests = list_manifests(root, limit=1)
    return manifests[0] if manifests else None


def find_manifest(root: os.PathLike, run_id: str) -> Optional[RunManifest]:
    """The manifest with exactly or uniquely-prefixed *run_id*, or None."""
    directory = manifest_dir(root)
    exact = directory / f"{run_id}.json"
    if exact.is_file():
        try:
            return load_manifest(exact)
        except (OSError, ValueError, KeyError):
            return None
    matches = [m for m in list_manifests(root) if m.run_id.startswith(run_id)]
    return matches[0] if len(matches) == 1 else None
