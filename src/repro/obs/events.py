"""Typed simulator events: one observation channel for every machine.

Every timing simulator (:mod:`repro.core`) accepts an optional
``on_event`` callback (an attribute on :class:`repro.core.base.Simulator`)
and, when it is set, emits :class:`SimEvent` records as the model makes
issue decisions:

====================  ==================================================
kind                  meaning
====================  ==================================================
:attr:`EventKind.ISSUE`     an instruction issued (``cycle`` = issue cycle)
:attr:`EventKind.STALL`     issue was delayed (``reason`` names the binding
                            constraint, ``cycles`` how many cycles were lost)
:attr:`EventKind.COMPLETE`  an instruction's result (or branch resolution)
                            became available / the instruction retired
:attr:`EventKind.FLUSH`     fetched work was discarded (taken-branch buffer
                            flush, branch misprediction recovery)
====================  ==================================================

The disabled path is a single ``if emit is not None`` test per
instruction in each model's hot loop -- benchmarked at well under 2%
overhead (``benchmarks/bench_hooks.py`` gates this in CI) and leaving
issue timing bit-identical (the event plumbing never feeds back into the
model).

``reason`` strings are the emitting machine's vocabulary: the scoreboard
uses :class:`repro.core.scoreboard.StallReason` names (``"RAW"``,
``"WAW"``, ``"UNIT"``, ``"BUS"``, ``"BRANCH"``); the buffered machines
add ``"RUU_FULL"``, ``"STATIONS_FULL"``, ``"TAKEN_BRANCH"`` and
``"MISPREDICT"``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

__all__ = [
    "EventCallback",
    "EventCollector",
    "EventKind",
    "SimEvent",
    "hook_installed",
    "tee",
]


def hook_installed(simulator: object) -> bool:
    """Does *simulator* currently have an ``on_event`` subscriber?

    The single hook-presence test the machines consult when choosing
    between the compiled fast path (:mod:`repro.core.fastpath`) and the
    event-emitting reference loop.  It reads the attribute at call time,
    never a cached decision, so a hook attached *after* construction --
    or installed temporarily by
    :meth:`~repro.core.base.Simulator.simulate_observed` mid-session --
    always forces the reference path and receives its events.
    """
    return getattr(simulator, "on_event", None) is not None


class EventKind(enum.Enum):
    """What happened."""

    ISSUE = "issue"
    STALL = "stall"
    COMPLETE = "complete"
    FLUSH = "flush"


@dataclass(frozen=True)
class SimEvent:
    """One observation from a timing model.

    Attributes:
        kind: the event type.
        seq: dynamic instruction index the event refers to (-1 for
            machine-level events with no single instruction).
        cycle: the cycle the event refers to (issue cycle for ISSUE,
            availability cycle for COMPLETE, the delayed issue cycle for
            STALL, the flush cycle for FLUSH).
        reason: stall/flush cause (empty for ISSUE/COMPLETE).
        cycles: duration in cycles where meaningful (cycles lost for
            STALL); 0 otherwise.
    """

    kind: EventKind
    seq: int
    cycle: int
    reason: str = ""
    cycles: int = 0


#: The hook signature every simulator accepts.
EventCallback = Callable[[SimEvent], None]


class EventCollector:
    """The simplest consumer: keep every event, count by kind."""

    def __init__(self) -> None:
        self.events: List[SimEvent] = []

    def __call__(self, event: SimEvent) -> None:
        self.events.append(event)

    def counts(self) -> Dict[EventKind, int]:
        by_kind: Dict[EventKind, int] = {}
        for event in self.events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        return by_kind

    def of_kind(self, kind: EventKind) -> Tuple[SimEvent, ...]:
        return tuple(e for e in self.events if e.kind is kind)

    def cycles_by_seq(self, kind: EventKind) -> Dict[int, int]:
        """seq -> cycle of the *first* event of *kind* for that seq.

        The per-seq timeline most consumers want (the invariant checker
        in :mod:`repro.verify` reconstructs issue/completion schedules
        this way); duplicate events for a seq keep the first cycle.
        """
        cycles: Dict[int, int] = {}
        for event in self.events:
            if event.kind is kind and event.seq not in cycles:
                cycles[event.seq] = event.cycle
        return cycles

    def max_cycle(self) -> int:
        """The latest cycle any event refers to (0 with no events)."""
        return max((e.cycle for e in self.events), default=0)

    def stall_cycles_by_reason(self) -> Dict[str, int]:
        """Total cycles lost per stall reason (Section 6 style)."""
        totals: Dict[str, int] = {}
        for event in self.events:
            if event.kind is EventKind.STALL:
                totals[event.reason] = (
                    totals.get(event.reason, 0) + event.cycles
                )
        return totals


def tee(*callbacks: EventCallback) -> EventCallback:
    """Fan one event stream out to several consumers."""
    live = [cb for cb in callbacks if cb is not None]
    if len(live) == 1:
        return live[0]

    def fanout(event: SimEvent) -> None:
        for callback in live:
            callback(event)

    return fanout
