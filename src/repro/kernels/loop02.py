"""Livermore Loop 2 -- ICCG excerpt (vectorizable).

C form of the incomplete Cholesky conjugate gradient excerpt::

    ii = n;  ipntp = 0;
    do {
        ipnt  = ipntp;
        ipntp = ipntp + ii;
        ii    = ii / 2;
        i     = ipntp - 1;
        for (k = ipnt+1; k < ipntp; k = k+2) {
            i++;
            x[i] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1];
        }
    } while (ii > 0);

The problem size must be a power of two so every halving pass has an even
element count.  The ``ii /= 2`` is done the CRAY way: transmit to an S
register, shift right on the scalar shift unit, transmit back.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 2
NAME = "ICCG excerpt"


def _reference(x0: np.ndarray, v0: np.ndarray, n: int) -> np.ndarray:
    x = x0.copy()
    ii = n
    ipntp = 0
    while ii > 0:
        ipnt = ipntp
        ipntp += ii
        ii //= 2
        i = ipntp - 1
        for k in range(ipnt + 1, ipntp, 2):
            i += 1
            x[i] = (x[k] - v0[k] * x[k - 1]) - (v0[k + 1] * x[k + 1])
    return x


def build(n: Optional[int] = None) -> KernelInstance:
    """Build the kernel; *n* must be a power of two."""
    n = default_size(NUMBER) if n is None else n
    if n < 2 or n & (n - 1):
        raise ValueError(f"loop 2 needs a power-of-two n >= 2, got {n}")

    size = 2 * n + 4
    layout = Layout()
    x = layout.array("x", size)
    v = layout.array("v", size)

    rng = kernel_rng(NUMBER, n)
    x0 = rng.uniform(0.1, 1.0, size)
    v0 = rng.uniform(0.0, 0.1, size)

    memory = layout.memory()
    x.write_to(memory, x0)
    v.write_to(memory, v0)

    expected_x = _reference(x0, v0, n)

    b = ProgramBuilder("livermore-02")
    b.ai(A(3), n, comment="ii")
    b.ai(A(4), 0, comment="ipntp")
    b.label("outer")
    b.amove(A(5), A(4), comment="ipnt = ipntp")
    b.aadd(A(4), A(4), A(3), comment="ipntp += ii")
    b.ats(S(6), A(3))
    b.sshr(S(6), S(6), 1, comment="ii / 2 on the shift unit")
    b.sta(A(3), S(6), comment="ii //= 2")
    b.amove(A(0), A(3), comment="inner trip = new ii")
    b.jaz("skip", comment="last pass has an empty body")
    b.aadd(A(1), A(5), 1, comment="k = ipnt + 1")
    b.amove(A(2), A(4), comment="first i = ipntp")
    b.label("inner")
    b.loads(S(1), A(1), x.base, comment="x[k]")
    b.loads(S(2), A(1), v.base, comment="v[k]")
    b.loads(S(3), A(1), x.base - 1, comment="x[k-1]")
    b.loads(S(4), A(1), v.base + 1, comment="v[k+1]")
    b.loads(S(5), A(1), x.base + 1, comment="x[k+1]")
    b.fmul(S(2), S(2), S(3), comment="v[k]*x[k-1]")
    b.fmul(S(4), S(4), S(5), comment="v[k+1]*x[k+1]")
    b.fsub(S(1), S(1), S(2))
    b.fsub(S(1), S(1), S(4))
    b.stores(S(1), A(2), x.base, comment="x[i]")
    b.aadd(A(1), A(1), 2, comment="k += 2")
    b.aadd(A(2), A(2), 1, comment="i += 1")
    b.asub(A(0), A(0), 1)
    b.jan("inner")
    b.label("skip")
    b.amove(A(0), A(3))
    b.jan("outer", comment="while (ii > 0)")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"x": expected_x},
        checked_arrays=("x",),
    )
