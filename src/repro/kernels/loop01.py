"""Livermore Loop 1 -- hydro fragment (vectorizable).

Fortran original::

    DO 1 k = 1,n
  1 X(k) = Q + Y(k)*(R*Z(k+10) + T*Z(k+11))

Each iteration is independent; the loop is limited only by resources and
branch resolution, which is why the paper classifies it as vectorizable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 1
NAME = "hydro fragment"

_Q = 0.5
_R = 4.86
_T = 2.76


def build(n: Optional[int] = None) -> KernelInstance:
    """Build the kernel at problem size *n* (default from :mod:`sizes`)."""
    n = default_size(NUMBER) if n is None else n
    if n < 1:
        raise ValueError(f"loop 1 needs n >= 1, got {n}")

    layout = Layout()
    x = layout.array("x", n)
    y = layout.array("y", n)
    z = layout.array("z", n + 11)

    rng = kernel_rng(NUMBER, n)
    y0 = rng.uniform(0.1, 1.0, n)
    z0 = rng.uniform(0.1, 1.0, n + 11)

    memory = layout.memory()
    y.write_to(memory, y0)
    z.write_to(memory, z0)

    expected_x = _Q + y0 * (_R * z0[10 : 10 + n] + _T * z0[11 : 11 + n])

    b = ProgramBuilder("livermore-01")
    b.si(S(1), _Q, comment="q")
    b.si(S(2), _R, comment="r")
    b.si(S(3), _T, comment="t")
    b.ai(A(1), 0, comment="k")
    b.ai(A(0), n, comment="trip count")
    b.label("loop")
    b.loads(S(4), A(1), z.base + 10, comment="z[k+10]")
    b.loads(S(5), A(1), z.base + 11, comment="z[k+11]")
    b.fmul(S(4), S(2), S(4), comment="r*z[k+10]")
    b.fmul(S(5), S(3), S(5), comment="t*z[k+11]")
    b.fadd(S(4), S(4), S(5))
    b.loads(S(6), A(1), y.base, comment="y[k]")
    b.fmul(S(4), S(6), S(4), comment="y[k]*(...)")
    b.fadd(S(4), S(1), S(4), comment="q + ...")
    b.stores(S(4), A(1), x.base, comment="x[k]")
    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("loop")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"x": expected_x},
        checked_arrays=("x",),
    )
