"""Livermore Loop 12 -- first difference (vectorizable).

C form::

    for (k = 0; k < n; k++)
        x[k] = y[k+1] - y[k];

The simplest fully parallel loop in the suite: two loads, one subtract,
one store per independent iteration.  A naive scalar compiler reloads
``y[k+1]`` each iteration rather than forwarding it; we keep that
behaviour to stay close to the paper's compiler model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 12
NAME = "first difference"


def build(n: Optional[int] = None) -> KernelInstance:
    n = default_size(NUMBER) if n is None else n
    if n < 1:
        raise ValueError(f"loop 12 needs n >= 1, got {n}")

    layout = Layout()
    x = layout.array("x", n)
    y = layout.array("y", n + 1)

    rng = kernel_rng(NUMBER, n)
    y0 = rng.uniform(0.1, 1.0, n + 1)

    memory = layout.memory()
    y.write_to(memory, y0)

    expected_x = y0[1:] - y0[:-1]

    b = ProgramBuilder("livermore-12")
    b.ai(A(1), 0, comment="k")
    b.ai(A(0), n)
    b.label("loop")
    b.loads(S(1), A(1), y.base + 1)
    b.loads(S(2), A(1), y.base)
    b.fsub(S(1), S(1), S(2))
    b.stores(S(1), A(1), x.base)
    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("loop")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"x": expected_x},
        checked_arrays=("x",),
    )
