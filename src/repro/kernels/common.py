"""Shared infrastructure for benchmark kernels.

Each kernel module (``loop01`` ... ``loop14``) exposes a ``build(n)``
function returning a :class:`KernelInstance`: the assembled program, the
initial memory image, the memory layout, and the *expected* final contents
of every output array (computed by a straight Python/NumPy translation of
the original Fortran kernel).  ``KernelInstance.verify()`` actually runs
the assembly on the interpreter and checks it against the reference --
the reproduction's guarantee that the traces we time are traces of the
real computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..asm import ArraySpec, Memory, Program
from ..trace import GLOBAL_TRACE_CACHE, Trace, generate_trace_with_result
from .classification import LoopClass, classify

#: Relative tolerance for float array verification.  The assembly evaluates
#: the same expression trees in the same order as the reference, so the
#: agreement is normally exact; the tolerance absorbs nothing but genuine
#: divergence.
VERIFY_RTOL = 1e-12


class KernelVerificationError(AssertionError):
    """The assembly kernel's results disagree with the NumPy reference."""


class Layout:
    """A bump allocator assigning base addresses to named arrays."""

    def __init__(self, origin: int = 16) -> None:
        if origin < 0:
            raise ValueError("layout origin must be non-negative")
        self._next = origin
        self.arrays: Dict[str, ArraySpec] = {}

    def array(self, name: str, *shape: int) -> ArraySpec:
        """Allocate a named row-major array and return its spec."""
        if name in self.arrays:
            raise ValueError(f"array {name!r} already allocated")
        spec = ArraySpec(name=name, base=self._next, shape=tuple(shape))
        self._next += spec.size
        self.arrays[name] = spec
        return spec

    def scalar_slot(self, name: str) -> ArraySpec:
        """Allocate a single-word slot (for scalar results like a dot product)."""
        return self.array(name, 1)

    def memory(self, pad: int = 16) -> Memory:
        """A zeroed memory image large enough for everything allocated."""
        return Memory(self._next + pad)

    def __getitem__(self, name: str) -> ArraySpec:
        return self.arrays[name]


def kernel_rng(number: int, n: int) -> np.random.Generator:
    """Deterministic RNG for kernel data (same data for same (kernel, n))."""
    return np.random.default_rng(100_000 + number * 1_000 + n)


@dataclass(frozen=True)
class KernelInstance:
    """A fully prepared benchmark kernel at a specific problem size.

    Attributes:
        number: Livermore loop number (1-14).
        name: short kernel name (e.g. ``"hydro fragment"``).
        n: problem size.
        program: assembled CRAY-like program.
        initial_memory: memory image with input data (never mutated; runs
            operate on copies).
        arrays: layout of every named array.
        expected: expected final contents of each checked array, computed
            by the Python/NumPy reference before any assembly runs.
        checked_arrays: names of the arrays compared during verification.
    """

    number: int
    name: str
    n: int
    program: Program
    initial_memory: Memory
    arrays: Mapping[str, ArraySpec]
    expected: Mapping[str, np.ndarray]
    checked_arrays: Tuple[str, ...]
    scheduled: bool = False

    def __post_init__(self) -> None:
        missing = [a for a in self.checked_arrays if a not in self.arrays]
        if missing:
            raise ValueError(f"checked arrays not in layout: {missing}")
        missing = [a for a in self.checked_arrays if a not in self.expected]
        if missing:
            raise ValueError(f"checked arrays without expectations: {missing}")

    @property
    def loop_class(self) -> LoopClass:
        return classify(self.number)

    @property
    def trace_name(self) -> str:
        return f"livermore-{self.number:02d}"

    def run(self) -> Tuple[Trace, Memory]:
        """Execute the kernel on a fresh memory copy; return (trace, memory)."""
        memory = self.initial_memory.copy()
        trace, result = generate_trace_with_result(
            self.program, memory, name=self.trace_name
        )
        return trace, result.memory

    def verify(self) -> Trace:
        """Run the kernel and check every output array against the reference.

        Returns the captured trace (so verification doubles as capture).

        Raises:
            KernelVerificationError: on any mismatch.
        """
        trace, memory = self.run()
        for array_name in self.checked_arrays:
            spec = self.arrays[array_name]
            actual = spec.read_from(memory)
            expected = np.asarray(self.expected[array_name], dtype=np.float64)
            if expected.shape != spec.shape:
                raise KernelVerificationError(
                    f"loop {self.number}: reference for {array_name!r} has "
                    f"shape {expected.shape}, layout says {spec.shape}"
                )
            if not np.allclose(actual, expected, rtol=VERIFY_RTOL, atol=1e-300):
                worst = np.unravel_index(
                    np.argmax(np.abs(actual - expected)), expected.shape
                )
                raise KernelVerificationError(
                    f"loop {self.number} ({self.name}): array {array_name!r} "
                    f"mismatch, worst at {worst}: "
                    f"got {actual[worst]!r}, want {expected[worst]!r}"
                )
        return trace

    def trace(self) -> Trace:
        """The kernel's dynamic trace, verified once and cached process-wide."""
        key = (
            "kernel",
            self.number,
            self.n,
            self.scheduled,
            self.program.name,  # distinguishes unrolled/transformed variants
        )
        return GLOBAL_TRACE_CACHE.get_or_build(key, self.verify)
