"""Livermore Loop 6 -- general linear recurrence equations (scalar).

C form::

    for (i = 1; i < n; i++)
        for (k = 0; k < i; k++)
            w[i] += b[k][i] * w[(i-k)-1];

A triangular double loop: iteration *i* accumulates *i* products into
``w[i]``, which then feeds later iterations.  The accumulation is kept
register-resident across the inner loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 6
NAME = "general linear recurrence"


def _reference(w0: np.ndarray, b0: np.ndarray, n: int) -> np.ndarray:
    w = w0.copy()
    for i in range(1, n):
        acc = w[i]
        for k in range(i):
            acc += b0[k, i] * w[(i - k) - 1]
        w[i] = acc
    return w


def build(n: Optional[int] = None) -> KernelInstance:
    n = default_size(NUMBER) if n is None else n
    if n < 2:
        raise ValueError(f"loop 6 needs n >= 2, got {n}")

    layout = Layout()
    w = layout.array("w", n)
    bmat = layout.array("b", n, n)

    rng = kernel_rng(NUMBER, n)
    w0 = rng.uniform(0.01, 0.1, n)
    b0 = rng.uniform(0.0, 1.0 / n, (n, n))

    memory = layout.memory()
    w.write_to(memory, w0)
    bmat.write_to(memory, b0)

    expected_w = _reference(w0, b0, n)

    b = ProgramBuilder("livermore-06")
    b.ai(A(3), 1, comment="i")
    b.ai(A(6), n - 1, comment="outer trip count")
    b.label("outer")
    b.loads(S(1), A(3), w.base, comment="w[i] accumulator")
    b.amove(A(1), A(3), comment="b index: k*n + i starts at i")
    b.asub(A(2), A(3), 1, comment="w index: (i-k)-1 starts at i-1")
    b.amove(A(0), A(3), comment="inner trip = i")
    b.label("inner")
    b.loads(S(2), A(1), bmat.base, comment="b[k][i]")
    b.loads(S(3), A(2), w.base, comment="w[(i-k)-1]")
    b.fmul(S(2), S(2), S(3))
    b.fadd(S(1), S(1), S(2))
    b.aadd(A(1), A(1), n, comment="next row of b")
    b.asub(A(2), A(2), 1)
    b.asub(A(0), A(0), 1)
    b.jan("inner")
    b.stores(S(1), A(3), w.base, comment="w[i]")
    b.aadd(A(3), A(3), 1)
    b.asub(A(6), A(6), 1)
    b.amove(A(0), A(6))
    b.jan("outer")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"w": expected_w},
        checked_arrays=("w",),
    )
