"""Livermore Loop 9 -- integrate predictors (vectorizable).

C form::

    for (i = 0; i < n; i++)
        px[i][0] = dm28*px[i][12] + dm27*px[i][11] + dm26*px[i][10] +
                   dm25*px[i][ 9] + dm24*px[i][ 8] + dm23*px[i][ 7] +
                   dm22*px[i][ 6] + c0*( px[i][4] + px[i][5] ) + px[i][2];

A wide, fully parallel 13-point dot product per row.  The eight floating
constants live in T registers (backup file) and move to S on demand.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S, T
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 9
NAME = "integrate predictors"

_DM = {
    "dm22": 0.10, "dm23": 0.12, "dm24": 0.14, "dm25": 0.17,
    "dm26": 0.20, "dm27": 0.25, "dm28": 0.33,
}
_C0 = 0.45

_COLS = 13


def _reference(px0: np.ndarray, n: int) -> np.ndarray:
    px = px0.copy()
    for i in range(n):
        acc = _DM["dm28"] * px[i, 12]
        acc = acc + _DM["dm27"] * px[i, 11]
        acc = acc + _DM["dm26"] * px[i, 10]
        acc = acc + _DM["dm25"] * px[i, 9]
        acc = acc + _DM["dm24"] * px[i, 8]
        acc = acc + _DM["dm23"] * px[i, 7]
        acc = acc + _DM["dm22"] * px[i, 6]
        acc = acc + _C0 * (px[i, 4] + px[i, 5])
        acc = acc + px[i, 2]
        px[i, 0] = acc
    return px


def build(n: Optional[int] = None) -> KernelInstance:
    n = default_size(NUMBER) if n is None else n
    if n < 1:
        raise ValueError(f"loop 9 needs n >= 1, got {n}")

    layout = Layout()
    px = layout.array("px", n, _COLS)

    rng = kernel_rng(NUMBER, n)
    px0 = rng.uniform(0.1, 1.0, (n, _COLS))

    memory = layout.memory()
    px.write_to(memory, px0)

    expected_px = _reference(px0, n)

    dm_regs = {name: T(i) for i, name in enumerate(_DM)}
    c0_reg = T(7)

    b = ProgramBuilder("livermore-09")
    for name, treg in dm_regs.items():
        b.si(S(1), _DM[name], comment=name)
        b.smove(treg, S(1))
    b.si(S(1), _C0, comment="c0")
    b.smove(c0_reg, S(1))
    b.ai(A(1), 0, comment="row base = i*13")
    b.ai(A(0), n)
    b.label("loop")
    b.smove(S(1), dm_regs["dm28"])
    b.loads(S(2), A(1), px.base + 12)
    b.fmul(S(1), S(1), S(2), comment="accumulator starts at dm28*px[i][12]")
    for name, col in (
        ("dm27", 11), ("dm26", 10), ("dm25", 9),
        ("dm24", 8), ("dm23", 7), ("dm22", 6),
    ):
        b.smove(S(3), dm_regs[name])
        b.loads(S(2), A(1), px.base + col)
        b.fmul(S(3), S(3), S(2))
        b.fadd(S(1), S(1), S(3))
    b.smove(S(3), c0_reg)
    b.loads(S(2), A(1), px.base + 4)
    b.loads(S(4), A(1), px.base + 5)
    b.fadd(S(2), S(2), S(4))
    b.fmul(S(3), S(3), S(2), comment="c0*(px[i][4] + px[i][5])")
    b.fadd(S(1), S(1), S(3))
    b.loads(S(2), A(1), px.base + 2)
    b.fadd(S(1), S(1), S(2))
    b.stores(S(1), A(1), px.base, comment="px[i][0]")
    b.aadd(A(1), A(1), _COLS)
    b.asub(A(0), A(0), 1)
    b.jan("loop")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"px": expected_px},
        checked_arrays=("px",),
    )
