"""Livermore Loop 3 -- inner product (vectorizable).

Fortran original::

    Q = 0.0
    DO 3 k = 1,n
  3 Q = Q + Z(k)*X(k)

The accumulation is a floating-add recurrence in scalar code, but the loop
is classified vectorizable (a vector machine reduces it with a tree).  The
final value of Q is stored to memory so verification sees it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 3
NAME = "inner product"


def _reference(z0: np.ndarray, x0: np.ndarray) -> float:
    q = 0.0
    for zk, xk in zip(z0, x0):
        q += zk * xk
    return q


def build(n: Optional[int] = None) -> KernelInstance:
    n = default_size(NUMBER) if n is None else n
    if n < 1:
        raise ValueError(f"loop 3 needs n >= 1, got {n}")

    layout = Layout()
    z = layout.array("z", n)
    x = layout.array("x", n)
    q = layout.scalar_slot("q")

    rng = kernel_rng(NUMBER, n)
    z0 = rng.uniform(0.1, 1.0, n)
    x0 = rng.uniform(0.1, 1.0, n)

    memory = layout.memory()
    z.write_to(memory, z0)
    x.write_to(memory, x0)

    expected_q = np.array([_reference(z0, x0)])

    b = ProgramBuilder("livermore-03")
    b.si(S(1), 0.0, comment="q")
    b.ai(A(1), 0, comment="k")
    b.ai(A(0), n)
    b.label("loop")
    b.loads(S(2), A(1), z.base)
    b.loads(S(3), A(1), x.base)
    b.fmul(S(2), S(2), S(3))
    b.fadd(S(1), S(1), S(2), comment="q += z[k]*x[k]")
    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("loop")
    b.ai(A(2), 0)
    b.stores(S(1), A(2), q.base, comment="write back q")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"q": expected_q},
        checked_arrays=("q",),
    )
