"""The 14 Lawrence Livermore Loops as CRAY-like assembly kernels.

Each loop module contains the assembly encoding (written in the idiom of a
late-1980s scalar compiler), a Python/NumPy reference implementation, and
deterministic input data.  :func:`build_kernel` returns a prepared
:class:`~repro.kernels.common.KernelInstance`; ``instance.trace()`` runs
the kernel, verifies it against the reference, and returns the dynamic
trace (cached process-wide).
"""

import dataclasses
from types import ModuleType
from typing import Dict, Iterable, List, Optional

from ..asm.addressing import expand_addressing
from ..asm.scheduler import schedule_program
from ..asm.unroller import unroll_innermost

from . import (
    loop01,
    loop02,
    loop03,
    loop04,
    loop05,
    loop06,
    loop07,
    loop08,
    loop09,
    loop10,
    loop11,
    loop12,
    loop13,
    loop14,
)
from .classification import (
    ALL_LOOPS,
    SCALAR_LOOPS,
    VECTORIZABLE_LOOPS,
    LoopClass,
    classify,
    loops_in_class,
)
from .common import KernelInstance, KernelVerificationError, Layout, kernel_rng
from .sizes import DEFAULT_SIZES, SMALL_SIZES, default_size

_MODULES: Dict[int, ModuleType] = {
    module.NUMBER: module
    for module in (
        loop01, loop02, loop03, loop04, loop05, loop06, loop07,
        loop08, loop09, loop10, loop11, loop12, loop13, loop14,
    )
}

#: Loop number -> kernel name.
KERNEL_NAMES: Dict[int, str] = {
    number: module.NAME for number, module in _MODULES.items()
}


def build_kernel(
    number: int,
    n: Optional[int] = None,
    *,
    schedule: bool = True,
    unroll: int = 1,
    explicit_addressing: bool = False,
) -> KernelInstance:
    """Build Livermore loop *number* at problem size *n*.

    By default the program goes through the list scheduler
    (:mod:`repro.asm.scheduler`), matching the paper's CFT-compiled
    traces; ``schedule=False`` keeps the naive source-order encoding
    (used by the code-quality ablation benchmark).

    ``unroll=k`` unrolls every structurally clean counted loop by *k*
    before scheduling (the paper's Section 4 remark about unrolling and
    critical paths).  The caller must pick a size whose trip counts are
    multiples of *k* -- verification catches violations.

    ``explicit_addressing=True`` expands folded displacements into
    explicit A-register arithmetic (:mod:`repro.asm.addressing`) -- the
    CFT-style code-bulk model used by the calibration study.
    """
    try:
        module = _MODULES[number]
    except KeyError:
        raise ValueError(f"no Livermore loop numbered {number}") from None
    instance = module.build(n)
    if unroll != 1:
        instance = dataclasses.replace(
            instance,
            program=unroll_innermost(instance.program, unroll),
        )
    if explicit_addressing:
        instance = dataclasses.replace(
            instance,
            program=expand_addressing(instance.program),
        )
    if schedule:
        instance = dataclasses.replace(
            instance,
            program=schedule_program(instance.program),
            scheduled=True,
        )
    if unroll != 1:
        # Unrolled variants get their own trace-cache identity.
        instance = dataclasses.replace(
            instance, name=f"{instance.name} (unroll x{unroll})"
        )
    return instance


def build_all(
    numbers: Iterable[int] = ALL_LOOPS,
    sizes: Optional[Dict[int, int]] = None,
    *,
    schedule: bool = True,
) -> List[KernelInstance]:
    """Build several kernels; *sizes* optionally overrides per-loop sizes."""
    instances = []
    for number in numbers:
        n = sizes.get(number) if sizes else None
        instances.append(build_kernel(number, n, schedule=schedule))
    return instances


__all__ = [
    "ALL_LOOPS",
    "DEFAULT_SIZES",
    "KERNEL_NAMES",
    "KernelInstance",
    "KernelVerificationError",
    "Layout",
    "LoopClass",
    "SCALAR_LOOPS",
    "SMALL_SIZES",
    "VECTORIZABLE_LOOPS",
    "build_all",
    "build_kernel",
    "classify",
    "default_size",
    "kernel_rng",
    "loops_in_class",
]
