"""Standard problem sizes for the benchmark kernels.

The paper used the original Livermore loop lengths; for a pure-Python
reproduction we scale each loop so its dynamic trace is a few thousand
instructions -- long enough that the steady-state issue rate dominates the
prologue/epilogue, short enough that full-table experiments stay fast.
Issue rates converge quickly with trace length (each loop reaches steady
state within a handful of iterations), so this scaling changes the
harmonic-mean results by well under 1%; ``tests/test_kernel_sizes.py``
checks the insensitivity explicitly.

Two size sets are provided: ``DEFAULT_SIZES`` for experiments and
``SMALL_SIZES`` for quick tests.
"""

from __future__ import annotations

from typing import Dict

#: Problem size per loop used by the harness and benchmarks.
DEFAULT_SIZES: Dict[int, int] = {
    1: 128,
    2: 128,
    3: 256,
    4: 250,
    5: 200,
    6: 24,
    7: 80,
    8: 30,
    9: 64,
    10: 64,
    11: 256,
    12: 256,
    13: 48,
    14: 48,
}

#: Much smaller sizes for fast unit tests.
SMALL_SIZES: Dict[int, int] = {
    1: 16,
    2: 16,
    3: 16,
    4: 40,
    5: 16,
    6: 8,
    7: 12,
    8: 6,
    9: 8,
    10: 8,
    11: 16,
    12: 16,
    13: 8,
    14: 8,
}


def default_size(loop_number: int) -> int:
    """Default problem size for *loop_number*."""
    try:
        return DEFAULT_SIZES[loop_number]
    except KeyError:
        raise ValueError(f"no Livermore loop numbered {loop_number}") from None
