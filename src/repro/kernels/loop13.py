"""Livermore Loop 13 -- 2-D particle in cell (scalar).

C form (grid 64x64)::

    for (ip = 0; ip < n; ip++) {
        i1 = p[ip][0];  j1 = p[ip][1];        /* truncate to int */
        i1 &= 64-1;     j1 &= 64-1;
        p[ip][2] += b[j1][i1];
        p[ip][3] += c[j1][i1];
        p[ip][0] += p[ip][2];
        p[ip][1] += p[ip][3];
        i2 = p[ip][0];  j2 = p[ip][1];
        i2 &= 64-1;     j2 &= 64-1;
        p[ip][0] += y[i2+32];
        p[ip][1] += z[j2+32];
        i2 += e[i2+32];
        j2 += f[j2+32];
        h[j2][i2] += 1.0;
    }

A gather/scatter particle push with data-dependent addressing.  The
``& 63`` masks are done the CRAY way: FIX the float to an address
register, transmit to the scalar file, AND on the logical unit, transmit
back.  The deflection arrays ``e``/``f`` hold 0/1 so the final cell index
stays on the grid.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 13
NAME = "2-D particle in cell"

_GRID = 64
_MASK = _GRID - 1


def _reference(p0, bm, cm, y0, z0, e0, f0, h0, n):
    p = p0.copy()
    h = h0.copy()
    for ip in range(n):
        i1 = int(math.trunc(p[ip, 0])) & _MASK
        j1 = int(math.trunc(p[ip, 1])) & _MASK
        p[ip, 2] = p[ip, 2] + bm[j1, i1]
        p[ip, 3] = p[ip, 3] + cm[j1, i1]
        p[ip, 0] = p[ip, 0] + p[ip, 2]
        p[ip, 1] = p[ip, 1] + p[ip, 3]
        i2 = int(math.trunc(p[ip, 0])) & _MASK
        j2 = int(math.trunc(p[ip, 1])) & _MASK
        p[ip, 0] = p[ip, 0] + y0[i2 + 32]
        p[ip, 1] = p[ip, 1] + z0[j2 + 32]
        i2 += int(math.trunc(e0[i2 + 32]))
        j2 += int(math.trunc(f0[j2 + 32]))
        h[j2, i2] = h[j2, i2] + 1.0
    return p, h


def build(n: Optional[int] = None) -> KernelInstance:
    n = default_size(NUMBER) if n is None else n
    if n < 1:
        raise ValueError(f"loop 13 needs n >= 1, got {n}")

    layout = Layout()
    p = layout.array("p", n, 4)
    bm = layout.array("b", _GRID, _GRID)
    cm = layout.array("c", _GRID, _GRID)
    y = layout.array("y", _GRID + 32)
    z = layout.array("z", _GRID + 32)
    e = layout.array("e", _GRID + 32)
    f = layout.array("f", _GRID + 32)
    h = layout.array("h", _GRID, _GRID)

    rng = kernel_rng(NUMBER, n)
    p0 = np.empty((n, 4))
    p0[:, 0] = rng.uniform(0.0, _GRID, n)  # positions
    p0[:, 1] = rng.uniform(0.0, _GRID, n)
    p0[:, 2] = rng.uniform(-2.0, 2.0, n)  # velocities
    p0[:, 3] = rng.uniform(-2.0, 2.0, n)
    bm0 = rng.uniform(0.0, 0.5, (_GRID, _GRID))
    cm0 = rng.uniform(0.0, 0.5, (_GRID, _GRID))
    y0 = rng.uniform(0.0, 1.0, _GRID + 32)
    z0 = rng.uniform(0.0, 1.0, _GRID + 32)
    # Deflections: 0 or 1, forced to 0 at the top edge so indices stay on-grid.
    e0 = rng.integers(0, 2, _GRID + 32).astype(np.float64)
    f0 = rng.integers(0, 2, _GRID + 32).astype(np.float64)
    e0[_GRID + 31] = 0.0
    f0[_GRID + 31] = 0.0
    h0 = np.zeros((_GRID, _GRID))

    memory = layout.memory()
    for spec, data in (
        (p, p0), (bm, bm0), (cm, cm0), (y, y0), (z, z0), (e, e0), (f, f0),
    ):
        spec.write_to(memory, data)

    expected_p, expected_h = _reference(p0, bm0, cm0, y0, z0, e0, f0, h0, n)

    b = ProgramBuilder("livermore-13")
    b.si(S(7), _MASK, comment="grid mask (integer word)")
    b.si(S(6), 1.0)
    b.ai(A(2), 0, comment="particle row base = ip*4")
    b.ai(A(0), n)
    b.label("loop")
    b.loads(S(1), A(2), p.base + 0, comment="p[ip][0]")
    b.fix(A(3), S(1))
    b.ats(S(2), A(3))
    b.sand(S(2), S(2), S(7), comment="i1 &= 63")
    b.sta(A(3), S(2), comment="i1")
    b.loads(S(4), A(2), p.base + 1, comment="p[ip][1]")
    b.fix(A(4), S(4))
    b.ats(S(2), A(4))
    b.sand(S(2), S(2), S(7))
    b.sta(A(4), S(2), comment="j1")
    b.amul(A(5), A(4), _GRID)
    b.aadd(A(5), A(5), A(3), comment="j1*64 + i1")
    b.loads(S(2), A(5), bm.base)
    b.loads(S(3), A(2), p.base + 2)
    b.fadd(S(3), S(3), S(2), comment="p2 += b[j1][i1]")
    b.stores(S(3), A(2), p.base + 2)
    b.loads(S(2), A(5), cm.base)
    b.loads(S(5), A(2), p.base + 3)
    b.fadd(S(5), S(5), S(2), comment="p3 += c[j1][i1]")
    b.stores(S(5), A(2), p.base + 3)
    b.fadd(S(1), S(1), S(3), comment="p0 += p2")
    b.stores(S(1), A(2), p.base + 0)
    b.fadd(S(4), S(4), S(5), comment="p1 += p3")
    b.stores(S(4), A(2), p.base + 1)
    b.fix(A(3), S(1))
    b.ats(S(2), A(3))
    b.sand(S(2), S(2), S(7))
    b.sta(A(3), S(2), comment="i2")
    b.fix(A(4), S(4))
    b.ats(S(2), A(4))
    b.sand(S(2), S(2), S(7))
    b.sta(A(4), S(2), comment="j2")
    b.loads(S(2), A(3), y.base + 32)
    b.fadd(S(1), S(1), S(2), comment="p0 += y[i2+32]")
    b.stores(S(1), A(2), p.base + 0)
    b.loads(S(2), A(4), z.base + 32)
    b.fadd(S(4), S(4), S(2), comment="p1 += z[j2+32]")
    b.stores(S(4), A(2), p.base + 1)
    b.loada(A(6), A(3), e.base + 32)
    b.aadd(A(3), A(3), A(6), comment="i2 += e[i2+32]")
    b.loada(A(6), A(4), f.base + 32)
    b.aadd(A(4), A(4), A(6), comment="j2 += f[j2+32]")
    b.amul(A(5), A(4), _GRID)
    b.aadd(A(5), A(5), A(3))
    b.loads(S(2), A(5), h.base)
    b.fadd(S(2), S(2), S(6), comment="h[j2][i2] += 1.0")
    b.stores(S(2), A(5), h.base)
    b.aadd(A(2), A(2), 4)
    b.asub(A(0), A(0), 1)
    b.jan("loop")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"p": expected_p, "h": expected_h},
        checked_arrays=("p", "h"),
    )
