"""Livermore Loop 14 -- 1-D particle in cell (scalar).

C form (three phases)::

    for (k = 0; k < n; k++) {           /* phase 1: setup */
        vx[k] = 0.0;  xx[k] = 0.0;
        ix[k] = (long) grd[k];
        xi[k] = (double) ix[k];
        ex1[k]  = ex [ ix[k] - 1 ];
        dex1[k] = dex[ ix[k] - 1 ];
    }
    for (k = 0; k < n; k++) {           /* phase 2: push */
        vx[k] = vx[k] + ex1[k] + (xx[k] - xi[k])*dex1[k];
        xx[k] = xx[k] + vx[k] + flx;
        ir[k] = xx[k];                  /* truncate */
        rx[k] = xx[k] - ir[k];
        ir[k] = (ir[k] & 2048-1) + 1;
        xx[k] = rx[k] + ir[k];
    }
    for (k = 0; k < n; k++) {           /* phase 3: charge deposit */
        rh[ ir[k]-1 ] += 1.0 - rx[k];
        rh[ ir[k]   ] += rx[k];
    }

Exercises float<->int conversion, the logical unit for the wrap mask, and
data-dependent scatter in phase 3.

Association note: phase 2 computes ``vx + ((xx-xi)*dex1 + ex1)`` (the
natural order for this encoding); the reference mirrors it exactly.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 14
NAME = "1-D particle in cell"

_CELLS = 2048
_MASK = _CELLS - 1
_FLX = 0.001


def _reference(grd0, ex0, dex0, n):
    vx = np.zeros(n)
    xx = np.zeros(n)
    ix = np.zeros(n)
    xi = np.zeros(n)
    ex1 = np.zeros(n)
    dex1 = np.zeros(n)
    ir = np.zeros(n)
    rx = np.zeros(n)
    rh = np.zeros(_CELLS + 2)
    for k in range(n):
        ixk = int(math.trunc(grd0[k]))
        ix[k] = float(ixk)
        xi[k] = float(ixk)
        ex1[k] = ex0[ixk - 1]
        dex1[k] = dex0[ixk - 1]
    for k in range(n):
        vxk = vx[k] + ((xx[k] - xi[k]) * dex1[k] + ex1[k])
        vx[k] = vxk
        xxk = (xx[k] + vxk) + _FLX
        raw = int(math.trunc(xxk))
        rxk = xxk - float(raw)
        irk = (raw & _MASK) + 1
        rx[k] = rxk
        ir[k] = float(irk)
        xx[k] = rxk + float(irk)
    for k in range(n):
        irk = int(ir[k])
        rh[irk - 1] = rh[irk - 1] + (1.0 - rx[k])
        rh[irk] = rh[irk] + rx[k]
    return vx, xx, ix, xi, ex1, dex1, ir, rx, rh


def build(n: Optional[int] = None) -> KernelInstance:
    n = default_size(NUMBER) if n is None else n
    if n < 1:
        raise ValueError(f"loop 14 needs n >= 1, got {n}")

    layout = Layout()
    grd = layout.array("grd", n)
    ex = layout.array("ex", _CELLS)
    dex = layout.array("dex", _CELLS)
    vx = layout.array("vx", n)
    xx = layout.array("xx", n)
    ix = layout.array("ix", n)
    xi = layout.array("xi", n)
    ex1 = layout.array("ex1", n)
    dex1 = layout.array("dex1", n)
    ir = layout.array("ir", n)
    rx = layout.array("rx", n)
    rh = layout.array("rh", _CELLS + 2)

    rng = kernel_rng(NUMBER, n)
    grd0 = rng.uniform(1.0, 512.0, n)
    ex0 = rng.uniform(0.0, 0.5, _CELLS)
    dex0 = rng.uniform(0.0, 0.05, _CELLS)

    memory = layout.memory()
    grd.write_to(memory, grd0)
    ex.write_to(memory, ex0)
    dex.write_to(memory, dex0)

    e_vx, e_xx, e_ix, e_xi, e_ex1, e_dex1, e_ir, e_rx, e_rh = _reference(
        grd0, ex0, dex0, n
    )

    b = ProgramBuilder("livermore-14")
    # ---- phase 1: setup -------------------------------------------------
    b.si(S(1), 0.0)
    b.ai(A(1), 0, comment="k")
    b.ai(A(0), n)
    b.label("setup")
    b.stores(S(1), A(1), vx.base, comment="vx[k] = 0")
    b.stores(S(1), A(1), xx.base, comment="xx[k] = 0")
    b.loads(S(2), A(1), grd.base)
    b.fix(A(2), S(2), comment="ix[k] = (int)grd[k]")
    b.storea(A(2), A(1), ix.base)
    b.float_(S(3), A(2))
    b.stores(S(3), A(1), xi.base, comment="xi[k] = (double)ix[k]")
    b.loads(S(4), A(2), ex.base - 1, comment="ex[ix[k]-1]")
    b.stores(S(4), A(1), ex1.base)
    b.loads(S(4), A(2), dex.base - 1)
    b.stores(S(4), A(1), dex1.base)
    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("setup")
    # ---- phase 2: push --------------------------------------------------
    b.si(S(6), _MASK, comment="cell wrap mask")
    b.si(S(7), _FLX, comment="flx")
    b.ai(A(1), 0)
    b.ai(A(0), n)
    b.label("push")
    b.loads(S(1), A(1), xx.base)
    b.loads(S(2), A(1), xi.base)
    b.fsub(S(2), S(1), S(2), comment="xx - xi")
    b.loads(S(3), A(1), dex1.base)
    b.fmul(S(2), S(2), S(3))
    b.loads(S(3), A(1), ex1.base)
    b.fadd(S(2), S(2), S(3))
    b.loads(S(3), A(1), vx.base)
    b.fadd(S(3), S(3), S(2), comment="new vx")
    b.stores(S(3), A(1), vx.base)
    b.fadd(S(1), S(1), S(3))
    b.fadd(S(1), S(1), S(7), comment="xx + vx + flx")
    b.fix(A(2), S(1), comment="raw cell index")
    b.float_(S(4), A(2))
    b.fsub(S(4), S(1), S(4), comment="rx = fractional part")
    b.stores(S(4), A(1), rx.base)
    b.ats(S(5), A(2))
    b.sand(S(5), S(5), S(6), comment="wrap into [0, 2047]")
    b.sta(A(2), S(5))
    b.aadd(A(2), A(2), 1, comment="ir = wrapped + 1")
    b.storea(A(2), A(1), ir.base)
    b.float_(S(5), A(2))
    b.fadd(S(1), S(4), S(5), comment="xx = rx + ir")
    b.stores(S(1), A(1), xx.base)
    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("push")
    # ---- phase 3: charge deposit ----------------------------------------
    b.si(S(7), 1.0)
    b.ai(A(1), 0)
    b.ai(A(0), n)
    b.label("deposit")
    b.loada(A(2), A(1), ir.base)
    b.loads(S(1), A(1), rx.base)
    b.fsub(S(2), S(7), S(1), comment="1 - rx")
    b.loads(S(3), A(2), rh.base - 1)
    b.fadd(S(3), S(3), S(2))
    b.stores(S(3), A(2), rh.base - 1, comment="rh[ir-1] += 1-rx")
    b.loads(S(3), A(2), rh.base)
    b.fadd(S(3), S(3), S(1))
    b.stores(S(3), A(2), rh.base, comment="rh[ir] += rx")
    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("deposit")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={
            "vx": e_vx, "xx": e_xx, "ix": e_ix, "xi": e_xi,
            "ex1": e_ex1, "dex1": e_dex1, "ir": e_ir, "rx": e_rx, "rh": e_rh,
        },
        checked_arrays=(
            "vx", "xx", "ix", "xi", "ex1", "dex1", "ir", "rx", "rh",
        ),
    )
