"""Livermore Loop 8 -- ADI integration (vectorizable).

C form (single ``kx = 1`` plane, as in the original kernel)::

    nl1 = 0; nl2 = 1;
    for (ky = 1; ky < n; ky++) {
        du1[ky] = u1[kx][ky+1][nl1] - u1[kx][ky-1][nl1];
        du2[ky] = u2[kx][ky+1][nl1] - u2[kx][ky-1][nl1];
        du3[ky] = u3[kx][ky+1][nl1] - u3[kx][ky-1][nl1];
        u1[kx][ky][nl2] = u1[kx][ky][nl1] + a11*du1[ky] + a12*du2[ky] + a13*du3[ky]
            + sig*(u1[kx+1][ky][nl1] - 2.0*u1[kx][ky][nl1] + u1[kx-1][ky][nl1]);
        ... (same for u2 with a21..a23, u3 with a31..a33)
    }

The biggest loop body in the suite (~70 instructions per iteration).  Its
eleven floating constants do not fit in the 8 S registers, so they are
parked in T (backup) registers and moved to S on demand -- exactly the
CRAY register-pressure idiom.

Floating-point association order: this encoding sums the coefficient
products first and adds the centre value afterwards, and computes the
Laplacian as ``(u[kx+1]+u[kx-1]) - 2u``; the Python reference mirrors that
order so verification is exact.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S, T
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 8
NAME = "ADI integration"

_COEFFS = {
    "a11": 0.50, "a12": 0.33, "a13": 0.25,
    "a21": 0.20, "a22": 0.17, "a23": 0.14,
    "a31": 0.12, "a32": 0.11, "a33": 0.10,
}
_SIG = 0.41


def _reference(u1, u2, u3, n):
    """Mirror of the assembly's evaluation order (see module docstring)."""
    c = _COEFFS
    u1, u2, u3 = u1.copy(), u2.copy(), u3.copy()
    du1 = np.zeros(n + 1)
    du2 = np.zeros(n + 1)
    du3 = np.zeros(n + 1)
    kx = 1
    for ky in range(1, n):
        du1[ky] = u1[kx, ky + 1, 0] - u1[kx, ky - 1, 0]
        du2[ky] = u2[kx, ky + 1, 0] - u2[kx, ky - 1, 0]
        du3[ky] = u3[kx, ky + 1, 0] - u3[kx, ky - 1, 0]
        for u, (ca, cb, cc) in (
            (u1, (c["a11"], c["a12"], c["a13"])),
            (u2, (c["a21"], c["a22"], c["a23"])),
            (u3, (c["a31"], c["a32"], c["a33"])),
        ):
            term = (ca * du1[ky] + cb * du2[ky]) + cc * du3[ky]
            base = u[kx, ky, 0] + term
            lap = (u[kx + 1, ky, 0] + u[kx - 1, ky, 0]) - 2.0 * u[kx, ky, 0]
            u[kx, ky, 1] = base + _SIG * lap
    return u1, u2, u3, du1, du2, du3


def build(n: Optional[int] = None) -> KernelInstance:
    n = default_size(NUMBER) if n is None else n
    if n < 2:
        raise ValueError(f"loop 8 needs n >= 2, got {n}")

    layout = Layout()
    u1 = layout.array("u1", 3, n + 1, 2)
    u2 = layout.array("u2", 3, n + 1, 2)
    u3 = layout.array("u3", 3, n + 1, 2)
    du1 = layout.array("du1", n + 1)
    du2 = layout.array("du2", n + 1)
    du3 = layout.array("du3", n + 1)

    rng = kernel_rng(NUMBER, n)
    u1_0 = rng.uniform(0.1, 1.0, (3, n + 1, 2))
    u2_0 = rng.uniform(0.1, 1.0, (3, n + 1, 2))
    u3_0 = rng.uniform(0.1, 1.0, (3, n + 1, 2))

    memory = layout.memory()
    u1.write_to(memory, u1_0)
    u2.write_to(memory, u2_0)
    u3.write_to(memory, u3_0)

    e_u1, e_u2, e_u3, e_du1, e_du2, e_du3 = _reference(u1_0, u2_0, u3_0, n)

    np2 = (n + 1) * 2  # words per kx plane
    # Base displacements for the kx = 1 plane, nl1 = 0, indexed by A3 = 2*ky.
    u1c = u1.base + np2
    u2c = u2.base + np2
    u3c = u3.base + np2

    coeff_regs = {name: T(i) for i, name in enumerate(_COEFFS)}
    sig_reg = T(9)
    two_reg = T(10)

    b = ProgramBuilder("livermore-08")
    for name, treg in coeff_regs.items():
        b.si(S(1), _COEFFS[name], comment=name)
        b.smove(treg, S(1))
    b.si(S(1), _SIG, comment="sig")
    b.smove(sig_reg, S(1))
    b.si(S(1), 2.0)
    b.smove(two_reg, S(1))
    b.ai(A(2), 1, comment="ky")
    b.ai(A(3), 2, comment="2*ky")
    b.ai(A(0), n - 1)
    b.label("loop")
    # du_i[ky] = u_i[kx][ky+1][0] - u_i[kx][ky-1][0]; keep du_i in S_i.
    for s, uc, du in ((S(1), u1c, du1), (S(2), u2c, du2), (S(3), u3c, du3)):
        b.loads(s, A(3), uc + 2)
        b.loads(S(4), A(3), uc - 2)
        b.fsub(s, s, S(4))
        b.stores(s, A(2), du.base)
    # u_i[kx][ky][1] update.
    for uc, (ca, cb, cc) in (
        (u1c, ("a11", "a12", "a13")),
        (u2c, ("a21", "a22", "a23")),
        (u3c, ("a31", "a32", "a33")),
    ):
        b.smove(S(4), coeff_regs[ca])
        b.fmul(S(4), S(4), S(1))
        b.smove(S(5), coeff_regs[cb])
        b.fmul(S(5), S(5), S(2))
        b.fadd(S(4), S(4), S(5))
        b.smove(S(5), coeff_regs[cc])
        b.fmul(S(5), S(5), S(3))
        b.fadd(S(4), S(4), S(5), comment="coefficient combination")
        b.loads(S(5), A(3), uc, comment="centre value")
        b.fadd(S(4), S(5), S(4))
        b.loads(S(6), A(3), uc + np2, comment="kx+1 neighbour")
        b.loads(S(7), A(3), uc - np2, comment="kx-1 neighbour")
        b.fadd(S(6), S(6), S(7))
        b.smove(S(0), two_reg)
        b.fmul(S(0), S(0), S(5))
        b.fsub(S(6), S(6), S(0), comment="Laplacian in kx")
        b.smove(S(0), sig_reg)
        b.fmul(S(6), S(0), S(6))
        b.fadd(S(4), S(4), S(6))
        b.stores(S(4), A(3), uc + 1, comment="nl2 = 1 plane")
    b.aadd(A(2), A(2), 1)
    b.aadd(A(3), A(3), 2)
    b.asub(A(0), A(0), 1)
    b.jan("loop")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={
            "u1": e_u1, "u2": e_u2, "u3": e_u3,
            "du1": e_du1, "du2": e_du2, "du3": e_du3,
        },
        checked_arrays=("u1", "u2", "u3", "du1", "du2", "du3"),
    )
