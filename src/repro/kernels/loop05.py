"""Livermore Loop 5 -- tri-diagonal elimination, below diagonal (scalar).

C form::

    for (i = 1; i < n; i++)
        x[i] = z[i] * (y[i] - x[i-1]);

A first-order linear recurrence: every iteration needs the previous
iteration's result, so the dataflow critical path is one floating subtract
plus one floating multiply per iteration.  The generated code keeps
``x[i-1]`` register-resident across iterations, as the CRAY Fortran
compiler did.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 5
NAME = "tri-diagonal elimination"


def _reference(x0: np.ndarray, y0: np.ndarray, z0: np.ndarray) -> np.ndarray:
    x = x0.copy()
    for i in range(1, len(x)):
        x[i] = z0[i] * (y0[i] - x[i - 1])
    return x


def build(n: Optional[int] = None) -> KernelInstance:
    n = default_size(NUMBER) if n is None else n
    if n < 2:
        raise ValueError(f"loop 5 needs n >= 2, got {n}")

    layout = Layout()
    x = layout.array("x", n)
    y = layout.array("y", n)
    z = layout.array("z", n)

    rng = kernel_rng(NUMBER, n)
    x0 = rng.uniform(0.1, 1.0, n)
    y0 = rng.uniform(0.1, 1.0, n)
    z0 = rng.uniform(0.1, 0.9, n)

    memory = layout.memory()
    x.write_to(memory, x0)
    y.write_to(memory, y0)
    z.write_to(memory, z0)

    expected_x = _reference(x0, y0, z0)

    b = ProgramBuilder("livermore-05")
    b.ai(A(1), 1, comment="i")
    b.ai(A(0), n - 1)
    b.loads(S(1), A(1), x.base - 1, comment="x[0], register-resident recurrence")
    b.label("loop")
    b.loads(S(2), A(1), y.base)
    b.loads(S(3), A(1), z.base)
    b.fsub(S(2), S(2), S(1), comment="y[i] - x[i-1]")
    b.fmul(S(1), S(3), S(2), comment="x[i] = z[i]*(...), feeds next iteration")
    b.stores(S(1), A(1), x.base)
    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("loop")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"x": expected_x},
        checked_arrays=("x",),
    )
