"""Livermore Loop 4 -- banded linear equations (vectorizable).

C form::

    m = (n - 7) / 2;
    for (k = 6; k < n; k = k + m) {
        lw = k - 6;
        temp = x[k-1];
        for (j = 4; j < n; j = j + 5) {
            temp -= x[lw] * y[j];
            lw++;
        }
        x[k-1] = y[4] * temp;
    }

The middle loop visits three k values; the inner loop is a strided
dot-product-like reduction.  The middle loop uses a separate counter
register and moves it into A0 for the loop-closing test, the way CRAY
code must (only A0 can be branched on).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 4
NAME = "banded linear equations"


def _k_values(n: int):
    m = (n - 7) // 2
    return list(range(6, n, m)), m


def _reference(x0: np.ndarray, y0: np.ndarray, n: int) -> np.ndarray:
    x = x0.copy()
    ks, _ = _k_values(n)
    for k in ks:
        lw = k - 6
        temp = x[k - 1]
        for j in range(4, n, 5):
            temp -= x[lw] * y0[j]
            lw += 1
        x[k - 1] = y0[4] * temp
    return x


def build(n: Optional[int] = None) -> KernelInstance:
    n = default_size(NUMBER) if n is None else n
    if n < 20:
        raise ValueError(f"loop 4 needs n >= 20, got {n}")

    ks, m = _k_values(n)
    inner_trip = len(range(4, n, 5))
    # lw runs from k-6 for inner_trip steps; the last k needs the most room.
    # (The original LFK sized x at 1001 words regardless of the loop bound.)
    xsize = ks[-1] - 6 + inner_trip + 4

    layout = Layout()
    x = layout.array("x", xsize)
    y = layout.array("y", n)

    rng = kernel_rng(NUMBER, n)
    x0 = rng.uniform(0.1, 1.0, xsize)
    y0 = rng.uniform(0.0, 0.05, n)

    memory = layout.memory()
    x.write_to(memory, x0)
    y.write_to(memory, y0)

    expected_x = _reference(x0, y0, n)

    b = ProgramBuilder("livermore-04")
    b.ai(A(3), 6, comment="k")
    b.ai(A(6), len(ks), comment="middle trip count")
    b.ai(A(5), 0, comment="base for y[4] load")
    b.label("middle")
    b.asub(A(7), A(3), 6, comment="lw = k - 6")
    b.loads(S(1), A(3), x.base - 1, comment="temp = x[k-1]")
    b.ai(A(1), 4, comment="j")
    b.ai(A(0), inner_trip)
    b.label("inner")
    b.loads(S(2), A(1), y.base, comment="y[j]")
    b.loads(S(3), A(7), x.base, comment="x[lw]")
    b.fmul(S(2), S(2), S(3))
    b.fsub(S(1), S(1), S(2), comment="temp -= x[lw]*y[j]")
    b.aadd(A(1), A(1), 5)
    b.aadd(A(7), A(7), 1)
    b.asub(A(0), A(0), 1)
    b.jan("inner")
    b.loads(S(4), A(5), y.base + 4, comment="y[4]")
    b.fmul(S(1), S(4), S(1))
    b.stores(S(1), A(3), x.base - 1, comment="x[k-1] = y[4]*temp")
    b.aadd(A(3), A(3), m, comment="k += m")
    b.asub(A(6), A(6), 1)
    b.amove(A(0), A(6), comment="only A0 is branchable")
    b.jan("middle")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"x": expected_x},
        checked_arrays=("x",),
    )
