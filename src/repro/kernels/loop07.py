"""Livermore Loop 7 -- equation of state fragment (vectorizable).

C form::

    for (k = 0; k < n; k++)
        x[k] = u[k] + r*( z[k] + r*y[k] ) +
               t*( u[k+3] + r*( u[k+2] + r*u[k+1] ) +
                    t*( u[k+6] + q*( u[k+5] + q*u[k+4] ) ) );

The largest straight-line body among the vector loops: 9 loads and 15
floating operations per independent iteration, giving plenty of
instruction-level parallelism.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 7
NAME = "equation of state"

_R = 0.48
_T = 0.53
_Q = 0.37


def _reference(u0, y0, z0, n):
    x = np.empty(n)
    r, t, q = _R, _T, _Q
    for k in range(n):
        term1 = u0[k] + r * (z0[k] + r * y0[k])
        term2 = u0[k + 3] + r * (u0[k + 2] + r * u0[k + 1])
        term3 = u0[k + 6] + q * (u0[k + 5] + q * u0[k + 4])
        x[k] = term1 + t * (term2 + t * term3)
    return x


def build(n: Optional[int] = None) -> KernelInstance:
    n = default_size(NUMBER) if n is None else n
    if n < 1:
        raise ValueError(f"loop 7 needs n >= 1, got {n}")

    layout = Layout()
    x = layout.array("x", n)
    y = layout.array("y", n)
    z = layout.array("z", n)
    u = layout.array("u", n + 6)

    rng = kernel_rng(NUMBER, n)
    y0 = rng.uniform(0.1, 1.0, n)
    z0 = rng.uniform(0.1, 1.0, n)
    u0 = rng.uniform(0.1, 1.0, n + 6)

    memory = layout.memory()
    y.write_to(memory, y0)
    z.write_to(memory, z0)
    u.write_to(memory, u0)

    expected_x = _reference(u0, y0, z0, n)

    b = ProgramBuilder("livermore-07")
    b.si(S(1), _R, comment="r")
    b.si(S(2), _T, comment="t")
    b.si(S(3), _Q, comment="q")
    b.ai(A(1), 0, comment="k")
    b.ai(A(0), n)
    b.label("loop")
    # term1 = u[k] + r*(z[k] + r*y[k])
    b.loads(S(4), A(1), y.base)
    b.fmul(S(4), S(1), S(4), comment="r*y[k]")
    b.loads(S(5), A(1), z.base)
    b.fadd(S(4), S(5), S(4))
    b.fmul(S(4), S(1), S(4))
    b.loads(S(5), A(1), u.base)
    b.fadd(S(4), S(5), S(4), comment="term1")
    # term2 = u[k+3] + r*(u[k+2] + r*u[k+1])
    b.loads(S(5), A(1), u.base + 1)
    b.fmul(S(5), S(1), S(5))
    b.loads(S(6), A(1), u.base + 2)
    b.fadd(S(5), S(6), S(5))
    b.fmul(S(5), S(1), S(5))
    b.loads(S(6), A(1), u.base + 3)
    b.fadd(S(5), S(6), S(5), comment="term2")
    # term3 = u[k+6] + q*(u[k+5] + q*u[k+4])
    b.loads(S(6), A(1), u.base + 4)
    b.fmul(S(6), S(3), S(6))
    b.loads(S(7), A(1), u.base + 5)
    b.fadd(S(6), S(7), S(6))
    b.fmul(S(6), S(3), S(6))
    b.loads(S(7), A(1), u.base + 6)
    b.fadd(S(6), S(7), S(6), comment="term3")
    # x[k] = term1 + t*(term2 + t*term3)
    b.fmul(S(6), S(2), S(6))
    b.fadd(S(5), S(5), S(6))
    b.fmul(S(5), S(2), S(5))
    b.fadd(S(4), S(4), S(5))
    b.stores(S(4), A(1), x.base)
    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("loop")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"x": expected_x},
        checked_arrays=("x",),
    )
