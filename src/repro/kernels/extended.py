"""Extended workloads: Livermore kernels beyond the paper's 14.

The paper uses the original 14 Lawrence Livermore Loops; the later LFK
suite adds ten more.  Four of them exercise behaviours the first 14 do
not, so they ship here as *extended* workloads (never mixed into the
paper-table experiments):

* **18 — 2-D explicit hydrodynamics**: the largest kernel; contains real
  divisions, synthesised the CRAY way (FRECIP + one Newton step + multiply).
* **19 — general linear recurrence**: a forward and a backward recurrence
  over the same arrays.
* **21 — matrix·matrix product**: the classic triple loop.
* **24 — first minimum**: data-dependent conditional branches inside the
  loop body (the paper's loops only branch on trip counts).

Each follows the same contract as the core kernels: assembly encoding,
NumPy/Python reference, deterministic data, `verify()`/`trace()`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S, T
from .common import KernelInstance, Layout, kernel_rng

#: Extended kernel numbers available from :func:`build_extended`.
EXTENDED_LOOPS: Tuple[int, ...] = (18, 19, 21, 24)

_DEFAULT_SIZES = {18: 10, 19: 128, 21: 10, 24: 200}


def build_extended(number: int, n: Optional[int] = None) -> KernelInstance:
    """Build extended Livermore kernel *number* (18, 19, 21 or 24)."""
    try:
        builder = _BUILDERS[number]
    except KeyError:
        raise ValueError(
            f"no extended kernel numbered {number}; available: {EXTENDED_LOOPS}"
        ) from None
    return builder(n if n is not None else _DEFAULT_SIZES[number])


# ----------------------------------------------------------------------
# helper: CRAY-style division  q = num / den
# ----------------------------------------------------------------------


def _emit_divide(b: ProgramBuilder, dest, num, den, tmp, two):
    """``dest <- num / den`` via reciprocal approximation + Newton step.

    Math (exact in the interpreter, ~1 ulp vs '/' in general):
        r0 = recip(den); r = r0 * (2 - den*r0); dest = num * r.
    Clobbers *tmp*; *two* must hold 2.0.
    """
    b.frecip(dest, den, comment="reciprocal approximation")
    b.fmul(tmp, den, dest)
    b.fsub(tmp, two, tmp)
    b.fmul(dest, dest, tmp, comment="Newton-corrected reciprocal")
    b.fmul(dest, num, dest)


def _py_divide(num: float, den: float) -> float:
    """Mirror of :func:`_emit_divide` for the references."""
    r0 = 1.0 / den
    r = r0 * (2.0 - den * r0)
    return num * r


# ----------------------------------------------------------------------
# kernel 18: 2-D explicit hydrodynamics fragment
# ----------------------------------------------------------------------

_K18_ROWS = 7  # the LFK fixes the k dimension
_K18_T = 0.0037
_K18_S = 0.0041


def _reference_18(zm, zp, zq, zr_in, zz_in, n):
    cols = n + 1
    za = np.zeros((_K18_ROWS, cols))
    zb = np.zeros((_K18_ROWS, cols))
    zu = np.zeros((_K18_ROWS, cols))
    zv = np.zeros((_K18_ROWS, cols))
    zr = zr_in.copy()
    zz = zz_in.copy()
    for k in range(1, 6):
        for j in range(1, n):
            num = ((zp[k + 1, j - 1] + zq[k + 1, j - 1]) - zp[k, j - 1]) - zq[k, j - 1]
            num = num * (zr[k, j] + zr[k - 1, j])
            den = zm[k, j - 1] + zm[k + 1, j - 1]
            za[k, j] = _py_divide(num, den)
            num = ((zp[k, j - 1] + zq[k, j - 1]) - zp[k, j]) - zq[k, j]
            num = num * (zr[k, j] + zr[k, j - 1])
            den = zm[k, j] + zm[k, j - 1]
            zb[k, j] = _py_divide(num, den)
    for k in range(1, 6):
        for j in range(1, n):
            centre_z = zz[k, j]
            acc = za[k, j] * (centre_z - zz[k, j + 1])
            acc = acc - za[k, j - 1] * (centre_z - zz[k, j - 1])
            acc = acc - zb[k, j] * (centre_z - zz[k - 1, j])
            acc = acc + zb[k + 1, j] * (centre_z - zz[k + 1, j])
            zu[k, j] = zu[k, j] + _K18_S * acc
            centre_r = zr[k, j]
            acc = za[k, j] * (centre_r - zr[k, j + 1])
            acc = acc - za[k, j - 1] * (centre_r - zr[k, j - 1])
            acc = acc - zb[k, j] * (centre_r - zr[k - 1, j])
            acc = acc + zb[k + 1, j] * (centre_r - zr[k + 1, j])
            zv[k, j] = zv[k, j] + _K18_S * acc
    for k in range(1, 6):
        for j in range(1, n):
            zr[k, j] = zr[k, j] + _K18_T * zu[k, j]
            zz[k, j] = zz[k, j] + _K18_T * zv[k, j]
    return za, zb, zu, zv, zr, zz


def _k18_nest(b: ProgramBuilder, tag: str, n: int, body) -> None:
    """Emit the shared k=1..5 / j=1..n-1 nest; A2 = k*(n+1) + j."""
    cols = n + 1
    b.ai(A(2), cols + 1, comment="A2 = [1][1]")
    b.ai(A(6), 5, comment="k counter")
    b.label(f"{tag}_rows")
    b.ai(A(0), n - 1, comment="j counter")
    b.label(f"{tag}_cols")
    body()
    b.aadd(A(2), A(2), 1)
    b.asub(A(0), A(0), 1)
    b.jan(f"{tag}_cols")
    b.aadd(A(2), A(2), 2, comment="skip column 0 of the next row")
    b.asub(A(6), A(6), 1)
    b.amove(A(0), A(6))
    b.jan(f"{tag}_rows")


def _build_18(n: int) -> KernelInstance:
    if n < 3:
        raise ValueError(f"kernel 18 needs n >= 3, got {n}")
    cols = n + 1
    layout = Layout()
    arrays = {
        name: layout.array(name, _K18_ROWS, cols)
        for name in ("za", "zb", "zm", "zp", "zq", "zr", "zu", "zv", "zz")
    }

    rng = kernel_rng(18, n)
    zm0 = rng.uniform(0.5, 1.5, (_K18_ROWS, cols))
    zp0 = rng.uniform(0.0, 1.0, (_K18_ROWS, cols))
    zq0 = rng.uniform(0.0, 1.0, (_K18_ROWS, cols))
    zr0 = rng.uniform(0.0, 1.0, (_K18_ROWS, cols))
    zz0 = rng.uniform(0.0, 1.0, (_K18_ROWS, cols))

    memory = layout.memory()
    for name, data in (("zm", zm0), ("zp", zp0), ("zq", zq0),
                       ("zr", zr0), ("zz", zz0)):
        arrays[name].write_to(memory, data)

    e_za, e_zb, e_zu, e_zv, e_zr, e_zz = _reference_18(zm0, zp0, zq0, zr0, zz0, n)

    base = {name: spec.base for name, spec in arrays.items()}
    up = cols  # one row in the flattened [7][n+1] layout

    b = ProgramBuilder("livermore-18")
    b.si(S(7), 2.0, comment="Newton constant")
    b.si(S(1), _K18_S)
    b.smove(T(1), S(1), comment="s")
    b.si(S(1), _K18_T)
    b.smove(T(0), S(1), comment="t")

    def phase1():
        # za[k][j]
        b.loads(S(1), A(2), base["zp"] + up - 1)
        b.loads(S(2), A(2), base["zq"] + up - 1)
        b.fadd(S(1), S(1), S(2))
        b.loads(S(2), A(2), base["zp"] - 1)
        b.fsub(S(1), S(1), S(2))
        b.loads(S(2), A(2), base["zq"] - 1)
        b.fsub(S(1), S(1), S(2))
        b.loads(S(2), A(2), base["zr"])
        b.loads(S(3), A(2), base["zr"] - up)
        b.fadd(S(2), S(2), S(3))
        b.fmul(S(1), S(1), S(2), comment="za numerator")
        b.loads(S(2), A(2), base["zm"] - 1)
        b.loads(S(3), A(2), base["zm"] + up - 1)
        b.fadd(S(2), S(2), S(3), comment="za denominator")
        _emit_divide(b, S(4), S(1), S(2), S(5), S(7))
        b.stores(S(4), A(2), base["za"])
        # zb[k][j]
        b.loads(S(1), A(2), base["zp"] - 1)
        b.loads(S(2), A(2), base["zq"] - 1)
        b.fadd(S(1), S(1), S(2))
        b.loads(S(2), A(2), base["zp"])
        b.fsub(S(1), S(1), S(2))
        b.loads(S(2), A(2), base["zq"])
        b.fsub(S(1), S(1), S(2))
        b.loads(S(2), A(2), base["zr"])
        b.loads(S(3), A(2), base["zr"] - 1)
        b.fadd(S(2), S(2), S(3))
        b.fmul(S(1), S(1), S(2))
        b.loads(S(2), A(2), base["zm"])
        b.loads(S(3), A(2), base["zm"] - 1)
        b.fadd(S(2), S(2), S(3))
        _emit_divide(b, S(4), S(1), S(2), S(5), S(7))
        b.stores(S(4), A(2), base["zb"])

    def _stencil(field: str, out: str) -> None:
        b.loads(S(1), A(2), base[field], comment=f"{field}[k][j]")
        b.loads(S(2), A(2), base[field] + 1)
        b.fsub(S(2), S(1), S(2))
        b.loads(S(3), A(2), base["za"])
        b.fmul(S(2), S(3), S(2), comment="accumulator")
        b.loads(S(3), A(2), base[field] - 1)
        b.fsub(S(3), S(1), S(3))
        b.loads(S(4), A(2), base["za"] - 1)
        b.fmul(S(3), S(4), S(3))
        b.fsub(S(2), S(2), S(3))
        b.loads(S(3), A(2), base[field] - up)
        b.fsub(S(3), S(1), S(3))
        b.loads(S(4), A(2), base["zb"])
        b.fmul(S(3), S(4), S(3))
        b.fsub(S(2), S(2), S(3))
        b.loads(S(3), A(2), base[field] + up)
        b.fsub(S(3), S(1), S(3))
        b.loads(S(4), A(2), base["zb"] + up)
        b.fmul(S(3), S(4), S(3))
        b.fadd(S(2), S(2), S(3))
        b.smove(S(3), T(1))
        b.fmul(S(2), S(3), S(2), comment="s * stencil")
        b.loads(S(3), A(2), base[out])
        b.fadd(S(3), S(3), S(2))
        b.stores(S(3), A(2), base[out])

    def phase2():
        _stencil("zz", "zu")
        _stencil("zr", "zv")

    def phase3():
        b.loads(S(1), A(2), base["zu"])
        b.smove(S(2), T(0))
        b.fmul(S(1), S(2), S(1))
        b.loads(S(3), A(2), base["zr"])
        b.fadd(S(3), S(3), S(1))
        b.stores(S(3), A(2), base["zr"])
        b.loads(S(1), A(2), base["zv"])
        b.smove(S(2), T(0))
        b.fmul(S(1), S(2), S(1))
        b.loads(S(3), A(2), base["zz"])
        b.fadd(S(3), S(3), S(1))
        b.stores(S(3), A(2), base["zz"])

    _k18_nest(b, "p1", n, phase1)
    _k18_nest(b, "p2", n, phase2)
    _k18_nest(b, "p3", n, phase3)

    return KernelInstance(
        number=18,
        name="2-D explicit hydrodynamics (extended)",
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={
            "za": e_za, "zb": e_zb, "zu": e_zu,
            "zv": e_zv, "zr": e_zr, "zz": e_zz,
        },
        checked_arrays=("za", "zb", "zu", "zv", "zr", "zz"),
    )


# ----------------------------------------------------------------------
# kernel 19: general linear recurrence equations (forward + backward)
# ----------------------------------------------------------------------


def _reference_19(sa, sb, n):
    b5 = np.zeros(n)
    stb5 = 0.5
    for k in range(n):
        b5[k] = sa[k] + stb5 * sb[k]
        stb5 = b5[k] - stb5
    for k in range(n - 1, -1, -1):
        b5[k] = sa[k] + stb5 * sb[k]
        stb5 = b5[k] - stb5
    return b5


def _build_19(n: int) -> KernelInstance:
    if n < 1:
        raise ValueError(f"kernel 19 needs n >= 1, got {n}")
    layout = Layout()
    sa = layout.array("sa", n)
    sb = layout.array("sb", n)
    b5 = layout.array("b5", n)

    rng = kernel_rng(19, n)
    sa0 = rng.uniform(0.1, 1.0, n)
    sb0 = rng.uniform(-0.5, 0.5, n)

    memory = layout.memory()
    sa.write_to(memory, sa0)
    sb.write_to(memory, sb0)

    b = ProgramBuilder("livermore-19")
    b.si(S(1), 0.5, comment="stb5")
    # forward pass
    b.ai(A(1), 0)
    b.ai(A(0), n)
    b.label("fwd")
    b.loads(S(2), A(1), sb.base)
    b.fmul(S(2), S(1), S(2), comment="stb5*sb[k]")
    b.loads(S(3), A(1), sa.base)
    b.fadd(S(3), S(3), S(2), comment="b5[k]")
    b.stores(S(3), A(1), b5.base)
    b.fsub(S(1), S(3), S(1), comment="stb5 = b5[k] - stb5")
    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("fwd")
    # backward pass
    b.ai(A(1), n - 1)
    b.ai(A(0), n)
    b.label("bwd")
    b.loads(S(2), A(1), sb.base)
    b.fmul(S(2), S(1), S(2))
    b.loads(S(3), A(1), sa.base)
    b.fadd(S(3), S(3), S(2))
    b.stores(S(3), A(1), b5.base)
    b.fsub(S(1), S(3), S(1))
    b.asub(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("bwd")

    return KernelInstance(
        number=19,
        name="general linear recurrence (extended)",
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"b5": _reference_19(sa0, sb0, n)},
        checked_arrays=("b5",),
    )


# ----------------------------------------------------------------------
# kernel 21: matrix * matrix product  px[i][j] += vy[i][k]*cx[k][j]
# ----------------------------------------------------------------------

_K21_INNER = 25  # the LFK fixes the shared dimension at 25


def _reference_21(px, vy, cx, n):
    out = px.copy()
    for i in range(n):
        for j in range(n):
            acc = out[i, j]
            for k in range(_K21_INNER):
                acc += vy[i, k] * cx[k, j]
            out[i, j] = acc
    return out


def _build_21(n: int) -> KernelInstance:
    if n < 1:
        raise ValueError(f"kernel 21 needs n >= 1, got {n}")
    layout = Layout()
    px = layout.array("px", n, n)
    vy = layout.array("vy", n, _K21_INNER)
    cx = layout.array("cx", _K21_INNER, n)

    rng = kernel_rng(21, n)
    px0 = rng.uniform(0.0, 0.1, (n, n))
    vy0 = rng.uniform(0.0, 0.2, (n, _K21_INNER))
    cx0 = rng.uniform(0.0, 0.2, (_K21_INNER, n))

    memory = layout.memory()
    px.write_to(memory, px0)
    vy.write_to(memory, vy0)
    cx.write_to(memory, cx0)

    b = ProgramBuilder("livermore-21")
    # A3 = px element address offset (i*n + j); A4 = i*25 (vy row);
    # the j loop rebuilds A5 = cx column walker.
    b.ai(A(3), 0, comment="px offset")
    b.ai(A(4), 0, comment="vy row base")
    b.ai(A(6), n, comment="outer (i) counter")
    b.label("rows")
    b.ai(A(7), n, comment="middle (j) counter")
    b.ai(A(5), 0, comment="cx column index = j")
    b.label("cols")
    b.loads(S(1), A(3), px.base, comment="accumulator = px[i][j]")
    b.amove(A(1), A(4), comment="vy walker")
    b.amove(A(2), A(5), comment="cx walker (steps by n)")
    b.ai(A(0), _K21_INNER)
    b.label("inner")
    b.loads(S(2), A(1), vy.base)
    b.loads(S(3), A(2), cx.base)
    b.fmul(S(2), S(2), S(3))
    b.fadd(S(1), S(1), S(2))
    b.aadd(A(1), A(1), 1)
    b.aadd(A(2), A(2), n)
    b.asub(A(0), A(0), 1)
    b.jan("inner")
    b.stores(S(1), A(3), px.base)
    b.aadd(A(3), A(3), 1)
    b.aadd(A(5), A(5), 1)
    b.asub(A(7), A(7), 1)
    b.amove(A(0), A(7))
    b.jan("cols")
    b.aadd(A(4), A(4), _K21_INNER)
    b.asub(A(6), A(6), 1)
    b.amove(A(0), A(6))
    b.jan("rows")

    return KernelInstance(
        number=21,
        name="matrix product (extended)",
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"px": _reference_21(px0, vy0, cx0, n)},
        checked_arrays=("px",),
    )


# ----------------------------------------------------------------------
# kernel 24: first minimum  m = argmin(x)
# ----------------------------------------------------------------------

#: Input quantum: data are integer multiples of 1/_K24_SCALE, so scaled
#: differences are integers and the FIX-based sign test is exact.
_K24_SCALE = 1024


def _reference_24(x, n):
    m = 0
    for k in range(1, n):
        if x[k] < x[m]:
            m = k
    return m


def _build_24(n: int) -> KernelInstance:
    if n < 2:
        raise ValueError(f"kernel 24 needs n >= 2, got {n}")
    layout = Layout()
    x = layout.array("x", n)
    m_slot = layout.scalar_slot("m")

    rng = kernel_rng(24, n)
    # Quantised data: distinct comparisons scale to integers >= 1, so the
    # sign test through FIX is exact (see _K24_SCALE).
    x0 = rng.integers(0, 4 * _K24_SCALE, n).astype(np.float64) / _K24_SCALE

    memory = layout.memory()
    x.write_to(memory, x0)

    b = ProgramBuilder("livermore-24")
    b.si(S(3), float(_K24_SCALE), comment="comparison scale")
    b.ai(A(2), 0, comment="m (argmin so far)")
    b.ai(A(1), 0)
    b.loads(S(1), A(1), x.base, comment="current minimum x[m]")
    b.ai(A(1), 1, comment="k")
    b.ai(A(0), n - 1)
    b.label("loop")
    b.loads(S(2), A(1), x.base)
    b.fsub(S(4), S(2), S(1), comment="x[k] - x[m]")
    b.fmul(S(4), S(4), S(3), comment="scale so FIX keeps the sign")
    b.fix(A(0), S(4))
    b.jam("newmin", comment="x[k] < x[m]")
    b.jmp("next")
    b.label("newmin")
    b.amove(A(2), A(1), comment="m = k")
    b.smove(S(1), S(2), comment="new minimum value")
    b.label("next")
    b.aadd(A(1), A(1), 1)
    # Recompute the counter: A0 was consumed by the comparison.
    b.ai(A(7), n)
    b.asub(A(0), A(7), A(1))
    b.jan("loop")
    b.storea(A(2), A(1), m_slot.base - n, comment="store argmin")

    expected_m = np.array([float(_reference_24(x0, n))])

    return KernelInstance(
        number=24,
        name="first minimum (extended)",
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"m": expected_m},
        checked_arrays=("m",),
    )


_BUILDERS = {18: _build_18, 19: _build_19, 21: _build_21, 24: _build_24}
