"""Livermore Loop 10 -- difference predictors (vectorizable).

C form::

    for (i = 0; i < n; i++) {
        ar        = cx[i][4];
        br        = ar - px[i][4];   px[i][4]  = ar;
        cr        = br - px[i][5];   px[i][5]  = br;
        ar        = cr - px[i][6];   px[i][6]  = cr;
        br        = ar - px[i][7];   px[i][7]  = ar;
        cr        = br - px[i][8];   px[i][8]  = br;
        ar        = cr - px[i][9];   px[i][9]  = cr;
        br        = ar - px[i][10];  px[i][10] = ar;
        cr        = br - px[i][11];  px[i][11] = br;
        px[i][13] = cr - px[i][12];
        px[i][12] = cr;
    }

Within a row the subtract chain is strictly serial, but rows are
independent of each other -- a vectorizable loop with a long per-element
dependence chain.  The three rotating temporaries ``ar``/``br``/``cr``
map onto three S registers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 10
NAME = "difference predictors"

_COLS = 14


def _reference(px0: np.ndarray, cx0: np.ndarray, n: int) -> np.ndarray:
    px = px0.copy()
    for i in range(n):
        ar = cx0[i, 4]
        br = ar - px[i, 4]
        px[i, 4] = ar
        cr = br - px[i, 5]
        px[i, 5] = br
        ar = cr - px[i, 6]
        px[i, 6] = cr
        br = ar - px[i, 7]
        px[i, 7] = ar
        cr = br - px[i, 8]
        px[i, 8] = br
        ar = cr - px[i, 9]
        px[i, 9] = cr
        br = ar - px[i, 10]
        px[i, 10] = ar
        cr = br - px[i, 11]
        px[i, 11] = br
        px[i, 13] = cr - px[i, 12]
        px[i, 12] = cr
    return px


def build(n: Optional[int] = None) -> KernelInstance:
    n = default_size(NUMBER) if n is None else n
    if n < 1:
        raise ValueError(f"loop 10 needs n >= 1, got {n}")

    layout = Layout()
    px = layout.array("px", n, _COLS)
    cx = layout.array("cx", n, _COLS)

    rng = kernel_rng(NUMBER, n)
    px0 = rng.uniform(0.1, 1.0, (n, _COLS))
    cx0 = rng.uniform(0.1, 1.0, (n, _COLS))

    memory = layout.memory()
    px.write_to(memory, px0)
    cx.write_to(memory, cx0)

    expected_px = _reference(px0, cx0, n)

    b = ProgramBuilder("livermore-10")
    b.ai(A(1), 0, comment="row base = i*14")
    b.ai(A(0), n)
    b.label("loop")
    b.loads(S(1), A(1), cx.base + 4, comment="ar = cx[i][4]")
    # Rotate ar/br/cr through S1/S2/S3 down the difference chain.
    regs = [S(1), S(2), S(3)]
    for step, col in enumerate(range(4, 12)):
        prev = regs[step % 3]
        cur = regs[(step + 1) % 3]
        b.loads(cur, A(1), px.base + col)
        b.fsub(cur, prev, cur, comment=f"chain step at column {col}")
        b.stores(prev, A(1), px.base + col)
    last = regs[(8 + 0) % 3]  # the final 'cr'
    b.loads(S(1), A(1), px.base + 12)
    b.fsub(S(1), last, S(1))
    b.stores(S(1), A(1), px.base + 13)
    b.stores(last, A(1), px.base + 12)
    b.aadd(A(1), A(1), _COLS)
    b.asub(A(0), A(0), 1)
    b.jan("loop")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"px": expected_px},
        checked_arrays=("px",),
    )
