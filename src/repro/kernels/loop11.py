"""Livermore Loop 11 -- first sum (scalar).

C form::

    x[0] = y[0];
    for (k = 1; k < n; k++)
        x[k] = x[k-1] + y[k];

A prefix-sum recurrence: one floating add per iteration on the critical
path.  The running sum stays register-resident.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..asm import ProgramBuilder
from ..isa import A, S
from .common import KernelInstance, Layout, kernel_rng
from .sizes import default_size

NUMBER = 11
NAME = "first sum"


def build(n: Optional[int] = None) -> KernelInstance:
    n = default_size(NUMBER) if n is None else n
    if n < 2:
        raise ValueError(f"loop 11 needs n >= 2, got {n}")

    layout = Layout()
    x = layout.array("x", n)
    y = layout.array("y", n)

    rng = kernel_rng(NUMBER, n)
    y0 = rng.uniform(0.1, 1.0, n)

    memory = layout.memory()
    y.write_to(memory, y0)

    expected_x = np.cumsum(y0)

    b = ProgramBuilder("livermore-11")
    b.ai(A(1), 0)
    b.loads(S(1), A(1), y.base, comment="running sum = y[0]")
    b.stores(S(1), A(1), x.base, comment="x[0] = y[0]")
    b.ai(A(1), 1, comment="k")
    b.ai(A(0), n - 1)
    b.label("loop")
    b.loads(S(2), A(1), y.base)
    b.fadd(S(1), S(1), S(2), comment="x[k] = x[k-1] + y[k]")
    b.stores(S(1), A(1), x.base)
    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("loop")

    return KernelInstance(
        number=NUMBER,
        name=NAME,
        n=n,
        program=b.build(),
        initial_memory=memory,
        arrays=layout.arrays,
        expected={"x": expected_x},
        checked_arrays=("x",),
    )
