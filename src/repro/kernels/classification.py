"""The paper's scalar / vectorizable split of the 14 Livermore Loops.

Section 2: "The programs were divided into the 5 scalar loops, loops 5, 6,
11, 13 and 14 and the 9 vectorizable loops, loops 1, 2, 3, 4, 7, 8, 9, 10
and 12."  All loops are *executed* as scalar code in every experiment; the
classification only controls how results are grouped and averaged.
"""

from __future__ import annotations

import enum
from typing import Tuple


class LoopClass(enum.Enum):
    """Workload class used to group results, exactly as in the paper."""

    SCALAR = "scalar"
    VECTORIZABLE = "vectorizable"


#: Loops with little inherent parallelism (recurrences, PIC codes).
SCALAR_LOOPS: Tuple[int, ...] = (5, 6, 11, 13, 14)

#: Loops a vectorising compiler could vectorise (independent iterations).
VECTORIZABLE_LOOPS: Tuple[int, ...] = (1, 2, 3, 4, 7, 8, 9, 10, 12)

#: All 14 Lawrence Livermore Loops, in kernel order.
ALL_LOOPS: Tuple[int, ...] = tuple(sorted(SCALAR_LOOPS + VECTORIZABLE_LOOPS))


def classify(loop_number: int) -> LoopClass:
    """The paper's class of Livermore loop *loop_number*."""
    if loop_number in SCALAR_LOOPS:
        return LoopClass.SCALAR
    if loop_number in VECTORIZABLE_LOOPS:
        return LoopClass.VECTORIZABLE
    raise ValueError(f"no Livermore loop numbered {loop_number}")


def loops_in_class(loop_class: LoopClass) -> Tuple[int, ...]:
    """Loop numbers belonging to *loop_class*."""
    if loop_class is LoopClass.SCALAR:
        return SCALAR_LOOPS
    return VECTORIZABLE_LOOPS
