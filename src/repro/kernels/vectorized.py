"""Vectorised variants of the vectorizable kernels (extension).

The paper's machine is CRAY-like and *has* a vector unit ("8 64-element
vector registers"), but every experiment runs scalar code -- the whole
point is scalar issue-rate limits.  These variants compile three of the
"vectorizable" loops (1, 7, 12 -- the purely elementwise ones) for the
vector unit, strip-mined into <=64-element pieces with the remainder strip
first, CFT-style.  They reuse the scalar kernels' memory images and
reference expectations, so the same verification machinery checks them.

Timing note: only the single-issue machines (Simple and the scoreboard
family, which model element streaming and chaining) accept vector traces.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..asm import ProgramBuilder
from ..isa import A, S, V, VECTOR_LENGTH_MAX
from . import loop01, loop07, loop12
from .common import KernelInstance

#: Loops with vectorised encodings.
VECTORIZED_LOOPS: Tuple[int, ...] = (1, 7, 12)


def _strips(n: int) -> Tuple[int, int]:
    """(first strip length, strip count) for an n-element loop."""
    remainder = n % VECTOR_LENGTH_MAX
    first = remainder if remainder else min(n, VECTOR_LENGTH_MAX)
    count = (n - first) // VECTOR_LENGTH_MAX + 1
    return first, count


def _strip_prologue(b: ProgramBuilder, n: int) -> None:
    """Shared strip-mine control: A1 = element offset, A6 = strip length."""
    first, count = _strips(n)
    b.ai(A(1), 0, comment="element offset")
    b.ai(A(6), first, comment="first (remainder) strip length")
    b.ai(A(0), count, comment="strip count")
    b.label("strip")
    b.vsetl(A(6), comment="VL = current strip length")


def _strip_epilogue(b: ProgramBuilder) -> None:
    b.aadd(A(1), A(1), A(6), comment="offset += strip length")
    b.ai(A(6), VECTOR_LENGTH_MAX, comment="later strips are full")
    b.asub(A(0), A(0), 1)
    b.jan("strip")


def _vload_at(b: ProgramBuilder, dest, base: int, comment: str = "") -> None:
    """Load a unit-stride vector from ``base + offset``."""
    b.aadd(A(2), A(1), base)
    b.vload(dest, A(2), 1, comment=comment)


def build_vectorized(number: int, n: Optional[int] = None) -> KernelInstance:
    """Vectorised variant of Livermore loop *number* (1, 7 or 12)."""
    try:
        builder = _BUILDERS[number]
    except KeyError:
        raise ValueError(
            f"no vectorised encoding for loop {number}; "
            f"available: {VECTORIZED_LOOPS}"
        ) from None
    return builder(n)


# ----------------------------------------------------------------------
# loop 1: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
# ----------------------------------------------------------------------


def _build_loop01(n: Optional[int]) -> KernelInstance:
    scalar = loop01.build(n)
    x, y, z = (scalar.arrays[a] for a in ("x", "y", "z"))

    b = ProgramBuilder("livermore-01-vector")
    b.si(S(1), loop01._Q, comment="q")
    b.si(S(2), loop01._R, comment="r")
    b.si(S(3), loop01._T, comment="t")
    _strip_prologue(b, scalar.n)
    _vload_at(b, V(1), z.base + 10, "z[k+10]")
    _vload_at(b, V(2), z.base + 11, "z[k+11]")
    b.vsmul(V(1), S(2), V(1), comment="r*z[k+10]")
    b.vsmul(V(2), S(3), V(2), comment="t*z[k+11]")
    b.vvadd(V(1), V(1), V(2))
    _vload_at(b, V(3), y.base, "y[k]")
    b.vvmul(V(1), V(3), V(1))
    b.vsadd(V(1), S(1), V(1), comment="q + ...")
    b.aadd(A(2), A(1), x.base)
    b.vstore(V(1), A(2), 1, comment="x[k]")
    _strip_epilogue(b)

    return dataclasses.replace(scalar, program=b.build())


# ----------------------------------------------------------------------
# loop 7: equation of state (same association order as the scalar kernel)
# ----------------------------------------------------------------------


def _build_loop07(n: Optional[int]) -> KernelInstance:
    scalar = loop07.build(n)
    x, y, z, u = (scalar.arrays[a] for a in ("x", "y", "z", "u"))

    b = ProgramBuilder("livermore-07-vector")
    b.si(S(1), loop07._R, comment="r")
    b.si(S(2), loop07._T, comment="t")
    b.si(S(3), loop07._Q, comment="q")
    _strip_prologue(b, scalar.n)
    # term1 = u[k] + r*(z[k] + r*y[k])        -> V1
    _vload_at(b, V(1), y.base, "y[k]")
    b.vsmul(V(1), S(1), V(1))
    _vload_at(b, V(2), z.base, "z[k]")
    b.vvadd(V(1), V(2), V(1))
    b.vsmul(V(1), S(1), V(1))
    _vload_at(b, V(2), u.base, "u[k]")
    b.vvadd(V(1), V(2), V(1), comment="term1")
    # term2 = u[k+3] + r*(u[k+2] + r*u[k+1])  -> V2
    _vload_at(b, V(2), u.base + 1, "u[k+1]")
    b.vsmul(V(2), S(1), V(2))
    _vload_at(b, V(3), u.base + 2, "u[k+2]")
    b.vvadd(V(2), V(3), V(2))
    b.vsmul(V(2), S(1), V(2))
    _vload_at(b, V(3), u.base + 3, "u[k+3]")
    b.vvadd(V(2), V(3), V(2), comment="term2")
    # term3 = u[k+6] + q*(u[k+5] + q*u[k+4])  -> V3
    _vload_at(b, V(3), u.base + 4, "u[k+4]")
    b.vsmul(V(3), S(3), V(3))
    _vload_at(b, V(4), u.base + 5, "u[k+5]")
    b.vvadd(V(3), V(4), V(3))
    b.vsmul(V(3), S(3), V(3))
    _vload_at(b, V(4), u.base + 6, "u[k+6]")
    b.vvadd(V(3), V(4), V(3), comment="term3")
    # x[k] = term1 + t*(term2 + t*term3)
    b.vsmul(V(3), S(2), V(3))
    b.vvadd(V(2), V(2), V(3))
    b.vsmul(V(2), S(2), V(2))
    b.vvadd(V(1), V(1), V(2))
    b.aadd(A(2), A(1), x.base)
    b.vstore(V(1), A(2), 1, comment="x[k]")
    _strip_epilogue(b)

    return dataclasses.replace(scalar, program=b.build())


# ----------------------------------------------------------------------
# loop 12: x[k] = y[k+1] - y[k]
# ----------------------------------------------------------------------


def _build_loop12(n: Optional[int]) -> KernelInstance:
    scalar = loop12.build(n)
    x, y = (scalar.arrays[a] for a in ("x", "y"))

    b = ProgramBuilder("livermore-12-vector")
    _strip_prologue(b, scalar.n)
    _vload_at(b, V(1), y.base + 1, "y[k+1]")
    _vload_at(b, V(2), y.base, "y[k]")
    b.vvsub(V(1), V(1), V(2))
    b.aadd(A(2), A(1), x.base)
    b.vstore(V(1), A(2), 1, comment="x[k]")
    _strip_epilogue(b)

    return dataclasses.replace(scalar, program=b.build())


_BUILDERS = {1: _build_loop01, 7: _build_loop07, 12: _build_loop12}
