"""Exact verification of screened candidates via the batch fast path.

The screen is a closed-form approximation; this stage replays the few
candidates that matter -- predicted frontier, verification band, audit
sample -- through the real simulators
(:func:`repro.harness.engine.run_source_sweep`, which sweeps every spec
over each source trace with the batch fast-path backend) and reports how
good the approximation was: per-candidate relative error, audit-sample
mean/max error, and frontier recall against an exhaustively simulated
grid when one is available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..harness.engine import SourceSweepRun, run_source_sweep
from ..harness.progress import ProgressCallback
from ..trace import DiskCache
from .screen import pareto_frontier

__all__ = ["ErrorStats", "frontier_recall", "simulate_specs"]


def simulate_specs(
    specs: Sequence[str],
    sources: Sequence[str],
    *,
    config: str = "M11BR5",
    workers: Optional[int] = None,
    cache: Optional[DiskCache] = None,
    backend: str = "auto",
    label: str = "explore",
    progress: Optional[ProgressCallback] = None,
) -> "tuple[Dict[str, float], SourceSweepRun]":
    """Simulate every spec over every source; harmonic-mean rates.

    Returns ``(spec -> aggregate issue rate, the sweep run)``.  The
    aggregation matches :func:`repro.explore.model.estimate_rates`, so
    predicted and simulated numbers are directly comparable.
    """
    run = run_source_sweep(
        list(specs), list(sources),
        config=config, workers=workers, cache=cache, backend=backend,
        label=label, progress=progress,
    )
    inverse: Dict[str, float] = {spec: 0.0 for spec in specs}
    for outcome in run.outcomes:
        inverse[outcome.machine] += 1.0 / outcome.rate
    rates = {
        spec: len(sources) / total for spec, total in inverse.items()
    }
    return rates, run


@dataclass(frozen=True)
class ErrorStats:
    """Model-vs-simulation error over one set of candidates."""

    count: int
    mean_relative: float
    max_relative: float

    @classmethod
    def from_pairs(
        cls, predicted: Sequence[float], simulated: Sequence[float]
    ) -> "ErrorStats":
        if not predicted:
            return cls(count=0, mean_relative=0.0, max_relative=0.0)
        errors = [
            abs(p - s) / s for p, s in zip(predicted, simulated)
        ]
        return cls(
            count=len(errors),
            mean_relative=sum(errors) / len(errors),
            max_relative=max(errors),
        )

    def to_payload(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_relative": self.mean_relative,
            "max_relative": self.max_relative,
        }


def frontier_recall(
    exhaustive_costs: Mapping[int, int],
    exhaustive_rates: Mapping[int, float],
    selected: Sequence[int],
) -> "tuple[float, List[int]]":
    """Fraction of the *true* frontier the screen put up for simulation.

    *exhaustive_costs*/*exhaustive_rates* map candidate index to its
    cost and exactly simulated rate; the true frontier is the Pareto
    frontier of those.  Recall is the fraction of true-frontier indices
    present in *selected* (the screen's frontier plus band).  Returns
    ``(recall, true frontier indices)``.
    """
    indices = sorted(exhaustive_costs)
    costs = np.array([exhaustive_costs[i] for i in indices], dtype=np.int64)
    rates = np.array(
        [exhaustive_rates[i] for i in indices], dtype=np.float64
    )
    true_frontier = [indices[i] for i in pareto_frontier(costs, rates)]
    if not true_frontier:
        return 1.0, true_frontier
    chosen = set(int(i) for i in selected)
    hit = sum(1 for index in true_frontier if index in chosen)
    return hit / len(true_frontier), true_frontier
