"""Declarative design spaces over the spec-grammar knobs.

A space spec is a ``;``-separated list of ``key=values`` clauses::

    family=inorder,ooo,ruu;width=1..8;window=8..64:8;bus=nbus,1bus;fu=1,2

Values are comma lists; integer axes also accept ``a..b[:step]`` ranges
(inclusive).  Axes:

``family``
    Issue disciplines to enumerate: ``inorder``, ``ooo``, ``ruu``.
``width``
    Issue-unit counts (every family).
``window``
    RUU sizes.  Applies to the ``ruu`` family only; other families
    ignore it (they have no instruction window knob).
``bus``
    Result-bus structures: ``nbus``, ``1bus``, ``xbar``.  The RUU
    machine rejects ``xbar`` by design, so ruu candidates silently skip
    it.
``fu``
    Functional-unit duplication factors (``ruu:<u>:<r>:fu=<k>``).
    Applies to the ``ruu`` family only.
``config``
    Machine-configuration name (``M11BR5`` etc.); exactly one.

The cross product is materialised as a :class:`CandidateGrid` of
parallel NumPy arrays -- the representation the vectorised screen
(:mod:`repro.explore.screen`) scores in one shot -- with spec strings
generated lazily for only the candidates that go on to exact
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.config import config_by_name

__all__ = [
    "CandidateGrid",
    "DesignSpace",
    "FAMILIES",
    "BUSES",
    "SpaceError",
    "expand_space",
    "parse_space",
]

#: Enumerable issue disciplines, in candidate-grid index order.
FAMILIES: Tuple[str, ...] = ("inorder", "ooo", "ruu")

#: Result-bus structures, in candidate-grid index order.
BUSES: Tuple[str, ...] = ("nbus", "1bus", "xbar")

#: Cost-model weights (documented in docs/explore.md): a dimensionless
#: hardware budget combining decoder complexity, window storage, unit
#: duplication and result-bus wiring.
FAMILY_BASE_COST = {"inorder": 2, "ooo": 6, "ruu": 10}
WIDTH_COST = 4
FU_COPY_COST = 8
BUS_COST = {"nbus": 2, "1bus": 0, "xbar": 3}  # per issue unit; 1bus flat
ONE_BUS_COST = 2

_MAX_CANDIDATES = 4_000_000


class SpaceError(ValueError):
    """An unrecognised or malformed design-space specification.

    Mirrors :class:`~repro.core.registry.UnknownSpecError`: carries the
    offending spec and the reason so the CLI can print an actionable
    message and exit 2.
    """

    def __init__(self, spec: str, reason: str) -> None:
        self.spec = spec
        self.reason = reason
        super().__init__(f"bad space spec {spec!r}: {reason}")


def _parse_int_values(spec: str, key: str, text: str) -> Tuple[int, ...]:
    values: List[int] = []
    for token in text.split(","):
        token = token.strip()
        if ".." in token:
            lo_text, _, rest = token.partition("..")
            hi_text, _, step_text = rest.partition(":")
            try:
                lo = int(lo_text)
                hi = int(hi_text)
                step = int(step_text) if step_text else 1
            except ValueError:
                raise SpaceError(
                    spec, f"{key}: bad range {token!r} (want a..b[:step])"
                ) from None
            if step < 1:
                raise SpaceError(spec, f"{key}: step must be >= 1")
            if hi < lo:
                raise SpaceError(spec, f"{key}: empty range {token!r}")
            values.extend(range(lo, hi + 1, step))
        else:
            try:
                values.append(int(token))
            except ValueError:
                raise SpaceError(
                    spec, f"{key}: bad integer {token!r}"
                ) from None
    if not values:
        raise SpaceError(spec, f"{key}: no values")
    if min(values) < 1:
        raise SpaceError(spec, f"{key}: values must be >= 1")
    return tuple(sorted(set(values)))


def _parse_name_values(
    spec: str, key: str, text: str, valid: Tuple[str, ...]
) -> Tuple[str, ...]:
    values = []
    for token in text.split(","):
        token = token.strip().lower()
        if token not in valid:
            raise SpaceError(
                spec, f"{key}: unknown value {token!r}; accepted: {valid}"
            )
        if token not in values:
            values.append(token)
    if not values:
        raise SpaceError(spec, f"{key}: no values")
    return tuple(sorted(values))


@dataclass(frozen=True)
class DesignSpace:
    """A parsed space spec: the per-axis value sets.

    ``window`` and ``fu`` apply to the ``ruu`` family only; other
    families contribute one candidate per (width, bus) regardless.
    """

    families: Tuple[str, ...]
    widths: Tuple[int, ...]
    windows: Tuple[int, ...]
    buses: Tuple[str, ...]
    fu_counts: Tuple[int, ...]
    config: str

    @property
    def size(self) -> int:
        """Candidate count the space expands to."""
        total = 0
        for family in self.families:
            if family == "ruu":
                buses = [b for b in self.buses if b != "xbar"]
                total += (
                    len(self.widths) * len(self.windows)
                    * len(buses) * len(self.fu_counts)
                )
            else:
                total += len(self.widths) * len(self.buses)
        return total

    def to_key(self) -> Dict[str, Any]:
        """The space's identity for content-addressed caching."""
        return {
            "families": list(self.families),
            "widths": list(self.widths),
            "windows": list(self.windows),
            "buses": list(self.buses),
            "fu": list(self.fu_counts),
            "config": self.config,
        }


def parse_space(spec: str, *, default_config: str = "M11BR5") -> DesignSpace:
    """Parse a space spec string (see module docstring).

    Every malformed input raises :class:`SpaceError` (a ``ValueError``
    subclass), never a bare ``KeyError``/``ValueError``.  A ``config=``
    axis in the spec wins over *default_config*.
    """
    values: Dict[str, str] = {}
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        key, sep, text = clause.partition("=")
        key = key.strip().lower()
        if not sep:
            raise SpaceError(spec, f"clause {clause!r} is not key=values")
        if key in values:
            raise SpaceError(spec, f"duplicate axis {key!r}")
        if key not in (
            "family", "width", "window", "bus", "fu", "config"
        ):
            raise SpaceError(spec, f"unknown axis {key!r}")
        values[key] = text.strip()
    if "family" not in values:
        raise SpaceError(spec, "a family= axis is required")
    families = _parse_name_values(spec, "family", values["family"], FAMILIES)
    widths = (
        _parse_int_values(spec, "width", values["width"])
        if "width" in values else (1,)
    )
    windows = (
        _parse_int_values(spec, "window", values["window"])
        if "window" in values else (16,)
    )
    buses = (
        _parse_name_values(spec, "bus", values["bus"], BUSES)
        if "bus" in values else ("nbus",)
    )
    fu_counts = (
        _parse_int_values(spec, "fu", values["fu"])
        if "fu" in values else (1,)
    )
    config_name = values.get("config", default_config).upper()
    try:
        config_by_name(config_name)
    except ValueError as exc:
        raise SpaceError(spec, str(exc)) from None
    if "ruu" in families and all(b == "xbar" for b in buses):
        # Not fatal for mixed spaces; a pure-ruu space with only xbar
        # would expand to nothing, which is.
        if families == ("ruu",):
            raise SpaceError(spec, "ruu rejects xbar; no candidates")
    space = DesignSpace(
        families=families,
        widths=widths,
        windows=windows,
        buses=buses,
        fu_counts=fu_counts,
        config=config_name,
    )
    if space.size == 0:
        raise SpaceError(spec, "space expands to no candidates")
    if space.size > _MAX_CANDIDATES:
        raise SpaceError(
            spec,
            f"space expands to {space.size} candidates "
            f"(cap {_MAX_CANDIDATES})",
        )
    return space


@dataclass(frozen=True)
class CandidateGrid:
    """The expanded space: one row per candidate, column per knob.

    ``family`` and ``bus`` index :data:`FAMILIES` / :data:`BUSES`;
    ``window`` and ``fu`` are 0/1 for families without those knobs.
    """

    family: np.ndarray  # int8 index into FAMILIES
    width: np.ndarray   # int32
    window: np.ndarray  # int32 (0 for families without a window)
    bus: np.ndarray     # int8 index into BUSES
    fu: np.ndarray      # int32 (1 for families without duplication)
    config: str

    @property
    def n(self) -> int:
        return len(self.family)

    def machine_spec(self, index: int) -> str:
        """The registry spec string of candidate *index*."""
        family = FAMILIES[self.family[index]]
        bus = BUSES[self.bus[index]]
        width = int(self.width[index])
        if family == "ruu":
            spec = f"ruu:{width}:{int(self.window[index])}:{bus}"
            copies = int(self.fu[index])
            if copies > 1:
                spec += f":fu={copies}"
            return spec
        return f"{family}:{width}:{bus}"

    def costs(self) -> np.ndarray:
        """The hardware-budget cost of every candidate (vectorised).

        cost = family base + 4*width + window (ruu) + 8*(fu-1)
             + bus wiring (nbus: 2/unit, xbar: 3/unit, 1bus: flat 2).
        """
        base = np.array(
            [FAMILY_BASE_COST[f] for f in FAMILIES], dtype=np.int64
        )[self.family]
        bus_per_unit = np.array(
            [BUS_COST[b] for b in BUSES], dtype=np.int64
        )[self.bus]
        cost = (
            base
            + WIDTH_COST * self.width.astype(np.int64)
            + self.window.astype(np.int64)
            + FU_COPY_COST * (self.fu.astype(np.int64) - 1)
            + bus_per_unit * self.width.astype(np.int64)
        )
        cost[self.bus == BUSES.index("1bus")] += ONE_BUS_COST
        return cost


def expand_space(space: DesignSpace) -> CandidateGrid:
    """Materialise the candidate grid of *space* (NumPy columns)."""
    families: List[np.ndarray] = []
    widths: List[np.ndarray] = []
    windows: List[np.ndarray] = []
    buses: List[np.ndarray] = []
    fus: List[np.ndarray] = []
    width_axis = np.array(space.widths, dtype=np.int32)
    for family in space.families:
        findex = FAMILIES.index(family)
        if family == "ruu":
            bus_axis = np.array(
                [BUSES.index(b) for b in space.buses if b != "xbar"],
                dtype=np.int8,
            )
            if len(bus_axis) == 0:
                continue
            window_axis = np.array(space.windows, dtype=np.int32)
            fu_axis = np.array(space.fu_counts, dtype=np.int32)
            grid = np.meshgrid(
                width_axis, window_axis, bus_axis, fu_axis, indexing="ij"
            )
            count = grid[0].size
            families.append(np.full(count, findex, dtype=np.int8))
            widths.append(grid[0].ravel())
            windows.append(grid[1].ravel())
            buses.append(grid[2].ravel().astype(np.int8))
            fus.append(grid[3].ravel())
        else:
            bus_axis = np.array(
                [BUSES.index(b) for b in space.buses], dtype=np.int8
            )
            grid = np.meshgrid(width_axis, bus_axis, indexing="ij")
            count = grid[0].size
            families.append(np.full(count, findex, dtype=np.int8))
            widths.append(grid[0].ravel())
            windows.append(np.zeros(count, dtype=np.int32))
            buses.append(grid[1].ravel().astype(np.int8))
            fus.append(np.ones(count, dtype=np.int32))
    return CandidateGrid(
        family=np.concatenate(families),
        width=np.concatenate(widths),
        window=np.concatenate(windows),
        bus=np.concatenate(buses),
        fu=np.concatenate(fus),
        config=space.config,
    )
