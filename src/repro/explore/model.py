"""The analytic issue-rate estimator behind the design-space screen.

For one trace the simulators' sustained issue rate is bracketed by two
quantities the limit study already computes exactly: the **serial
limit** (WAW-in-order critical path, capped by the resource bound) from
below and the **pseudo-dataflow limit** from above.  The estimator
predicts where inside that bracket a machine configuration lands using
only per-trace compiled-IR statistics (:class:`repro.trace.stats.IRStats`)
and a handful of closed-form queuing terms:

``width term``
    ``1 + eff * (width - 1)`` -- the decode/issue bandwidth an issue
    discipline converts into sustained issue.  ``eff`` is 1 for the RUU
    (full register renaming; the window term below is its real
    limiter) and a dependence-derived fraction for in-order and
    restricted out-of-order issue, computed from the trace's nearest-
    producer RAW distances and its mean service latency.

``resource term``
    ``n / max_u(ceil(occupancy_u / fu) - 1 + latency_u)`` -- the
    fully-pipelined busy-span bound of :mod:`repro.limits.resource`,
    generalised to ``fu`` duplicated copies of every unit.  At
    ``fu=1`` this equals :func:`repro.limits.resource.resource_limit`
    exactly (the anchor tests pin this).

``window term``
    ``window / mean_service_latency`` (RUU only) -- Little's law: a
    window of R in-flight instructions with mean residency λ̄ cycles
    sustains at most R/λ̄ issues per cycle.  λ̄ weighs every unit's
    latency by its occupancy, so the branch/memory mix enters here.

``bus term``
    ``1 / bus_fraction`` under a single result bus (one register write
    per cycle); unconstrained for n-bus and crossbar structures.

The terms compose **harmonically** -- ``1/score`` is the sum of the
inverse terms (including the inverse dataflow limit), the standard
serial-bottleneck composition -- so the raw *score* approaches but
never reaches the dataflow limit and is *strictly* increasing in issue
width, window size and FU copies.  That strictness is what the screen's
Pareto ranking needs: a hard minimum saturates (every candidate past
the binding bottleneck ties), and on branch- or chain-dominated traces
whose [serial, dataflow] bracket is nearly a point, saturation would
collapse the predicted frontier to its single cheapest member.

The reported **estimate** is the score clamped into
``[serial, dataflow]``.  The estimate is provably inside the bracket
and monotone nondecreasing in every knob (clamping preserves
monotonicity); the property tests assert both invariants on random
traces and knob settings.  The screen ranks by the unclamped score and
reports the clamped estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence

import numpy as np

from ..core.config import MachineConfig, config_by_name
from ..isa import FunctionalUnit
from ..limits import compute_limits
from ..trace import DiskCache, Trace
from ..trace.stats import cached_ir_stats
from .space import BUSES, FAMILIES, CandidateGrid

__all__ = [
    "MODEL_VERSION",
    "TraceAnchors",
    "build_anchors",
    "estimate_one",
    "estimate_rates",
]

#: Bump to invalidate cached anchors and screened spaces after any
#: change to the estimator's terms or the anchor payload.
MODEL_VERSION = 1

_RUU = FAMILIES.index("ruu")
_INORDER = FAMILIES.index("inorder")
_OOO = FAMILIES.index("ooo")
_ONE_BUS = BUSES.index("1bus")


@dataclass(frozen=True)
class TraceAnchors:
    """Everything the estimator needs about one (trace, config) pair.

    Attributes:
        source: normalised trace-source spec.
        name: trace name.
        instructions: dynamic instruction count.
        config: machine-configuration name.
        serial_rate: the serial actual limit (WAW-in-order dataflow
            capped by the resource bound) -- the estimate's floor.
        dataflow_rate: the pure pseudo-dataflow limit -- the ceiling.
        unit_occupancy: unit name -> busy-cycle demand (resource-limit
            counting: vector ops occupy their unit once per element).
        unit_latency: unit name -> latency under this config.
        mean_service_latency: occupancy-weighted mean unit latency per
            instruction (λ̄ in the window term).
        bus_fraction: fraction of instructions writing a result bus.
        mean_dependence_distance: mean nearest-producer RAW distance.
        p90_dependence_distance: 90th-percentile RAW distance.
        dependent_fraction: fraction of instructions with an in-trace
            producer.
    """

    source: str
    name: str
    instructions: int
    config: str
    serial_rate: float
    dataflow_rate: float
    unit_occupancy: Mapping[str, int]
    unit_latency: Mapping[str, int]
    mean_service_latency: float
    bus_fraction: float
    mean_dependence_distance: float
    p90_dependence_distance: float
    dependent_fraction: float

    @property
    def inorder_efficiency(self) -> float:
        """Per-slot issue efficiency of in-order multi-issue.

        In-order issue stops at the first not-ready instruction, so the
        usable fraction of extra slots grows with how far results are
        from their consumers relative to how long they take: tight
        chains (distance ≈ λ̄ or less) leave later slots idle.
        """
        slack = self.mean_dependence_distance / max(
            self.mean_dependence_distance + self.mean_service_latency, 1e-9
        )
        return min(0.9, max(0.2, slack))

    @property
    def ooo_efficiency(self) -> float:
        """Per-slot issue efficiency of restricted out-of-order issue.

        Out-of-order lookahead hides most stalls but still loses slots
        to dense dependence clusters; the p90 distance measures how
        often far-apart independent work is available.
        """
        spread = self.p90_dependence_distance / (
            self.p90_dependence_distance + 1.0
        )
        return min(0.95, max(0.5, 0.5 + spread / 2.0))

    def to_payload(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "name": self.name,
            "instructions": self.instructions,
            "config": self.config,
            "serial_rate": self.serial_rate,
            "dataflow_rate": self.dataflow_rate,
            "unit_occupancy": dict(self.unit_occupancy),
            "unit_latency": dict(self.unit_latency),
            "mean_service_latency": self.mean_service_latency,
            "bus_fraction": self.bus_fraction,
            "mean_dependence_distance": self.mean_dependence_distance,
            "p90_dependence_distance": self.p90_dependence_distance,
            "dependent_fraction": self.dependent_fraction,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TraceAnchors":
        return cls(
            source=str(payload["source"]),
            name=str(payload["name"]),
            instructions=int(payload["instructions"]),
            config=str(payload["config"]),
            serial_rate=float(payload["serial_rate"]),
            dataflow_rate=float(payload["dataflow_rate"]),
            unit_occupancy={
                str(k): int(v)
                for k, v in payload["unit_occupancy"].items()
            },
            unit_latency={
                str(k): int(v) for k, v in payload["unit_latency"].items()
            },
            mean_service_latency=float(payload["mean_service_latency"]),
            bus_fraction=float(payload["bus_fraction"]),
            mean_dependence_distance=float(
                payload["mean_dependence_distance"]
            ),
            p90_dependence_distance=float(payload["p90_dependence_distance"]),
            dependent_fraction=float(payload["dependent_fraction"]),
        )


def _anchors_key(source: str, config: str) -> Dict[str, Any]:
    return {
        "kind": "explore-anchors",
        "source": source,
        "config": config,
        "version": MODEL_VERSION,
    }


def build_anchors(
    source: str,
    config: Optional[MachineConfig] = None,
    *,
    cache: Optional[DiskCache] = None,
    trace: Optional[Trace] = None,
) -> TraceAnchors:
    """Compute (or load) the estimator anchors for one trace source.

    With a :class:`~repro.trace.DiskCache`, anchors are content-addressed
    on (source, config, model version); a warm hit skips trace
    generation, compilation and both limit computations entirely.
    ``file:`` sources are never cached.
    """
    from ..trace.sources import format_trace_spec, parse_trace_spec, trace_source

    if config is None:
        config = config_by_name("M11BR5")
    parsed = parse_trace_spec(source)
    normalised = format_trace_spec(parsed)
    cacheable = cache is not None and parsed.head != "file"
    if cacheable:
        record = cache.load_result(_anchors_key(normalised, config.name))
        if record is not None:
            try:
                return TraceAnchors.from_payload(record)
            except (KeyError, TypeError, ValueError):
                pass  # corrupt payload: recompute and overwrite

    if trace is None:
        trace = trace_source(normalised)
    ir = cached_ir_stats(normalised, cache, trace=trace)
    pure = compute_limits(trace, config)
    serial = compute_limits(trace, config, serial=True)
    latencies = config.latencies
    unit_latency = {
        unit: latencies.latency(FunctionalUnit(unit))
        for unit in ir.unit_occupancy
    }
    service = sum(
        occupancy * unit_latency[unit]
        for unit, occupancy in ir.unit_occupancy.items()
    ) / ir.length
    anchors = TraceAnchors(
        source=normalised,
        name=ir.name,
        instructions=ir.length,
        config=config.name,
        serial_rate=serial.actual_rate,
        dataflow_rate=pure.pseudo_dataflow_rate,
        unit_occupancy=ir.unit_occupancy,
        unit_latency=unit_latency,
        mean_service_latency=service,
        bus_fraction=ir.bus_fraction,
        mean_dependence_distance=ir.mean_dependence_distance,
        p90_dependence_distance=ir.p90_dependence_distance,
        dependent_fraction=ir.dependent_fraction,
    )
    if cacheable:
        cache.store_result(
            _anchors_key(normalised, config.name), anchors.to_payload()
        )
    return anchors


def _resource_rate(anchors: TraceAnchors, fu: int) -> float:
    """The resource bound with *fu* duplicated copies of every unit.

    At ``fu=1`` this is exactly
    :func:`repro.limits.resource.resource_limit`'s issue-rate limit.
    """
    span = max(
        -(-occupancy // fu) - 1 + anchors.unit_latency[unit]
        for unit, occupancy in anchors.unit_occupancy.items()
    )
    return anchors.instructions / max(span, 1)


def _scores_for_anchors(
    anchors: TraceAnchors,
    family: np.ndarray,
    width: np.ndarray,
    window: np.ndarray,
    bus: np.ndarray,
    fu: np.ndarray,
) -> np.ndarray:
    """Raw (unclamped) per-trace score of every candidate (vectorised).

    Harmonic composition of the width, resource, window, bus and
    dataflow terms: ``1/score = sum(1/term)``.  Strictly increasing in
    width, window and fu; strictly below the dataflow limit.
    """
    eff = np.array([
        anchors.inorder_efficiency,  # _INORDER
        anchors.ooo_efficiency,      # _OOO
        1.0,                         # _RUU
    ])[family]
    width_term = 1.0 + eff * (width.astype(np.float64) - 1.0)
    inverse = 1.0 / width_term

    resource = np.empty(len(family), dtype=np.float64)
    for copies in np.unique(fu):
        resource[fu == copies] = _resource_rate(anchors, int(copies))
    inverse += 1.0 / resource

    is_ruu = family == _RUU
    if is_ruu.any():
        window_term = window[is_ruu].astype(np.float64) / max(
            anchors.mean_service_latency, 1e-9
        )
        inverse[is_ruu] += 1.0 / window_term

    # The single result bus admits one register write per cycle, so its
    # inverse term is simply the per-instruction bus demand.
    inverse[bus == _ONE_BUS] += anchors.bus_fraction

    inverse += 1.0 / anchors.dataflow_rate
    return 1.0 / inverse


def estimate_rates(
    anchors_list: Sequence[TraceAnchors],
    family: np.ndarray,
    width: np.ndarray,
    window: np.ndarray,
    bus: np.ndarray,
    fu: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """``(scores, estimates)`` of every candidate over a trace set.

    Per-trace values fold with the harmonic mean, matching how the
    exact verification stage aggregates simulated rates.  *scores* are
    the unclamped ranking keys; *estimates* clamp each per-trace score
    into its trace's [serial, dataflow] bracket before folding, so the
    aggregate estimate stays inside the harmonic-mean bracket of the
    per-trace limits.
    """
    score_inverse = np.zeros(len(family), dtype=np.float64)
    estimate_inverse = np.zeros(len(family), dtype=np.float64)
    for anchors in anchors_list:
        scores = _scores_for_anchors(
            anchors, family, width, window, bus, fu
        )
        score_inverse += 1.0 / scores
        estimate_inverse += 1.0 / np.clip(
            scores, anchors.serial_rate, anchors.dataflow_rate
        )
    count = len(anchors_list)
    return count / score_inverse, count / estimate_inverse


def estimate_grid(
    anchors_list: Sequence[TraceAnchors],
    grid: CandidateGrid,
    indices: Optional[np.ndarray] = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """:func:`estimate_rates` over a :class:`CandidateGrid` (or a subset)."""
    if indices is None:
        return estimate_rates(
            anchors_list, grid.family, grid.width, grid.window,
            grid.bus, grid.fu,
        )
    return estimate_rates(
        anchors_list,
        grid.family[indices], grid.width[indices], grid.window[indices],
        grid.bus[indices], grid.fu[indices],
    )


def estimate_one(
    anchors_list: Sequence[TraceAnchors],
    *,
    family: str,
    width: int,
    window: int = 0,
    bus: str = "nbus",
    fu: int = 1,
) -> float:
    """Scalar clamped estimate for one candidate (the property tests)."""
    return float(estimate_rates(
        anchors_list,
        np.array([FAMILIES.index(family)], dtype=np.int8),
        np.array([width], dtype=np.int32),
        np.array([window], dtype=np.int32),
        np.array([BUSES.index(bus)], dtype=np.int8),
        np.array([fu], dtype=np.int32),
    )[1][0])
