"""Design-space explorer: analytic pre-screen + exact frontier simulation.

Answering "what is the best machine under a hardware budget?" by
simulating every candidate is O(configs x trace replay); this package
replaces it with three stages:

1. **Model** (:mod:`repro.explore.model`): a closed-form issue-rate
   estimator per candidate, anchored between each trace's serial and
   pseudo-dataflow limits.
2. **Screen** (:mod:`repro.explore.space`, :mod:`repro.explore.screen`):
   expand a declarative space spec into 10^5-10^6 candidates and score
   them all vectorised, keeping the predicted Pareto frontier of
   (cost, rate) plus a bounded near-frontier band.
3. **Exact verification** (:mod:`repro.explore.exact`): simulate only
   the frontier, band and a seeded audit sample through the real
   machines, and report how wrong the model was (relative error,
   frontier recall against an exhaustively simulated grid).

:func:`explore` runs all three and returns an :class:`ExploreRun`;
``repro explore`` is the CLI face.  See ``docs/explore.md``.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import fastpath
from ..harness.engine import _fastpath_deltas
from ..harness.progress import ProgressCallback
from ..obs import (
    MetricsRegistry,
    RunManifest,
    Tracer,
    current_git_sha,
    new_run_id,
    write_manifest,
)
from ..trace import DiskCache, default_cache_dir
from .exact import ErrorStats, frontier_recall, simulate_specs
from .model import MODEL_VERSION, TraceAnchors, build_anchors, estimate_grid
from .screen import ScreenResult, screen_space
from .space import (
    CandidateGrid,
    DesignSpace,
    SpaceError,
    expand_space,
    parse_space,
)

__all__ = [
    "CandidateGrid",
    "DesignSpace",
    "ExplorePoint",
    "ExploreRun",
    "MODEL_VERSION",
    "ScreenResult",
    "SpaceError",
    "TraceAnchors",
    "build_anchors",
    "explore",
    "parse_space",
    "screen_space",
]

#: Exhaustive simulation is for verifying the screen on *small* grids;
#: above this size it would defeat the explorer's purpose.
_MAX_EXHAUSTIVE = 5000


@dataclass(frozen=True)
class ExplorePoint:
    """One candidate that went through exact simulation."""

    index: int
    spec: str
    cost: int
    predicted: float
    simulated: float

    @property
    def relative_error(self) -> float:
        return abs(self.predicted - self.simulated) / self.simulated

    def to_payload(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "spec": self.spec,
            "cost": self.cost,
            "predicted": self.predicted,
            "simulated": self.simulated,
            "relative_error": self.relative_error,
        }


@dataclass(frozen=True)
class ExploreRun:
    """A finished explore invocation: screen summary + verified frontier."""

    space_spec: str
    space: DesignSpace
    sources: Tuple[str, ...]
    config: str
    total_candidates: int
    screen_seconds: float
    screen_cached: bool
    frontier: Tuple[ExplorePoint, ...]
    band: Tuple[ExplorePoint, ...]
    audit: Tuple[ExplorePoint, ...]
    errors: ErrorStats
    audit_errors: ErrorStats
    recall: Optional[float]
    true_frontier_size: Optional[int]
    simulate_seconds: float
    result_hits: int
    manifest: Optional[RunManifest] = None

    @property
    def configs_per_second(self) -> float:
        if self.screen_seconds <= 0:
            return 0.0
        return self.total_candidates / self.screen_seconds

    @property
    def simulated_count(self) -> int:
        return len(self.frontier) + len(self.band) + len(self.audit)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready encoding (the CLI's ``--format json``)."""
        payload: Dict[str, Any] = {
            "space": self.space_spec,
            "sources": list(self.sources),
            "config": self.config,
            "model_version": MODEL_VERSION,
            "total_candidates": self.total_candidates,
            "screen": {
                "seconds": self.screen_seconds,
                "configs_per_second": self.configs_per_second,
                "cached": self.screen_cached,
            },
            "frontier": [point.to_payload() for point in self.frontier],
            "band": [point.to_payload() for point in self.band],
            "audit": [point.to_payload() for point in self.audit],
            "errors": self.errors.to_payload(),
            "audit_errors": self.audit_errors.to_payload(),
            "simulate": {
                "seconds": self.simulate_seconds,
                "cells": self.simulated_count * len(self.sources),
                "result_hits": self.result_hits,
            },
        }
        if self.recall is not None:
            payload["recall"] = self.recall
            payload["true_frontier_size"] = self.true_frontier_size
        if self.manifest is not None:
            payload["run_id"] = self.manifest.run_id
        return payload

    def render_report(self) -> str:
        """Human-readable report (the CLI's default output)."""
        lines = [
            f"design space: {self.space_spec}",
            f"  sources: {', '.join(self.sources)}  config: {self.config}",
            (
                f"  screened {self.total_candidates} candidates in "
                f"{self.screen_seconds:.3f}s "
                f"({self.configs_per_second:,.0f} configs/s"
                + (", cached)" if self.screen_cached else ")")
            ),
            (
                f"  simulated {self.simulated_count} of "
                f"{self.total_candidates} "
                f"({len(self.frontier)} frontier, {len(self.band)} band, "
                f"{len(self.audit)} audit) in {self.simulate_seconds:.2f}s"
            ),
            "",
            f"  {'cost':>6}  {'predicted':>9}  {'simulated':>9}  "
            f"{'err':>6}  spec",
        ]
        for point in self.frontier:
            lines.append(
                f"  {point.cost:>6}  {point.predicted:>9.3f}  "
                f"{point.simulated:>9.3f}  "
                f"{point.relative_error:>5.1%}  {point.spec}"
            )
        lines.append("")
        lines.append(
            f"  model error: mean {self.errors.mean_relative:.1%} / "
            f"max {self.errors.max_relative:.1%} over {self.errors.count} "
            f"simulated; audit mean {self.audit_errors.mean_relative:.1%}"
        )
        if self.recall is not None:
            lines.append(
                f"  frontier recall: {self.recall:.2f} "
                f"({self.true_frontier_size} true frontier points, "
                "exhaustive grid)"
            )
        return "\n".join(lines)


def _normalise_sources(sources: Sequence[str]) -> List[str]:
    from ..trace.sources import format_trace_spec, parse_trace_spec

    return [format_trace_spec(parse_trace_spec(source)) for source in sources]


def _audit_sample(
    rng: random.Random, total: int, excluded: set, count: int
) -> List[int]:
    """A seeded sample of candidate indices outside *excluded*."""
    count = min(count, max(0, total - len(excluded)))
    chosen: List[int] = []
    seen = set(excluded)
    while len(chosen) < count:
        pick = rng.randrange(total)
        if pick in seen:
            continue
        seen.add(pick)
        chosen.append(pick)
    return sorted(chosen)


def explore(
    space: str,
    sources: Sequence[str],
    *,
    config: str = "M11BR5",
    budget: Optional[int] = None,
    audit: int = 16,
    seed: int = 0,
    slack: float = 0.15,
    band_per_segment: int = 4,
    workers: Optional[int] = None,
    cache: Optional[DiskCache] = None,
    observe: bool = False,
    backend: str = "auto",
    exhaustive: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> ExploreRun:
    """Run the full explorer pipeline over *space* and *sources*.

    Args:
        space: design-space spec (see :func:`parse_space`).
        sources: trace-source specs the candidates are evaluated on.
        config: machine-configuration name; a ``config=`` axis in the
            space spec wins over this default.
        budget: cap on candidates simulated exactly (frontier first,
            subsampled evenly by cost if it alone exceeds the budget,
            then band, then audit).
        audit: size of the seeded random audit sample drawn from the
            candidates the screen did *not* select.
        seed: audit-sample seed (the whole run is deterministic in it).
        slack: relative near-frontier slack for the verification band.
        band_per_segment: band size cap per frontier segment.
        workers: process fan-out for the exact stage.
        cache: DiskCache for traces, cell results, IR statistics,
            anchors and screened spaces.
        observe: write a run manifest (``explore`` table id).
        backend: fast-path backend for the exact stage.
        exhaustive: additionally simulate *every* candidate (grids up to
            5000 only) and report frontier recall against the true
            frontier.
        progress: per-simulated-cell progress callback.
    """
    run_started = time.monotonic()
    fastpath_before = fastpath.stats()
    parsed_space = parse_space(space, default_config=config)
    config = parsed_space.config
    normalised = _normalise_sources(sources)
    if not normalised:
        raise ValueError("explore needs at least one trace source")

    mark = time.monotonic()
    from ..core.config import config_by_name

    machine_config = config_by_name(config)
    anchors = [
        build_anchors(source, machine_config, cache=cache)
        for source in normalised
    ]
    anchors_ended = time.monotonic()

    result = screen_space(
        parsed_space, anchors,
        cache=cache, slack=slack, band_per_segment=band_per_segment,
    )
    screen_ended = time.monotonic()
    grid = result.grid

    frontier_idx = [int(i) for i in result.frontier]
    band_idx = [int(i) for i in result.band]
    audit_count = audit
    if budget is not None:
        budget = max(1, int(budget))
        if len(frontier_idx) > budget:
            positions = sorted(set(
                int(round(p))
                for p in np.linspace(0, len(frontier_idx) - 1, budget)
            ))
            frontier_idx = [frontier_idx[p] for p in positions]
            band_idx = []
        band_idx = band_idx[:max(0, budget - len(frontier_idx))]
        audit_count = max(
            0, min(audit, budget - len(frontier_idx) - len(band_idx))
        )
    selected = set(frontier_idx) | set(band_idx)
    rng = random.Random(seed)
    audit_idx = _audit_sample(rng, grid.n, selected, audit_count)

    if exhaustive:
        if grid.n > _MAX_EXHAUSTIVE:
            raise ValueError(
                f"exhaustive simulation is capped at {_MAX_EXHAUSTIVE} "
                f"candidates; the space has {grid.n}"
            )
        simulate_idx = list(range(grid.n))
    else:
        simulate_idx = sorted(selected | set(audit_idx))

    specs = {index: grid.machine_spec(index) for index in simulate_idx}
    simulated, sweep = simulate_specs(
        [specs[index] for index in simulate_idx], normalised,
        config=config, workers=workers, cache=cache, backend=backend,
        label="explore", progress=progress,
    )
    simulate_ended = time.monotonic()

    if result.scored:
        predicted = {
            index: result.rate_of(index) for index in simulate_idx
        }
    else:
        # Cache-hit screen: stored records cover frontier+band; anything
        # else (audit, exhaustive) is re-estimated vectorised.
        predicted = {
            index: result.rate_of(index)
            for index in simulate_idx
            if index in selected
        }
        missing = [i for i in simulate_idx if i not in predicted]
        if missing:
            _, rates = estimate_grid(
                anchors, grid, np.array(missing, dtype=np.int64)
            )
            predicted.update(
                {index: float(rate) for index, rate in zip(missing, rates)}
            )

    costs_all = grid.costs()

    def points(indices: List[int]) -> Tuple[ExplorePoint, ...]:
        return tuple(
            ExplorePoint(
                index=index,
                spec=specs[index],
                cost=int(costs_all[index]),
                predicted=predicted[index],
                simulated=simulated[specs[index]],
            )
            for index in indices
        )

    frontier_points = points(frontier_idx)
    band_points = points(band_idx)
    audit_points = points(audit_idx)
    reported = frontier_points + band_points + audit_points
    errors = ErrorStats.from_pairs(
        [p.predicted for p in reported], [p.simulated for p in reported]
    )
    audit_errors = ErrorStats.from_pairs(
        [p.predicted for p in audit_points],
        [p.simulated for p in audit_points],
    )

    recall: Optional[float] = None
    true_frontier_size: Optional[int] = None
    if exhaustive:
        recall, true_frontier = frontier_recall(
            {i: int(costs_all[i]) for i in simulate_idx},
            {i: simulated[specs[i]] for i in simulate_idx},
            sorted(selected),
        )
        true_frontier_size = len(true_frontier)

    manifest: Optional[RunManifest] = None
    if observe:
        manifest = _explore_manifest(
            parsed_space, result, sweep, errors, audit_errors, recall,
            fastpath_before, run_started, anchors_ended, screen_ended,
            simulate_ended, len(simulate_idx), cache,
        )

    return ExploreRun(
        space_spec=space,
        space=parsed_space,
        sources=tuple(normalised),
        config=config,
        total_candidates=result.total,
        screen_seconds=result.seconds,
        screen_cached=result.cached,
        frontier=frontier_points,
        band=band_points,
        audit=audit_points,
        errors=errors,
        audit_errors=audit_errors,
        recall=recall,
        true_frontier_size=true_frontier_size,
        simulate_seconds=sweep.wall_seconds,
        result_hits=sweep.result_hits,
        manifest=manifest,
    )


def _explore_manifest(
    space: DesignSpace,
    result: ScreenResult,
    sweep,
    errors: ErrorStats,
    audit_errors: ErrorStats,
    recall: Optional[float],
    fastpath_before: Dict[str, int],
    run_started: float,
    anchors_ended: float,
    screen_ended: float,
    simulate_ended: float,
    simulated: int,
    cache: Optional[DiskCache],
) -> RunManifest:
    """Record the explore run: spans per stage, screen + error metrics."""
    registry = MetricsRegistry()
    registry.set_gauge("explore.candidates", result.total)
    registry.set_gauge("explore.screen_seconds", result.seconds)
    registry.set_gauge(
        "explore.configs_per_second", result.configs_per_second
    )
    registry.set_gauge("explore.frontier_size", len(result.frontier))
    registry.set_gauge("explore.band_size", len(result.band))
    registry.set_gauge("explore.simulated", simulated)
    registry.set_gauge("explore.error.mean_relative", errors.mean_relative)
    registry.set_gauge("explore.error.max_relative", errors.max_relative)
    registry.set_gauge(
        "explore.audit.mean_relative", audit_errors.mean_relative
    )
    if recall is not None:
        registry.set_gauge("explore.recall", recall)
    for name, value in _fastpath_deltas(
        fastpath_before, fastpath.stats()
    ).items():
        registry.inc(name, value)

    tracer = Tracer()
    root = tracer.adopt(
        "explore", run_started, simulate_ended,
        pid=os.getpid(), candidates=result.total,
    )
    tracer.adopt(
        "anchors", run_started, anchors_ended,
        parent_id=root.span_id, pid=os.getpid(),
    )
    tracer.adopt(
        "screen", anchors_ended, screen_ended,
        parent_id=root.span_id, pid=os.getpid(), cached=result.cached,
    )
    tracer.adopt(
        "simulate", screen_ended, simulate_ended,
        parent_id=root.span_id, pid=os.getpid(), cells=simulated,
    )
    manifest = RunManifest(
        run_id=new_run_id("explore"),
        table_id="explore",
        created=datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%S.%fZ"),
        git_sha=current_git_sha(),
        config={
            "space": space.to_key(),
            "model_version": MODEL_VERSION,
            "workers": sweep.workers,
            "cache_enabled": cache is not None,
        },
        timings={
            "wall_seconds": simulate_ended - run_started,
            "screen_seconds": result.seconds,
            "simulate_seconds": sweep.wall_seconds,
        },
        metrics=registry.snapshot(),
        spans=tracer.to_payload(),
    )
    root_dir = cache.root if cache is not None else default_cache_dir()
    write_manifest(manifest, root_dir)
    return manifest
