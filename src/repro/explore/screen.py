"""Vectorised screening: score every candidate, keep the frontier.

The screen evaluates the closed-form estimator
(:mod:`repro.explore.model`) over the whole candidate grid at NumPy
speed, then extracts in one pass:

* the **Pareto frontier** of (cost, predicted rate) -- for every cost
  the best predicted rate, kept only where it strictly improves on all
  cheaper candidates;
* a bounded **verification band** -- per frontier segment, the few
  cheapest near-misses within a relative slack of the frontier rate.
  The band exists because the screen is approximate: a config the model
  under-rates by a hair may be on the *true* frontier, so the exact
  stage simulates the band too and frontier recall is measured against
  it.  Binding the band per segment (rather than taking every config
  within the slack) keeps the simulated set O(frontier size), not
  O(grid size).

Screened spaces are content-addressed in the DiskCache on (space,
sources, config, model version), so repeating an explore run skips the
scoring pass entirely and re-estimates only the audit sample.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..trace import DiskCache
from .model import MODEL_VERSION, TraceAnchors, estimate_grid
from .space import CandidateGrid, DesignSpace, expand_space

__all__ = [
    "ScreenResult",
    "pareto_frontier",
    "screen_space",
    "verification_band",
]

#: Stored-record schema; bump with the payload shape.
_SCREEN_SCHEMA = 1

#: Hard cap on stored band entries (a pathological slack setting cannot
#: bloat the cache or the simulation set).
_MAX_BAND = 4096


def pareto_frontier(costs: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """Indices of the (cost, rate) Pareto frontier, ascending cost.

    One ``lexsort`` plus a running maximum: a candidate is on the
    frontier iff it has the best rate at its cost and that rate strictly
    beats every cheaper candidate.  Ties on rate keep the cheapest cost
    only (a same-rate, higher-cost point is dominated).
    """
    order = np.lexsort((-rates, costs))
    cost_sorted = costs[order]
    rate_sorted = rates[order]
    new_cost = np.empty(len(order), dtype=bool)
    new_cost[0] = True
    new_cost[1:] = cost_sorted[1:] > cost_sorted[:-1]
    representatives = np.flatnonzero(new_cost)
    best = rate_sorted[representatives]
    previous_best = np.concatenate(
        ([-np.inf], np.maximum.accumulate(best)[:-1])
    )
    return order[representatives[best > previous_best]]


def verification_band(
    costs: np.ndarray,
    rates: np.ndarray,
    frontier: np.ndarray,
    *,
    slack: float = 0.15,
    per_segment: int = 4,
) -> np.ndarray:
    """Near-frontier candidates worth exact simulation, bounded.

    For every candidate the binding frontier point is the most expensive
    frontier point at cost <= its own (``searchsorted`` on the
    frontier's ascending costs).  Candidates within ``slack`` relative
    rate of that point are eligible; the ``per_segment`` cheapest per
    frontier segment are kept, so the band is at most
    ``per_segment * len(frontier)`` indices (and never more than
    ``_MAX_BAND``).
    """
    if len(frontier) == 0 or per_segment <= 0:
        return np.empty(0, dtype=np.int64)
    frontier_costs = costs[frontier]
    frontier_rates = rates[frontier]
    segment = np.searchsorted(frontier_costs, costs, side="right") - 1
    on_frontier = np.zeros(len(costs), dtype=bool)
    on_frontier[frontier] = True
    eligible = (
        (segment >= 0)
        & ~on_frontier
        & (rates >= (1.0 - slack) * frontier_rates[np.maximum(segment, 0)])
    )
    candidates = np.flatnonzero(eligible)
    if len(candidates) == 0:
        return candidates
    # Cheapest-first within each segment, then cap per segment.
    order = np.lexsort((costs[candidates], segment[candidates]))
    candidates = candidates[order]
    segments = segment[candidates]
    new_segment = np.empty(len(candidates), dtype=bool)
    new_segment[0] = True
    new_segment[1:] = segments[1:] != segments[:-1]
    # Rank within segment: position since the segment started.
    starts = np.maximum.accumulate(
        np.where(new_segment, np.arange(len(candidates)), 0)
    )
    rank = np.arange(len(candidates)) - starts
    kept = candidates[rank < per_segment]
    return np.sort(kept)[:_MAX_BAND]


@dataclass(frozen=True)
class ScreenResult:
    """Outcome of screening one space over one trace set.

    ``rates`` and ``costs`` cover the whole grid on a live screen and
    only the frontier/band indices after a cache hit (``scored`` tells
    which; ``rate_of``/``cost_of`` work either way).
    """

    space: DesignSpace
    grid: CandidateGrid
    total: int
    seconds: float
    frontier: np.ndarray
    band: np.ndarray
    cached: bool
    scored: bool
    rates: Optional[np.ndarray]
    costs: Optional[np.ndarray]
    _lookup: Dict[int, int]

    @property
    def configs_per_second(self) -> float:
        return self.total / self.seconds if self.seconds > 0 else 0.0

    def rate_of(self, index: int) -> float:
        """Predicted rate of candidate *index* (frontier/band on a hit)."""
        if self.scored:
            return float(self.rates[index])
        return float(self.rates[self._lookup[int(index)]])

    def cost_of(self, index: int) -> int:
        if self.scored:
            return int(self.costs[index])
        return int(self.costs[self._lookup[int(index)]])


def _screen_key(
    space: DesignSpace, sources: Sequence[str]
) -> Dict[str, Any]:
    return {
        "kind": "explore-screen",
        "space": space.to_key(),
        "sources": list(sources),
        "model_version": MODEL_VERSION,
        "schema": _SCREEN_SCHEMA,
    }


def _from_record(
    space: DesignSpace, grid: CandidateGrid, record: Dict[str, Any]
) -> ScreenResult:
    frontier = np.array(
        [int(entry[0]) for entry in record["frontier"]], dtype=np.int64
    )
    band = np.array(
        [int(entry[0]) for entry in record["band"]], dtype=np.int64
    )
    indices = np.concatenate([frontier, band])
    costs = np.array(
        [int(entry[1]) for entry in record["frontier"] + record["band"]],
        dtype=np.int64,
    )
    rates = np.array(
        [float(entry[2]) for entry in record["frontier"] + record["band"]],
        dtype=np.float64,
    )
    if int(record["total"]) != grid.n:
        raise ValueError("stale screen record")
    return ScreenResult(
        space=space,
        grid=grid,
        total=int(record["total"]),
        seconds=float(record["seconds"]),
        frontier=frontier,
        band=band,
        cached=True,
        scored=False,
        rates=rates,
        costs=costs,
        _lookup={int(idx): pos for pos, idx in enumerate(indices)},
    )


def screen_space(
    space: DesignSpace,
    anchors: Sequence[TraceAnchors],
    *,
    cache: Optional[DiskCache] = None,
    slack: float = 0.15,
    band_per_segment: int = 4,
) -> ScreenResult:
    """Score *space* against *anchors*; frontier + band in one pass.

    With a cache, a previously screened (space, sources, model version)
    triple loads its frontier and band without touching the grid's
    scores (the stored records carry the predicted rates and costs of
    exactly the candidates the exact stage needs).
    """
    grid = expand_space(space)
    sources = [a.source for a in anchors]
    if cache is not None:
        record = cache.load_result(_screen_key(space, sources))
        if record is not None:
            try:
                return _from_record(space, grid, record)
            except (KeyError, IndexError, TypeError, ValueError):
                pass  # corrupt/stale record: re-screen and overwrite

    start = time.perf_counter()
    scores, rates = estimate_grid(anchors, grid)
    costs = grid.costs()
    frontier = pareto_frontier(costs, scores)
    band = verification_band(
        costs, scores, frontier, slack=slack, per_segment=band_per_segment
    )
    seconds = time.perf_counter() - start

    if cache is not None:
        cache.store_result(_screen_key(space, sources), {
            "total": grid.n,
            "seconds": seconds,
            "frontier": [
                [int(i), int(costs[i]), float(rates[i])] for i in frontier
            ],
            "band": [
                [int(i), int(costs[i]), float(rates[i])] for i in band
            ],
        })
    return ScreenResult(
        space=space,
        grid=grid,
        total=grid.n,
        seconds=seconds,
        frontier=frontier,
        band=band,
        cached=False,
        scored=True,
        rates=rates,
        costs=costs,
        _lookup={},
    )
