"""Deprecated command-line runner (use ``python -m repro tables``).

This entry point predates :mod:`repro.api`; it is kept working for old
scripts but simply delegates to the facade::

    python -m repro.harness.runner table1
    python -m repro.harness.runner table7 --compare
    python -m repro.harness.runner all

Prefer ``python -m repro tables`` -- it exposes the same experiments plus
``--workers`` and ``--no-cache``.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List

from .experiments import EXPERIMENTS, section33  # re-exported for compat

_DEPRECATION_NOTICE = (
    "'python -m repro.harness.runner' is deprecated; "
    "use 'python -m repro tables' (same tables, plus --workers/--no-cache)"
)


def main(argv: List[str] = None) -> int:
    from .. import api
    from ..cli import run_tables

    parser = argparse.ArgumentParser(
        description=(
            "Regenerate the paper's evaluation tables "
            "(deprecated; use 'python -m repro tables')."
        )
    )
    parser.add_argument(
        "table",
        choices=list(api.list_tables()) + ["section33", "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="also print the paper's reported numbers and deviations",
    )
    args = parser.parse_args(argv)

    # Through the warnings machinery (not a bare stderr print) so piped
    # output stays clean and callers can filter or -W error it.
    warnings.warn(_DEPRECATION_NOTICE, DeprecationWarning, stacklevel=2)
    return run_tables(args.table, compare=args.compare)


if __name__ == "__main__":
    sys.exit(main())
