"""Command-line runner: regenerate any of the paper's tables.

Usage::

    python -m repro.harness.runner table1
    python -m repro.harness.runner table7 --compare
    python -m repro.harness.runner all

``--compare`` prints the paper's reported table next to the measured one
and a per-cell deviation summary.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from .aggregate import relative_error
from .experiments import EXPERIMENTS, section33
from .paper import PAPER_SECTION33, PAPER_TABLES
from .tables import compare_tables


def _run_one(table_id: str, compare: bool) -> None:
    build = EXPERIMENTS[table_id]
    start = time.time()
    measured = build()
    elapsed = time.time() - start
    print(measured.render())
    print(f"[{table_id} regenerated in {elapsed:.1f}s]")
    if compare:
        reference = PAPER_TABLES[table_id]
        print()
        print(reference.render())
        pairs = compare_tables(measured, reference)
        if pairs:
            errors = [relative_error(m, r) for _, _, m, r in pairs]
            mean_abs = sum(abs(e) for e in errors) / len(errors)
            print(
                f"[{len(pairs)} comparable cells; "
                f"mean |relative deviation| = {mean_abs:.1%}]"
            )
    print()


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation tables."
    )
    parser.add_argument(
        "table",
        choices=sorted(EXPERIMENTS) + ["section33", "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="also print the paper's reported numbers and deviations",
    )
    args = parser.parse_args(argv)

    if args.table == "section33":
        rates = section33()
        print("Section 3.3: single-issue dependency resolution on M11BR5")
        for class_label, rate in rates.items():
            paper = PAPER_SECTION33[class_label]
            print(f"  {class_label:<13} measured {rate:.2f}   paper {paper:.2f}")
        return 0

    targets = sorted(EXPERIMENTS) if args.table == "all" else [args.table]
    for table_id in targets:
        _run_one(table_id, args.compare)
    return 0


if __name__ == "__main__":
    sys.exit(main())
