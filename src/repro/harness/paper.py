"""The paper's reported results, transcribed as :class:`ResultTable` data.

These tables use the same row/column labels the experiment functions in
:mod:`repro.harness.experiments` produce, so a measured table and its
paper counterpart can be compared cell-by-cell with
:func:`repro.harness.tables.compare_tables`.

Transcription notes:

* Tables 1-3, 5 and 7 are transcribed verbatim from TR #752.
* Table 4 and Table 6 leave a few 8-issue-station cells unreadable in the
  available scan; unreadable cells are simply omitted (the comparison
  machinery skips missing cells).
* Table 8's M11BR5 rows for RUU sizes 40 and 50 are damaged in the scan;
  the values used here are reconstructed from the surrounding monotone
  trends and are marked with ``# reconstructed`` comments.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .tables import ResultTable

CONFIG_NAMES: Tuple[str, ...] = ("M11BR5", "M11BR2", "M5BR5", "M5BR2")
CLASS_LABELS: Tuple[str, ...] = ("scalar", "vectorizable")
BUS_LABELS: Tuple[str, ...] = ("N-Bus", "1-Bus")
RUU_SIZES: Tuple[int, ...] = (10, 20, 30, 40, 50, 100)
RUU_UNITS: Tuple[int, ...] = (1, 2, 3, 4)


def _grid(columns, rows):
    return ResultTable(
        table_id="",
        title="",
        columns=tuple(columns),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# Table 1: basic machine organisations
# ----------------------------------------------------------------------

_T1_DATA = {
    "scalar/Simple": (0.24, 0.25, 0.32, 0.33),
    "scalar/SerialMemory": (0.35, 0.36, 0.48, 0.50),
    "scalar/NonSegmented": (0.43, 0.45, 0.50, 0.53),
    "scalar/CRAY-like": (0.44, 0.47, 0.51, 0.55),
    "vectorizable/Simple": (0.21, 0.21, 0.29, 0.30),
    "vectorizable/SerialMemory": (0.29, 0.30, 0.42, 0.45),
    "vectorizable/NonSegmented": (0.42, 0.45, 0.49, 0.53),
    "vectorizable/CRAY-like": (0.45, 0.49, 0.54, 0.59),
}

PAPER_TABLE1 = ResultTable(
    table_id="table1-paper",
    title="Paper Table 1: issue rates for basic machine organisations",
    columns=CONFIG_NAMES,
    rows=tuple(
        (label, dict(zip(CONFIG_NAMES, values)))
        for label, values in _T1_DATA.items()
    ),
)

# ----------------------------------------------------------------------
# Table 2: pseudo-dataflow / resource / actual limits
# ----------------------------------------------------------------------

_T2_COLUMNS = ("pseudo-dataflow", "resource", "actual")

_T2_DATA = {
    "scalar/Pure M11BR5": (1.34, 4.66, 1.29),
    "scalar/Pure M11BR2": (1.37, 4.66, 1.29),
    "scalar/Pure M5BR5": (1.34, 4.66, 1.29),
    "scalar/Pure M5BR2": (1.37, 4.66, 1.29),
    "vectorizable/Pure M11BR5": (3.35, 3.43, 2.78),
    "vectorizable/Pure M11BR2": (4.40, 3.43, 3.15),
    "vectorizable/Pure M5BR5": (3.35, 3.43, 2.78),
    "vectorizable/Pure M5BR2": (4.40, 3.43, 3.15),
    "scalar/Serial M11BR5": (0.79, 4.66, 0.79),
    "scalar/Serial M11BR2": (0.79, 4.66, 0.79),
    "scalar/Serial M5BR5": (0.85, 4.66, 0.85),
    "scalar/Serial M5BR2": (0.85, 4.66, 0.85),
    "vectorizable/Serial M11BR5": (0.93, 3.43, 0.93),
    "vectorizable/Serial M11BR2": (0.96, 3.43, 0.96),
    "vectorizable/Serial M5BR5": (1.05, 3.43, 1.05),
    "vectorizable/Serial M5BR2": (1.09, 3.43, 1.09),
}

PAPER_TABLE2 = ResultTable(
    table_id="table2-paper",
    title="Paper Table 2: pseudo-dataflow and resource limits",
    columns=_T2_COLUMNS,
    rows=tuple(
        (label, dict(zip(_T2_COLUMNS, values)))
        for label, values in _T2_DATA.items()
    ),
)

# ----------------------------------------------------------------------
# Tables 3-6: multiple issue units (columns "<config> <bus>", rows 1..8)
# ----------------------------------------------------------------------

_MULTI_COLUMNS = tuple(
    f"{config} {bus}" for config in CONFIG_NAMES for bus in BUS_LABELS
)


def _multi_table(table_id: str, title: str, per_column: Dict[str, Tuple]) -> ResultTable:
    rows = []
    for station in range(1, 9):
        values: Dict[str, float] = {}
        for column, series in per_column.items():
            if station - 1 < len(series) and series[station - 1] is not None:
                values[column] = series[station - 1]
        rows.append((str(station), values))
    return ResultTable(
        table_id=table_id,
        title=title,
        columns=_MULTI_COLUMNS,
        rows=tuple(rows),
    )


PAPER_TABLE3 = _multi_table(
    "table3-paper",
    "Paper Table 3: multiple issue units, sequential issue, scalar code",
    {
        "M11BR5 N-Bus": (0.44, 0.45, 0.46, 0.46, 0.47, 0.47, 0.47, 0.47),
        "M11BR5 1-Bus": (0.44, 0.45, 0.46, 0.46, 0.46, 0.46, 0.47, 0.47),
        "M11BR2 N-Bus": (0.47, 0.49, 0.50, 0.50, 0.50, 0.50, 0.51, 0.51),
        "M11BR2 1-Bus": (0.47, 0.49, 0.50, 0.50, 0.50, 0.50, 0.51, 0.51),
        "M5BR5 N-Bus": (0.51, 0.54, 0.55, 0.55, 0.56, 0.56, 0.56, 0.56),
        "M5BR5 1-Bus": (0.51, 0.53, 0.55, 0.55, 0.55, 0.55, 0.56, 0.56),
        "M5BR2 N-Bus": (0.55, 0.58, 0.60, 0.60, 0.61, 0.61, 0.61, 0.61),
        "M5BR2 1-Bus": (0.55, 0.58, 0.60, 0.60, 0.60, 0.60, 0.61, 0.61),
    },
)

PAPER_TABLE4 = _multi_table(
    "table4-paper",
    "Paper Table 4: multiple issue units, sequential issue, vectorizable code",
    {
        "M11BR5 N-Bus": (0.45, 0.48, 0.49, 0.49, 0.49, 0.50, 0.50, None),
        "M11BR5 1-Bus": (0.45, 0.48, 0.48, 0.48, 0.49, 0.49, 0.49, None),
        "M11BR2 N-Bus": (0.49, 0.53, 0.53, 0.54, 0.54, 0.54, 0.54, None),
        "M11BR2 1-Bus": (0.49, 0.52, 0.52, 0.53, 0.53, 0.53, 0.53, 0.53),
        "M5BR5 N-Bus": (0.54, 0.58, 0.58, 0.59, 0.59, 0.59, 0.59, 0.60),
        "M5BR5 1-Bus": (0.54, 0.57, 0.57, 0.59, 0.59, 0.59, 0.59, None),
        "M5BR2 N-Bus": (0.59, 0.64, 0.64, 0.66, 0.66, 0.66, 0.66, None),
        "M5BR2 1-Bus": (0.59, 0.63, 0.64, 0.65, 0.65, 0.65, 0.65, None),
    },
)

PAPER_TABLE5 = _multi_table(
    "table5-paper",
    "Paper Table 5: multiple issue units, out-of-order issue, scalar code",
    {
        "M11BR5 N-Bus": (0.44, 0.46, 0.48, 0.50, 0.49, 0.50, 0.51, None),
        "M11BR5 1-Bus": (0.44, 0.46, 0.47, 0.50, 0.48, 0.49, 0.51, None),
        "M11BR2 N-Bus": (0.47, 0.49, 0.51, 0.52, 0.51, 0.52, 0.52, None),
        "M11BR2 1-Bus": (0.47, 0.49, 0.50, 0.51, 0.51, 0.51, 0.52, None),
        "M5BR5 N-Bus": (0.51, 0.55, 0.56, 0.62, 0.59, 0.60, 0.63, None),
        "M5BR5 1-Bus": (0.51, 0.54, 0.56, 0.61, 0.59, 0.60, 0.62, 0.61),
        "M5BR2 N-Bus": (0.55, 0.60, 0.61, 0.64, 0.63, 0.63, 0.65, 0.64),
        "M5BR2 1-Bus": (0.55, 0.60, 0.61, 0.64, 0.63, 0.63, 0.65, 0.64),
    },
)

PAPER_TABLE6 = _multi_table(
    "table6-paper",
    "Paper Table 6: multiple issue units, out-of-order issue, vectorizable code",
    {
        "M11BR5 N-Bus": (0.45, 0.48, 0.50, 0.52, 0.51, 0.53, 0.54, 0.54),
        "M11BR5 1-Bus": (0.45, 0.48, 0.49, 0.51, 0.50, 0.53, 0.53, None),
        "M11BR2 N-Bus": (0.49, 0.53, 0.54, 0.55, 0.54, 0.57, 0.57, None),
        "M11BR2 1-Bus": (0.49, 0.52, 0.53, 0.55, 0.53, 0.56, 0.56, 0.56),
        "M5BR5 N-Bus": (0.54, 0.58, 0.59, 0.62, 0.61, 0.64, 0.65, 0.64),
        "M5BR5 1-Bus": (0.54, 0.58, 0.59, 0.62, 0.60, 0.63, 0.64, 0.64),
        "M5BR2 N-Bus": (0.59, 0.64, 0.65, 0.68, 0.66, 0.69, 0.69, None),
        "M5BR2 1-Bus": (0.59, 0.65, 0.65, 0.68, 0.66, 0.69, 0.69, None),
    },
)

# ----------------------------------------------------------------------
# Tables 7-8: RUU dependency resolution
# rows "<config>/R<size>", columns "x<units> <bus>"
# ----------------------------------------------------------------------

_RUU_COLUMNS = tuple(
    f"x{units} {bus}" for units in RUU_UNITS for bus in BUS_LABELS
)


def _ruu_table(table_id: str, title: str, data) -> ResultTable:
    rows = []
    for config in CONFIG_NAMES:
        for size in RUU_SIZES:
            cells = data[config][size]
            values = dict(zip(_RUU_COLUMNS, cells))
            rows.append((f"{config}/R{size}", values))
    return ResultTable(
        table_id=table_id,
        title=title,
        columns=_RUU_COLUMNS,
        rows=tuple(rows),
    )


PAPER_TABLE7 = _ruu_table(
    "table7-paper",
    "Paper Table 7: multiple issue units with dependency resolution, scalar code",
    {
        "M11BR5": {
            10: (0.59, 0.59, 0.61, 0.59, 0.62, 0.59, 0.62, 0.59),
            20: (0.67, 0.67, 0.76, 0.69, 0.79, 0.69, 0.79, 0.69),
            30: (0.69, 0.69, 0.76, 0.70, 0.82, 0.70, 0.82, 0.70),
            40: (0.72, 0.72, 0.76, 0.74, 0.83, 0.74, 0.83, 0.74),
            50: (0.72, 0.72, 0.78, 0.75, 0.83, 0.75, 0.83, 0.75),
            100: (0.72, 0.72, 0.78, 0.75, 0.83, 0.75, 0.83, 0.75),
        },
        "M11BR2": {
            10: (0.60, 0.60, 0.61, 0.60, 0.62, 0.60, 0.62, 0.60),
            20: (0.71, 0.71, 0.79, 0.72, 0.81, 0.72, 0.80, 0.72),
            30: (0.73, 0.73, 0.80, 0.75, 0.82, 0.75, 0.83, 0.75),
            40: (0.74, 0.74, 0.81, 0.78, 0.83, 0.78, 0.82, 0.78),
            50: (0.74, 0.74, 0.83, 0.78, 0.83, 0.78, 0.83, 0.78),
            100: (0.74, 0.74, 0.83, 0.78, 0.83, 0.78, 0.83, 0.78),
        },
        "M5BR5": {
            10: (0.66, 0.66, 0.71, 0.68, 0.74, 0.68, 0.74, 0.68),
            20: (0.70, 0.70, 0.81, 0.74, 0.82, 0.74, 0.84, 0.74),
            30: (0.72, 0.72, 0.83, 0.77, 0.85, 0.77, 0.86, 0.77),
            40: (0.75, 0.75, 0.84, 0.80, 0.86, 0.80, 0.87, 0.80),
            50: (0.75, 0.75, 0.85, 0.80, 0.86, 0.80, 0.87, 0.80),
            100: (0.75, 0.75, 0.85, 0.81, 0.86, 0.81, 0.87, 0.81),
        },
        "M5BR2": {
            10: (0.70, 0.70, 0.73, 0.71, 0.74, 0.71, 0.74, 0.71),
            20: (0.75, 0.75, 0.86, 0.77, 0.85, 0.78, 0.86, 0.78),
            30: (0.78, 0.78, 0.87, 0.80, 0.88, 0.81, 0.87, 0.81),
            40: (0.80, 0.80, 0.88, 0.81, 0.89, 0.84, 0.89, 0.84),
            50: (0.80, 0.80, 0.88, 0.81, 0.89, 0.84, 0.89, 0.84),
            100: (0.80, 0.80, 0.88, 0.84, 0.89, 0.84, 0.89, 0.84),
        },
    },
)

PAPER_TABLE8 = _ruu_table(
    "table8-paper",
    "Paper Table 8: multiple issue units with dependency resolution, "
    "vectorizable code",
    {
        "M11BR5": {
            10: (0.62, 0.62, 0.64, 0.63, 0.65, 0.63, 0.65, 0.62),
            20: (0.76, 0.76, 0.91, 0.81, 0.93, 0.81, 0.94, 0.81),
            30: (0.80, 0.80, 1.04, 0.86, 1.10, 0.86, 1.13, 0.86),
            40: (0.81, 0.81, 1.08, 0.89, 1.15, 0.89, 1.21, 0.89),  # reconstructed
            50: (0.81, 0.81, 1.15, 0.90, 1.23, 0.90, 1.29, 0.90),  # reconstructed
            100: (0.81, 0.81, 1.23, 0.92, 1.46, 0.93, 1.59, 0.93),
        },
        "M11BR2": {
            10: (0.63, 0.63, 0.65, 0.63, 0.65, 0.63, 0.65, 0.63),
            20: (0.81, 0.81, 0.96, 0.85, 0.97, 0.85, 0.98, 0.85),
            30: (0.85, 0.85, 1.12, 0.92, 1.19, 0.92, 1.22, 0.92),
            40: (0.88, 0.88, 1.21, 0.97, 1.29, 0.97, 1.32, 0.97),
            50: (0.88, 0.88, 1.31, 1.00, 1.40, 1.00, 1.45, 1.00),
            100: (0.88, 0.88, 1.44, 1.03, 1.73, 1.03, 1.87, 1.03),
        },
        "M5BR5": {
            10: (0.73, 0.73, 0.78, 0.74, 0.78, 0.74, 0.79, 0.74),
            20: (0.80, 0.80, 0.99, 0.87, 1.04, 0.89, 1.05, 0.89),
            30: (0.82, 0.82, 1.08, 0.91, 1.18, 0.93, 1.22, 0.94),
            40: (0.82, 0.82, 1.11, 0.93, 1.22, 0.96, 1.29, 0.97),
            50: (0.82, 0.82, 1.16, 0.94, 1.29, 0.97, 1.35, 0.97),
            100: (0.82, 0.82, 1.22, 0.94, 1.50, 0.97, 1.65, 0.98),
        },
        "M5BR2": {
            10: (0.75, 0.75, 0.78, 0.76, 0.79, 0.76, 0.79, 0.76),
            20: (0.89, 0.89, 1.08, 0.95, 1.12, 0.95, 1.13, 0.95),
            30: (0.91, 0.91, 1.23, 0.99, 1.34, 0.99, 1.36, 0.99),
            40: (0.91, 0.91, 1.29, 1.02, 1.40, 1.02, 1.47, 1.02),
            50: (0.91, 0.91, 1.36, 1.02, 1.50, 1.02, 1.59, 1.02),
            100: (0.91, 0.91, 1.45, 1.03, 1.78, 1.03, 2.01, 1.03),
        },
    },
)

#: Section 3.3's quoted single-issue dependency-resolution rates (M11BR5).
PAPER_SECTION33 = {
    "scalar": 0.72,
    "vectorizable": 0.81,
}

#: All paper tables by experiment id.
PAPER_TABLES = {
    "table1": PAPER_TABLE1,
    "table2": PAPER_TABLE2,
    "table3": PAPER_TABLE3,
    "table4": PAPER_TABLE4,
    "table5": PAPER_TABLE5,
    "table6": PAPER_TABLE6,
    "table7": PAPER_TABLE7,
    "table8": PAPER_TABLE8,
}
