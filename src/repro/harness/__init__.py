"""Evaluation harness: experiment definitions, aggregation and reporting."""

from .aggregate import (
    arithmetic_mean,
    harmonic_mean,
    hmean_by_key,
    relative_error,
)
from .engine import EngineStats, PlanRun, run_plan
from .plans import PLAN_BUILDERS, Cell, ExperimentPlan, build_plan
from .progress import ProgressCallback, ProgressEvent
from .experiments import (
    EXPERIMENTS,
    class_traces,
    per_loop_table,
    section33,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
)
from .paper import PAPER_SECTION33, PAPER_TABLES
from .tables import ResultTable, compare_tables

__all__ = [
    "Cell",
    "EXPERIMENTS",
    "EngineStats",
    "ExperimentPlan",
    "PAPER_SECTION33",
    "PAPER_TABLES",
    "PLAN_BUILDERS",
    "PlanRun",
    "ProgressCallback",
    "ProgressEvent",
    "ResultTable",
    "arithmetic_mean",
    "build_plan",
    "class_traces",
    "compare_tables",
    "run_plan",
    "harmonic_mean",
    "hmean_by_key",
    "per_loop_table",
    "relative_error",
    "section33",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
]
