"""Evaluation harness: experiment definitions, aggregation and reporting."""

from .aggregate import (
    arithmetic_mean,
    harmonic_mean,
    hmean_by_key,
    relative_error,
)
from .experiments import (
    EXPERIMENTS,
    class_traces,
    per_loop_table,
    section33,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from .paper import PAPER_SECTION33, PAPER_TABLES
from .tables import ResultTable, compare_tables

__all__ = [
    "EXPERIMENTS",
    "PAPER_SECTION33",
    "PAPER_TABLES",
    "ResultTable",
    "arithmetic_mean",
    "class_traces",
    "compare_tables",
    "harmonic_mean",
    "hmean_by_key",
    "per_loop_table",
    "relative_error",
    "section33",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
]
