"""Parallel experiment engine: evaluate plans over a process pool.

The engine takes an :class:`~repro.harness.plans.ExperimentPlan`,
evaluates every cell -- in-process for ``workers=1``, over a
``ProcessPoolExecutor`` otherwise -- and merges the per-cell values back
into a :class:`~repro.harness.tables.ResultTable`.

Determinism: cell values depend only on the cell (trace content and
machine timing are fully deterministic), and the merge harmonic-means
grouped values in *plan order*, never in completion order.  Parallel
output is therefore bit-identical to serial output.

Persistence: when given a :class:`~repro.trace.DiskCache`, workers look
up each cell result (and each trace) by content hash before computing,
and store whatever they had to compute.  A corrupted or missing entry is
indistinguishable from a cold cache -- it only costs time.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core import config_by_name
from ..core.registry import build_simulator
from ..kernels import build_kernel
from ..limits import compute_limits
from ..trace import DiskCache, Trace
from .aggregate import harmonic_mean
from .plans import Cell, ExperimentPlan
from .tables import ResultTable

#: Bump to invalidate previously stored cell results after a change to
#: the timing models or the record schema.
RESULT_SCHEMA_VERSION = 1

_LIMIT_COLUMNS = ("pseudo-dataflow", "resource", "actual")


def default_workers() -> int:
    """Default fan-out width: one worker per CPU."""
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------

def trace_key(loop: int, n: int) -> Dict[str, Any]:
    """Identity of a verified dynamic trace (scheduled, no unrolling)."""
    return {
        "kind": "trace",
        "loop": loop,
        "n": n,
        "schedule": True,
        "unroll": 1,
        "explicit_addressing": False,
    }


def cell_key(cell: Cell) -> Dict[str, Any]:
    """Identity of one cell result (table/row/column independent)."""
    key = trace_key(cell.loop, cell.n)
    key.update({
        "kind": "cell",
        "machine": cell.machine,
        "config": cell.config,
        "serial": cell.serial,
        "schema": RESULT_SCHEMA_VERSION,
    })
    return key


# ----------------------------------------------------------------------
# Cell evaluation (runs in workers; everything here must be picklable)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CellOutcome:
    """What evaluating one cell produced (plus bookkeeping)."""

    index: int
    values: Mapping[str, float]
    seconds: float
    result_hit: bool
    trace_source: str  # "memo" | "disk" | "built" | "cached-result"


#: Per-process trace memo: (loop, n) -> verified Trace.  With the default
#: ``fork`` start method child workers inherit a snapshot and then extend
#: their own copy.
_TRACE_MEMO: Dict[Tuple[int, int], Trace] = {}

#: Per-process DiskCache handle, set by the pool initializer.
_WORKER_CACHE: Optional[DiskCache] = None


def _pool_init(cache_dir: Optional[str]) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = DiskCache(cache_dir) if cache_dir is not None else None


def clear_process_memo() -> None:
    """Forget this process's in-memory trace memo (tests use this)."""
    _TRACE_MEMO.clear()


def _resolve_trace(
    loop: int, n: int, cache: Optional[DiskCache]
) -> Tuple[Trace, str]:
    memo_key = (loop, n)
    trace = _TRACE_MEMO.get(memo_key)
    if trace is not None:
        return trace, "memo"
    if cache is not None:
        trace = cache.load_trace(trace_key(loop, n))
        if trace is not None:
            _TRACE_MEMO[memo_key] = trace
            return trace, "disk"
    # build_kernel(...).trace() verifies against the NumPy reference and
    # memoises in the process-wide trace cache as well.
    trace = build_kernel(loop, n).trace()
    _TRACE_MEMO[memo_key] = trace
    if cache is not None:
        cache.store_trace(trace_key(loop, n), trace)
    return trace, "built"


def _compute_record(
    cell: Cell, cache: Optional[DiskCache]
) -> Tuple[Dict[str, Any], str]:
    trace, source = _resolve_trace(cell.loop, cell.n, cache)
    config = config_by_name(cell.config)
    if cell.is_limits:
        report = compute_limits(trace, config, serial=cell.serial)
        return {
            "limits": {
                "pseudo-dataflow": report.pseudo_dataflow_rate,
                "resource": report.resource_rate,
                "actual": report.actual_rate,
            }
        }, source
    result = build_simulator(cell.machine).simulate(trace, config)
    return {
        "trace": result.trace_name,
        "simulator": result.simulator,
        "instructions": result.instructions,
        "cycles": result.cycles,
    }, source


def _values_from_record(cell: Cell, record: Mapping[str, Any]) -> Dict[str, float]:
    if cell.is_limits:
        limits = record["limits"]
        return {column: float(limits[column]) for column in cell.columns}
    rate = int(record["instructions"]) / int(record["cycles"])
    return {cell.columns[0]: rate}


def evaluate_cell(
    index: int, cell: Cell, cache: Optional[DiskCache]
) -> CellOutcome:
    """Evaluate one cell, consulting and feeding the cache if given."""
    start = time.perf_counter()
    record = cache.load_result(cell_key(cell)) if cache is not None else None
    if record is not None:
        try:
            values = _values_from_record(cell, record)
            return CellOutcome(
                index=index,
                values=values,
                seconds=time.perf_counter() - start,
                result_hit=True,
                trace_source="cached-result",
            )
        except (KeyError, TypeError, ValueError, ZeroDivisionError):
            # A record that does not decode cleanly is treated exactly
            # like a miss: recompute and overwrite it.
            record = None
    record, source = _compute_record(cell, cache)
    if cache is not None:
        cache.store_result(cell_key(cell), record)
    return CellOutcome(
        index=index,
        values=_values_from_record(cell, record),
        seconds=time.perf_counter() - start,
        result_hit=False,
        trace_source=source,
    )


def _evaluate_in_pool(payload: Tuple[int, Cell]) -> CellOutcome:
    index, cell = payload
    return evaluate_cell(index, cell, _WORKER_CACHE)


# ----------------------------------------------------------------------
# Deterministic merge + stats
# ----------------------------------------------------------------------

@dataclass
class EngineStats:
    """Run accounting: the footer of every engine invocation."""

    table_id: str
    cells: int
    workers: int
    wall_seconds: float = 0.0
    cell_seconds: float = 0.0
    max_cell_seconds: float = 0.0
    result_hits: int = 0
    traces_built: int = 0
    traces_loaded: int = 0
    cache_enabled: bool = False

    @property
    def result_misses(self) -> int:
        return self.cells - self.result_hits

    def footer(self) -> str:
        if self.cache_enabled:
            cache = (
                f"result cache {self.result_hits} hit / "
                f"{self.result_misses} miss; traces {self.traces_built} "
                f"built, {self.traces_loaded} loaded"
            )
        else:
            cache = "cache disabled"
        return (
            f"[{self.table_id}: {self.cells} cells in "
            f"{self.wall_seconds:.1f}s wall / {self.cell_seconds:.1f}s cell "
            f"time (max {self.max_cell_seconds:.2f}s), "
            f"workers={self.workers}; {cache}]"
        )


@dataclass(frozen=True)
class PlanRun:
    """A finished plan evaluation: the table plus its run statistics."""

    table: ResultTable
    stats: EngineStats


def merge_outcomes(
    plan: ExperimentPlan, outcomes: List[CellOutcome]
) -> ResultTable:
    """Assemble the table from cell outcomes, in plan order.

    Grouped values are harmonic-meaned in cell order (class loop order),
    matching the paper's per-class aggregation exactly -- and making the
    merge independent of completion order.
    """
    grouped: Dict[Tuple[str, str], List[float]] = {}
    for outcome in sorted(outcomes, key=lambda o: o.index):
        cell = plan.cells[outcome.index]
        for column, value in outcome.values.items():
            grouped.setdefault((cell.row, column), []).append(value)
    rows = []
    for row in plan.rows:
        values = {
            column: harmonic_mean(grouped[(row, column)])
            for column in plan.columns
            if (row, column) in grouped
        }
        rows.append((row, values))
    return ResultTable(
        table_id=plan.table_id,
        title=plan.title,
        columns=plan.columns,
        rows=tuple(rows),
    )


def run_plan(
    plan: ExperimentPlan,
    *,
    workers: Optional[int] = None,
    cache: Optional[DiskCache] = None,
) -> PlanRun:
    """Evaluate every cell of *plan* and merge deterministically.

    ``workers=1`` (or a single-cell plan) runs in-process; anything
    larger fans out over a ``ProcessPoolExecutor``.  *cache* is optional:
    without it the engine is a pure compute path.
    """
    workers = default_workers() if workers is None else max(1, int(workers))
    start = time.perf_counter()
    payloads = list(enumerate(plan.cells))

    if workers == 1 or len(payloads) <= 1:
        outcomes = [
            evaluate_cell(index, cell, cache) for index, cell in payloads
        ]
    else:
        cache_dir = str(cache.root) if cache is not None else None
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_init,
            initargs=(cache_dir,),
        ) as pool:
            chunk = max(1, len(payloads) // (workers * 4))
            outcomes = list(
                pool.map(_evaluate_in_pool, payloads, chunksize=chunk)
            )

    table = merge_outcomes(plan, outcomes)
    stats = EngineStats(
        table_id=plan.table_id,
        cells=len(plan.cells),
        workers=workers,
        wall_seconds=time.perf_counter() - start,
        cell_seconds=sum(o.seconds for o in outcomes),
        max_cell_seconds=max((o.seconds for o in outcomes), default=0.0),
        result_hits=sum(1 for o in outcomes if o.result_hit),
        traces_built=sum(1 for o in outcomes if o.trace_source == "built"),
        traces_loaded=sum(1 for o in outcomes if o.trace_source == "disk"),
        cache_enabled=cache is not None,
    )
    return PlanRun(table=table, stats=stats)
