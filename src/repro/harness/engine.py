"""Parallel experiment engine: evaluate plans over a process pool.

The engine takes an :class:`~repro.harness.plans.ExperimentPlan`,
evaluates every cell -- in-process for ``workers=1``, over a
``ProcessPoolExecutor`` otherwise -- and merges the per-cell values back
into a :class:`~repro.harness.tables.ResultTable`.

Determinism: cell values depend only on the cell (trace content and
machine timing are fully deterministic), and the merge harmonic-means
grouped values in *plan order*, never in completion order.  Parallel
output is therefore bit-identical to serial output.

Persistence: when given a :class:`~repro.trace.DiskCache`, workers look
up each cell result (and each trace) by content hash before computing,
and store whatever they had to compute.  A corrupted or missing entry is
indistinguishable from a cold cache -- it only costs time (and is
counted: corruption rebuilds surface in the metrics and the footer).

Observability: every evaluation aggregates structured metrics
(:mod:`repro.obs.metrics`) -- per-cell wall time, queue wait, cache
hit/miss/corruption counts, per-worker utilization -- and, with
``observe=True``, records a span trace (plan -> cell -> simulate/limits)
and writes a durable run manifest next to the cache entries
(:mod:`repro.obs.manifest`).  Workers ship their measurements back inside
each :class:`CellOutcome` (plain picklable data); the parent merges, so
no cross-process state is ever shared.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from datetime import datetime, timezone
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core import config_by_name, fastpath
from ..core.registry import build_simulator
from ..limits import compute_limits
from ..obs import (
    TELEMETRY_PREFIX,
    MetricsRegistry,
    RunManifest,
    Tracer,
    current_git_sha,
    new_run_id,
    write_manifest,
)
from ..trace import DiskCache, Trace, default_cache_dir
from ..trace.sources import trace_source
from .aggregate import arithmetic_mean, harmonic_mean
from .plans import Cell, ExperimentPlan
from .progress import ProgressCallback, ProgressEvent
from .tables import ResultTable

#: Bump to invalidate previously stored cell results after a change to
#: the timing models or the record schema.  v2: cell records carry the
#: result's ``detail`` mapping (fast-path ``tlm.*`` telemetry included).
RESULT_SCHEMA_VERSION = 2

_LIMIT_COLUMNS = ("pseudo-dataflow", "resource", "actual")

#: DiskCache counter key -> metric name published per cell.
_CACHE_METRIC_NAMES = {
    "trace_hits": "cache.trace.hits",
    "trace_misses": "cache.trace.misses",
    "trace_corruptions": "cache.trace.corruptions",
    "result_hits": "cache.result.hits",
    "result_misses": "cache.result.misses",
    "result_corruptions": "cache.result.corruptions",
}

def _fastpath_deltas(
    before: Mapping[str, int], after: Mapping[str, int]
) -> Dict[str, float]:
    """Non-zero ``fastpath.stats()`` deltas as ``fastpath.*`` metrics.

    Every counter the stats expose is published -- including the
    per-backend keys (``python.fast_runs``, ``batch.sweeps``, ...), so
    manifests attribute fast runs to the backend that served them.
    """
    deltas: Dict[str, float] = {}
    for key, value in after.items():
        delta = value - before.get(key, 0)
        if delta:
            deltas[f"fastpath.{key}"] = float(delta)
    return deltas


def _telemetry_metrics(record: Mapping[str, Any]) -> Dict[str, float]:
    """A cell record's ``tlm.*`` detail entries as ``sim.*`` metrics.

    The rename marks the aggregation boundary: per-replay telemetry
    (``tlm.stall.RAW`` on one result) becomes a run-level counter
    (``sim.stall.RAW`` summed over every cell), alongside the
    ``cache.*`` / ``fastpath.*`` counters in manifests and
    ``repro stats``.
    """
    detail = record.get("detail")
    if not detail:
        return {}
    plen = len(TELEMETRY_PREFIX)
    return {
        "sim." + key[plen:]: float(value)
        for key, value in detail.items()
        if key.startswith(TELEMETRY_PREFIX)
    }


def default_workers() -> int:
    """Default fan-out width: one worker per CPU."""
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------

def trace_key(loop: int, n: int) -> Dict[str, Any]:
    """Identity of a verified dynamic trace (scheduled, no unrolling)."""
    return {
        "kind": "trace",
        "loop": loop,
        "n": n,
        "schedule": True,
        "unroll": 1,
        "explicit_addressing": False,
    }


def cell_key(cell: Cell) -> Dict[str, Any]:
    """Identity of one cell result (table/row/column independent)."""
    key = trace_key(cell.loop, cell.n)
    key.update({
        "kind": "cell",
        "machine": cell.machine,
        "config": cell.config,
        "serial": cell.serial,
        "schema": RESULT_SCHEMA_VERSION,
    })
    return key


# ----------------------------------------------------------------------
# Cell evaluation (runs in workers; everything here must be picklable)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CellOutcome:
    """What evaluating one cell produced (plus bookkeeping).

    ``started``/``ended`` and the span endpoints are ``time.monotonic()``
    readings; with the default ``fork`` start method that clock is
    system-wide, so the parent can nest worker spans directly under its
    own run trace.
    """

    index: int
    values: Mapping[str, float]
    seconds: float
    result_hit: bool
    trace_source: str  # "memo" | "disk" | "built" | "cached-result"
    pid: int = 0
    queue_wait: float = 0.0
    started: float = 0.0
    ended: float = 0.0
    spans: Tuple[Tuple[str, float, float], ...] = ()
    metrics: Mapping[str, float] = field(default_factory=dict)


#: Per-process trace memo: (loop, n) -> verified Trace.  With the default
#: ``fork`` start method child workers inherit a snapshot and then extend
#: their own copy.
_TRACE_MEMO: Dict[Tuple[int, int], Trace] = {}

#: Per-process DiskCache handle, set by the pool initializer.
_WORKER_CACHE: Optional[DiskCache] = None


def _pool_init(cache_dir: Optional[str]) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = DiskCache(cache_dir) if cache_dir is not None else None


def clear_process_memo() -> None:
    """Forget this process's in-memory trace memo (tests use this)."""
    _TRACE_MEMO.clear()


def _resolve_trace(
    loop: int, n: int, cache: Optional[DiskCache]
) -> Tuple[Trace, str]:
    memo_key = (loop, n)
    trace = _TRACE_MEMO.get(memo_key)
    if trace is not None:
        return trace, "memo"
    if cache is not None:
        trace = cache.load_trace(trace_key(loop, n))
        if trace is not None:
            _TRACE_MEMO[memo_key] = trace
            return trace, "disk"
    # The registry resolves kernel:<loop>:n=<n> to build_kernel(...)
    # .trace(), which verifies against the NumPy reference and memoises
    # in the process-wide trace cache as well.
    trace = trace_source(f"kernel:{loop}:n={n}")
    _TRACE_MEMO[memo_key] = trace
    if cache is not None:
        cache.store_trace(trace_key(loop, n), trace)
    return trace, "built"


def _compute_record(
    cell: Cell,
    cache: Optional[DiskCache],
    spans: List[Tuple[str, float, float]],
) -> Tuple[Dict[str, Any], str]:
    mark = time.monotonic()
    trace, source = _resolve_trace(cell.loop, cell.n, cache)
    spans.append((f"trace:resolve:{cell.loop}", mark, time.monotonic()))
    config = config_by_name(cell.config)
    if cell.is_limits:
        mark = time.monotonic()
        report = compute_limits(trace, config, serial=cell.serial)
        spans.append(("limits", mark, time.monotonic()))
        return {
            "limits": {
                "pseudo-dataflow": report.pseudo_dataflow_rate,
                "resource": report.resource_rate,
                "actual": report.actual_rate,
            }
        }, source
    mark = time.monotonic()
    result = build_simulator(cell.machine).simulate(trace, config)
    spans.append((f"simulate:{cell.machine}", mark, time.monotonic()))
    return {
        "trace": result.trace_name,
        "simulator": result.simulator,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "detail": dict(result.detail or {}),
    }, source


def _values_from_record(cell: Cell, record: Mapping[str, Any]) -> Dict[str, float]:
    if cell.is_limits:
        limits = record["limits"]
        return {column: float(limits[column]) for column in cell.columns}
    if cell.metric != "rate":
        # Detail-backed metric (prediction_accuracy, vp_accuracy, ...).
        # A record missing the key raises KeyError, which the callers
        # treat exactly like a corrupt entry: recompute and overwrite.
        detail = record.get("detail") or {}
        return {cell.columns[0]: float(detail[cell.metric])}
    rate = int(record["instructions"]) / int(record["cycles"])
    return {cell.columns[0]: rate}


def evaluate_cell(
    index: int,
    cell: Cell,
    cache: Optional[DiskCache],
    *,
    enqueued: Optional[float] = None,
) -> CellOutcome:
    """Evaluate one cell, consulting and feeding the cache if given.

    *enqueued* is the parent's ``time.monotonic()`` reading when the cell
    was handed to the pool; the difference to the worker's start is the
    cell's queue wait.
    """
    started = time.monotonic()
    start = time.perf_counter()
    queue_wait = max(0.0, started - enqueued) if enqueued is not None else 0.0
    counters_before = cache.counters() if cache is not None else None
    fastpath_before = fastpath.stats()
    spans: List[Tuple[str, float, float]] = []

    def finish(
        values: Mapping[str, float],
        result_hit: bool,
        trace_source: str,
        telemetry: Optional[Mapping[str, float]] = None,
    ) -> CellOutcome:
        ended = time.monotonic()
        metrics: Dict[str, float] = {}
        if counters_before is not None:
            after = cache.counters()
            for key, name in _CACHE_METRIC_NAMES.items():
                delta = after.get(key, 0) - counters_before.get(key, 0)
                if delta:
                    metrics[name] = float(delta)
        metrics.update(_fastpath_deltas(fastpath_before, fastpath.stats()))
        if telemetry:
            metrics.update(telemetry)
        return CellOutcome(
            index=index,
            values=values,
            seconds=time.perf_counter() - start,
            result_hit=result_hit,
            trace_source=trace_source,
            pid=os.getpid(),
            queue_wait=queue_wait,
            started=started,
            ended=ended,
            spans=tuple(spans),
            metrics=metrics,
        )

    record = cache.load_result(cell_key(cell)) if cache is not None else None
    if record is not None:
        try:
            values = _values_from_record(cell, record)
            return finish(
                values, True, "cached-result", _telemetry_metrics(record)
            )
        except (KeyError, TypeError, ValueError, ZeroDivisionError):
            # A record that does not decode cleanly is treated exactly
            # like a miss: recompute and overwrite it.
            record = None
    record, source = _compute_record(cell, cache, spans)
    if cache is not None:
        cache.store_result(cell_key(cell), record)
    return finish(
        _values_from_record(cell, record), False, source,
        _telemetry_metrics(record),
    )


def evaluate_sweep(
    group: List[Tuple[int, Cell]],
    cache: Optional[DiskCache],
    *,
    backend: str = "auto",
    enqueued: Optional[float] = None,
) -> List[CellOutcome]:
    """Evaluate same-trace simulator cells as one fast-path sweep.

    Every cell in *group* must share ``(loop, n)`` and be a simulator
    cell (not limits).  Cached results are honoured per cell exactly as
    in :func:`evaluate_cell`; the remaining misses share one trace
    resolution and one :func:`repro.core.fastpath.simulate_sweep` call
    through *backend* -- gating is per sweep member, so a hooked or
    fast-path-disabled member still runs its reference loop and the
    merged table stays bit-identical to per-cell evaluation.

    The group's metric deltas (fast-path counters, cache counters) ride
    on the first miss outcome; the sweep wall time is split evenly
    across the misses so run totals still add up.
    """
    started = time.monotonic()
    start = time.perf_counter()
    queue_wait = max(0.0, started - enqueued) if enqueued is not None else 0.0
    outcomes: List[CellOutcome] = []
    pending: List[Tuple[int, Cell]] = []
    load_metrics: Dict[str, float] = {}
    for index, cell in group:
        lookup_before = cache.counters() if cache is not None else None
        record = (
            cache.load_result(cell_key(cell)) if cache is not None else None
        )
        lookup_delta: Dict[str, float] = {}
        if lookup_before is not None:
            lookup_after = cache.counters()
            for key, name in _CACHE_METRIC_NAMES.items():
                delta = lookup_after.get(key, 0) - lookup_before.get(key, 0)
                if delta:
                    lookup_delta[name] = float(delta)
        if record is not None:
            try:
                values = _values_from_record(cell, record)
                hit_telemetry = _telemetry_metrics(record)
            except (KeyError, TypeError, ValueError, ZeroDivisionError):
                values = None
            if values is not None:
                now = time.monotonic()
                outcomes.append(CellOutcome(
                    index=index,
                    values=values,
                    seconds=time.perf_counter() - start,
                    result_hit=True,
                    trace_source="cached-result",
                    pid=os.getpid(),
                    queue_wait=queue_wait if not outcomes else 0.0,
                    started=started,
                    ended=now,
                    metrics={**lookup_delta, **hit_telemetry},
                ))
                start = time.perf_counter()
                started = now
                continue
        # A missed (or corrupt) lookup's counters ride with the sweep
        # metrics below.
        for name, delta in lookup_delta.items():
            load_metrics[name] = load_metrics.get(name, 0.0) + delta
        pending.append((index, cell))
    if not pending:
        return outcomes
    if outcomes:
        queue_wait = 0.0

    counters_before = cache.counters() if cache is not None else None
    fastpath_before = fastpath.stats()
    spans: List[Tuple[str, float, float]] = []
    first = pending[0][1]
    mark = time.monotonic()
    trace, source = _resolve_trace(first.loop, first.n, cache)
    spans.append((f"trace:resolve:{first.loop}", mark, time.monotonic()))
    items = [
        (build_simulator(cell.machine), config_by_name(cell.config))
        for _, cell in pending
    ]
    mark = time.monotonic()
    results = fastpath.simulate_sweep(trace, items, backend=backend)
    spans.append(
        (f"sweep:{first.loop}x{len(pending)}", mark, time.monotonic())
    )

    metrics: Dict[str, float] = dict(load_metrics)
    if counters_before is not None:
        after = cache.counters()
        for key, name in _CACHE_METRIC_NAMES.items():
            delta = after.get(key, 0) - counters_before.get(key, 0)
            if delta:
                metrics[name] = metrics.get(name, 0.0) + float(delta)
    metrics.update(_fastpath_deltas(fastpath_before, fastpath.stats()))

    ended = time.monotonic()
    share = (time.perf_counter() - start) / len(pending)
    records: List[Dict[str, Any]] = []
    for (index, cell), result in zip(pending, results):
        record = {
            "trace": result.trace_name,
            "simulator": result.simulator,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "detail": dict(result.detail or {}),
        }
        records.append(record)
        if cache is not None:
            cache.store_result(cell_key(cell), record)
        # The whole sweep's telemetry rides with the shared metrics (on
        # the first miss outcome), like the fast-path counter deltas.
        for name, value in _telemetry_metrics(record).items():
            metrics[name] = metrics.get(name, 0.0) + value
    for position, ((index, cell), record) in enumerate(zip(pending, records)):
        outcomes.append(CellOutcome(
            index=index,
            values=_values_from_record(cell, record),
            seconds=share,
            result_hit=False,
            trace_source=source if position == 0 else "memo",
            pid=os.getpid(),
            queue_wait=queue_wait if position == 0 else 0.0,
            started=started,
            ended=ended,
            spans=tuple(spans) if position == 0 else (),
            metrics=metrics if position == 0 else {},
        ))
    return outcomes


def _evaluate_in_pool(
    payload: Tuple[int, Cell, Optional[float]]
) -> CellOutcome:
    index, cell, enqueued = payload
    return evaluate_cell(index, cell, _WORKER_CACHE, enqueued=enqueued)


def _evaluate_sweep_in_pool(
    payload: Tuple[List[Tuple[int, Cell]], str, Optional[float]]
) -> List[CellOutcome]:
    group, backend, enqueued = payload
    return evaluate_sweep(
        group, _WORKER_CACHE, backend=backend, enqueued=enqueued
    )


# ----------------------------------------------------------------------
# Deterministic merge + stats
# ----------------------------------------------------------------------

@dataclass
class EngineStats:
    """Run accounting: the footer of every engine invocation."""

    table_id: str
    cells: int
    workers: int
    wall_seconds: float = 0.0
    cell_seconds: float = 0.0
    max_cell_seconds: float = 0.0
    result_hits: int = 0
    traces_built: int = 0
    traces_loaded: int = 0
    cache_enabled: bool = False
    corrupt_rebuilds: int = 0
    queue_wait_seconds: float = 0.0
    worker_utilization: Dict[int, float] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def result_misses(self) -> int:
        return self.cells - self.result_hits

    @property
    def cache_hit_rate(self) -> Optional[float]:
        return self.result_hits / self.cells if self.cells else None

    @property
    def mean_worker_utilization(self) -> float:
        if not self.worker_utilization:
            return 0.0
        values = self.worker_utilization.values()
        return sum(values) / len(values)

    def footer(self) -> str:
        if self.cache_enabled:
            cache = (
                f"result cache {self.result_hits} hit / "
                f"{self.result_misses} miss; traces {self.traces_built} "
                f"built, {self.traces_loaded} loaded"
            )
            if self.corrupt_rebuilds:
                cache += f"; {self.corrupt_rebuilds} corrupt rebuilt"
        else:
            cache = "cache disabled"
        return (
            f"[{self.table_id}: {self.cells} cells in "
            f"{self.wall_seconds:.1f}s wall / {self.cell_seconds:.1f}s cell "
            f"time (max {self.max_cell_seconds:.2f}s), "
            f"workers={self.workers}; {cache}]"
        )


@dataclass(frozen=True)
class PlanRun:
    """A finished plan evaluation: the table plus its run statistics."""

    table: ResultTable
    stats: EngineStats
    manifest: Optional[RunManifest] = None


def merge_outcomes(
    plan: ExperimentPlan, outcomes: List[CellOutcome]
) -> ResultTable:
    """Assemble the table from cell outcomes, in plan order.

    Grouped values are harmonic-meaned in cell order (class loop order),
    matching the paper's per-class aggregation exactly -- and making the
    merge independent of completion order.  Columns named in the plan's
    ``aggregators`` fold with the arithmetic mean instead (accuracies);
    with ``speedup_base`` set, the ``speedup_columns`` means are divided
    by the row's base-column mean after folding.
    """
    grouped: Dict[Tuple[str, str], List[float]] = {}
    for outcome in sorted(outcomes, key=lambda o: o.index):
        cell = plan.cells[outcome.index]
        for column, value in outcome.values.items():
            grouped.setdefault((cell.row, column), []).append(value)
    folds = dict(plan.aggregators)
    rows = []
    for row in plan.rows:
        values = {}
        for column in plan.columns:
            if (row, column) not in grouped:
                continue
            samples = grouped[(row, column)]
            if folds.get(column) == "amean":
                values[column] = arithmetic_mean(samples)
            else:
                values[column] = harmonic_mean(samples)
        if plan.speedup_base is not None:
            base = values.get(plan.speedup_base)
            if base:
                for column in plan.speedup_columns:
                    if column in values:
                        values[column] = values[column] / base
        rows.append((row, values))
    return ResultTable(
        table_id=plan.table_id,
        title=plan.title,
        columns=plan.columns,
        rows=tuple(rows),
    )


def _aggregate_metrics(
    plan: ExperimentPlan,
    outcomes: List[CellOutcome],
    wall_seconds: float,
    workers: int,
    cache_enabled: bool,
) -> MetricsRegistry:
    """Fold per-cell measurements into one run-level registry."""
    registry = MetricsRegistry()
    registry.inc("engine.cells.total", len(outcomes))
    registry.inc(
        "engine.cells.result_hits",
        sum(1 for o in outcomes if o.result_hit),
    )
    registry.set_gauge("engine.workers", workers)
    registry.set_gauge("engine.wall_seconds", wall_seconds)
    registry.set_gauge("engine.cache_enabled", 1.0 if cache_enabled else 0.0)
    busy_by_pid: Dict[int, float] = {}
    for outcome in outcomes:
        for name, value in outcome.metrics.items():
            registry.inc(name, value)
        registry.inc("engine.cell.seconds_total", outcome.seconds)
        registry.inc("engine.queue.wait_seconds_total", outcome.queue_wait)
        registry.observe("engine.cell.seconds", outcome.seconds)
        registry.observe("engine.queue.wait_seconds", outcome.queue_wait)
        busy_by_pid[outcome.pid] = (
            busy_by_pid.get(outcome.pid, 0.0) + outcome.seconds
        )
    for pid, busy in sorted(busy_by_pid.items()):
        utilization = busy / wall_seconds if wall_seconds > 0 else 0.0
        registry.set_gauge(f"worker.{pid}.busy_seconds", busy)
        registry.set_gauge(f"worker.{pid}.utilization", utilization)
    return registry


def _worker_utilization(
    outcomes: List[CellOutcome], wall_seconds: float
) -> Dict[int, float]:
    busy: Dict[int, float] = {}
    for outcome in outcomes:
        busy[outcome.pid] = busy.get(outcome.pid, 0.0) + outcome.seconds
    if wall_seconds <= 0:
        return {pid: 0.0 for pid in busy}
    return {pid: seconds / wall_seconds for pid, seconds in busy.items()}


def _build_manifest(
    plan: ExperimentPlan,
    outcomes: List[CellOutcome],
    stats: EngineStats,
    registry: MetricsRegistry,
    run_started: float,
    run_ended: float,
) -> RunManifest:
    """Assemble the span trace and the durable run manifest."""
    tracer = Tracer()
    root = tracer.adopt(
        f"plan:{plan.table_id}", run_started, run_ended,
        pid=os.getpid(), cells=len(plan.cells), workers=stats.workers,
    )
    for outcome in sorted(outcomes, key=lambda o: o.index):
        cell = plan.cells[outcome.index]
        cell_span = tracer.adopt(
            f"cell:{cell.loop}/{cell.machine}/{cell.config}",
            outcome.started,
            outcome.ended,
            parent_id=root.span_id,
            pid=outcome.pid,
            loop=cell.loop,
            machine=cell.machine,
            config=cell.config,
            row=cell.row,
            result_hit=outcome.result_hit,
            trace_source=outcome.trace_source,
            queue_wait=round(outcome.queue_wait, 6),
        )
        for name, span_start, span_end in outcome.spans:
            tracer.adopt(
                name, span_start, span_end,
                parent_id=cell_span.span_id, pid=outcome.pid,
            )
    return RunManifest(
        run_id=new_run_id(plan.table_id),
        table_id=plan.table_id,
        # Microsecond resolution so back-to-back runs still list in
        # creation order (list_manifests sorts on this field).
        created=datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%S.%fZ"),
        git_sha=current_git_sha(),
        config={
            "workers": stats.workers,
            "cache_enabled": stats.cache_enabled,
            "cells": stats.cells,
            "schema_version": RESULT_SCHEMA_VERSION,
        },
        timings={
            "wall_seconds": stats.wall_seconds,
            "cell_seconds": stats.cell_seconds,
            "max_cell_seconds": stats.max_cell_seconds,
            "queue_wait_seconds": stats.queue_wait_seconds,
        },
        metrics=registry.snapshot(),
        spans=tracer.to_payload(),
    )


def _sweep_groups(
    plan: ExperimentPlan,
) -> List[Tuple[bool, List[Tuple[int, Cell]]]]:
    """Partition plan cells into sweep groups.

    Simulator cells sharing ``(loop, n)`` -- the same dynamic trace --
    form one sweep group; limits cells stay singletons (they have no
    machine to sweep).  Returns ``(is_sweep, [(index, cell), ...])``
    pairs in first-appearance order; the deterministic merge sorts by
    cell index, so grouping never changes the table.
    """
    groups: List[Tuple[bool, List[Tuple[int, Cell]]]] = []
    by_trace: Dict[Tuple[int, int], List[Tuple[int, Cell]]] = {}
    for index, cell in enumerate(plan.cells):
        if cell.is_limits:
            groups.append((False, [(index, cell)]))
            continue
        key = (cell.loop, cell.n)
        bucket = by_trace.get(key)
        if bucket is None:
            by_trace[key] = bucket = []
            groups.append((True, bucket))
        bucket.append((index, cell))
    return groups


def run_plan(
    plan: ExperimentPlan,
    *,
    workers: Optional[int] = None,
    cache: Optional[DiskCache] = None,
    observe: bool = False,
    backend: str = "auto",
    progress: Optional[ProgressCallback] = None,
) -> PlanRun:
    """Evaluate every cell of *plan* and merge deterministically.

    ``workers=1`` (or a single-group plan) runs in-process; anything
    larger fans out over a ``ProcessPoolExecutor``.  Simulator cells
    sharing a trace are evaluated as one fast-path sweep through
    *backend* (``"auto"`` resolves to the batch backend; see
    :mod:`repro.core.fastpath`) -- per-cell cache lookups and gating are
    preserved, so the table is bit-identical to per-cell evaluation.
    *cache* is optional: without it the engine is a pure compute path.
    With ``observe=True`` the run also records a span trace and writes a
    :class:`~repro.obs.manifest.RunManifest` under the cache root
    (``<root>/manifests``), returned on the :class:`PlanRun`.

    *progress* receives one :class:`~repro.harness.progress.ProgressEvent`
    per completed cell, in the parent process, as results arrive
    (completion order across groups; plan order within a group).  The
    merge stays deterministic regardless.
    """
    workers = default_workers() if workers is None else max(1, int(workers))
    run_started = time.monotonic()
    start = time.perf_counter()
    groups = _sweep_groups(plan)
    payloads = [
        (is_sweep, group, time.monotonic()) for is_sweep, group in groups
    ]

    total = len(plan.cells)
    completed = 0

    def emit(batch: List[CellOutcome]) -> None:
        nonlocal completed
        if progress is None:
            completed += len(batch)
            return
        for outcome in sorted(batch, key=lambda o: o.index):
            completed += 1
            cell = plan.cells[outcome.index]
            progress(ProgressEvent(
                table_id=plan.table_id,
                completed=completed,
                total=total,
                index=outcome.index,
                loop=cell.loop,
                machine="" if cell.is_limits else cell.machine,
                config=cell.config,
                row=cell.row,
                seconds=outcome.seconds,
                result_hit=outcome.result_hit,
                pid=outcome.pid,
            ))

    if workers == 1 or len(payloads) <= 1:
        outcomes = []
        for is_sweep, group, enqueued in payloads:
            if is_sweep:
                batch = evaluate_sweep(
                    group, cache, backend=backend, enqueued=enqueued
                )
            else:
                index, cell = group[0]
                batch = [
                    evaluate_cell(index, cell, cache, enqueued=enqueued)
                ]
            outcomes.extend(batch)
            emit(batch)
    else:
        cache_dir = str(cache.root) if cache is not None else None
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_init,
            initargs=(cache_dir,),
        ) as pool:
            # One future per group, collected as they complete, so the
            # progress stream ticks while the pool is still busy.
            futures = {}
            for is_sweep, group, enqueued in payloads:
                if is_sweep:
                    future = pool.submit(
                        _evaluate_sweep_in_pool, (group, backend, enqueued)
                    )
                else:
                    future = pool.submit(
                        _evaluate_in_pool,
                        (group[0][0], group[0][1], enqueued),
                    )
                futures[future] = is_sweep
            outcomes = []
            for future in as_completed(futures):
                result = future.result()
                batch = result if futures[future] else [result]
                outcomes.extend(batch)
                emit(batch)

    table = merge_outcomes(plan, outcomes)
    run_ended = time.monotonic()
    wall_seconds = time.perf_counter() - start
    registry = _aggregate_metrics(
        plan, outcomes, wall_seconds, workers, cache is not None
    )
    stats = EngineStats(
        table_id=plan.table_id,
        cells=len(plan.cells),
        workers=workers,
        wall_seconds=wall_seconds,
        cell_seconds=sum(o.seconds for o in outcomes),
        max_cell_seconds=max((o.seconds for o in outcomes), default=0.0),
        result_hits=sum(1 for o in outcomes if o.result_hit),
        traces_built=sum(1 for o in outcomes if o.trace_source == "built"),
        traces_loaded=sum(1 for o in outcomes if o.trace_source == "disk"),
        cache_enabled=cache is not None,
        corrupt_rebuilds=int(
            registry.value("cache.result.corruptions")
            + registry.value("cache.trace.corruptions")
        ),
        queue_wait_seconds=sum(o.queue_wait for o in outcomes),
        worker_utilization=_worker_utilization(outcomes, wall_seconds),
        metrics=registry.snapshot(),
    )

    manifest: Optional[RunManifest] = None
    if observe:
        manifest = _build_manifest(
            plan, outcomes, stats, registry, run_started, run_ended
        )
        root = cache.root if cache is not None else default_cache_dir()
        write_manifest(manifest, root)
    return PlanRun(table=table, stats=stats, manifest=manifest)


# ----------------------------------------------------------------------
# Source sweeps: exact (machine spec x trace source) evaluation
# ----------------------------------------------------------------------

def source_cell_key(machine: str, source: str, config: str) -> Dict[str, Any]:
    """Identity of one exact (machine, trace source, config) result.

    The *source* must be a normalised trace-source spec
    (:func:`repro.trace.sources.format_trace_spec`), so equivalent
    spellings share an entry.
    """
    return {
        "kind": "source-cell",
        "machine": machine,
        "source": source,
        "config": config,
        "schema": RESULT_SCHEMA_VERSION,
    }


@dataclass(frozen=True)
class SourceOutcome:
    """One exact simulation result from a source sweep (picklable)."""

    source: str
    machine: str
    config: str
    instructions: int
    cycles: int
    seconds: float
    result_hit: bool
    pid: int = 0

    @property
    def rate(self) -> float:
        """Sustained issue rate, instructions per cycle."""
        return self.instructions / self.cycles


#: Per-process memo of resolved source traces (spec text -> Trace).
_SOURCE_MEMO: Dict[str, Trace] = {}


def _evaluate_source_group(
    specs: Tuple[str, ...],
    source: str,
    config_name: str,
    cache: Optional[DiskCache],
    backend: str,
) -> List[SourceOutcome]:
    """Simulate every machine spec against one source as a sweep.

    Per-spec cache lookups mirror :func:`evaluate_sweep`: hits skip the
    replay, misses share one trace resolution and one
    :func:`repro.core.fastpath.simulate_sweep` call.  ``file:`` sources
    are never cached (the path's content can change).
    """
    start = time.perf_counter()
    cacheable = cache is not None and not source.startswith("file:")
    outcomes: List[SourceOutcome] = []
    pending: List[str] = []
    for spec in specs:
        record = (
            cache.load_result(source_cell_key(spec, source, config_name))
            if cacheable
            else None
        )
        if record is not None:
            try:
                outcomes.append(SourceOutcome(
                    source=source,
                    machine=spec,
                    config=config_name,
                    instructions=int(record["instructions"]),
                    cycles=int(record["cycles"]),
                    seconds=time.perf_counter() - start,
                    result_hit=True,
                    pid=os.getpid(),
                ))
                start = time.perf_counter()
                continue
            except (KeyError, TypeError, ValueError):
                pass  # corrupt record: recompute and overwrite
        pending.append(spec)
    if not pending:
        return outcomes

    trace = _SOURCE_MEMO.get(source)
    if trace is None:
        trace = trace_source(source)
        _SOURCE_MEMO[source] = trace
    config = config_by_name(config_name)
    items = [(build_simulator(spec), config) for spec in pending]
    results = fastpath.simulate_sweep(trace, items, backend=backend)
    share = (time.perf_counter() - start) / len(pending)
    for spec, result in zip(pending, results):
        if cacheable:
            cache.store_result(
                source_cell_key(spec, source, config_name),
                {
                    "trace": result.trace_name,
                    "simulator": result.simulator,
                    "instructions": result.instructions,
                    "cycles": result.cycles,
                    "detail": dict(result.detail or {}),
                },
            )
        outcomes.append(SourceOutcome(
            source=source,
            machine=spec,
            config=config_name,
            instructions=result.instructions,
            cycles=result.cycles,
            seconds=share,
            result_hit=False,
            pid=os.getpid(),
        ))
    return outcomes


def _source_group_in_pool(
    payload: Tuple[Tuple[str, ...], str, str, str]
) -> List[SourceOutcome]:
    specs, source, config_name, backend = payload
    return _evaluate_source_group(
        specs, source, config_name, _WORKER_CACHE, backend
    )


@dataclass(frozen=True)
class SourceSweepRun:
    """A finished source sweep, in deterministic (source, spec) order."""

    outcomes: Tuple[SourceOutcome, ...]
    wall_seconds: float
    workers: int
    result_hits: int

    def rate(self, source: str, machine: str) -> float:
        """The issue rate of one (source, machine) pair."""
        for outcome in self.outcomes:
            if outcome.source == source and outcome.machine == machine:
                return outcome.rate
        raise KeyError((source, machine))


def run_source_sweep(
    specs: List[str],
    sources: List[str],
    *,
    config: str = "M11BR5",
    workers: Optional[int] = None,
    cache: Optional[DiskCache] = None,
    backend: str = "auto",
    label: str = "source-sweep",
    progress: Optional[ProgressCallback] = None,
) -> SourceSweepRun:
    """Simulate every machine spec against every trace source, exactly.

    The explorer's verification stage: one sweep group per source (all
    specs replay the same resolved trace through the fast-path sweep
    entry point), fanned out over a process pool for multiple sources.
    Results come back in deterministic (source, spec) input order
    regardless of completion order.  *sources* must be normalised spec
    strings; *progress* receives one event per completed (source, spec)
    cell with the source in the ``row`` field.
    """
    workers = default_workers() if workers is None else max(1, int(workers))
    start = time.perf_counter()
    spec_tuple = tuple(specs)
    payloads = [
        (spec_tuple, source, config, backend) for source in sources
    ]

    total = len(spec_tuple) * len(sources)
    completed = 0

    def emit(batch: List[SourceOutcome]) -> None:
        nonlocal completed
        if progress is None:
            completed += len(batch)
            return
        for outcome in batch:
            completed += 1
            progress(ProgressEvent(
                table_id=label,
                completed=completed,
                total=total,
                index=completed - 1,
                loop=0,
                machine=outcome.machine,
                config=outcome.config,
                row=outcome.source,
                seconds=outcome.seconds,
                result_hit=outcome.result_hit,
                pid=outcome.pid,
            ))

    by_source: Dict[str, List[SourceOutcome]] = {}
    if workers == 1 or len(payloads) <= 1:
        for payload in payloads:
            batch = _evaluate_source_group(
                payload[0], payload[1], payload[2], cache, payload[3]
            )
            by_source[payload[1]] = batch
            emit(batch)
    else:
        cache_dir = str(cache.root) if cache is not None else None
        with ProcessPoolExecutor(
            max_workers=min(workers, len(payloads)),
            initializer=_pool_init,
            initargs=(cache_dir,),
        ) as pool:
            futures = {
                pool.submit(_source_group_in_pool, payload): payload[1]
                for payload in payloads
            }
            for future in as_completed(futures):
                batch = future.result()
                by_source[futures[future]] = batch
                emit(batch)

    order = {spec: i for i, spec in enumerate(spec_tuple)}
    outcomes: List[SourceOutcome] = []
    for source in sources:
        outcomes.extend(
            sorted(by_source[source], key=lambda o: order[o.machine])
        )
    return SourceSweepRun(
        outcomes=tuple(outcomes),
        wall_seconds=time.perf_counter() - start,
        workers=workers,
        result_hits=sum(1 for o in outcomes if o.result_hit),
    )
