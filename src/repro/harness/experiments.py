"""Experiment definitions: one function per table in the paper.

Each ``tableN()`` function rebuilds the paper's Table N from scratch:
build the kernels, verify them against their references, capture traces,
replay them through the relevant machine models, and aggregate per-class
harmonic means.  Row and column labels match
:mod:`repro.harness.paper` exactly, so results can be compared
cell-by-cell against the paper's numbers.

All functions accept ``sizes`` (a loop-number -> problem-size mapping) so
tests can run scaled-down versions; experiments default to the standard
sizes in :mod:`repro.kernels.sizes`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.buses import BusKind
from ..core.config import STANDARD_CONFIGS, MachineConfig
from ..core.inorder_multi import InOrderMultiIssueMachine
from ..core.ooo_multi import OutOfOrderMultiIssueMachine
from ..core.ruu import RUUMachine
from ..core.scoreboard import (
    cray_like_machine,
    non_segmented_machine,
    serial_memory_machine,
)
from ..core.simple import SimpleMachine
from ..kernels import (
    SCALAR_LOOPS,
    VECTORIZABLE_LOOPS,
    build_kernel,
)
from ..limits import compute_limits
from ..trace import Trace
from .aggregate import harmonic_mean
from .paper import BUS_LABELS, CONFIG_NAMES, RUU_SIZES, RUU_UNITS
from .tables import ResultTable

Sizes = Optional[Mapping[int, int]]

_CLASS_LOOPS = {
    "scalar": SCALAR_LOOPS,
    "vectorizable": VECTORIZABLE_LOOPS,
}

_BUS_KINDS = {"N-Bus": BusKind.N_BUS, "1-Bus": BusKind.ONE_BUS}


def class_traces(class_label: str, sizes: Sizes = None) -> List[Trace]:
    """Verified dynamic traces for every loop in a class."""
    loops = _CLASS_LOOPS[class_label]
    traces = []
    for number in loops:
        n = sizes.get(number) if sizes else None
        instance = build_kernel(number, n)
        traces.append(instance.trace() if n is None else instance.verify())
    return traces


def _class_hmean(simulator, traces, config: MachineConfig) -> float:
    return harmonic_mean(
        simulator.issue_rate(trace, config) for trace in traces
    )


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------

def table1(sizes: Sizes = None) -> ResultTable:
    """Issue rates of the four basic single-issue machine organisations."""
    simulators = (
        ("Simple", SimpleMachine()),
        ("SerialMemory", serial_memory_machine()),
        ("NonSegmented", non_segmented_machine()),
        ("CRAY-like", cray_like_machine()),
    )
    rows = []
    for class_label in ("scalar", "vectorizable"):
        traces = class_traces(class_label, sizes)
        for sim_label, simulator in simulators:
            values = {
                config.name: _class_hmean(simulator, traces, config)
                for config in STANDARD_CONFIGS
            }
            rows.append((f"{class_label}/{sim_label}", values))
    return ResultTable(
        table_id="table1",
        title="Table 1: instruction issue rates for basic machine organisations",
        columns=CONFIG_NAMES,
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------

def table2(sizes: Sizes = None) -> ResultTable:
    """Pseudo-dataflow, resource and actual limits ("Pure" and "Serial")."""
    columns = ("pseudo-dataflow", "resource", "actual")
    rows = []
    for class_label in ("scalar", "vectorizable"):
        traces = class_traces(class_label, sizes)
        for serial in (False, True):
            prefix = "Serial" if serial else "Pure"
            for config in STANDARD_CONFIGS:
                limits = [
                    compute_limits(trace, config, serial=serial)
                    for trace in traces
                ]
                values = {
                    "pseudo-dataflow": harmonic_mean(
                        l.pseudo_dataflow_rate for l in limits
                    ),
                    "resource": harmonic_mean(l.resource_rate for l in limits),
                    "actual": harmonic_mean(l.actual_rate for l in limits),
                }
                rows.append((f"{class_label}/{prefix} {config.name}", values))
    # Keep paper row order: scalar Pure, vectorizable Pure, scalar Serial,
    # vectorizable Serial.
    ordered = sorted(
        rows,
        key=lambda row: (
            "Serial" in row[0],
            not row[0].startswith("scalar"),
        ),
    )
    return ResultTable(
        table_id="table2",
        title="Table 2: pseudo-dataflow and resource limits",
        columns=columns,
        rows=tuple(ordered),
    )


# ----------------------------------------------------------------------
# Tables 3-6 (multiple issue, sequential and out-of-order)
# ----------------------------------------------------------------------

def _multi_issue_table(
    table_id: str,
    title: str,
    class_label: str,
    machine_factory,
    sizes: Sizes,
    stations: Sequence[int],
) -> ResultTable:
    traces = class_traces(class_label, sizes)
    columns = tuple(
        f"{config.name} {bus}"
        for config in STANDARD_CONFIGS
        for bus in BUS_LABELS
    )
    rows = []
    for n_stations in stations:
        values: Dict[str, float] = {}
        for config in STANDARD_CONFIGS:
            for bus_label, bus_kind in _BUS_KINDS.items():
                simulator = machine_factory(n_stations, bus_kind)
                values[f"{config.name} {bus_label}"] = _class_hmean(
                    simulator, traces, config
                )
        rows.append((str(n_stations), values))
    return ResultTable(
        table_id=table_id, title=title, columns=columns, rows=tuple(rows)
    )


def table3(sizes: Sizes = None, stations: Sequence[int] = range(1, 9)) -> ResultTable:
    """Multiple issue units, sequential issue, scalar code."""
    return _multi_issue_table(
        "table3",
        "Table 3: multiple issue units, sequential issue of scalar code",
        "scalar",
        InOrderMultiIssueMachine,
        sizes,
        stations,
    )


def table4(sizes: Sizes = None, stations: Sequence[int] = range(1, 9)) -> ResultTable:
    """Multiple issue units, sequential issue, vectorizable code."""
    return _multi_issue_table(
        "table4",
        "Table 4: multiple issue units, sequential issue for vectorizable code",
        "vectorizable",
        InOrderMultiIssueMachine,
        sizes,
        stations,
    )


def table5(sizes: Sizes = None, stations: Sequence[int] = range(1, 9)) -> ResultTable:
    """Multiple issue units, out-of-order issue, scalar code."""
    return _multi_issue_table(
        "table5",
        "Table 5: multiple issue units, out-of-order issue for scalar code",
        "scalar",
        OutOfOrderMultiIssueMachine,
        sizes,
        stations,
    )


def table6(sizes: Sizes = None, stations: Sequence[int] = range(1, 9)) -> ResultTable:
    """Multiple issue units, out-of-order issue, vectorizable code."""
    return _multi_issue_table(
        "table6",
        "Table 6: multiple issue units, out-of-order issue for vectorizable loops",
        "vectorizable",
        OutOfOrderMultiIssueMachine,
        sizes,
        stations,
    )


# ----------------------------------------------------------------------
# Tables 7-8 (RUU dependency resolution)
# ----------------------------------------------------------------------

def _ruu_table(
    table_id: str,
    title: str,
    class_label: str,
    sizes: Sizes,
    ruu_sizes: Sequence[int],
    units: Sequence[int],
) -> ResultTable:
    traces = class_traces(class_label, sizes)
    columns = tuple(f"x{u} {bus}" for u in units for bus in BUS_LABELS)
    rows = []
    for config in STANDARD_CONFIGS:
        for size in ruu_sizes:
            values: Dict[str, float] = {}
            for u in units:
                for bus_label, bus_kind in _BUS_KINDS.items():
                    simulator = RUUMachine(u, size, bus_kind)
                    values[f"x{u} {bus_label}"] = _class_hmean(
                        simulator, traces, config
                    )
            rows.append((f"{config.name}/R{size}", values))
    return ResultTable(
        table_id=table_id, title=title, columns=columns, rows=tuple(rows)
    )


def table7(
    sizes: Sizes = None,
    ruu_sizes: Sequence[int] = RUU_SIZES,
    units: Sequence[int] = RUU_UNITS,
) -> ResultTable:
    """Multiple issue units with RUU dependency resolution, scalar code."""
    return _ruu_table(
        "table7",
        "Table 7: multiple issue units with dependency resolution; scalar code",
        "scalar",
        sizes,
        ruu_sizes,
        units,
    )


def table8(
    sizes: Sizes = None,
    ruu_sizes: Sequence[int] = RUU_SIZES,
    units: Sequence[int] = RUU_UNITS,
) -> ResultTable:
    """Multiple issue units with RUU dependency resolution, vectorizable code."""
    return _ruu_table(
        "table8",
        "Table 8: multiple issue units with dependency resolution; "
        "vectorizable code",
        "vectorizable",
        sizes,
        ruu_sizes,
        units,
    )


# ----------------------------------------------------------------------
# Appendix-style per-loop breakdown (not a paper table; full transparency)
# ----------------------------------------------------------------------

def per_loop_table(
    sizes: Sizes = None,
    config: Optional[MachineConfig] = None,
) -> ResultTable:
    """Per-loop issue rates across the main machine spectrum.

    The paper reports only class harmonic means; this appendix table
    shows each loop individually (with its dataflow limit), which is
    where the class differences come from.
    """
    from ..core.config import M11BR5
    from ..kernels import ALL_LOOPS, classify

    config = config or M11BR5
    simulators = (
        ("Simple", SimpleMachine()),
        ("CRAY-like", cray_like_machine()),
        ("ooo x4", OutOfOrderMultiIssueMachine(4)),
        ("RUU x4 R=50", RUUMachine(4, 50)),
    )
    columns = tuple(label for label, _ in simulators) + ("DF limit",)
    rows = []
    for number in ALL_LOOPS:
        n = sizes.get(number) if sizes else None
        instance = build_kernel(number, n)
        trace = instance.trace() if n is None else instance.verify()
        values = {
            label: simulator.issue_rate(trace, config)
            for label, simulator in simulators
        }
        values["DF limit"] = compute_limits(trace, config).actual_rate
        label = f"loop {number:02d} ({classify(number).value[:6]})"
        rows.append((label, values))
    return ResultTable(
        table_id="per-loop",
        title=f"Per-loop issue rates on {config.name}",
        columns=columns,
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# Section 3.3 quote
# ----------------------------------------------------------------------

def section33(sizes: Sizes = None) -> Dict[str, float]:
    """Single-issue dependency resolution on M11BR5 (Section 3.3 quote).

    The paper: "the issue rate of an M11BR5 machine with a single issue
    unit can be improved to about 0.72 instructions per cycle for scalar
    code and 0.81 instructions for vectorizable code."
    """
    from ..core.config import M11BR5

    simulator = RUUMachine(1, 50, BusKind.N_BUS)
    return {
        class_label: _class_hmean(
            simulator, class_traces(class_label, sizes), M11BR5
        )
        for class_label in ("scalar", "vectorizable")
    }


#: Experiment id -> builder, for the runner and the benchmarks.
EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
}
