"""Experiment definitions: one function per table in the paper.

Each ``tableN()`` function rebuilds the paper's Table N from scratch.
Since the engine redesign the functions are thin wrappers: they build the
table's declarative cell decomposition (:mod:`repro.harness.plans`) and
evaluate it with the in-process engine (:mod:`repro.harness.engine`).
Parallel and cached evaluation of the same plans is exposed through
:mod:`repro.api` -- both paths produce bit-identical tables.

Row and column labels match :mod:`repro.harness.paper` exactly, so
results can be compared cell-by-cell against the paper's numbers.

All functions accept ``sizes`` (a loop-number -> problem-size mapping) so
tests can run scaled-down versions; experiments default to the standard
sizes in :mod:`repro.kernels.sizes`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..core.buses import BusKind
from ..core.config import MachineConfig
from ..core.ruu import RUUMachine
from ..kernels import SCALAR_LOOPS, VECTORIZABLE_LOOPS, build_kernel
from ..limits import compute_limits
from ..trace import Trace
from .aggregate import harmonic_mean
from .engine import run_plan
from .plans import PLAN_BUILDERS, build_plan
from .tables import ResultTable

Sizes = Optional[Mapping[int, int]]

_CLASS_LOOPS = {
    "scalar": SCALAR_LOOPS,
    "vectorizable": VECTORIZABLE_LOOPS,
}


def class_traces(class_label: str, sizes: Sizes = None) -> List[Trace]:
    """Verified dynamic traces for every loop in a class."""
    loops = _CLASS_LOOPS[class_label]
    traces = []
    for number in loops:
        n = sizes.get(number) if sizes else None
        instance = build_kernel(number, n)
        traces.append(instance.trace() if n is None else instance.verify())
    return traces


def _class_hmean(simulator, traces, config: MachineConfig) -> float:
    return harmonic_mean(
        simulator.issue_rate(trace, config) for trace in traces
    )


def _run(table_id: str, sizes: Sizes, **overrides) -> ResultTable:
    return run_plan(build_plan(table_id, sizes, **overrides), workers=1).table


def table1(sizes: Sizes = None) -> ResultTable:
    """Issue rates of the four basic single-issue machine organisations."""
    return _run("table1", sizes)


def table2(sizes: Sizes = None) -> ResultTable:
    """Pseudo-dataflow, resource and actual limits ("Pure" and "Serial")."""
    return _run("table2", sizes)


def table3(sizes: Sizes = None, stations: Sequence[int] = range(1, 9)) -> ResultTable:
    """Multiple issue units, sequential issue, scalar code."""
    return _run("table3", sizes, stations=stations)


def table4(sizes: Sizes = None, stations: Sequence[int] = range(1, 9)) -> ResultTable:
    """Multiple issue units, sequential issue, vectorizable code."""
    return _run("table4", sizes, stations=stations)


def table5(sizes: Sizes = None, stations: Sequence[int] = range(1, 9)) -> ResultTable:
    """Multiple issue units, out-of-order issue, scalar code."""
    return _run("table5", sizes, stations=stations)


def table6(sizes: Sizes = None, stations: Sequence[int] = range(1, 9)) -> ResultTable:
    """Multiple issue units, out-of-order issue, vectorizable code."""
    return _run("table6", sizes, stations=stations)


def table7(
    sizes: Sizes = None,
    ruu_sizes: Sequence[int] = None,
    units: Sequence[int] = None,
) -> ResultTable:
    """Multiple issue units with RUU dependency resolution, scalar code."""
    overrides = {}
    if ruu_sizes is not None:
        overrides["ruu_sizes"] = ruu_sizes
    if units is not None:
        overrides["units"] = units
    return _run("table7", sizes, **overrides)


def table8(
    sizes: Sizes = None,
    ruu_sizes: Sequence[int] = None,
    units: Sequence[int] = None,
) -> ResultTable:
    """Multiple issue units with RUU dependency resolution, vectorizable code."""
    overrides = {}
    if ruu_sizes is not None:
        overrides["ruu_sizes"] = ruu_sizes
    if units is not None:
        overrides["units"] = units
    return _run("table8", sizes, **overrides)


def table9(sizes: Sizes = None) -> ResultTable:
    """Speculative issue with branch + value prediction, scalar code.

    Not a table from the paper: the limit study the paper motivates.
    Reports speedup of the speculative family over the contended
    ``ruu:4:50`` baseline, plus predictor / value-predictor accuracies
    (see ``docs/speculation.md``).
    """
    return _run("table9", sizes)


def table10(sizes: Sizes = None) -> ResultTable:
    """Speculative issue with branch + value prediction, vectorizable code."""
    return _run("table10", sizes)


# ----------------------------------------------------------------------
# Appendix-style per-loop breakdown (not a paper table; full transparency)
# ----------------------------------------------------------------------

def per_loop_table(
    sizes: Sizes = None,
    config: Optional[MachineConfig] = None,
) -> ResultTable:
    """Per-loop issue rates across the main machine spectrum.

    The paper reports only class harmonic means; this appendix table
    shows each loop individually (with its dataflow limit), which is
    where the class differences come from.
    """
    from ..core.config import M11BR5
    from ..core.ooo_multi import OutOfOrderMultiIssueMachine
    from ..core.scoreboard import cray_like_machine
    from ..core.simple import SimpleMachine
    from ..kernels import ALL_LOOPS, classify

    config = config or M11BR5
    simulators = (
        ("Simple", SimpleMachine()),
        ("CRAY-like", cray_like_machine()),
        ("ooo x4", OutOfOrderMultiIssueMachine(4)),
        ("RUU x4 R=50", RUUMachine(4, 50)),
    )
    columns = tuple(label for label, _ in simulators) + ("DF limit",)
    rows = []
    for number in ALL_LOOPS:
        n = sizes.get(number) if sizes else None
        instance = build_kernel(number, n)
        trace = instance.trace() if n is None else instance.verify()
        values = {
            label: simulator.issue_rate(trace, config)
            for label, simulator in simulators
        }
        values["DF limit"] = compute_limits(trace, config).actual_rate
        label = f"loop {number:02d} ({classify(number).value[:6]})"
        rows.append((label, values))
    return ResultTable(
        table_id="per-loop",
        title=f"Per-loop issue rates on {config.name}",
        columns=columns,
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# Section 3.3 quote
# ----------------------------------------------------------------------

def section33(sizes: Sizes = None) -> Dict[str, float]:
    """Single-issue dependency resolution on M11BR5 (Section 3.3 quote).

    The paper: "the issue rate of an M11BR5 machine with a single issue
    unit can be improved to about 0.72 instructions per cycle for scalar
    code and 0.81 instructions for vectorizable code."
    """
    from ..core.config import M11BR5

    simulator = RUUMachine(1, 50, BusKind.N_BUS)
    return {
        class_label: _class_hmean(
            simulator, class_traces(class_label, sizes), M11BR5
        )
        for class_label in ("scalar", "vectorizable")
    }


#: Experiment id -> builder, for backward compatibility (the runner and
#: benchmarks now go through :mod:`repro.api`, which uses the plans).
EXPERIMENTS = {
    table_id: globals()[table_id] for table_id in sorted(PLAN_BUILDERS)
}
