"""Result aggregation.

The paper reports "the harmonic mean of the individual loop issue rates"
for each loop class (citing Worlton's benchmark-averaging argument): rates
are work/time quantities, so the harmonic mean is the rate of the
concatenated workload with equal work per loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive rates.

    Raises:
        ValueError: on an empty sequence or non-positive values.
    """
    total = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"harmonic mean needs positive values, got {value}")
        total += 1.0 / value
        count += 1
    if count == 0:
        raise ValueError("harmonic mean of an empty sequence")
    return count / total


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain mean, provided for comparison studies."""
    values = list(values)
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)


def hmean_by_key(
    pairs: Iterable[Tuple[str, float]],
) -> Dict[str, float]:
    """Harmonic mean of values grouped by key."""
    grouped: Dict[str, list] = {}
    for key, value in pairs:
        grouped.setdefault(key, []).append(value)
    return {key: harmonic_mean(vals) for key, vals in grouped.items()}


def relative_error(measured: float, reference: float) -> float:
    """Signed relative deviation of *measured* from *reference*."""
    if reference == 0:
        raise ValueError("reference value must be nonzero")
    return (measured - reference) / reference
