"""Live engine progress: per-cell completion events for ``run_plan``.

The engine evaluates plan cells over a process pool; until a run
finishes, the only signal is the final footer.  This module defines the
streaming contract: ``run_plan(progress=...)`` invokes the callback in
the *parent* process once per completed cell, as worker results arrive
(completion order, not plan order -- the deterministic merge is
unaffected).  The CLI renders the stream as a live ticker
(``repro tables --progress``) or as one JSON object per line
(``--progress-format jsonl``), the seed of the serve-layer streaming
API.

Callbacks run on the engine's result-collection path: keep them cheap
and never raise (a raising callback aborts the run, exactly like any
other exception in the parent).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable

__all__ = ["ProgressCallback", "ProgressEvent"]


@dataclass(frozen=True)
class ProgressEvent:
    """One completed plan cell.

    Attributes:
        table_id: the plan being evaluated.
        completed: cells finished so far (this one included).
        total: cells in the plan.
        index: the cell's position in plan order.
        loop: Livermore loop number of the cell's trace.
        machine: registry spec of the machine (``""`` for limits cells).
        config: machine-configuration name (``"M11BR5"`` etc.).
        row: the table row this cell feeds.
        seconds: the cell's compute time in its worker.
        result_hit: whether the value came from the result cache.
        pid: the worker process that evaluated the cell.
    """

    table_id: str
    completed: int
    total: int
    index: int
    loop: int
    machine: str
    config: str
    row: str
    seconds: float
    result_hit: bool
    pid: int

    def to_payload(self) -> dict:
        """Flat JSON-ready mapping (one ``--progress-format jsonl`` line)."""
        return asdict(self)


#: The ``run_plan(progress=...)`` contract.
ProgressCallback = Callable[[ProgressEvent], None]
