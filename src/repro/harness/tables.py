"""Generic result tables and plain-text rendering.

Every experiment in :mod:`repro.harness.experiments` returns a
:class:`ResultTable`; the same structure holds the paper's reported
numbers (:mod:`repro.harness.paper`), so measured-vs-paper comparisons are
table-to-table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ResultTable:
    """A labelled grid of issue rates (or limits).

    Attributes:
        table_id: short identifier (``"table1"`` ... ``"table8"``).
        title: human-readable description.
        columns: ordered column labels.
        rows: ordered (row label, {column label: value}) pairs.
    """

    table_id: str
    title: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[str, Mapping[str, float]], ...]

    def __post_init__(self) -> None:
        for label, values in self.rows:
            unknown = set(values) - set(self.columns)
            if unknown:
                raise ValueError(
                    f"row {label!r} has values for unknown columns {unknown}"
                )

    def value(self, row_label: str, column: str) -> float:
        """Look up one cell (raises KeyError if absent)."""
        for label, values in self.rows:
            if label == row_label:
                return values[column]
        raise KeyError(f"no row labelled {row_label!r}")

    @property
    def row_labels(self) -> Tuple[str, ...]:
        return tuple(label for label, _ in self.rows)

    def render(self, precision: int = 2, min_label_width: int = 24) -> str:
        """Fixed-width plain-text rendering, in the paper's style."""
        label_width = max(
            [min_label_width] + [len(label) for label in self.row_labels]
        )
        col_width = max([7] + [len(c) + 2 for c in self.columns])
        lines = [self.title]
        header = " " * label_width + "".join(
            f"{col:>{col_width}}" for col in self.columns
        )
        lines.append(header)
        lines.append("-" * len(header))
        for label, values in self.rows:
            cells = []
            for col in self.columns:
                if col in values:
                    cells.append(f"{values[col]:>{col_width}.{precision}f}")
                else:
                    cells.append(" " * (col_width - 1) + "-")
            lines.append(f"{label:<{label_width}}" + "".join(cells))
        return "\n".join(lines)


def compare_tables(
    measured: ResultTable,
    reference: ResultTable,
) -> List[Tuple[str, str, float, float]]:
    """Cell-by-cell (row, column, measured, reference) pairs.

    Only cells present in both tables are compared; row and column labels
    must match exactly.
    """
    pairs: List[Tuple[str, str, float, float]] = []
    reference_rows = dict(reference.rows)
    for label, values in measured.rows:
        if label not in reference_rows:
            continue
        ref_values = reference_rows[label]
        for column, value in values.items():
            if column in ref_values:
                pairs.append((label, column, value, ref_values[column]))
    return pairs
