"""Declarative experiment plans: tables decomposed into independent cells.

Every table in the paper is embarrassingly parallel: one verified trace
per loop drives every machine variant, and each (kernel, machine-spec,
config) simulation is independent of every other.  A :class:`Cell` names
one such simulation plus where its value lands in the finished table; an
:class:`ExperimentPlan` is the full ordered decomposition of one table.

The engine (:mod:`repro.harness.engine`) evaluates cells -- serially or
over a process pool -- and merges them back deterministically: grouped
values are harmonic-meaned in plan order, so parallel output is
bit-identical to serial output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..kernels import SCALAR_LOOPS, VECTORIZABLE_LOOPS, default_size
from .paper import BUS_LABELS, CONFIG_NAMES, RUU_SIZES, RUU_UNITS

Sizes = Optional[Mapping[int, int]]

#: Pseudo machine spec marking a limits cell (handled by the engine
#: directly, not by the simulator registry).
LIMITS_MACHINE = "limits"

_CLASS_LOOPS: Dict[str, Tuple[int, ...]] = {
    "scalar": tuple(SCALAR_LOOPS),
    "vectorizable": tuple(VECTORIZABLE_LOOPS),
}

#: Table column bus label -> registry bus token.
_BUS_TOKENS = {"N-Bus": "nbus", "1-Bus": "1bus"}

#: Table 1 row label -> registry spec for the four basic organisations.
_TABLE1_MACHINES: Tuple[Tuple[str, str], ...] = (
    ("Simple", "simple"),
    ("SerialMemory", "serialmemory"),
    ("NonSegmented", "nonsegmented"),
    ("CRAY-like", "cray"),
)


@dataclass(frozen=True)
class Cell:
    """One independent unit of experiment work.

    Attributes:
        loop: Livermore loop number.
        n: resolved problem size (never None -- keys must be stable).
        machine: simulator registry spec, or :data:`LIMITS_MACHINE`.
        config: machine configuration name (``"M11BR5"`` ...).
        row: row label the cell's value(s) contribute to.
        columns: column label(s) the cell fills -- one for a simulation
            cell, the three limit columns for a limits cell.
        serial: for limits cells, include WAW serialisation.
        metric: which value of the simulation feeds the column --
            ``"rate"`` (instructions/cycles, the default) or the name of
            a ``result.detail`` entry (``"prediction_accuracy"``,
            ``"vp_accuracy"``).  Not part of the cache identity: a rate
            cell and an accuracy cell over the same simulation share one
            stored record.
    """

    loop: int
    n: int
    machine: str
    config: str
    row: str
    columns: Tuple[str, ...]
    serial: bool = False
    metric: str = "rate"

    @property
    def is_limits(self) -> bool:
        return self.machine == LIMITS_MACHINE


@dataclass(frozen=True)
class ExperimentPlan:
    """An ordered, fully independent decomposition of one table.

    ``aggregators`` overrides the per-column fold: grouped values merge
    with the harmonic mean by default (rates), ``("col", "amean")``
    switches a column to the arithmetic mean (accuracies, which may be
    zero).  When ``speedup_base`` is set, every column named in
    ``speedup_columns`` is divided by the row's base-column mean after
    folding, turning absolute rates into speedups over the base machine.
    All three are plain picklable data so plans still cross process
    boundaries unchanged.
    """

    table_id: str
    title: str
    columns: Tuple[str, ...]
    rows: Tuple[str, ...]
    cells: Tuple[Cell, ...]
    aggregators: Tuple[Tuple[str, str], ...] = ()
    speedup_base: Optional[str] = None
    speedup_columns: Tuple[str, ...] = ()


def _size(loop: int, sizes: Sizes) -> int:
    if sizes is not None and loop in sizes:
        return sizes[loop]
    return default_size(loop)


# ----------------------------------------------------------------------
# Plan builders, one per table
# ----------------------------------------------------------------------

def plan_table1(sizes: Sizes = None) -> ExperimentPlan:
    rows = []
    cells = []
    for class_label, loops in _CLASS_LOOPS.items():
        for sim_label, spec in _TABLE1_MACHINES:
            row = f"{class_label}/{sim_label}"
            rows.append(row)
            for config in CONFIG_NAMES:
                for loop in loops:
                    cells.append(Cell(
                        loop=loop,
                        n=_size(loop, sizes),
                        machine=spec,
                        config=config,
                        row=row,
                        columns=(config,),
                    ))
    return ExperimentPlan(
        table_id="table1",
        title="Table 1: instruction issue rates for basic machine organisations",
        columns=CONFIG_NAMES,
        rows=tuple(rows),
        cells=tuple(cells),
    )


def plan_table2(sizes: Sizes = None) -> ExperimentPlan:
    columns = ("pseudo-dataflow", "resource", "actual")
    rows = []
    cells = []
    # Paper row order: scalar Pure, vectorizable Pure, scalar Serial,
    # vectorizable Serial.
    for serial in (False, True):
        prefix = "Serial" if serial else "Pure"
        for class_label, loops in _CLASS_LOOPS.items():
            for config in CONFIG_NAMES:
                row = f"{class_label}/{prefix} {config}"
                rows.append(row)
                for loop in loops:
                    cells.append(Cell(
                        loop=loop,
                        n=_size(loop, sizes),
                        machine=LIMITS_MACHINE,
                        config=config,
                        row=row,
                        columns=columns,
                        serial=serial,
                    ))
    return ExperimentPlan(
        table_id="table2",
        title="Table 2: pseudo-dataflow and resource limits",
        columns=columns,
        rows=tuple(rows),
        cells=tuple(cells),
    )


def _plan_multi_issue(
    table_id: str,
    title: str,
    class_label: str,
    spec_head: str,
    sizes: Sizes,
    stations: Sequence[int],
) -> ExperimentPlan:
    loops = _CLASS_LOOPS[class_label]
    columns = tuple(
        f"{config} {bus}" for config in CONFIG_NAMES for bus in BUS_LABELS
    )
    rows = []
    cells = []
    for n_stations in stations:
        row = str(n_stations)
        rows.append(row)
        for config in CONFIG_NAMES:
            for bus_label in BUS_LABELS:
                spec = f"{spec_head}:{n_stations}:{_BUS_TOKENS[bus_label]}"
                for loop in loops:
                    cells.append(Cell(
                        loop=loop,
                        n=_size(loop, sizes),
                        machine=spec,
                        config=config,
                        row=row,
                        columns=(f"{config} {bus_label}",),
                    ))
    return ExperimentPlan(
        table_id=table_id,
        title=title,
        columns=columns,
        rows=tuple(rows),
        cells=tuple(cells),
    )


def plan_table3(
    sizes: Sizes = None, stations: Sequence[int] = range(1, 9)
) -> ExperimentPlan:
    return _plan_multi_issue(
        "table3",
        "Table 3: multiple issue units, sequential issue of scalar code",
        "scalar", "inorder", sizes, stations,
    )


def plan_table4(
    sizes: Sizes = None, stations: Sequence[int] = range(1, 9)
) -> ExperimentPlan:
    return _plan_multi_issue(
        "table4",
        "Table 4: multiple issue units, sequential issue for vectorizable code",
        "vectorizable", "inorder", sizes, stations,
    )


def plan_table5(
    sizes: Sizes = None, stations: Sequence[int] = range(1, 9)
) -> ExperimentPlan:
    return _plan_multi_issue(
        "table5",
        "Table 5: multiple issue units, out-of-order issue for scalar code",
        "scalar", "ooo", sizes, stations,
    )


def plan_table6(
    sizes: Sizes = None, stations: Sequence[int] = range(1, 9)
) -> ExperimentPlan:
    return _plan_multi_issue(
        "table6",
        "Table 6: multiple issue units, out-of-order issue for vectorizable loops",
        "vectorizable", "ooo", sizes, stations,
    )


def _plan_ruu(
    table_id: str,
    title: str,
    class_label: str,
    sizes: Sizes,
    ruu_sizes: Sequence[int],
    units: Sequence[int],
) -> ExperimentPlan:
    loops = _CLASS_LOOPS[class_label]
    columns = tuple(f"x{u} {bus}" for u in units for bus in BUS_LABELS)
    rows = []
    cells = []
    for config in CONFIG_NAMES:
        for size in ruu_sizes:
            row = f"{config}/R{size}"
            rows.append(row)
            for u in units:
                for bus_label in BUS_LABELS:
                    spec = f"ruu:{u}:{size}:{_BUS_TOKENS[bus_label]}"
                    for loop in loops:
                        cells.append(Cell(
                            loop=loop,
                            n=_size(loop, sizes),
                            machine=spec,
                            config=config,
                            row=row,
                            columns=(f"x{u} {bus_label}",),
                        ))
    return ExperimentPlan(
        table_id=table_id,
        title=title,
        columns=columns,
        rows=tuple(rows),
        cells=tuple(cells),
    )


def plan_table7(
    sizes: Sizes = None,
    ruu_sizes: Sequence[int] = RUU_SIZES,
    units: Sequence[int] = RUU_UNITS,
) -> ExperimentPlan:
    return _plan_ruu(
        "table7",
        "Table 7: multiple issue units with dependency resolution; scalar code",
        "scalar", sizes, ruu_sizes, units,
    )


def plan_table8(
    sizes: Sizes = None,
    ruu_sizes: Sequence[int] = RUU_SIZES,
    units: Sequence[int] = RUU_UNITS,
) -> ExperimentPlan:
    return _plan_ruu(
        "table8",
        "Table 8: multiple issue units with dependency resolution; "
        "vectorizable code",
        "vectorizable", sizes, ruu_sizes, units,
    )


#: Columns of the speculation limit study (tables 9-10): one
#: ``(column label, machine spec, metric)`` triple per column.  The RUU
#: baseline column reports its absolute issue rate; the speculative
#: columns report speedup over that baseline (``speedup_columns``
#: below), and the accuracy columns report the arithmetic-mean predictor
#: / value-predictor hit rate of the machine to their left.
_SPEC_STUDY_COLUMNS: Tuple[Tuple[str, str, str], ...] = (
    ("RUU x4 R50", "ruu:4:50", "rate"),
    ("btfn", "spec:50:btfn", "rate"),
    ("btfn acc", "spec:50:btfn", "prediction_accuracy"),
    ("2bit", "spec:50:2bit", "rate"),
    ("2bit acc", "spec:50:2bit", "prediction_accuracy"),
    ("2bit+vp", "spec:50:2bit:vp=last", "rate"),
    ("vp acc", "spec:50:2bit:vp=last", "vp_accuracy"),
    ("perfect", "spec:50:perfect", "rate"),
)


def _plan_spec_study(
    table_id: str, title: str, class_label: str, sizes: Sizes
) -> ExperimentPlan:
    loops = _CLASS_LOOPS[class_label]
    columns = tuple(label for label, _, _ in _SPEC_STUDY_COLUMNS)
    cells = []
    for config in CONFIG_NAMES:
        for column, machine, metric in _SPEC_STUDY_COLUMNS:
            for loop in loops:
                cells.append(Cell(
                    loop=loop,
                    n=_size(loop, sizes),
                    machine=machine,
                    config=config,
                    row=config,
                    columns=(column,),
                    metric=metric,
                ))
    return ExperimentPlan(
        table_id=table_id,
        title=title,
        columns=columns,
        rows=tuple(CONFIG_NAMES),
        cells=tuple(cells),
        aggregators=(
            ("btfn acc", "amean"),
            ("2bit acc", "amean"),
            ("vp acc", "amean"),
        ),
        speedup_base="RUU x4 R50",
        speedup_columns=("btfn", "2bit", "2bit+vp", "perfect"),
    )


def plan_table9(sizes: Sizes = None) -> ExperimentPlan:
    return _plan_spec_study(
        "table9",
        "Table 9: speculative issue with branch + value prediction; "
        "scalar code (speedup over RUU x4 R50)",
        "scalar", sizes,
    )


def plan_table10(sizes: Sizes = None) -> ExperimentPlan:
    return _plan_spec_study(
        "table10",
        "Table 10: speculative issue with branch + value prediction; "
        "vectorizable code (speedup over RUU x4 R50)",
        "vectorizable", sizes,
    )


#: Table id -> plan builder.  Every builder accepts ``sizes`` as its first
#: keyword; tables 3-8 also accept their sweep parameters.
PLAN_BUILDERS: Dict[str, Callable[..., ExperimentPlan]] = {
    "table1": plan_table1,
    "table2": plan_table2,
    "table3": plan_table3,
    "table4": plan_table4,
    "table5": plan_table5,
    "table6": plan_table6,
    "table7": plan_table7,
    "table8": plan_table8,
    "table9": plan_table9,
    "table10": plan_table10,
}


def build_plan(table_id: str, sizes: Sizes = None, **overrides) -> ExperimentPlan:
    """Build the plan for *table_id* (raises KeyError on unknown ids)."""
    try:
        builder = PLAN_BUILDERS[table_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {table_id!r}; known: {sorted(PLAN_BUILDERS)}"
        ) from None
    return builder(sizes, **overrides)
