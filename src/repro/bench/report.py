"""Benchmark report schema (``repro-bench/v1``) and comparison logic.

A report is a JSON document::

    {
      "schema": "repro-bench/v1",
      "name": "fastpath",
      "created": "2026-08-06T12:00:00Z",
      "environment": {"python": "3.11.7", ...},
      "parameters": {"quick": true, "seeds": 12, ...},
      "benchmarks": [
        {"id": "machine.cray.fast", "value": 1890856.0,
         "unit": "instr/s", "higher_is_better": true},
        ...
      ]
    }

:func:`validate_payload` checks that shape (returning problems instead
of raising, so the CLI can report every defect at once), and
:func:`compare_reports` matches two reports benchmark-by-benchmark,
flagging any direction-adjusted relative change worse than a noise
threshold as a regression.  Missing or extra benchmark ids are reported
but are never regressions -- suites are allowed to grow.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .env import environments_comparable

__all__ = [
    "SCHEMA",
    "BenchReport",
    "BenchResult",
    "Comparison",
    "Delta",
    "compare_reports",
    "load_report",
    "validate_payload",
]

SCHEMA = "repro-bench/v1"

#: Default noise threshold for --compare: a benchmark must move more
#: than this fraction in the losing direction to count as a regression.
#: Wall-clock micro-benchmarks on shared CI runners are noisy; 25% is
#: calibrated to catch a real fast-path loss (3x -> 2x) while ignoring
#: scheduler jitter.
DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True)
class BenchResult:
    """One measured number.

    Attributes:
        id: stable dotted identifier (``machine.cray.speedup``);
            comparisons match on it.
        value: the measurement (min over interleaved rounds for timings).
        unit: human label (``instr/s``, ``s``, ``x``).
        higher_is_better: direction; ``False`` for wall times.
    """

    id: str
    value: float
    unit: str
    higher_is_better: bool = True

    def to_payload(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
        }


@dataclass
class BenchReport:
    """A full benchmark run, serialisable to the v1 JSON schema."""

    name: str
    created: str
    environment: Dict[str, Any]
    parameters: Dict[str, Any]
    results: List[BenchResult] = field(default_factory=list)

    def add(
        self,
        result_id: str,
        value: float,
        unit: str,
        *,
        higher_is_better: bool = True,
    ) -> BenchResult:
        result = BenchResult(result_id, value, unit, higher_is_better)
        self.results.append(result)
        return result

    def result(self, result_id: str) -> Optional[BenchResult]:
        for result in self.results:
            if result.id == result_id:
                return result
        return None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "name": self.name,
            "created": self.created,
            "environment": dict(self.environment),
            "parameters": dict(self.parameters),
            "benchmarks": [result.to_payload() for result in self.results],
        }

    def write(self, path: os.PathLike) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_payload(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "BenchReport":
        problems = validate_payload(payload)
        if problems:
            raise ValueError(
                "invalid benchmark report: " + "; ".join(problems)
            )
        return cls(
            name=payload["name"],
            created=payload["created"],
            environment=dict(payload["environment"]),
            parameters=dict(payload.get("parameters", {})),
            results=[
                BenchResult(
                    id=entry["id"],
                    value=float(entry["value"]),
                    unit=entry["unit"],
                    higher_is_better=bool(entry["higher_is_better"]),
                )
                for entry in payload["benchmarks"]
            ],
        )


def validate_payload(payload: Any) -> List[str]:
    """Every schema defect in *payload* (empty list = valid v1 report)."""
    problems: List[str] = []
    if not isinstance(payload, Mapping):
        return ["payload is not a JSON object"]
    if payload.get("schema") != SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {SCHEMA!r}"
        )
    for key in ("name", "created"):
        if not isinstance(payload.get(key), str) or not payload.get(key):
            problems.append(f"{key!r} must be a non-empty string")
    if not isinstance(payload.get("environment"), Mapping):
        problems.append("'environment' must be an object")
    if "parameters" in payload and not isinstance(
        payload["parameters"], Mapping
    ):
        problems.append("'parameters' must be an object")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, Sequence) or isinstance(benchmarks, str):
        problems.append("'benchmarks' must be an array")
        return problems
    seen: set = set()
    for index, entry in enumerate(benchmarks):
        where = f"benchmarks[{index}]"
        if not isinstance(entry, Mapping):
            problems.append(f"{where} is not an object")
            continue
        bench_id = entry.get("id")
        if not isinstance(bench_id, str) or not bench_id:
            problems.append(f"{where}: 'id' must be a non-empty string")
        elif bench_id in seen:
            problems.append(f"{where}: duplicate id {bench_id!r}")
        else:
            seen.add(bench_id)
        value = entry.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{where}: 'value' must be a number")
        elif value != value or value in (float("inf"), float("-inf")):
            problems.append(f"{where}: 'value' must be finite")
        if not isinstance(entry.get("unit"), str):
            problems.append(f"{where}: 'unit' must be a string")
        if not isinstance(entry.get("higher_is_better"), bool):
            problems.append(f"{where}: 'higher_is_better' must be a bool")
    return problems


def load_report(path: os.PathLike) -> BenchReport:
    """Read and validate a report file (raises ValueError on defects)."""
    with open(path) as handle:
        payload = json.load(handle)
    return BenchReport.from_payload(payload)


@dataclass(frozen=True)
class Delta:
    """One benchmark present in both reports.

    ``change`` is the signed relative move with *improvement positive*
    regardless of direction: +0.10 always means 10% better than the
    baseline, for a throughput and for a wall time alike.
    """

    id: str
    unit: str
    baseline: float
    current: float
    change: float
    regression: bool

    def __str__(self) -> str:
        verdict = "REGRESSION" if self.regression else "ok"
        return (
            f"{self.id:<32} {self.baseline:>14,.2f} -> "
            f"{self.current:>14,.2f} {self.unit:<8} "
            f"{self.change:+8.1%}  {verdict}"
        )


@dataclass
class Comparison:
    """The outcome of matching a current report against a baseline."""

    threshold: float
    deltas: List[Delta] = field(default_factory=list)
    missing: Tuple[str, ...] = ()  # in baseline, absent from current
    added: Tuple[str, ...] = ()  # in current, absent from baseline
    environment_comparable: bool = True

    @property
    def regressions(self) -> List[Delta]:
        return [delta for delta in self.deltas if delta.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> Comparison:
    """Match *current* against *baseline* benchmark-by-benchmark.

    A benchmark regresses when its direction-adjusted relative change is
    below ``-threshold``; moves inside the band are noise, improvements
    of any size are fine.  Ids present in only one report are listed in
    ``missing``/``added`` but never fail the comparison.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    comparison = Comparison(
        threshold=threshold,
        environment_comparable=environments_comparable(
            current.environment, baseline.environment
        ),
    )
    base_by_id = {result.id: result for result in baseline.results}
    current_ids = {result.id for result in current.results}
    comparison.missing = tuple(
        sorted(set(base_by_id) - current_ids)
    )
    comparison.added = tuple(sorted(current_ids - set(base_by_id)))

    for result in current.results:
        base = base_by_id.get(result.id)
        if base is None:
            continue
        if base.value == 0:
            change = 0.0
        elif result.higher_is_better:
            change = (result.value - base.value) / base.value
        else:
            change = (base.value - result.value) / base.value
        comparison.deltas.append(
            Delta(
                id=result.id,
                unit=result.unit,
                baseline=base.value,
                current=result.value,
                change=change,
                regression=change < -threshold,
            )
        )
    return comparison
