"""The seeded micro-benchmark suite behind ``repro bench``.

Three benchmark families, all deterministic in their workloads (fuzzed
traces come from fixed seeds, tables run at the pinned ``SMALL_SIZES``):

* ``machine.<spec>.{fast,reference,speedup}`` -- replay throughput
  (instructions/second) of the compiled fast path
  (:mod:`repro.core.fastpath`) and the event-capable reference loop on
  the same fuzzed traces, plus their ratio.  Every measured machine must
  expose ``reference_simulate``; cycle counts are asserted identical
  before any timing, so a fast-path divergence fails the benchmark
  rather than producing a fast wrong number.
* ``table.<id>.wall`` -- wall seconds to build and run one paper table
  in-process (``workers=1``, no cache): the end-to-end single-core cost
  a contributor pays per golden-table check.
* ``engine.<id>.{cold,warm}`` -- the same table through
  :func:`repro.harness.engine.run_plan` against a fresh
  :class:`~repro.trace.DiskCache` (cold) and again on the now-populated
  store (warm).

Methodology: variants are timed in interleaved rounds and compared on
their minimum round time -- the minimum is the least noisy location
estimator on a shared machine, and interleaving cancels slow drift.  A
warm-up pass precedes timing so the fast path's per-trace compilation
(cached by trace identity) is excluded from replay throughput.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, replace
from datetime import datetime, timezone
from typing import Callable, List, Optional, Tuple

from ..core import build_simulator, config_by_name, fastpath
from ..harness.engine import run_plan
from ..harness.plans import build_plan
from ..kernels import SMALL_SIZES
from ..trace import DiskCache
from ..verify.fuzz import FuzzSpec, fuzz_trace
from .env import environment_metadata
from .report import BenchReport

__all__ = [
    "BenchOptions",
    "DEFAULT_OPTIONS",
    "QUICK_OPTIONS",
    "run_suite",
]

#: Fast-path machines benchmarked by default: the two scoreboard
#: variants the paper leans on, two in-order widths, and one
#: representative of each dynamic machine's compiled loop (RUU,
#: Tomasulo, out-of-order multi-issue, CDC 6600, and the speculative
#: window machine with its default 2-bit predictor).
DEFAULT_MACHINES: Tuple[str, ...] = (
    "cray",
    "serialmemory",
    "inorder:2",
    "inorder:4",
    "ruu:2:50",
    "tomasulo",
    "ooo:4",
    "cdc6600",
    "spec:50:2bit",
)

Log = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class BenchOptions:
    """Knobs for one suite run (see :data:`QUICK_OPTIONS` for CI)."""

    quick: bool = False
    seeds: int = 40
    trace_length: int = 1024
    rounds: int = 5
    machines: Tuple[str, ...] = DEFAULT_MACHINES
    config: str = "M11BR5"
    # table1 covers the statically scheduled machines; table7 sweeps the
    # RUU, so its wall time tracks the dynamic machines' compiled loops.
    tables: Tuple[str, ...] = ("table1", "table7")
    engine: bool = True
    #: Fast-path backend the engine benchmarks run through ("auto"
    #: resolves to batch); the sweep suite always measures both.
    backend: str = "auto"
    explore: bool = True
    #: Instructions per explorer workload trace: the e2e exhaustive pass
    #: costs O(grid x this), so the quick preset shortens it.
    explore_trace_length: int = 300


DEFAULT_OPTIONS = BenchOptions()

#: The CI smoke configuration: small enough to finish in well under 30
#: seconds, large enough that the fast-path speedup is unambiguous.
QUICK_OPTIONS = BenchOptions(
    quick=True, seeds=12, trace_length=256, rounds=3, tables=("table1",),
    explore_trace_length=120,
)


def _now() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _time_pass(fn, traces, config) -> float:
    start = time.perf_counter()
    for trace in traces:
        fn(trace, config)
    return time.perf_counter() - start


def _bench_machines(options: BenchOptions, report: BenchReport, log: Log):
    config = config_by_name(options.config)
    spec_shape = FuzzSpec(length=options.trace_length)
    traces = [
        fuzz_trace(seed, spec_shape) for seed in range(options.seeds)
    ]
    total_instructions = sum(len(trace) for trace in traces)

    for spec in options.machines:
        simulator = build_simulator(spec)
        reference = getattr(simulator, "reference_simulate", None)
        if reference is None:
            raise ValueError(
                f"machine {spec!r} has no reference_simulate; only "
                "fast-path machines can be replay-benchmarked"
            )

        # Correctness gate plus warm-up (populates the compile cache so
        # timing measures replay, not per-trace compilation).
        for trace in traces:
            fast_cycles = simulator.simulate(trace, config).cycles
            ref_cycles = reference(trace, config).cycles
            if fast_cycles != ref_cycles:
                raise ValueError(
                    f"fast path diverged on {spec} / {trace.name}: "
                    f"{fast_cycles} vs {ref_cycles} cycles -- refusing "
                    "to benchmark a wrong answer"
                )

        fast_times: List[float] = []
        reference_times: List[float] = []
        for _ in range(options.rounds):
            fast_times.append(
                _time_pass(simulator.simulate, traces, config)
            )
            reference_times.append(_time_pass(reference, traces, config))

        fast = total_instructions / min(fast_times)
        ref = total_instructions / min(reference_times)
        report.add(f"machine.{spec}.fast", fast, "instr/s")
        report.add(f"machine.{spec}.reference", ref, "instr/s")
        report.add(f"machine.{spec}.speedup", fast / ref, "x")
        if log:
            log(
                f"  machine.{spec:<14} fast {fast:>12,.0f} instr/s  "
                f"reference {ref:>12,.0f} instr/s  "
                f"speedup {fast / ref:.2f}x"
            )


#: The sweep benchmark's machine: the paper's four-unit out-of-order
#: multi-issue organisation (the Table 5 family), replayed through all
#: four machine-variant configs as one sweep.
SWEEP_SPEC = "ooo:4"


def _bench_sweep(options: BenchOptions, report: BenchReport, log: Log):
    """``sweep.<spec>.{batch,perspec,speedup}``: one trace, many configs.

    Replays every fuzzed trace through :data:`SWEEP_SPEC` under all four
    standard configs -- once through the batch structure-of-arrays
    backend (one pass per trace) and once through the per-spec python
    backend (four passes per trace) -- and reports both throughputs plus
    their ratio.  Cycle counts are asserted identical between the two
    backends before any timing.
    """
    from ..core.config import STANDARD_CONFIGS

    spec_shape = FuzzSpec(length=options.trace_length)
    traces = [fuzz_trace(seed, spec_shape) for seed in range(options.seeds)]
    items = [
        (build_simulator(SWEEP_SPEC), config) for config in STANDARD_CONFIGS
    ]
    total = sum(len(trace) for trace in traces) * len(items)

    def sweep_pass(backend: str) -> List[List[int]]:
        cycles: List[List[int]] = []
        for trace in traces:
            results = fastpath.simulate_sweep(trace, items, backend=backend)
            cycles.append([result.cycles for result in results])
        return cycles

    # Correctness gate plus warm-up: the batch backend must agree with
    # the per-spec loops on every (trace, config) cell, and both passes
    # populate the compile and sweep-plan caches so timing measures
    # replay, not lowering.
    batch_cycles = sweep_pass("batch")
    perspec_cycles = sweep_pass("python")
    if batch_cycles != perspec_cycles:
        raise ValueError(
            f"batch backend diverged from per-spec loops on {SWEEP_SPEC} "
            "-- refusing to benchmark a wrong answer"
        )

    batch_times: List[float] = []
    perspec_times: List[float] = []
    for _ in range(options.rounds):
        start = time.perf_counter()
        sweep_pass("batch")
        batch_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        sweep_pass("python")
        perspec_times.append(time.perf_counter() - start)

    batch = total / min(batch_times)
    perspec = total / min(perspec_times)
    report.add(f"sweep.{SWEEP_SPEC}.batch", batch, "instr/s")
    report.add(f"sweep.{SWEEP_SPEC}.perspec", perspec, "instr/s")
    report.add(f"sweep.{SWEEP_SPEC}.speedup", batch / perspec, "x")
    if log:
        log(
            f"  sweep.{SWEEP_SPEC:<16} batch {batch:>12,.0f} instr/s  "
            f"perspec {perspec:>12,.0f} instr/s  "
            f"speedup {batch / perspec:.2f}x"
        )


#: Screen-throughput space: large enough (130,816 candidates) that the
#: vectorised pass dominates any per-call overhead.
SCREEN_SPACE = "family=ruu;width=1..32;window=2..512;bus=nbus,1bus;fu=1..4"

#: End-to-end space: 2,048 RUU candidates, big enough that exhaustive
#: simulation visibly dwarfs the screened run.
E2E_SPACE = "family=ruu;width=1..8;window=2..128:2;bus=nbus,1bus;fu=1,2"


def _bench_explore(options: BenchOptions, report: BenchReport, log: Log):
    """``explore.screen.rate`` + ``explore.e2e.{explore,exhaustive,speedup}``.

    The screen benchmark scores :data:`SCREEN_SPACE` analytically (min
    over the usual interleaved rounds).  The end-to-end benchmark runs
    one budgeted explorer pass over :data:`E2E_SPACE` and one exhaustive
    sweep of the same grid through the batch fast path -- a single pass
    each, because the exhaustive side costs seconds by design and its
    duration is what the speedup divides by.
    """
    from ..explore import explore as explore_run
    from ..explore.model import build_anchors
    from ..explore.screen import screen_space
    from ..explore.space import expand_space, parse_space
    from ..harness.engine import run_source_sweep

    n = options.explore_trace_length
    sources = [f"branchy:seed=3:n={n}", f"pointer:seed=5:n={n}"]
    config = options.config

    space = parse_space(SCREEN_SPACE, default_config=config)
    anchors = [
        build_anchors(source, config_by_name(config)) for source in sources
    ]
    screen_times: List[float] = []
    for _ in range(options.rounds):
        screen_times.append(
            screen_space(space, anchors, cache=None).seconds
        )
    rate = space.size / min(screen_times)
    report.add("explore.screen.rate", rate, "configs/s")
    if log:
        log(f"  explore.screen.rate {rate:>14,.0f} configs/s "
            f"({space.size} candidates)")

    explore_times: List[float] = []
    simulated = 0
    for _ in range(options.rounds):
        start = time.perf_counter()
        run = explore_run(
            E2E_SPACE, sources, config=config, budget=20, audit=4,
            workers=1, cache=None, observe=False,
        )
        explore_times.append(time.perf_counter() - start)
        simulated = run.simulated_count
    grid = expand_space(parse_space(E2E_SPACE, default_config=config))
    specs = [grid.machine_spec(i) for i in range(grid.n)]
    start = time.perf_counter()
    run_source_sweep(specs, sources, config=config, workers=1, cache=None)
    exhaustive = time.perf_counter() - start

    explored = min(explore_times)
    report.add("explore.e2e.explore", explored, "s", higher_is_better=False)
    report.add(
        "explore.e2e.exhaustive", exhaustive, "s", higher_is_better=False
    )
    report.add("explore.e2e.speedup", exhaustive / explored, "x")
    if log:
        log(
            f"  explore.e2e      explore {explored * 1e3:>8.1f} ms "
            f"({simulated} of {grid.n} simulated)  "
            f"exhaustive {exhaustive * 1e3:>8.1f} ms  "
            f"speedup {exhaustive / explored:.1f}x"
        )


def _bench_tables(options: BenchOptions, report: BenchReport, log: Log):
    sizes = dict(SMALL_SIZES)
    for table_id in options.tables:
        times: List[float] = []
        for _ in range(options.rounds):
            start = time.perf_counter()
            plan = build_plan(table_id, sizes)
            run_plan(plan, workers=1, cache=None, backend=options.backend)
            times.append(time.perf_counter() - start)
        wall = min(times)
        report.add(
            f"table.{table_id}.wall", wall, "s", higher_is_better=False
        )
        if log:
            log(f"  table.{table_id}.wall {wall * 1e3:>10.1f} ms")


def _bench_engine(options: BenchOptions, report: BenchReport, log: Log):
    sizes = dict(SMALL_SIZES)
    for table_id in options.tables:
        plan = build_plan(table_id, sizes)
        cold_times: List[float] = []
        warm_times: List[float] = []
        for _ in range(options.rounds):
            with tempfile.TemporaryDirectory() as tmp:
                store = DiskCache(root=tmp)
                start = time.perf_counter()
                run_plan(plan, workers=1, cache=store,
                         backend=options.backend)
                cold_times.append(time.perf_counter() - start)
                start = time.perf_counter()
                run_plan(plan, workers=1, cache=store,
                         backend=options.backend)
                warm_times.append(time.perf_counter() - start)
        cold, warm = min(cold_times), min(warm_times)
        report.add(
            f"engine.{table_id}.cold", cold, "s", higher_is_better=False
        )
        report.add(
            f"engine.{table_id}.warm", warm, "s", higher_is_better=False
        )
        if log:
            log(
                f"  engine.{table_id} cold {cold * 1e3:>8.1f} ms  "
                f"warm {warm * 1e3:>8.1f} ms"
            )


def run_suite(
    options: Optional[BenchOptions] = None,
    *,
    name: str = "fastpath",
    log: Log = None,
) -> BenchReport:
    """Run the full micro-benchmark suite and return its report.

    The fast path is pinned enabled for the duration (and restored
    afterwards), so a ``REPRO_FASTPATH=0`` environment still measures
    what the suite claims to measure.
    """
    options = options or DEFAULT_OPTIONS
    report = BenchReport(
        name=name,
        created=_now(),
        environment=environment_metadata(),
        parameters={
            "quick": options.quick,
            "seeds": options.seeds,
            "trace_length": options.trace_length,
            "rounds": options.rounds,
            "machines": list(options.machines),
            "config": options.config,
            "tables": list(options.tables),
            "backend": options.backend,
            "explore": options.explore,
            "explore_trace_length": options.explore_trace_length,
        },
    )
    previous = fastpath.set_enabled(True)
    try:
        if log:
            log(f"bench {name}: {len(options.machines)} machines, "
                f"{options.seeds} traces x {options.trace_length} instrs, "
                f"min of {options.rounds} rounds")
        _bench_machines(options, report, log)
        _bench_sweep(options, report, log)
        if options.explore:
            _bench_explore(options, report, log)
        if options.tables:
            _bench_tables(options, report, log)
        if options.engine and options.tables:
            _bench_engine(options, report, log)
    finally:
        fastpath.set_enabled(previous)
    return report


def options_from(
    *,
    quick: bool = False,
    seeds: Optional[int] = None,
    trace_length: Optional[int] = None,
    rounds: Optional[int] = None,
    machines: Optional[Tuple[str, ...]] = None,
    no_engine: bool = False,
    no_explore: bool = False,
    backend: str = "auto",
) -> BenchOptions:
    """The CLI's option builder: quick preset plus explicit overrides."""
    options = QUICK_OPTIONS if quick else DEFAULT_OPTIONS
    overrides = {}
    if seeds is not None:
        overrides["seeds"] = seeds
    if trace_length is not None:
        overrides["trace_length"] = trace_length
    if rounds is not None:
        overrides["rounds"] = rounds
    if machines is not None:
        overrides["machines"] = tuple(machines)
    if no_engine:
        overrides["engine"] = False
    if no_explore:
        overrides["explore"] = False
    if backend != "auto":
        overrides["backend"] = backend
    return replace(options, **overrides) if overrides else options
