"""Seeded micro-benchmarks with persisted, comparable reports.

The package behind ``repro bench``:

* :mod:`repro.bench.micro` -- the suite (fast-path vs reference replay
  throughput per machine, per-table wall time, engine cold/warm cache);
* :mod:`repro.bench.report` -- the ``repro-bench/v1`` JSON schema,
  validation, and baseline comparison with a noise threshold;
* :mod:`repro.bench.env` -- environment metadata stamped into reports.

Typical use::

    from repro.bench import QUICK_OPTIONS, run_suite, compare_reports

    report = run_suite(QUICK_OPTIONS, log=print)
    report.write("BENCH_fastpath.json")
    comparison = compare_reports(report, load_report("baseline.json"))
    assert comparison.ok, comparison.regressions
"""

from .env import environment_metadata, environments_comparable
from .micro import (
    BenchOptions,
    DEFAULT_OPTIONS,
    QUICK_OPTIONS,
    options_from,
    run_suite,
)
from .report import (
    SCHEMA,
    BenchReport,
    BenchResult,
    Comparison,
    Delta,
    compare_reports,
    load_report,
    validate_payload,
)

__all__ = [
    "BenchOptions",
    "BenchReport",
    "BenchResult",
    "Comparison",
    "DEFAULT_OPTIONS",
    "Delta",
    "QUICK_OPTIONS",
    "SCHEMA",
    "compare_reports",
    "environment_metadata",
    "environments_comparable",
    "load_report",
    "options_from",
    "run_suite",
    "validate_payload",
]
