"""Environment metadata stamped into every benchmark report.

Benchmark numbers are only comparable within one environment; the
report captures enough of it (interpreter, platform, CPU count, git
revision, fast-path state) that ``repro bench --compare`` can warn when
two reports were measured on visibly different machines.
"""

from __future__ import annotations

import os
import platform
from typing import Any, Dict

from ..core import fastpath
from ..obs.manifest import current_git_sha

__all__ = ["environment_metadata", "environments_comparable"]

#: Keys whose values must match for two reports to be comparable.
_COMPARABLE_KEYS = ("implementation", "machine",)


def environment_metadata() -> Dict[str, Any]:
    """A JSON-safe snapshot of the measuring environment."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": current_git_sha() or "",
        "fastpath_enabled": fastpath.enabled(),
    }


def environments_comparable(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> bool:
    """Were two reports measured on plausibly comparable hardware?

    Deliberately loose: Python patch level and git revision are allowed
    to differ (that is the point of comparing), but a CPython-vs-PyPy or
    x86-vs-ARM comparison is flagged so the caller can soften its
    verdict to a warning.
    """
    return all(
        current.get(key) == baseline.get(key) for key in _COMPARABLE_KEYS
    )
