"""Branch predictors for the speculation extension (see module docs)."""

from .predictors import (
    AlwaysTakenPredictor,
    BackwardTakenPredictor,
    BranchPredictor,
    OneBitPredictor,
    OraclePredictor,
    PredictorStats,
    TwoBitPredictor,
)

__all__ = [
    "AlwaysTakenPredictor",
    "BackwardTakenPredictor",
    "BranchPredictor",
    "OneBitPredictor",
    "OraclePredictor",
    "PredictorStats",
    "TwoBitPredictor",
]
