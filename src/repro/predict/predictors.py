"""Branch predictors (an extension the paper explicitly sets aside).

Section 2: "we have not incorporated any type of guessing or branch
prediction to get an early start on the execution of a likely branch
target path."  Since branch resolution is a first-order limit in every
table (the BR5/BR2 columns), the natural follow-up is to quantify what
prediction recovers.  This module provides the classic predictor family;
:class:`repro.core.ruu.RUUMachine` accepts any of them.

Predictors are indexed by the *static* instruction index of the branch,
so a loop-closing branch trains its own entry, exactly like a (collision
free) branch history table.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict


@dataclass
class PredictorStats:
    """Running prediction-accuracy counters."""

    correct: int = 0
    incorrect: int = 0

    @property
    def predictions(self) -> int:
        return self.correct + self.incorrect

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0


class BranchPredictor(abc.ABC):
    """Predicts conditional-branch outcomes by static branch identity."""

    def __init__(self) -> None:
        self.stats = PredictorStats()

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short label used in simulator names and tables."""

    @abc.abstractmethod
    def predict(self, static_index: int, backward: bool) -> bool:
        """Predicted outcome for the branch at *static_index*.

        Args:
            static_index: the branch's static program position.
            backward: True if the branch targets an earlier instruction
                (available to static heuristics).
        """

    def predict_outcome(
        self, static_index: int, backward: bool, taken: bool
    ) -> bool:
        """Prediction with the actual outcome in scope.

        Real predictors must ignore *taken* (the default delegates to
        :meth:`predict`); only the oracle bounds
        (:class:`OraclePredictor`) use it.  Machines call this entry
        point so the perfect / always-wrong limit predictors need no
        special casing in the simulators.
        """
        return self.predict(static_index, backward)

    def update(self, static_index: int, taken: bool) -> None:
        """Train on the actual outcome (default: stateless)."""

    def record(self, prediction: bool, taken: bool) -> bool:
        """Score a prediction; returns True if it was correct."""
        correct = prediction == taken
        if correct:
            self.stats.correct += 1
        else:
            self.stats.incorrect += 1
        return correct


class AlwaysTakenPredictor(BranchPredictor):
    """Predict every branch taken."""

    @property
    def name(self) -> str:
        return "always-taken"

    def predict(self, static_index: int, backward: bool) -> bool:
        return True


class BackwardTakenPredictor(BranchPredictor):
    """Static BTFN: backward taken, forward not taken."""

    @property
    def name(self) -> str:
        return "backward-taken"

    def predict(self, static_index: int, backward: bool) -> bool:
        return backward


class OneBitPredictor(BranchPredictor):
    """Last-outcome predictor (one bit per static branch)."""

    def __init__(self) -> None:
        super().__init__()
        self._last: Dict[int, bool] = {}

    @property
    def name(self) -> str:
        return "1-bit"

    def predict(self, static_index: int, backward: bool) -> bool:
        return self._last.get(static_index, backward)

    def update(self, static_index: int, taken: bool) -> None:
        self._last[static_index] = taken


class TwoBitPredictor(BranchPredictor):
    """Saturating 2-bit counter per static branch (initialised weakly
    toward the BTFN heuristic)."""

    def __init__(self) -> None:
        super().__init__()
        self._counter: Dict[int, int] = {}  # 0..3; >=2 predicts taken

    @property
    def name(self) -> str:
        return "2-bit"

    def predict(self, static_index: int, backward: bool) -> bool:
        default = 2 if backward else 1
        return self._counter.get(static_index, default) >= 2

    def update(self, static_index: int, taken: bool) -> None:
        # Default initialisation mirrors predict()'s BTFN lean; we cannot
        # know `backward` here, so start from the weak middle.
        counter = self._counter.get(static_index, 1 if not taken else 2)
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counter[static_index] = counter


class OraclePredictor(BranchPredictor):
    """Limit-study bound: predicts every branch right (or every branch
    wrong).

    The speculative machine family uses the two instances as its
    bracketing bounds: ``perfect`` (every conditional branch predicted
    correctly) gives the speculation ceiling, ``always-wrong`` the
    recovery-cost floor.  Only :meth:`predict_outcome` is meaningful --
    :meth:`predict` has no outcome in scope and degenerates to
    always-taken, so real machines must route through
    :meth:`predict_outcome` (as :class:`repro.core.spec.SpecMachine`
    does).
    """

    def __init__(self, correct: bool = True) -> None:
        super().__init__()
        #: Simulators can also sense the oracle through this attribute.
        self.oracle_correct = bool(correct)

    @property
    def name(self) -> str:
        return "perfect" if self.oracle_correct else "always-wrong"

    def predict(self, static_index: int, backward: bool) -> bool:
        return True

    def predict_outcome(
        self, static_index: int, backward: bool, taken: bool
    ) -> bool:
        return taken if self.oracle_correct else not taken
