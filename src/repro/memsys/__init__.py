"""Memory-system substrate: caches, banked memories and a memory-aware core.

Quantifies the paper's memory idealisations: the flat 5-cycle "fast
memory" (really a cache) and the conflict-free interleaved memory
(really 16 banks with a 4-cycle busy time on the CRAY-1).
"""

from .banked import BankedMemory
from .cache import Cache, CacheStats
from .machine import (
    CachedMemory,
    ConflictMemory,
    MemoryAwareMachine,
    MemoryTiming,
    UniformMemory,
)

__all__ = [
    "BankedMemory",
    "Cache",
    "CacheStats",
    "CachedMemory",
    "ConflictMemory",
    "MemoryAwareMachine",
    "MemoryTiming",
    "UniformMemory",
]
