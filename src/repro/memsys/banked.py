"""An interleaved, banked memory with bank-busy conflicts.

The paper idealises the interleaved memory as accepting one request every
cycle with no conflicts.  A real CRAY-1 memory is 16 banks with a 4-cycle
bank-busy time: consecutive references to the *same* bank within the busy
window stall.  This model restores that behaviour so the idealisation can
be quantified: unit-stride streams see no conflicts, while strides that
alias onto few banks (powers of two!) serialise.
"""

from __future__ import annotations

from typing import List


class BankedMemory:
    """Bank-conflict timing model.

    Args:
        n_banks: number of interleaved banks (word-granularity
            interleave); CRAY-1 had 16.
        bank_busy: cycles a bank is busy per access; CRAY-1 is 4.
    """

    def __init__(self, n_banks: int = 16, bank_busy: int = 4) -> None:
        if n_banks < 1:
            raise ValueError("need at least one bank")
        if bank_busy < 1:
            raise ValueError("bank busy time must be >= 1")
        self.n_banks = n_banks
        self.bank_busy = bank_busy
        self._bank_free: List[int] = [0] * n_banks
        self.conflict_cycles = 0

    def bank_of(self, address: int) -> int:
        return address % self.n_banks

    def request(self, cycle: int, address: int) -> int:
        """Present a request in *cycle*; returns the cycle it actually
        starts (>= cycle; later iff the bank is still busy)."""
        bank = self.bank_of(address)
        start = max(cycle, self._bank_free[bank])
        self.conflict_cycles += start - cycle
        self._bank_free[bank] = start + self.bank_busy
        return start

    def reset(self) -> None:
        self._bank_free = [0] * self.n_banks
        self.conflict_cycles = 0
