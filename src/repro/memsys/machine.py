"""A CRAY-like machine with a real memory system behind the port.

The paper's machines price every memory reference at a flat 11 (M11) or
5 (M5) cycles.  :class:`MemoryAwareMachine` is the same single-issue,
issue-blocking, fully pipelined core, except each load/store consults a
memory timing model -- a cache (hit 5 / miss 11), a banked memory with
bank-busy conflicts, or any user-supplied model -- using the effective
addresses recorded in the trace.

This answers the question the paper's M5 idealisation raises: how much of
the M11 -> M5 gain does a *finite* cache actually deliver on these
kernels, and how much do bank conflicts erode the perfect-interleaving
assumption?
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, Set, Tuple

from ..core.base import Simulator, require_scalar_trace
from ..core.config import MachineConfig
from ..core.result import SimulationResult
from ..isa import FunctionalUnit, Register
from ..trace import Trace
from .banked import BankedMemory
from .cache import Cache


class MemoryTiming(Protocol):
    """Per-access memory timing: maps a request to (start, latency)."""

    def access(
        self, cycle: int, address: Optional[int], is_store: bool
    ) -> Tuple[int, int]:
        """Present a request at *cycle*; return (start cycle, latency)."""
        ...  # pragma: no cover - protocol

    @property
    def description(self) -> str:
        """Short label used in simulator names."""
        ...  # pragma: no cover - protocol


class UniformMemory:
    """The paper's idealised memory: flat latency, no conflicts."""

    def __init__(self, latency: int) -> None:
        if latency < 1:
            raise ValueError("latency must be >= 1")
        self.latency = latency

    def access(self, cycle, address, is_store):
        return cycle, self.latency

    @property
    def description(self) -> str:
        return f"uniform {self.latency}"


class CachedMemory:
    """Cache in front of the slow memory: hit fast, miss slow.

    Args:
        cache: the cache model (consumed/mutated during a run).
        hit_latency: cycles for a hit (the paper's M5 value).
        miss_latency: cycles for a miss (the paper's M11 value).
        stores_allocate: whether stores allocate/touch cache lines.
    """

    def __init__(
        self,
        cache: Cache,
        hit_latency: int = 5,
        miss_latency: int = 11,
        stores_allocate: bool = True,
    ) -> None:
        if hit_latency > miss_latency:
            raise ValueError("hit latency must not exceed miss latency")
        self.cache = cache
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self.stores_allocate = stores_allocate

    def access(self, cycle, address, is_store):
        if address is None:
            return cycle, self.miss_latency  # untagged: be conservative
        if is_store and not self.stores_allocate:
            return cycle, self.miss_latency
        hit = self.cache.access(address)
        return cycle, self.hit_latency if hit else self.miss_latency

    @property
    def description(self) -> str:
        return (
            f"cache {self.cache.total_words}w/"
            f"{self.cache.line_words}l/{self.cache.associativity}a"
        )


class ConflictMemory:
    """Banked memory: flat latency plus bank-busy conflict delays."""

    def __init__(self, banks: BankedMemory, latency: int = 11) -> None:
        self.banks = banks
        self.latency = latency

    def access(self, cycle, address, is_store):
        if address is None:
            return cycle, self.latency
        return self.banks.request(cycle, address), self.latency

    @property
    def description(self) -> str:
        return f"{self.banks.n_banks} banks busy {self.banks.bank_busy}"


class MemoryAwareMachine(Simulator):
    """Single-issue CRAY-like core with a pluggable memory system.

    Args:
        memory_factory: builds a fresh :class:`MemoryTiming` per run (the
            models are stateful).

    Non-memory timing is identical to
    :func:`repro.core.scoreboard.cray_like_machine`; the machine's
    ``config.memory_latency`` is ignored in favour of the model.
    """

    def __init__(self, memory_factory: Callable[[], MemoryTiming]) -> None:
        self.memory_factory = memory_factory
        self._label = f"CRAY-like + {memory_factory().description}"

    @property
    def name(self) -> str:
        return self._label

    def simulate(self, trace: Trace, config: MachineConfig) -> SimulationResult:
        require_scalar_trace(trace, self.name)
        latencies = config.latencies
        branch_latency = config.branch_latency
        memory = self.memory_factory()

        reg_ready: Dict[Register, int] = {}
        fu_free: Dict[FunctionalUnit, int] = {}
        bus_reserved: Set[int] = set()
        next_issue = 0
        last_event = 0

        for entry in trace:
            instr = entry.instruction
            unit = instr.unit
            is_memory = unit is FunctionalUnit.MEMORY

            earliest = next_issue
            for src in instr.source_registers:
                ready = reg_ready.get(src, 0)
                if ready > earliest:
                    earliest = ready
            if instr.dest is not None:
                ready = reg_ready.get(instr.dest, 0)
                if ready > earliest:
                    earliest = ready
            unit_free = fu_free.get(unit, 0)
            if unit_free > earliest:
                earliest = unit_free

            if is_memory:
                # The reference blocks at issue until its bank/port is
                # ready, then takes its model-determined latency.
                issue, latency = memory.access(
                    earliest, entry.address, instr.is_store
                )
            else:
                issue = earliest
                latency = instr.latency(latencies)

            if instr.dest is not None:
                while issue + latency in bus_reserved:
                    issue += 1
            complete = issue + latency
            if instr.dest is not None:
                bus_reserved.add(complete)
                reg_ready[instr.dest] = complete
            fu_free[unit] = issue + 1

            if instr.is_branch:
                next_issue = issue + branch_latency
                complete = issue + branch_latency
            else:
                next_issue = issue + 1

            if complete > last_event:
                last_event = complete

        return SimulationResult(
            trace_name=trace.name,
            simulator=self.name,
            config=config,
            instructions=len(trace),
            cycles=max(last_event, 1),
        )
