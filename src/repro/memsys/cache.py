"""A set-associative data-cache simulator.

The paper models its fast memory abstractly: "A fast memory results if
some form of fast intermediate storage, i.e., some form of cache is
provided", and then simply assigns every access 5 cycles.  This module
builds the cache that idealisation stands in for, so the reproduction can
ask *how good a cache has to be* before the M5 idealisation is earned:
hits cost the fast latency, misses the slow one, and the hit ratio comes
from the kernel's real address stream.

The model is a classic word-addressed set-associative cache with LRU
replacement and write-allocate stores (writes are not timed separately;
the CRAY-style machine already prices every memory reference through the
port).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass
class CacheStats:
    """Running hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """Word-addressed set-associative cache with LRU replacement.

    Args:
        total_words: capacity in 64-bit words (power of two).
        line_words: words per cache line (power of two).
        associativity: ways per set; ``total_words / line_words`` must be
            divisible by it.
    """

    def __init__(
        self,
        total_words: int,
        line_words: int = 4,
        associativity: int = 2,
    ) -> None:
        if not _is_power_of_two(total_words):
            raise ValueError(f"cache size must be a power of two: {total_words}")
        if not _is_power_of_two(line_words):
            raise ValueError(f"line size must be a power of two: {line_words}")
        if line_words > total_words:
            raise ValueError("line larger than the cache")
        lines = total_words // line_words
        if associativity < 1 or lines % associativity:
            raise ValueError(
                f"{lines} lines not divisible into {associativity}-way sets"
            )
        self.total_words = total_words
        self.line_words = line_words
        self.associativity = associativity
        self.n_sets = lines // associativity
        self.stats = CacheStats()
        # Per set: list of tags in LRU order (index -1 = most recent).
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]

    def access(self, address: int) -> bool:
        """Touch *address*; returns True on a hit.  Misses allocate."""
        if address < 0:
            raise ValueError(f"negative address {address}")
        line = address // self.line_words
        index = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.associativity:
            ways.pop(0)  # evict LRU
        return False

    def contains(self, address: int) -> bool:
        """Non-destructive lookup (no stats, no LRU update)."""
        line = address // self.line_words
        return line // self.n_sets in self._sets[line % self.n_sets]

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        self._sets = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()
