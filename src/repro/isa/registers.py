"""Architectural register files of the CRAY-like base machine.

The base architecture follows the CRAY-1S register model used by the paper:

* ``A0``-``A7``  -- address registers (24-bit integers on the real machine);
  ``A0`` is special: it is the only register a conditional branch may test.
* ``S0``-``S7``  -- scalar registers (64-bit floating point / logical words).
* ``B0``-``B63`` -- backup address registers (single-cycle transfer to/from A).
* ``T0``-``T63`` -- backup scalar registers (single-cycle transfer to/from S).

Registers are small frozen value objects so they can be used as dictionary
keys in scoreboards, dataflow schedulers and register-instance maps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class RegFile(enum.Enum):
    """The architectural register files of the base machine.

    ``A``/``S``/``B``/``T`` are the scalar files the paper's experiments
    exercise.  ``V`` (eight 64-element vector registers) and ``L`` (the
    vector-length register, a single entry named ``L0``) belong to the
    vector-unit extension; the paper's machine has them ("8 64-element
    vector registers") but runs everything scalar.
    """

    A = "A"
    S = "S"
    B = "B"
    T = "T"
    V = "V"
    L = "L"

    @property
    def size(self) -> int:
        """Number of registers in this file (CRAY-1S sizes)."""
        return _FILE_SIZES[self]

    @property
    def is_primary(self) -> bool:
        """True for the primary (A/S) files that feed the functional units."""
        return self in (RegFile.A, RegFile.S)


_FILE_SIZES = {
    RegFile.A: 8,
    RegFile.S: 8,
    RegFile.B: 64,
    RegFile.T: 64,
    RegFile.V: 8,
    RegFile.L: 1,
}

#: Elements per vector register (CRAY-1).
VECTOR_LENGTH_MAX = 64


@dataclass(frozen=True)
class Register:
    """A single architectural register, e.g. ``A3`` or ``S0``.

    Instances are immutable, hashable and totally ordered (by file then
    index), which makes them usable as keys in scoreboard tables and as
    members of dependence sets.
    """

    file: RegFile
    index: int

    def _sort_key(self) -> Tuple[str, int]:
        return (self.file.value, self.index)

    def __lt__(self, other: "Register") -> bool:
        if not isinstance(other, Register):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "Register") -> bool:
        if not isinstance(other, Register):
            return NotImplemented
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "Register") -> bool:
        if not isinstance(other, Register):
            return NotImplemented
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "Register") -> bool:
        if not isinstance(other, Register):
            return NotImplemented
        return self._sort_key() >= other._sort_key()

    def __post_init__(self) -> None:
        if not isinstance(self.index, int):
            raise TypeError(f"register index must be an int, got {self.index!r}")
        if not 0 <= self.index < self.file.size:
            raise ValueError(
                f"register index {self.index} out of range for file "
                f"{self.file.value} (size {self.file.size})"
            )

    def __repr__(self) -> str:
        return f"{self.file.value}{self.index}"

    @property
    def name(self) -> str:
        """Assembly-level name, e.g. ``"A0"``."""
        return f"{self.file.value}{self.index}"

    @property
    def is_address(self) -> bool:
        """True if this register holds integer (address) values."""
        return self.file in (RegFile.A, RegFile.B)

    @property
    def is_scalar(self) -> bool:
        """True if this register holds floating-point (scalar) values."""
        return self.file in (RegFile.S, RegFile.T)

    @property
    def is_vector(self) -> bool:
        """True if this is a vector data register."""
        return self.file is RegFile.V


def A(index: int) -> Register:
    """Address register ``A<index>``."""
    return Register(RegFile.A, index)


def S(index: int) -> Register:
    """Scalar register ``S<index>``."""
    return Register(RegFile.S, index)


def B(index: int) -> Register:
    """Backup address register ``B<index>``."""
    return Register(RegFile.B, index)


def T(index: int) -> Register:
    """Backup scalar register ``T<index>``."""
    return Register(RegFile.T, index)


def V(index: int) -> Register:
    """Vector register ``V<index>`` (64 elements)."""
    return Register(RegFile.V, index)


#: The vector-length register (how many elements vector operations touch).
VL = Register(RegFile.L, 0)

#: The branch-condition register.  As in the paper's CRAY-like model, every
#: conditional branch tests A0 ("the register upon which the branch decision
#: is made").
A0 = A(0)


def all_registers() -> Tuple[Register, ...]:
    """Every architectural register, in (file, index) order."""
    regs = []
    for file in RegFile:
        for index in range(file.size):
            regs.append(Register(file, index))
    return tuple(regs)


def parse_register(name: str) -> Register:
    """Parse an assembly register name such as ``"A3"`` or ``"t17"``.

    Raises:
        ValueError: if the name does not denote a valid register.
    """
    text = name.strip()
    if len(text) < 2:
        raise ValueError(f"malformed register name: {name!r}")
    try:
        file = RegFile(text[0].upper())
    except ValueError:
        raise ValueError(f"unknown register file in {name!r}") from None
    try:
        index = int(text[1:])
    except ValueError:
        raise ValueError(f"malformed register index in {name!r}") from None
    return Register(file, index)
