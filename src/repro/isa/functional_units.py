"""Functional units of the base machine and their timing characteristics.

The paper's base architecture has "the same performance characteristics as
the CRAY-1 functional units".  Two of the timings are explicit experimental
parameters:

* **memory access time** -- 11 cycles (slow memory, the CRAY-1 value) or
  5 cycles (fast memory, modelling an intermediate cache or the
  vector-register-as-cache trick described in Section 2 of the paper);
* **branch execution time** -- 5 cycles (slow branch, the CRAY-1S behaviour:
  issue plus a 4-cycle block) or 2 cycles (fast branch).

All other unit latencies are fixed CRAY-1-style values collected in
:func:`latency_table`.  A latency of ``L`` means the result of an operation
issued in cycle ``t`` is available to a dependent instruction in cycle
``t + L``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping


class FunctionalUnit(enum.Enum):
    """The hardware functional units of the CRAY-like base machine.

    ``TRANSFER`` is a pseudo-unit for register-to-register moves and
    immediate loads; on the real machine these are handled by dedicated
    data paths and complete in one cycle, so modelling them as a
    fully-pipelined single-cycle unit is exact.
    """

    ADDRESS_ADD = "address add"
    ADDRESS_MULTIPLY = "address multiply"
    SCALAR_ADD = "scalar add"
    SCALAR_LOGICAL = "scalar logical"
    SCALAR_SHIFT = "scalar shift"
    POP_COUNT = "population count"
    FP_ADD = "floating add"
    FP_MULTIPLY = "floating multiply"
    FP_RECIPROCAL = "reciprocal approximation"
    MEMORY = "memory"
    BRANCH = "branch"
    TRANSFER = "register transfer"

    @property
    def is_memory(self) -> bool:
        return self is FunctionalUnit.MEMORY

    @property
    def is_branch(self) -> bool:
        return self is FunctionalUnit.BRANCH


#: Fixed CRAY-1-style unit latencies, in clock cycles.  Memory and branch are
#: experimental parameters and are therefore not present here.
FIXED_LATENCIES: Mapping[FunctionalUnit, int] = {
    FunctionalUnit.ADDRESS_ADD: 2,
    FunctionalUnit.ADDRESS_MULTIPLY: 6,
    FunctionalUnit.SCALAR_ADD: 3,
    FunctionalUnit.SCALAR_LOGICAL: 1,
    FunctionalUnit.SCALAR_SHIFT: 2,
    FunctionalUnit.POP_COUNT: 3,
    FunctionalUnit.FP_ADD: 6,
    FunctionalUnit.FP_MULTIPLY: 7,
    FunctionalUnit.FP_RECIPROCAL: 14,
    FunctionalUnit.TRANSFER: 1,
}

#: The paper's two memory configurations.
SLOW_MEMORY_LATENCY = 11
FAST_MEMORY_LATENCY = 5

#: The paper's two branch configurations.
SLOW_BRANCH_LATENCY = 5
FAST_BRANCH_LATENCY = 2


@dataclass(frozen=True)
class LatencyTable:
    """Complete latency assignment for every functional unit.

    Attributes:
        memory_latency: cycles from load issue to destination availability.
        branch_latency: cycles from branch issue until the instruction
            stream continues (the paper's 5-cycle slow / 2-cycle fast branch).
        overrides: optional per-unit overrides of the fixed CRAY-1 values,
            for design-space exploration beyond the paper.
    """

    memory_latency: int = SLOW_MEMORY_LATENCY
    branch_latency: int = SLOW_BRANCH_LATENCY
    overrides: Mapping[FunctionalUnit, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.memory_latency < 1:
            raise ValueError("memory latency must be at least 1 cycle")
        if self.branch_latency < 1:
            raise ValueError("branch latency must be at least 1 cycle")
        for unit, latency in self.overrides.items():
            if unit in (FunctionalUnit.MEMORY, FunctionalUnit.BRANCH):
                raise ValueError(
                    f"{unit.value} latency is set by the dedicated field, "
                    "not by an override"
                )
            if latency < 1:
                raise ValueError(f"{unit.value} latency must be at least 1")

    def latency(self, unit: FunctionalUnit) -> int:
        """Latency of *unit* in clock cycles."""
        if unit is FunctionalUnit.MEMORY:
            return self.memory_latency
        if unit is FunctionalUnit.BRANCH:
            return self.branch_latency
        if unit in self.overrides:
            return self.overrides[unit]
        return FIXED_LATENCIES[unit]

    def as_dict(self) -> Dict[FunctionalUnit, int]:
        """All unit latencies as a plain dictionary."""
        return {unit: self.latency(unit) for unit in FunctionalUnit}


def latency_table(
    memory_latency: int = SLOW_MEMORY_LATENCY,
    branch_latency: int = SLOW_BRANCH_LATENCY,
) -> LatencyTable:
    """Build the standard latency table for a machine variant.

    ``latency_table(11, 5)`` corresponds to the paper's M11BR5 machine,
    ``latency_table(5, 2)`` to M5BR2, and so on.
    """
    return LatencyTable(memory_latency=memory_latency, branch_latency=branch_latency)
