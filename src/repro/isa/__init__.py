"""CRAY-like base instruction set architecture.

This package defines the architectural state (register files), the opcodes,
the instruction representation and the functional-unit latency model shared
by the assembler, interpreter, trace layer and every timing simulator.
"""

from .functional_units import (
    FAST_BRANCH_LATENCY,
    FAST_MEMORY_LATENCY,
    FIXED_LATENCIES,
    SLOW_BRANCH_LATENCY,
    SLOW_MEMORY_LATENCY,
    FunctionalUnit,
    LatencyTable,
    latency_table,
)
from .instructions import Instruction, InstructionError, Operand
from .opcodes import OPCODE_INFO, OpKind, Opcode, OpcodeInfo
from .registers import (
    A,
    A0,
    B,
    RegFile,
    Register,
    S,
    T,
    V,
    VECTOR_LENGTH_MAX,
    VL,
    all_registers,
    parse_register,
)

__all__ = [
    "A",
    "A0",
    "B",
    "FAST_BRANCH_LATENCY",
    "FAST_MEMORY_LATENCY",
    "FIXED_LATENCIES",
    "FunctionalUnit",
    "Instruction",
    "InstructionError",
    "LatencyTable",
    "OPCODE_INFO",
    "OpKind",
    "Opcode",
    "OpcodeInfo",
    "Operand",
    "RegFile",
    "Register",
    "S",
    "SLOW_BRANCH_LATENCY",
    "SLOW_MEMORY_LATENCY",
    "T",
    "V",
    "VECTOR_LENGTH_MAX",
    "VL",
    "all_registers",
    "latency_table",
    "parse_register",
]
