"""Opcodes of the CRAY-like base instruction set.

The instruction set follows the CRAY-1S split between *address* (integer,
A/B registers) and *scalar* (floating point, S/T registers) computation.
Instructions are 1 parcel (16 bits) or 2 parcels (32 bits); instructions that
carry an immediate constant, a memory displacement or a branch target are
2-parcel, register-to-register instructions are 1-parcel.  The parcel width
matters for the paper's slow-branch model (a branch is a 2-parcel
instruction, one source of its issue delay).

Floating-point division does not exist as an opcode, exactly as on the
CRAY-1: compilers synthesise it from :data:`Opcode.FRECIP` (reciprocal
approximation) followed by multiplies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from .functional_units import FunctionalUnit


class OpKind(enum.Enum):
    """Broad semantic class of an opcode; drives interpreter dispatch."""

    IMM_INT = "integer immediate"
    IMM_FLOAT = "float immediate"
    MOVE_INT = "integer move"
    MOVE_FLOAT = "float move"
    ALU_INT = "integer alu"
    ALU_FLOAT = "float alu"
    XFER = "cross-file transfer"
    CONVERT = "int/float conversion"
    LOAD = "load"
    STORE = "store"
    BRANCH_COND = "conditional branch"
    BRANCH_UNCOND = "unconditional branch"
    PASS = "pass"
    SETVL = "set vector length"
    VECTOR_LOAD = "vector load"
    VECTOR_STORE = "vector store"
    VECTOR_ALU = "vector arithmetic"


class Opcode(enum.Enum):
    """Every opcode of the base instruction set."""

    # -- immediates -------------------------------------------------------
    AI = "AI"  # A[d] <- int immediate
    SI = "SI"  # S[d] <- float immediate
    # -- register transfers ------------------------------------------------
    AMOVE = "AMOVE"  # A/B <- A/B
    SMOVE = "SMOVE"  # S/T <- S/T
    ATS = "ATS"  # S[d] <- A[s]   (transmit address value to scalar register)
    STA = "STA"  # A[d] <- S[s]   (transmit scalar value to address register)
    FIX = "FIX"  # A[d] <- trunc(S[s])  (float -> int conversion)
    FLOAT = "FLOAT"  # S[d] <- float(A[s]) (int -> float conversion)
    # -- address (integer) arithmetic --------------------------------------
    AADD = "AADD"  # A[d] <- a + b          (address add unit)
    ASUB = "ASUB"  # A[d] <- a - b          (address add unit)
    AMUL = "AMUL"  # A[d] <- a * b          (address multiply unit)
    # -- scalar integer/logical/shift (S registers) -------------------------
    SADD = "SADD"  # S[d] <- a + b (64-bit integer add on S regs)
    SSUB = "SSUB"
    SAND = "SAND"
    SOR = "SOR"
    SXOR = "SXOR"
    SSHL = "SSHL"  # S[d] <- a << k
    SSHR = "SSHR"  # S[d] <- a >> k
    # -- floating point -----------------------------------------------------
    FADD = "FADD"
    FSUB = "FSUB"
    FMUL = "FMUL"
    FRECIP = "FRECIP"  # S[d] <- reciprocal approximation of a
    # -- memory --------------------------------------------------------------
    LOADS = "LOADS"  # S[d] <- mem[A[a] + disp]
    LOADA = "LOADA"  # A[d] <- mem[A[a] + disp]
    STORES = "STORES"  # mem[A[a] + disp] <- S[s]
    STOREA = "STOREA"  # mem[A[a] + disp] <- A[s]
    # -- control --------------------------------------------------------------
    JAZ = "JAZ"  # branch if A0 == 0
    JAN = "JAN"  # branch if A0 != 0
    JAP = "JAP"  # branch if A0 >= 0
    JAM = "JAM"  # branch if A0 < 0
    JMP = "JMP"  # unconditional branch
    # -- vector unit (extension; see repro.isa.registers docs) -----------------
    VSETL = "VSETL"  # L0 <- A[s] or immediate  (elements per vector op)
    VLOAD = "VLOAD"  # V[d][0:VL] <- mem[A[a] + i*stride]
    VSTORE = "VSTORE"  # mem[A[a] + i*stride] <- V[s][0:VL]
    VVADD = "VVADD"  # V[d] <- V[a] + V[b] elementwise
    VVSUB = "VVSUB"
    VVMUL = "VVMUL"
    VSADD = "VSADD"  # V[d] <- S[a] + V[b]
    VSMUL = "VSMUL"  # V[d] <- S[a] * V[b]
    # -- misc ------------------------------------------------------------------
    PASS = "PASS"  # no-operation

    @property
    def info(self) -> "OpcodeInfo":
        """Static metadata for this opcode."""
        return OPCODE_INFO[self]

    @property
    def unit(self) -> FunctionalUnit:
        return self.info.unit

    @property
    def kind(self) -> OpKind:
        return self.info.kind

    @property
    def parcels(self) -> int:
        return self.info.parcels

    @property
    def is_branch(self) -> bool:
        return self.kind in (OpKind.BRANCH_COND, OpKind.BRANCH_UNCOND)

    @property
    def is_memory(self) -> bool:
        return self.kind in (OpKind.LOAD, OpKind.STORE)

    @property
    def writes_register(self) -> bool:
        """True if the opcode produces a register result."""
        return self.kind not in (
            OpKind.STORE,
            OpKind.VECTOR_STORE,
            OpKind.BRANCH_COND,
            OpKind.BRANCH_UNCOND,
            OpKind.PASS,
        )

    @property
    def is_vector(self) -> bool:
        """True for vector-unit opcodes (extension)."""
        return self.kind in (
            OpKind.VECTOR_LOAD,
            OpKind.VECTOR_STORE,
            OpKind.VECTOR_ALU,
        )

    @property
    def reads_vector_length(self) -> bool:
        """True if the opcode's element count comes from L0."""
        return self.is_vector


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of an opcode.

    Attributes:
        unit: functional unit that executes the opcode.
        kind: semantic class, used by the interpreter and the assembler's
            operand validation.
        parcels: instruction width in 16-bit parcels (1 or 2).
        n_srcs: number of source operands the opcode expects (registers or
            immediates; for memory operations this includes the address
            register and displacement, for stores also the data register).
    """

    unit: FunctionalUnit
    kind: OpKind
    parcels: int
    n_srcs: int


_FU = FunctionalUnit
_K = OpKind

OPCODE_INFO: Mapping[Opcode, OpcodeInfo] = {
    Opcode.AI: OpcodeInfo(_FU.TRANSFER, _K.IMM_INT, 2, 1),
    Opcode.SI: OpcodeInfo(_FU.TRANSFER, _K.IMM_FLOAT, 2, 1),
    Opcode.AMOVE: OpcodeInfo(_FU.TRANSFER, _K.MOVE_INT, 1, 1),
    Opcode.SMOVE: OpcodeInfo(_FU.TRANSFER, _K.MOVE_FLOAT, 1, 1),
    Opcode.ATS: OpcodeInfo(_FU.TRANSFER, _K.XFER, 1, 1),
    Opcode.STA: OpcodeInfo(_FU.TRANSFER, _K.XFER, 1, 1),
    Opcode.FIX: OpcodeInfo(_FU.SCALAR_SHIFT, _K.CONVERT, 1, 1),
    Opcode.FLOAT: OpcodeInfo(_FU.SCALAR_SHIFT, _K.CONVERT, 1, 1),
    Opcode.AADD: OpcodeInfo(_FU.ADDRESS_ADD, _K.ALU_INT, 1, 2),
    Opcode.ASUB: OpcodeInfo(_FU.ADDRESS_ADD, _K.ALU_INT, 1, 2),
    Opcode.AMUL: OpcodeInfo(_FU.ADDRESS_MULTIPLY, _K.ALU_INT, 1, 2),
    Opcode.SADD: OpcodeInfo(_FU.SCALAR_ADD, _K.ALU_FLOAT, 1, 2),
    Opcode.SSUB: OpcodeInfo(_FU.SCALAR_ADD, _K.ALU_FLOAT, 1, 2),
    Opcode.SAND: OpcodeInfo(_FU.SCALAR_LOGICAL, _K.ALU_FLOAT, 1, 2),
    Opcode.SOR: OpcodeInfo(_FU.SCALAR_LOGICAL, _K.ALU_FLOAT, 1, 2),
    Opcode.SXOR: OpcodeInfo(_FU.SCALAR_LOGICAL, _K.ALU_FLOAT, 1, 2),
    Opcode.SSHL: OpcodeInfo(_FU.SCALAR_SHIFT, _K.ALU_FLOAT, 1, 2),
    Opcode.SSHR: OpcodeInfo(_FU.SCALAR_SHIFT, _K.ALU_FLOAT, 1, 2),
    Opcode.FADD: OpcodeInfo(_FU.FP_ADD, _K.ALU_FLOAT, 1, 2),
    Opcode.FSUB: OpcodeInfo(_FU.FP_ADD, _K.ALU_FLOAT, 1, 2),
    Opcode.FMUL: OpcodeInfo(_FU.FP_MULTIPLY, _K.ALU_FLOAT, 1, 2),
    Opcode.FRECIP: OpcodeInfo(_FU.FP_RECIPROCAL, _K.ALU_FLOAT, 1, 1),
    Opcode.LOADS: OpcodeInfo(_FU.MEMORY, _K.LOAD, 2, 2),
    Opcode.LOADA: OpcodeInfo(_FU.MEMORY, _K.LOAD, 2, 2),
    Opcode.STORES: OpcodeInfo(_FU.MEMORY, _K.STORE, 2, 3),
    Opcode.STOREA: OpcodeInfo(_FU.MEMORY, _K.STORE, 2, 3),
    Opcode.JAZ: OpcodeInfo(_FU.BRANCH, _K.BRANCH_COND, 2, 1),
    Opcode.JAN: OpcodeInfo(_FU.BRANCH, _K.BRANCH_COND, 2, 1),
    Opcode.JAP: OpcodeInfo(_FU.BRANCH, _K.BRANCH_COND, 2, 1),
    Opcode.JAM: OpcodeInfo(_FU.BRANCH, _K.BRANCH_COND, 2, 1),
    Opcode.JMP: OpcodeInfo(_FU.BRANCH, _K.BRANCH_UNCOND, 2, 0),
    Opcode.VSETL: OpcodeInfo(_FU.TRANSFER, _K.SETVL, 1, 1),
    Opcode.VLOAD: OpcodeInfo(_FU.MEMORY, _K.VECTOR_LOAD, 2, 2),
    Opcode.VSTORE: OpcodeInfo(_FU.MEMORY, _K.VECTOR_STORE, 2, 3),
    Opcode.VVADD: OpcodeInfo(_FU.FP_ADD, _K.VECTOR_ALU, 1, 2),
    Opcode.VVSUB: OpcodeInfo(_FU.FP_ADD, _K.VECTOR_ALU, 1, 2),
    Opcode.VVMUL: OpcodeInfo(_FU.FP_MULTIPLY, _K.VECTOR_ALU, 1, 2),
    Opcode.VSADD: OpcodeInfo(_FU.FP_ADD, _K.VECTOR_ALU, 1, 2),
    Opcode.VSMUL: OpcodeInfo(_FU.FP_MULTIPLY, _K.VECTOR_ALU, 1, 2),
    Opcode.PASS: OpcodeInfo(_FU.TRANSFER, _K.PASS, 1, 0),
}
