"""Instruction representation for the CRAY-like base machine.

An :class:`Instruction` is a small immutable value: an opcode, an optional
destination register, a tuple of source operands (registers or immediate
numbers), and -- for branches -- a symbolic target label.  The same object
type is used by the assembler, the functional interpreter, the trace layer
and all the timing simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from .functional_units import FunctionalUnit, LatencyTable
from .opcodes import OpKind, Opcode
from .registers import A0, VL, RegFile, Register

#: A source operand: an architectural register or an immediate constant.
Operand = Union[Register, int, float]


class InstructionError(ValueError):
    """Raised for a malformed instruction (bad operand shape or type)."""


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    Attributes:
        opcode: the operation.
        dest: destination register, or ``None`` for stores, branches, PASS.
        srcs: source operands in opcode order.  For memory operations the
            address register and integer displacement are sources; for
            stores the data register comes first.
        target: symbolic branch target label (branches only).
        comment: free-form annotation carried through to disassembly.
    """

    opcode: Opcode
    dest: Optional[Register] = None
    srcs: Tuple[Operand, ...] = ()
    target: Optional[str] = None
    comment: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.srcs, tuple):
            object.__setattr__(self, "srcs", tuple(self.srcs))
        self._validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        op = self.opcode
        info = op.info
        kind = info.kind

        if len(self.srcs) != info.n_srcs:
            raise InstructionError(
                f"{op.value} expects {info.n_srcs} source operand(s), "
                f"got {len(self.srcs)}"
            )

        if op.writes_register:
            if self.dest is None:
                raise InstructionError(f"{op.value} requires a destination register")
        elif self.dest is not None:
            raise InstructionError(f"{op.value} takes no destination register")

        if op.is_branch:
            if not self.target:
                raise InstructionError(f"{op.value} requires a target label")
        elif self.target is not None:
            raise InstructionError(f"{op.value} takes no target label")

        validator = _KIND_VALIDATORS[kind]
        validator(self)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def unit(self) -> FunctionalUnit:
        """Functional unit that executes this instruction."""
        return self.opcode.unit

    @property
    def kind(self) -> OpKind:
        return self.opcode.kind

    @property
    def parcels(self) -> int:
        """Width in 16-bit parcels (1 or 2)."""
        return self.opcode.parcels

    @property
    def is_branch(self) -> bool:
        return self.opcode.is_branch

    @property
    def is_conditional_branch(self) -> bool:
        return self.kind is OpKind.BRANCH_COND

    @property
    def is_load(self) -> bool:
        return self.kind is OpKind.LOAD

    @property
    def is_store(self) -> bool:
        return self.kind is OpKind.STORE

    @property
    def accesses_memory(self) -> bool:
        """True for every memory-port instruction, scalar or vector."""
        return self.unit is FunctionalUnit.MEMORY

    @property
    def is_vector(self) -> bool:
        """True for vector-unit instructions (extension)."""
        return self.opcode.is_vector

    @property
    def source_registers(self) -> Tuple[Register, ...]:
        """The register operands among the sources (for hazard detection).

        Vector operations implicitly read the vector-length register L0,
        so it appears here for them.
        """
        regs = tuple(s for s in self.srcs if isinstance(s, Register))
        if self.opcode.reads_vector_length:
            regs = regs + (VL,)
        return regs

    def latency(self, table: LatencyTable) -> int:
        """Result latency of this instruction under *table*."""
        return table.latency(self.unit)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = [self.opcode.value]
        operands = []
        if self.dest is not None:
            operands.append(self.dest.name)
        for src in self.srcs:
            operands.append(src.name if isinstance(src, Register) else repr(src))
        if self.target is not None:
            operands.append(self.target)
        if operands:
            parts.append(" " + ", ".join(operands))
        text = "".join(parts)
        if self.comment:
            text = f"{text:<32}; {self.comment}"
        return text


# ----------------------------------------------------------------------
# per-kind operand validators
# ----------------------------------------------------------------------


def _require_address_reg(instr: Instruction, reg: Operand, role: str) -> None:
    if not isinstance(reg, Register) or not reg.is_address:
        raise InstructionError(
            f"{instr.opcode.value}: {role} must be an address (A/B) register, "
            f"got {reg!r}"
        )


def _require_scalar_reg(instr: Instruction, reg: Operand, role: str) -> None:
    if not isinstance(reg, Register) or not reg.is_scalar:
        raise InstructionError(
            f"{instr.opcode.value}: {role} must be a scalar (S/T) register, "
            f"got {reg!r}"
        )


def _require_int(instr: Instruction, value: Operand, role: str) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise InstructionError(
            f"{instr.opcode.value}: {role} must be an integer immediate, "
            f"got {value!r}"
        )


def _validate_imm_int(instr: Instruction) -> None:
    _require_address_reg(instr, instr.dest, "destination")
    _require_int(instr, instr.srcs[0], "immediate")


def _validate_imm_float(instr: Instruction) -> None:
    _require_scalar_reg(instr, instr.dest, "destination")
    value = instr.srcs[0]
    if isinstance(value, Register) or isinstance(value, bool):
        raise InstructionError(
            f"SI: immediate must be a number, got {value!r}"
        )


def _validate_move_int(instr: Instruction) -> None:
    _require_address_reg(instr, instr.dest, "destination")
    _require_address_reg(instr, instr.srcs[0], "source")


def _validate_move_float(instr: Instruction) -> None:
    _require_scalar_reg(instr, instr.dest, "destination")
    _require_scalar_reg(instr, instr.srcs[0], "source")


def _validate_alu_int(instr: Instruction) -> None:
    if instr.dest is None or instr.dest.file is not RegFile.A:
        raise InstructionError(
            f"{instr.opcode.value}: destination must be an A register"
        )
    for i, src in enumerate(instr.srcs):
        if isinstance(src, Register):
            if src.file is not RegFile.A:
                raise InstructionError(
                    f"{instr.opcode.value}: source {i} must be an A register "
                    f"or integer immediate, got {src!r}"
                )
        else:
            _require_int(instr, src, f"source {i}")


def _validate_alu_float(instr: Instruction) -> None:
    if instr.dest is None or instr.dest.file is not RegFile.S:
        raise InstructionError(
            f"{instr.opcode.value}: destination must be an S register"
        )
    shift = instr.opcode in (Opcode.SSHL, Opcode.SSHR)
    for i, src in enumerate(instr.srcs):
        if isinstance(src, Register):
            if src.file is not RegFile.S:
                raise InstructionError(
                    f"{instr.opcode.value}: source {i} must be an S register, "
                    f"got {src!r}"
                )
        elif shift and i == 1:
            _require_int(instr, src, "shift count")
        else:
            raise InstructionError(
                f"{instr.opcode.value}: source {i} must be an S register "
                f"(load immediates with SI first), got {src!r}"
            )


def _validate_load(instr: Instruction) -> None:
    want_scalar = instr.opcode is Opcode.LOADS
    if want_scalar:
        if instr.dest is None or instr.dest.file is not RegFile.S:
            raise InstructionError("LOADS: destination must be an S register")
    else:
        if instr.dest is None or instr.dest.file is not RegFile.A:
            raise InstructionError("LOADA: destination must be an A register")
    addr, disp = instr.srcs
    if not isinstance(addr, Register) or addr.file is not RegFile.A:
        raise InstructionError(
            f"{instr.opcode.value}: address base must be an A register, got {addr!r}"
        )
    _require_int(instr, disp, "displacement")


def _validate_store(instr: Instruction) -> None:
    data, addr, disp = instr.srcs
    if instr.opcode is Opcode.STORES:
        if not isinstance(data, Register) or data.file is not RegFile.S:
            raise InstructionError("STORES: data must be an S register")
    else:
        if not isinstance(data, Register) or data.file is not RegFile.A:
            raise InstructionError("STOREA: data must be an A register")
    if not isinstance(addr, Register) or addr.file is not RegFile.A:
        raise InstructionError(
            f"{instr.opcode.value}: address base must be an A register, got {addr!r}"
        )
    _require_int(instr, disp, "displacement")


def _validate_xfer(instr: Instruction) -> None:
    (src,) = instr.srcs
    if instr.opcode is Opcode.ATS:
        _require_scalar_reg(instr, instr.dest, "destination")
        _require_address_reg(instr, src, "source")
    else:  # STA
        _require_address_reg(instr, instr.dest, "destination")
        _require_scalar_reg(instr, src, "source")


def _validate_convert(instr: Instruction) -> None:
    (src,) = instr.srcs
    if instr.opcode is Opcode.FIX:
        _require_address_reg(instr, instr.dest, "destination")
        _require_scalar_reg(instr, src, "source")
    else:  # FLOAT
        _require_scalar_reg(instr, instr.dest, "destination")
        _require_address_reg(instr, src, "source")


def _require_vector_reg(instr: Instruction, reg: Operand, role: str) -> None:
    if not isinstance(reg, Register) or reg.file is not RegFile.V:
        raise InstructionError(
            f"{instr.opcode.value}: {role} must be a vector (V) register, "
            f"got {reg!r}"
        )


def _require_a_or_int(instr: Instruction, value: Operand, role: str) -> None:
    if isinstance(value, Register):
        if value.file is not RegFile.A:
            raise InstructionError(
                f"{instr.opcode.value}: {role} must be an A register or "
                f"integer immediate, got {value!r}"
            )
    else:
        _require_int(instr, value, role)


def _validate_setvl(instr: Instruction) -> None:
    if instr.dest != VL:
        raise InstructionError("VSETL: destination must be the L0 register")
    _require_a_or_int(instr, instr.srcs[0], "vector length")


def _validate_vector_load(instr: Instruction) -> None:
    _require_vector_reg(instr, instr.dest, "destination")
    base, stride = instr.srcs
    if not isinstance(base, Register) or base.file is not RegFile.A:
        raise InstructionError(
            f"VLOAD: base must be an A register, got {base!r}"
        )
    _require_a_or_int(instr, stride, "stride")


def _validate_vector_store(instr: Instruction) -> None:
    data, base, stride = instr.srcs
    _require_vector_reg(instr, data, "data")
    if not isinstance(base, Register) or base.file is not RegFile.A:
        raise InstructionError(
            f"VSTORE: base must be an A register, got {base!r}"
        )
    _require_a_or_int(instr, stride, "stride")


def _validate_vector_alu(instr: Instruction) -> None:
    _require_vector_reg(instr, instr.dest, "destination")
    first, second = instr.srcs
    if instr.opcode in (Opcode.VSADD, Opcode.VSMUL):
        _require_scalar_reg(instr, first, "scalar operand")
    else:
        _require_vector_reg(instr, first, "operand 0")
    _require_vector_reg(instr, second, "operand 1")


def _validate_branch_cond(instr: Instruction) -> None:
    (src,) = instr.srcs
    if src != A0:
        raise InstructionError(
            f"{instr.opcode.value}: conditional branches test A0 only "
            f"(CRAY-like model), got {src!r}"
        )


def _validate_branch_uncond(instr: Instruction) -> None:
    pass


def _validate_pass(instr: Instruction) -> None:
    pass


_KIND_VALIDATORS = {
    OpKind.IMM_INT: _validate_imm_int,
    OpKind.IMM_FLOAT: _validate_imm_float,
    OpKind.MOVE_INT: _validate_move_int,
    OpKind.MOVE_FLOAT: _validate_move_float,
    OpKind.XFER: _validate_xfer,
    OpKind.CONVERT: _validate_convert,
    OpKind.ALU_INT: _validate_alu_int,
    OpKind.ALU_FLOAT: _validate_alu_float,
    OpKind.LOAD: _validate_load,
    OpKind.STORE: _validate_store,
    OpKind.BRANCH_COND: _validate_branch_cond,
    OpKind.BRANCH_UNCOND: _validate_branch_uncond,
    OpKind.PASS: _validate_pass,
    OpKind.SETVL: _validate_setvl,
    OpKind.VECTOR_LOAD: _validate_vector_load,
    OpKind.VECTOR_STORE: _validate_vector_store,
    OpKind.VECTOR_ALU: _validate_vector_alu,
}
