"""Instruction-width (parcel) accounting.

The base architecture uses the CRAY-1S encoding granularity: a *parcel* is
16 bits and every instruction is 1 or 2 parcels wide.  Parcel counts matter
to the paper in one place -- the slow-branch model: a branch is a 2-parcel
instruction, and fetching its second parcel from the instruction buffer is
one of the delays folded into the 5-cycle slow branch.

This module provides simple static accounting helpers over instruction
sequences; they are used by trace statistics and by tests that check the
encoding invariants.
"""

from __future__ import annotations

from typing import Dict, Iterable

from .instructions import Instruction

#: Parcel width in bits.
PARCEL_BITS = 16


def total_parcels(instructions: Iterable[Instruction]) -> int:
    """Total width of *instructions* in parcels."""
    return sum(instr.parcels for instr in instructions)


def total_bits(instructions: Iterable[Instruction]) -> int:
    """Total width of *instructions* in bits."""
    return total_parcels(instructions) * PARCEL_BITS


def parcel_histogram(instructions: Iterable[Instruction]) -> Dict[int, int]:
    """Histogram mapping parcel count (1 or 2) to number of instructions."""
    histogram: Dict[int, int] = {}
    for instr in instructions:
        histogram[instr.parcels] = histogram.get(instr.parcels, 0) + 1
    return histogram


def mean_parcels(instructions: Iterable[Instruction]) -> float:
    """Mean instruction width in parcels (0.0 for an empty sequence)."""
    count = 0
    parcels = 0
    for instr in instructions:
        count += 1
        parcels += instr.parcels
    return parcels / count if count else 0.0
