"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands cover the full workflow without writing Python:

* ``tables``   -- regenerate any of the paper's tables (wraps the
  harness runner, including ``--compare``);
* ``simulate`` -- run one kernel through one machine organisation;
* ``disasm``   -- print a kernel's assembly listing;
* ``stats``    -- dynamic instruction-mix statistics;
* ``limits``   -- pseudo-dataflow / resource / serial limits;
* ``stalls``   -- stall attribution on an issue-blocking machine;
* ``capture``  -- save a verified dynamic trace as JSON lines;
* ``replay``   -- time a saved trace on any machine.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import stall_breakdown
from .core import build_simulator, config_by_name
from .core.registry import available_specs
from .harness import runner as table_runner
from .kernels import ALL_LOOPS, build_kernel
from .limits import compute_limits
from .trace import format_stats, read_trace, trace_stats, write_trace


def _add_kernel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        type=int,
        required=True,
        choices=ALL_LOOPS,
        help="Livermore loop number",
    )
    parser.add_argument("--n", type=int, default=None, help="problem size")
    parser.add_argument(
        "--unroll", type=int, default=1, help="unroll factor (default 1)"
    )
    parser.add_argument(
        "--no-schedule",
        action="store_true",
        help="keep the naive source-order encoding",
    )
    parser.add_argument(
        "--vector",
        action="store_true",
        help="use the vectorised encoding (loops 1, 7, 12)",
    )
    parser.add_argument(
        "--explicit-addressing",
        action="store_true",
        help="expand folded displacements CFT-style (calibration variant)",
    )


def _kernel_from(args) -> "object":
    if getattr(args, "vector", False):
        from .kernels.vectorized import build_vectorized

        return build_vectorized(args.kernel, args.n)
    return build_kernel(
        args.kernel,
        args.n,
        schedule=not args.no_schedule,
        unroll=args.unroll,
        explicit_addressing=getattr(args, "explicit_addressing", False),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Pleszkun & Sohi (1988), 'The Performance "
            "Potential of Multiple Functional Unit Processors'."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument(
        "table",
        choices=sorted(table_runner.EXPERIMENTS) + ["section33", "all"],
    )
    tables.add_argument("--compare", action="store_true")

    simulate = sub.add_parser("simulate", help="time one kernel on one machine")
    _add_kernel_arguments(simulate)
    simulate.add_argument(
        "--machine",
        default="cray",
        help=f"machine spec ({available_specs()})",
    )
    simulate.add_argument("--config", default="M11BR5")

    disasm = sub.add_parser("disasm", help="print a kernel's assembly")
    _add_kernel_arguments(disasm)

    stats = sub.add_parser("stats", help="dynamic instruction-mix statistics")
    _add_kernel_arguments(stats)

    limits = sub.add_parser("limits", help="dataflow/resource/serial limits")
    _add_kernel_arguments(limits)
    limits.add_argument("--config", default="M11BR5")

    stalls = sub.add_parser("stalls", help="stall attribution")
    _add_kernel_arguments(stalls)
    stalls.add_argument("--config", default="M11BR5")

    capture = sub.add_parser("capture", help="save a verified trace (JSONL)")
    _add_kernel_arguments(capture)
    capture.add_argument("--out", required=True, help="output path")

    replay = sub.add_parser("replay", help="time a saved trace")
    replay.add_argument("--trace", required=True, help="JSONL trace path")
    replay.add_argument("--machine", default="cray")
    replay.add_argument("--config", default="M11BR5")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "tables":
        forwarded = [args.table] + (["--compare"] if args.compare else [])
        return table_runner.main(forwarded)

    if args.command == "replay":
        trace = read_trace(args.trace)
        simulator = build_simulator(args.machine)
        result = simulator.simulate(trace, config_by_name(args.config))
        print(result)
        return 0

    kernel = _kernel_from(args)

    if args.command == "disasm":
        print(kernel.program.disassemble())
        return 0

    trace = kernel.trace()

    if args.command == "simulate":
        simulator = build_simulator(args.machine)
        result = simulator.simulate(trace, config_by_name(args.config))
        print(result)
        return 0

    if args.command == "stats":
        print(format_stats(trace_stats(trace)))
        return 0

    if args.command == "limits":
        config = config_by_name(args.config)
        pure = compute_limits(trace, config)
        serial = compute_limits(trace, config, serial=True)
        print(f"{trace.name} on {config.name}:")
        print(f"  pseudo-dataflow limit  {pure.pseudo_dataflow_rate:.3f}")
        print(f"  resource limit         {pure.resource_rate:.3f} "
              f"(bottleneck: {pure.resource.bottleneck.value})")
        print(f"  actual (binding) limit {pure.actual_rate:.3f}")
        print(f"  serial (WAW) limit     {serial.actual_rate:.3f}")
        return 0

    if args.command == "stalls":
        print(stall_breakdown(trace, config_by_name(args.config)).render())
        return 0

    if args.command == "capture":
        write_trace(trace, args.out)
        print(f"wrote {len(trace)} entries to {args.out}")
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
