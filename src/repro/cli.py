"""Command-line interface: ``python -m repro <subcommand>``.

Every subcommand is a thin wrapper over :mod:`repro.api` -- the CLI
parses arguments and prints, the facade does the work:

* ``tables``   -- regenerate any of the paper's tables in parallel with a
  persistent result store (``--workers``, ``--no-cache``, ``--compare``;
  records a run manifest unless ``--no-observe``; ``--progress``
  streams per-cell completions to stderr, as a human ticker or
  ``--progress-format jsonl``);
* ``simulate`` -- run one kernel through one machine organisation;
* ``disasm``   -- print a kernel's assembly listing;
* ``stats``    -- with ``--kernel``: dynamic instruction-mix statistics;
  without: the run breakdown of past observed runs (timings, cache hit
  rate, worker utilization) from the stored manifests; ``--format
  openmetrics`` dumps a run's metric snapshot as an OpenMetrics
  exposition for any Prometheus-style scraper;
* ``trace-export`` -- export a run's span trace as Chrome ``trace_event``
  JSON (``chrome://tracing`` / Perfetto; ``--format perfetto`` adds
  named per-worker tracks) or the raw span payload;
* ``limits``   -- pseudo-dataflow / resource / serial limits;
* ``stalls``   -- stall attribution on an issue-blocking machine;
* ``capture``  -- save a verified dynamic trace as JSON lines;
* ``replay``   -- time a saved trace on any machine;
* ``verify``   -- differential verification: fuzz traces, replay them
  through every machine, check per-cycle invariants and cross-machine
  ordering/bound claims, shrink any failure to a minimal reproducer;
* ``bench``    -- seeded micro-benchmarks (fast-path vs reference replay
  throughput, table wall time, engine cold/warm cache); writes a
  ``repro-bench/v1`` JSON report and, with ``--compare BASELINE``,
  flags regressions beyond a noise threshold.

Subcommands that render a verdict (``verify``, ``stats``, ``bench``)
decide their exit code *before* printing, so a downstream ``| head``
closing stdout (``BrokenPipeError``) cannot turn a failure into exit 0.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from . import api
from .kernels import ALL_LOOPS
from .obs.metrics import MetricsRegistry
from .obs.tracing import spans_to_chrome, spans_to_perfetto
from .trace import format_stats


def _add_kernel_arguments(
    parser: argparse.ArgumentParser,
    *,
    required: bool = True,
    source: bool = False,
) -> None:
    parser.add_argument(
        "--kernel",
        type=int,
        required=required and not source,
        choices=ALL_LOOPS,
        help="Livermore loop number",
    )
    if source:
        parser.add_argument(
            "--source",
            default=None,
            metavar="SPEC",
            help=(
                "trace-source spec instead of --kernel (kernel:5, "
                "branchy:n=256, fuzz:seed=7, file:trace.jsonl ...; "
                "see `repro sources`)"
            ),
        )
    parser.add_argument("--n", type=int, default=None, help="problem size")
    parser.add_argument(
        "--unroll", type=int, default=1, help="unroll factor (default 1)"
    )
    parser.add_argument(
        "--no-schedule",
        action="store_true",
        help="keep the naive source-order encoding",
    )
    parser.add_argument(
        "--vector",
        action="store_true",
        help="use the vectorised encoding (loops 1, 7, 12)",
    )
    parser.add_argument(
        "--explicit-addressing",
        action="store_true",
        help="expand folded displacements CFT-style (calibration variant)",
    )


def _kernel_kwargs(args) -> dict:
    return {
        "n": args.n,
        "schedule": not args.no_schedule,
        "unroll": args.unroll,
        "vector": getattr(args, "vector", False),
        "explicit_addressing": getattr(args, "explicit_addressing", False),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Pleszkun & Sohi (1988), 'The Performance "
            "Potential of Multiple Functional Unit Processors'."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument(
        "table",
        choices=list(api.list_tables()) + ["section33", "all"],
    )
    tables.add_argument("--compare", action="store_true")
    tables.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel worker processes (default: all CPUs)",
    )
    tables.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent result store under $REPRO_CACHE_DIR",
    )
    tables.add_argument(
        "--no-observe",
        action="store_true",
        help="skip recording the run trace and manifest",
    )
    tables.add_argument(
        "--backend",
        choices=("auto", "python", "batch"),
        default="auto",
        help=(
            "fast-path backend for sweep-shaped cell groups (auto = "
            "batch structure-of-arrays; results are identical either way)"
        ),
    )
    tables.add_argument(
        "--progress",
        action="store_true",
        help="stream per-cell completions to stderr while the run is live",
    )
    tables.add_argument(
        "--progress-format",
        choices=("human", "jsonl"),
        default="human",
        help=(
            "progress rendering: a live human ticker (default) or one "
            "JSON object per completed cell; implies --progress"
        ),
    )

    sweep = sub.add_parser(
        "sweep",
        help="replay kernels through many machines in one batched pass",
    )
    sweep.add_argument(
        "--machines",
        nargs="+",
        required=True,
        metavar="SPEC",
        help=f"machine specs to sweep ({api.machine_spec_help()})",
    )
    sweep.add_argument(
        "--kernels",
        nargs="+",
        type=int,
        default=None,
        choices=ALL_LOOPS,
        metavar="LOOP",
        help="Livermore loop numbers (default: all)",
    )
    sweep.add_argument(
        "--sources",
        nargs="+",
        default=None,
        metavar="SPEC",
        help=(
            "trace-source specs to sweep (combinable with --kernels; "
            "see `repro sources`)"
        ),
    )
    sweep.add_argument("--config", default="M11BR5")
    sweep.add_argument(
        "--backend",
        choices=("auto", "python", "batch"),
        default="auto",
        help="fast-path backend (auto = batch)",
    )

    simulate = sub.add_parser(
        "simulate", help="time one kernel (or trace source) on one machine"
    )
    _add_kernel_arguments(simulate, source=True)
    simulate.add_argument(
        "--machine",
        default="cray",
        help=f"machine spec ({api.machine_spec_help()})",
    )
    simulate.add_argument("--config", default="M11BR5")

    sources = sub.add_parser(
        "sources",
        help="list trace sources, or describe one spec (--spec)",
    )
    sources.add_argument(
        "--spec",
        default=None,
        metavar="SPEC",
        help=(
            "resolve one trace-source spec and print its statistics "
            "(length, mix, dependence distance, FU demand)"
        ),
    )

    disasm = sub.add_parser("disasm", help="print a kernel's assembly")
    _add_kernel_arguments(disasm)

    stats = sub.add_parser(
        "stats",
        help=(
            "instruction-mix statistics (--kernel/--source) or the run "
            "breakdown of past observed runs (no --kernel)"
        ),
    )
    _add_kernel_arguments(stats, required=False, source=True)
    stats.add_argument(
        "--machine",
        default=None,
        metavar="SPEC",
        help="describe one machine spec (class, fast-path family) and exit",
    )
    stats.add_argument(
        "--run",
        default=None,
        help="show one run by id (or unique prefix) instead of the latest",
    )
    stats.add_argument(
        "--limit",
        type=int,
        default=10,
        help="how many past runs to list (default 10)",
    )
    stats.add_argument(
        "--format",
        choices=("text", "openmetrics"),
        default="text",
        help=(
            "run-breakdown rendering: the text report (default) or the "
            "run's metric snapshot as an OpenMetrics exposition"
        ),
    )

    trace_export = sub.add_parser(
        "trace-export",
        help="export a run's span trace (Chrome trace_event or raw JSON)",
    )
    trace_export.add_argument(
        "--run",
        default=None,
        help="run id or unique prefix (default: the latest observed run)",
    )
    trace_export.add_argument(
        "--format",
        choices=("chrome", "perfetto", "json"),
        default="chrome",
        help=(
            "chrome trace_event (default), perfetto (chrome plus named "
            "per-worker tracks) or the raw span payload"
        ),
    )
    trace_export.add_argument(
        "--out",
        default="-",
        help="output path (default: stdout)",
    )

    limits = sub.add_parser("limits", help="dataflow/resource/serial limits")
    _add_kernel_arguments(limits, source=True)
    limits.add_argument("--config", default="M11BR5")
    limits.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help=(
            "json emits both pure and serial limit payloads (makespans, "
            "per-unit busy spans) for scripting"
        ),
    )

    explore = sub.add_parser(
        "explore",
        help="design-space explorer: analytic screen + frontier simulation",
    )
    explore.add_argument(
        "--space",
        required=True,
        metavar="SPEC",
        help=(
            "design-space grid, e.g. "
            "'family=ruu;width=1..8;window=8..64:8;bus=nbus,1bus;fu=1,2'"
        ),
    )
    explore.add_argument(
        "--sources",
        nargs="+",
        required=True,
        metavar="SPEC",
        help="scalar trace sources to score against (branchy:seed=3 ...)",
    )
    explore.add_argument("--config", default="M11BR5")
    explore.add_argument(
        "--budget",
        type=int,
        default=None,
        help="cap on exactly simulated candidates (frontier subsampled)",
    )
    explore.add_argument(
        "--audit",
        type=int,
        default=16,
        help="seeded off-frontier sample size for error reporting",
    )
    explore.add_argument("--seed", type=int, default=0,
                         help="audit-sample seed")
    explore.add_argument(
        "--slack",
        type=float,
        default=0.15,
        help="verification-band relative rate slack (default 0.15)",
    )
    explore.add_argument(
        "--exhaustive",
        action="store_true",
        help=(
            "also simulate every candidate and report frontier recall "
            "(small spaces only)"
        ),
    )
    explore.add_argument("--workers", type=int, default=None)
    explore.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the screen/result caches",
    )
    explore.add_argument(
        "--no-observe",
        action="store_true",
        help="skip writing a run manifest",
    )
    explore.add_argument(
        "--backend",
        choices=("auto", "python", "batch"),
        default="auto",
        help="fast-path backend for the exact stage",
    )
    explore.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="json emits the full machine-readable run payload",
    )
    explore.add_argument(
        "--progress",
        action="store_true",
        help="stream per-source progress lines while simulating",
    )

    stalls = sub.add_parser("stalls", help="stall attribution")
    _add_kernel_arguments(stalls)
    stalls.add_argument("--config", default="M11BR5")

    capture = sub.add_parser("capture", help="save a verified trace (JSONL)")
    _add_kernel_arguments(capture, source=True)
    capture.add_argument("--out", required=True, help="output path")

    replay = sub.add_parser("replay", help="time a saved trace")
    replay.add_argument("--trace", required=True, help="JSONL trace path")
    replay.add_argument("--machine", default="cray")
    replay.add_argument("--config", default="M11BR5")

    verify = sub.add_parser(
        "verify",
        help="differential verification: fuzz, replay, check, shrink",
    )
    verify.add_argument(
        "--seeds",
        type=int,
        default=50,
        help="how many fuzzed traces to run (default 50)",
    )
    verify.add_argument(
        "--machines",
        nargs="+",
        default=None,
        metavar="SPEC",
        help=(
            "registry specs to verify (default: the full oracle set; "
            f"{api.machine_spec_help()})"
        ),
    )
    verify.add_argument(
        "--config",
        action="append",
        default=None,
        help=(
            "machine variant to replay under; repeatable "
            "(default: all four paper variants, rotating per seed)"
        ),
    )
    verify.add_argument(
        "--trace-length",
        type=int,
        default=None,
        help="fuzzed trace length (default 48)",
    )
    verify.add_argument(
        "--first-seed",
        type=int,
        default=0,
        help="base seed (shards can cover disjoint ranges)",
    )
    verify.add_argument(
        "--dump-dir",
        default=None,
        help="write shrunk reproducer traces (JSONL) into this directory",
    )
    verify.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw failing traces without delta-debugging them",
    )
    verify.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "also check every fast-path machine's aggregate telemetry "
            "record against the event-derived reduction"
        ),
    )
    verify.add_argument(
        "--source",
        default=None,
        metavar="SPEC",
        help=(
            "seeded trace-source family to draw campaign traces from "
            "(branchy, fuzz:pointer, synthetic:deep ...; default: the "
            "legacy fuzzer knobs)"
        ),
    )
    verify.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-seed progress; print only the summary",
    )

    bench = sub.add_parser(
        "bench",
        help="seeded micro-benchmarks; JSON report + baseline comparison",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="the CI smoke preset (seconds, not minutes)",
    )
    bench.add_argument(
        "--name",
        default="fastpath",
        help="report name (default 'fastpath'; names the output file)",
    )
    bench.add_argument(
        "--out",
        default=None,
        help="report path (default BENCH_<name>.json; '-' skips writing)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline report; exit 1 on regression",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative noise band for --compare (default 0.25)",
    )
    bench.add_argument(
        "--seeds", type=int, default=None, help="fuzzed traces per machine"
    )
    bench.add_argument(
        "--trace-length", type=int, default=None, help="instructions per trace"
    )
    bench.add_argument(
        "--rounds", type=int, default=None, help="interleaved timing rounds"
    )
    bench.add_argument(
        "--machines",
        nargs="+",
        default=None,
        metavar="SPEC",
        help="fast-path machine specs to replay-benchmark",
    )
    bench.add_argument(
        "--no-engine",
        action="store_true",
        help="skip the engine cold/warm cache benchmarks",
    )
    bench.add_argument(
        "--no-explore",
        action="store_true",
        help="skip the design-space explorer benchmarks",
    )
    bench.add_argument(
        "--backend",
        choices=("auto", "python", "batch"),
        default="auto",
        help="fast-path backend for the engine and sweep benchmarks",
    )
    bench.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-benchmark progress lines",
    )

    return parser


def _progress_callback(progress_format: str, stream=None):
    """A :class:`~repro.api.ProgressCallback` rendering to *stream*.

    ``jsonl`` writes one JSON object per completed cell (machine-
    readable, the seed of the serve-layer streaming API); ``human``
    writes a live ticker -- carriage-return rewrites on a TTY, plain
    lines otherwise.  Progress goes to stderr so table output on stdout
    stays pipeable.
    """
    stream = stream if stream is not None else sys.stderr

    if progress_format == "jsonl":
        def emit_jsonl(event) -> None:
            stream.write(json.dumps(event.to_payload(), sort_keys=True) + "\n")
            stream.flush()

        return emit_jsonl

    interactive = getattr(stream, "isatty", lambda: False)()

    def emit_human(event) -> None:
        cell = (
            f"loop {event.loop:>2} "
            + (f"{event.machine}/" if event.machine else "limits/")
            + event.config
        )
        line = (
            f"[{event.completed:>3}/{event.total}] {event.table_id} "
            f"{cell:<28} {event.seconds:7.3f}s"
            + ("  (cached)" if event.result_hit else "")
        )
        if interactive:
            stream.write("\r\x1b[2K" + line)
            if event.completed == event.total:
                stream.write("\n")
        else:
            stream.write(line + "\n")
        stream.flush()

    return emit_human


def run_tables(
    table: str,
    *,
    compare: bool = False,
    workers: Optional[int] = None,
    cache: bool = True,
    observe: bool = True,
    backend: str = "auto",
    progress: bool = False,
    progress_format: str = "human",
) -> int:
    """The ``tables`` subcommand: print tables (or the section 3.3 quote)."""
    if table == "section33":
        rates = api.section33()
        paper = api.paper_section33()
        print("Section 3.3: single-issue dependency resolution on M11BR5")
        for class_label, rate in rates.items():
            print(
                f"  {class_label:<13} measured {rate:.2f}   "
                f"paper {paper[class_label]:.2f}"
            )
        return 0

    callback = _progress_callback(progress_format) if progress else None
    targets = api.list_tables() if table == "all" else (table,)
    for table_id in targets:
        run = api.run_table(
            table_id,
            compare=compare,
            workers=workers,
            cache=cache,
            observe=observe,
            backend=backend,
            progress=callback,
        )
        print(run.render_report(compare=compare))
        print()
    return 0


def _format_run_line(manifest) -> str:
    hit_rate = manifest.cache_hit_rate
    hit = f"{hit_rate:.0%}" if hit_rate is not None else "n/a"
    utils = manifest.worker_utilization.values()
    util = f"{sum(utils) / len(utils):.0%}" if utils else "n/a"
    wall = manifest.timings.get("wall_seconds", 0.0)
    cells = manifest.config.get("cells", 0)
    return (
        f"  {manifest.run_id:<42} {manifest.table_id:<9} "
        f"{wall:>7.2f}s  {cells:>4} cells  hit {hit:>4}  util {util:>4}"
    )


def _render_run_detail(manifest, *, top: int = 10) -> str:
    lines = [
        f"run {manifest.run_id} ({manifest.table_id}, {manifest.created})",
        f"  git: {manifest.git_sha or 'unknown'}",
        f"  workers: {manifest.config.get('workers', '?')}, "
        f"cache: {'on' if manifest.config.get('cache_enabled') else 'off'}",
    ]
    timings = manifest.timings
    lines.append(
        f"  wall {timings.get('wall_seconds', 0.0):.2f}s, "
        f"cell time {timings.get('cell_seconds', 0.0):.2f}s "
        f"(max {timings.get('max_cell_seconds', 0.0):.3f}s), "
        f"queue wait {timings.get('queue_wait_seconds', 0.0):.3f}s"
    )
    hit_rate = manifest.cache_hit_rate
    hits = manifest.counter("cache.result.hits")
    misses = manifest.counter("cache.result.misses")
    corrupt = manifest.counter(
        "cache.result.corruptions"
    ) + manifest.counter("cache.trace.corruptions")
    rate = f"{hit_rate:.1%}" if hit_rate is not None else "n/a"
    lines.append(
        f"  result cache: {hits:.0f} hit / {misses:.0f} miss "
        f"(hit rate {rate}; {corrupt:.0f} corrupt rebuilt)"
    )
    lines.append(
        f"  compiled fast path: {manifest.counter('fastpath.fast_runs'):.0f} "
        f"fast runs, {manifest.counter('fastpath.compiles'):.0f} compiles "
        f"({manifest.counter('fastpath.cache_hits'):.0f} trace-cache hits, "
        f"{manifest.counter('fastpath.evictions'):.0f} evictions)"
    )
    backend_parts = []
    for backend, keys in (
        ("python", ("fast_runs",)),
        ("batch", ("fast_runs", "sweeps", "fallback_runs")),
    ):
        counts = {
            key: manifest.counter(f"fastpath.{backend}.{key}") for key in keys
        }
        if any(counts.values()):
            detail = ", ".join(
                f"{value:.0f} {key.replace('_', ' ')}"
                for key, value in counts.items()
                if value
            )
            backend_parts.append(f"{backend}: {detail}")
    if backend_parts:
        lines.append("  fast-path backends: " + "; ".join(backend_parts))
    ir_counts = {
        key: manifest.counter(f"fastpath.ir_stats.{key}")
        for key in ("hits", "misses", "stores")
    }
    if any(ir_counts.values()):
        lines.append(
            f"  ir-stats cache: {ir_counts['hits']:.0f} hit / "
            f"{ir_counts['misses']:.0f} miss "
            f"({ir_counts['stores']:.0f} stored)"
        )
    utilization = manifest.worker_utilization
    if utilization:
        shares = ", ".join(
            f"{pid}: {share:.0%}" for pid, share in sorted(utilization.items())
        )
        lines.append(f"  worker utilization: {shares}")
    cells = manifest.cell_timings()
    if cells:
        lines.append(f"  slowest cells (of {len(cells)}):")
        for cell in cells[:top]:
            lines.append(
                f"    {cell['name']:<34} {cell['seconds']:>8.3f}s  "
                f"pid {cell['pid']}"
            )
    return "\n".join(lines)


def run_machine_info(spec: str) -> int:
    """``stats --machine``: describe one spec through the registry."""
    info = api.machine_info(spec)  # raises UnknownSpecError -> exit 2
    print(f"spec:      {info.spec}")
    print(f"machine:   {info.machine}")
    if info.params:
        print(f"params:    {', '.join(info.params)}")
    if info.fast_path:
        print(f"fast path: yes (compiled family '{info.family}'; "
              f"backends: {', '.join(api.list_backends())})")
    else:
        print("fast path: no (always runs its reference loop)")
    return 0


def run_sources(spec: Optional[str]) -> int:
    """The ``sources`` subcommand: the trace-source catalog or one spec."""
    if spec is None:
        print("trace sources (head[:token]... grammar; see docs/traces.md):")
        for source in api.list_trace_sources():
            seeded = "  [seeded family]" if source.seeded else ""
            print(f"  {source.name:<10} {source.description}{seeded}")
            for template in source.templates:
                print(f"             {template}")
        return 0
    stats = api.source_stats(spec)  # bad specs -> exit 2 via main()
    print(f"source {spec}")
    print(f"  trace:                {stats.name}")
    print(f"  instructions:         {stats.length}")
    print(f"  branch fraction:      {stats.branch_fraction:.1%}")
    print(f"  memory fraction:      {stats.memory_fraction:.1%}")
    if stats.vector_fraction:
        print(f"  vector fraction:      {stats.vector_fraction:.1%}")
    print(
        "  dependence distance:  "
        f"{stats.mean_dependence_distance:.2f} mean "
        f"({stats.dependent_fraction:.0%} of instructions dependent)"
    )
    print("  functional-unit demand:")
    for unit, share in sorted(
        stats.fu_demand.items(), key=lambda item: -item[1]
    ):
        print(f"    {unit:<26} {share:.1%}")
    return 0


def run_sweep_cmd(args) -> int:
    """The ``sweep`` subcommand: batched multi-machine replay."""
    for spec in args.machines:
        api.parse_spec(spec)  # raises UnknownSpecError -> exit 2
    traces: List = list(args.kernels or [])
    traces += list(args.sources or [])
    if not traces:
        traces = list(ALL_LOOPS)
    run = api.run_sweep(
        args.machines, traces, config=args.config, backend=args.backend
    )
    print(run.render())
    fastpath = run.manifest.get("fastpath", {})
    swept = fastpath.get("batch.sweeps", 0)
    fallback = fastpath.get("batch.fallback_runs", 0)
    if swept or fallback:
        print(
            f"  [{fastpath.get('fast_runs', 0)} fast replays via "
            f"{swept} batched sweeps"
            + (f"; {fallback} per-spec fallbacks" if fallback else "")
            + f"; {run.manifest['wall_seconds']:.3f}s]"
        )
    return 0


def run_stats(
    run_id: Optional[str], limit: int, fmt: str = "text"
) -> int:
    """``stats`` without ``--kernel``: render the stored run manifests."""
    if fmt == "openmetrics":
        if run_id is not None:
            manifest = api.find_run(run_id)
        else:
            runs = api.list_runs(limit=1)
            manifest = runs[0] if runs else None
        if manifest is None:
            _set_pending_exit(2)
            target = f"run matching {run_id!r}" if run_id else "observed runs"
            print(f"error: no {target}", file=sys.stderr)
            return 2
        registry = MetricsRegistry.from_snapshot(manifest.metrics)
        sys.stdout.write(registry.to_openmetrics())
        return 0
    if run_id is not None:
        manifest = api.find_run(run_id)
        if manifest is None:
            _set_pending_exit(2)
            print(f"error: no run matching {run_id!r}", file=sys.stderr)
            return 2
        print(_render_run_detail(manifest))
        return 0
    manifests = api.list_runs(limit=limit)
    if not manifests:
        print(
            "no observed runs yet -- run `python -m repro tables <id>` "
            "(observation is on by default)"
        )
        return 0
    print("observed runs (newest first):")
    for manifest in manifests:
        print(_format_run_line(manifest))
    print()
    print(_render_run_detail(manifests[0]))
    return 0


def run_trace_export(run_id: Optional[str], fmt: str, out: str) -> int:
    """``trace-export``: write a run's span trace as JSON."""
    if run_id is not None:
        manifest = api.find_run(run_id)
    else:
        runs = api.list_runs(limit=1)
        manifest = runs[0] if runs else None
    if manifest is None:
        _set_pending_exit(2)
        target = f"run matching {run_id!r}" if run_id else "observed runs"
        print(f"error: no {target}", file=sys.stderr)
        return 2
    if fmt == "chrome":
        payload = spans_to_chrome(manifest.spans)
    elif fmt == "perfetto":
        payload = spans_to_perfetto(manifest.spans)
    else:
        payload = {"run_id": manifest.run_id, "spans": manifest.spans}
    text = json.dumps(payload, indent=1, sort_keys=True)
    if out == "-":
        print(text)
    else:
        with open(out, "w") as handle:
            handle.write(text + "\n")
        print(
            f"wrote {len(manifest.spans)} spans ({fmt}) "
            f"for {manifest.run_id} to {out}",
            file=sys.stderr,
        )
    return 0


def run_verify(args) -> int:
    """The ``verify`` subcommand: fuzz-verify the machine models."""

    def report_failure(message: str) -> None:
        # The runner's log only speaks on failure events, so record the
        # failing verdict before each print: if the pipe then breaks
        # mid-campaign, main() still exits 1.
        _set_pending_exit(1)
        print(message)

    for spec in args.machines or ():
        api.parse_spec(spec)  # raises UnknownSpecError -> exit 2
    log = None if args.quiet else report_failure
    try:
        report = api.verify_machines(
            args.seeds,
            machines=args.machines,
            configs=args.config,
            trace_length=args.trace_length,
            shrink=not args.no_shrink,
            dump_dir=args.dump_dir,
            first_seed=args.first_seed,
            check_telemetry=args.telemetry,
            source=args.source,
            log=log,
        )
    except ValueError as exc:
        # Covers UnknownSpecError plus malformed seed counts/configs.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Decide the verdict before any stdout writes so a broken pipe
    # cannot swallow a failure (see main()).
    code = 0 if report.ok else 1
    _set_pending_exit(code)
    machine_count = len(report.options.machines)
    print(
        f"verify: {report.seeds_run} seeds x {machine_count} machines "
        f"({report.checks_run} checks): "
        + ("OK" if report.ok else f"{len(report.failures)} FAILURES")
    )
    for failure in report.failures:
        print(f"  {failure}")
    if not report.ok and args.dump_dir is None:
        print(
            "  (re-run with --dump-dir to save replayable reproducer "
            "traces)",
            file=sys.stderr,
        )
    return code


def run_bench(args) -> int:
    """The ``bench`` subcommand: run the suite, persist, compare."""
    log = None if args.quiet else print
    for spec in args.machines or ():
        api.parse_spec(spec)  # raises UnknownSpecError -> exit 2
    try:
        options = api.bench_options(
            quick=args.quick,
            seeds=args.seeds,
            trace_length=args.trace_length,
            rounds=args.rounds,
            machines=args.machines,
            no_engine=args.no_engine,
            no_explore=args.no_explore,
            backend=args.backend,
        )
    except TypeError as exc:  # pragma: no cover - argparse guards types
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Load (and validate) the baseline *before* the expensive run, so a
    # bad path or malformed file fails in milliseconds.
    baseline = None
    if args.compare is not None:
        try:
            baseline = api.load_bench_report(args.compare)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            _set_pending_exit(2)
            print(f"error: bad baseline {args.compare!r}: {exc}",
                  file=sys.stderr)
            return 2

    report = api.run_bench(options, name=args.name, log=log)

    out = args.out if args.out is not None else f"BENCH_{args.name}.json"
    if out != "-":
        report.write(out)
        if log:
            log(f"wrote {len(report.results)} benchmarks to {out}")

    if baseline is None:
        return 0

    threshold = 0.25 if args.threshold is None else args.threshold
    comparison = api.compare_bench(report, baseline, threshold=threshold)
    # Verdict before printing: a broken pipe must not hide a regression.
    code = 0 if comparison.ok else 1
    _set_pending_exit(code)
    print(
        f"compare vs {args.compare} (threshold {threshold:.0%}): "
        + ("OK" if comparison.ok
           else f"{len(comparison.regressions)} REGRESSIONS")
    )
    if not comparison.environment_comparable:
        print(
            "  warning: reports were measured on different "
            "interpreters/architectures; deltas may be meaningless",
            file=sys.stderr,
        )
    for delta in comparison.deltas:
        print(f"  {delta}")
    for missing in comparison.missing:
        print(f"  {missing:<32} (in baseline only)")
    for added in comparison.added:
        print(f"  {added:<32} (new, no baseline)")
    return code


def run_explore(args) -> int:
    callback = _progress_callback("human") if args.progress else None
    run = api.explore(
        args.space,
        args.sources,
        config=args.config,
        budget=args.budget,
        audit=args.audit,
        seed=args.seed,
        slack=args.slack,
        workers=args.workers,
        cache=not args.no_cache,
        observe=not args.no_observe,
        backend=args.backend,
        exhaustive=args.exhaustive,
        progress=callback,
    )
    if args.format == "json":
        print(json.dumps(run.to_payload(), indent=1, sort_keys=True))
    else:
        print(run.render_report())
    return 0


#: Exit code to use if stdout breaks mid-print: subcommands record their
#: verdict here as soon as it is known, before rendering any output.
_pending_exit = 0


def _set_pending_exit(code: int) -> None:
    global _pending_exit
    _pending_exit = code


def main(argv: Optional[List[str]] = None) -> int:
    global _pending_exit
    _pending_exit = 0
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except (
        api.UnknownSpecError,
        api.UnknownTraceSourceError,
        api.TraceImportError,
        api.SpaceError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Reader went away (e.g. ``repro stats | head``); stdout is gone,
        # so detach it before interpreter shutdown tries to flush it.
        # Return the verdict recorded before printing started -- piping
        # ``repro verify`` into ``head`` must not hide a failure.
        _detach_stdout()
        return _pending_exit


def _detach_stdout() -> None:
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, sys.stdout.fileno())


def _dispatch(args) -> int:
    if args.command == "tables":
        return run_tables(
            args.table,
            compare=args.compare,
            workers=args.workers,
            cache=not args.no_cache,
            observe=not args.no_observe,
            backend=args.backend,
            progress=args.progress or args.progress_format == "jsonl",
            progress_format=args.progress_format,
        )

    if args.command == "sweep":
        return run_sweep_cmd(args)

    if args.command == "trace-export":
        return run_trace_export(args.run, args.format, args.out)

    if args.command == "verify":
        return run_verify(args)

    if args.command == "bench":
        return run_bench(args)

    if args.command == "explore":
        return run_explore(args)

    if args.command == "replay":
        print(api.replay(args.trace, args.machine, config=args.config))
        return 0

    if args.command == "disasm":
        print(api.disassemble(args.kernel, **_kernel_kwargs(args)))
        return 0

    if args.command == "sources":
        return run_sources(args.spec)

    if args.command == "simulate":
        picked = _picked_trace(args)
        if picked is None:
            return 2
        if args.source is not None:
            print(api.simulate_source(
                args.source, args.machine, config=args.config
            ))
            return 0
        kwargs = _kernel_kwargs(args)
        print(api.simulate(args.kernel, args.machine, config=args.config, **kwargs))
        return 0

    if args.command == "stats":
        if args.machine is not None:
            return run_machine_info(args.machine)
        if args.source is not None:
            if args.kernel is not None:
                print("error: give --kernel or --source, not both",
                      file=sys.stderr)
                return 2
            return run_sources(args.source)
        if args.kernel is None:
            return run_stats(args.run, args.limit, args.format)
        kwargs = _kernel_kwargs(args)
        kwargs.pop("explicit_addressing")
        print(format_stats(api.kernel_stats(args.kernel, **kwargs)))
        return 0

    if args.command == "limits":
        picked = _picked_trace(args)
        if picked is None:
            return 2
        if args.source is not None:
            pure = api.limits_source(args.source, config=args.config)
            serial = api.limits_source(
                args.source, config=args.config, serial=True
            )
        else:
            kwargs = _kernel_kwargs(args)
            kwargs.pop("vector")
            kwargs.pop("explicit_addressing")
            pure = api.limits(args.kernel, config=args.config, **kwargs)
            serial = api.limits(
                args.kernel, config=args.config, serial=True, **kwargs
            )
        if args.format == "json":
            payload = {
                "pure": pure.to_payload(),
                "serial": serial.to_payload(),
            }
            print(json.dumps(payload, indent=1, sort_keys=True))
            return 0
        print(f"{pure.trace_name} on {pure.config.name}:")
        print(f"  pseudo-dataflow limit  {pure.pseudo_dataflow_rate:.3f}")
        print(f"  resource limit         {pure.resource_rate:.3f} "
              f"(bottleneck: {pure.resource.bottleneck.value})")
        print(f"  actual (binding) limit {pure.actual_rate:.3f}")
        print(f"  serial (WAW) limit     {serial.actual_rate:.3f}")
        return 0

    if args.command == "stalls":
        kwargs = _kernel_kwargs(args)
        kwargs.pop("vector")
        kwargs.pop("explicit_addressing")
        print(api.stalls(args.kernel, config=args.config, **kwargs).render())
        return 0

    if args.command == "capture":
        picked = _picked_trace(args)
        if picked is None:
            return 2
        if args.source is not None:
            count = api.capture_source(args.source, args.out)
        else:
            kwargs = _kernel_kwargs(args)
            kwargs.pop("explicit_addressing")
            count = api.capture(args.kernel, args.out, **kwargs)
        print(f"wrote {count} entries to {args.out}")
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def _picked_trace(args) -> Optional[str]:
    """Enforce exactly one of --kernel / --source; None means exit 2."""
    if args.kernel is not None and args.source is not None:
        print("error: give --kernel or --source, not both", file=sys.stderr)
        return None
    if args.kernel is None and args.source is None:
        print("error: one of --kernel or --source is required",
              file=sys.stderr)
        return None
    return "source" if args.source is not None else "kernel"


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
