"""Command-line interface: ``python -m repro <subcommand>``.

Every subcommand is a thin wrapper over :mod:`repro.api` -- the CLI
parses arguments and prints, the facade does the work:

* ``tables``   -- regenerate any of the paper's tables in parallel with a
  persistent result store (``--workers``, ``--no-cache``, ``--compare``);
* ``simulate`` -- run one kernel through one machine organisation;
* ``disasm``   -- print a kernel's assembly listing;
* ``stats``    -- dynamic instruction-mix statistics;
* ``limits``   -- pseudo-dataflow / resource / serial limits;
* ``stalls``   -- stall attribution on an issue-blocking machine;
* ``capture``  -- save a verified dynamic trace as JSON lines;
* ``replay``   -- time a saved trace on any machine.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import api
from .kernels import ALL_LOOPS
from .trace import format_stats


def _add_kernel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        type=int,
        required=True,
        choices=ALL_LOOPS,
        help="Livermore loop number",
    )
    parser.add_argument("--n", type=int, default=None, help="problem size")
    parser.add_argument(
        "--unroll", type=int, default=1, help="unroll factor (default 1)"
    )
    parser.add_argument(
        "--no-schedule",
        action="store_true",
        help="keep the naive source-order encoding",
    )
    parser.add_argument(
        "--vector",
        action="store_true",
        help="use the vectorised encoding (loops 1, 7, 12)",
    )
    parser.add_argument(
        "--explicit-addressing",
        action="store_true",
        help="expand folded displacements CFT-style (calibration variant)",
    )


def _kernel_kwargs(args) -> dict:
    return {
        "n": args.n,
        "schedule": not args.no_schedule,
        "unroll": args.unroll,
        "vector": getattr(args, "vector", False),
        "explicit_addressing": getattr(args, "explicit_addressing", False),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Pleszkun & Sohi (1988), 'The Performance "
            "Potential of Multiple Functional Unit Processors'."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument(
        "table",
        choices=list(api.list_tables()) + ["section33", "all"],
    )
    tables.add_argument("--compare", action="store_true")
    tables.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel worker processes (default: all CPUs)",
    )
    tables.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent result store under $REPRO_CACHE_DIR",
    )

    simulate = sub.add_parser("simulate", help="time one kernel on one machine")
    _add_kernel_arguments(simulate)
    simulate.add_argument(
        "--machine",
        default="cray",
        help=f"machine spec ({api.machine_spec_help()})",
    )
    simulate.add_argument("--config", default="M11BR5")

    disasm = sub.add_parser("disasm", help="print a kernel's assembly")
    _add_kernel_arguments(disasm)

    stats = sub.add_parser("stats", help="dynamic instruction-mix statistics")
    _add_kernel_arguments(stats)

    limits = sub.add_parser("limits", help="dataflow/resource/serial limits")
    _add_kernel_arguments(limits)
    limits.add_argument("--config", default="M11BR5")

    stalls = sub.add_parser("stalls", help="stall attribution")
    _add_kernel_arguments(stalls)
    stalls.add_argument("--config", default="M11BR5")

    capture = sub.add_parser("capture", help="save a verified trace (JSONL)")
    _add_kernel_arguments(capture)
    capture.add_argument("--out", required=True, help="output path")

    replay = sub.add_parser("replay", help="time a saved trace")
    replay.add_argument("--trace", required=True, help="JSONL trace path")
    replay.add_argument("--machine", default="cray")
    replay.add_argument("--config", default="M11BR5")

    return parser


def run_tables(
    table: str,
    *,
    compare: bool = False,
    workers: Optional[int] = None,
    cache: bool = True,
) -> int:
    """The ``tables`` subcommand: print tables (or the section 3.3 quote)."""
    if table == "section33":
        rates = api.section33()
        paper = api.paper_section33()
        print("Section 3.3: single-issue dependency resolution on M11BR5")
        for class_label, rate in rates.items():
            print(
                f"  {class_label:<13} measured {rate:.2f}   "
                f"paper {paper[class_label]:.2f}"
            )
        return 0

    targets = api.list_tables() if table == "all" else (table,)
    for table_id in targets:
        run = api.run_table(
            table_id, compare=compare, workers=workers, cache=cache
        )
        print(run.render_report(compare=compare))
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except api.UnknownSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    if args.command == "tables":
        return run_tables(
            args.table,
            compare=args.compare,
            workers=args.workers,
            cache=not args.no_cache,
        )

    if args.command == "replay":
        print(api.replay(args.trace, args.machine, config=args.config))
        return 0

    if args.command == "disasm":
        print(api.disassemble(args.kernel, **_kernel_kwargs(args)))
        return 0

    if args.command == "simulate":
        kwargs = _kernel_kwargs(args)
        print(api.simulate(args.kernel, args.machine, config=args.config, **kwargs))
        return 0

    if args.command == "stats":
        kwargs = _kernel_kwargs(args)
        kwargs.pop("explicit_addressing")
        print(format_stats(api.kernel_stats(args.kernel, **kwargs)))
        return 0

    if args.command == "limits":
        kwargs = _kernel_kwargs(args)
        kwargs.pop("vector")
        kwargs.pop("explicit_addressing")
        pure = api.limits(args.kernel, config=args.config, **kwargs)
        serial = api.limits(
            args.kernel, config=args.config, serial=True, **kwargs
        )
        print(f"{pure.trace_name} on {pure.config.name}:")
        print(f"  pseudo-dataflow limit  {pure.pseudo_dataflow_rate:.3f}")
        print(f"  resource limit         {pure.resource_rate:.3f} "
              f"(bottleneck: {pure.resource.bottleneck.value})")
        print(f"  actual (binding) limit {pure.actual_rate:.3f}")
        print(f"  serial (WAW) limit     {serial.actual_rate:.3f}")
        return 0

    if args.command == "stalls":
        kwargs = _kernel_kwargs(args)
        kwargs.pop("vector")
        kwargs.pop("explicit_addressing")
        print(api.stalls(args.kernel, config=args.config, **kwargs).render())
        return 0

    if args.command == "capture":
        kwargs = _kernel_kwargs(args)
        kwargs.pop("explicit_addressing")
        count = api.capture(args.kernel, args.out, **kwargs)
        print(f"wrote {count} entries to {args.out}")
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
