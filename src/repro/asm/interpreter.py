"""Functional interpreter: executes a program and observes the dynamic stream.

This is the reproduction's substitute for the paper's trace-capture step
(the modified CRAY-1 simulator of Pang & Smith).  The interpreter executes
a :class:`~repro.asm.program.Program` on a :class:`~repro.asm.memory.Memory`
image with full architectural semantics -- every branch is resolved on real
data -- and reports each executed instruction to an observer callback.  The
trace layer (:mod:`repro.trace.generator`) uses that callback to capture the
dynamic instruction trace that drives every timing simulator; kernel tests
use the final memory image to verify the kernels against NumPy references.

The interpreter is deliberately strict: reading an uninitialised register,
an out-of-range memory access, or a logical operation on a non-integer word
raises :class:`~repro.asm.errors.ExecutionError` instead of silently
producing garbage, which catches kernel-encoding bugs early.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

from ..isa import (
    VECTOR_LENGTH_MAX,
    VL,
    Instruction,
    OpKind,
    Opcode,
    Operand,
    Register,
)
from .errors import ExecutionError, StepLimitExceeded
from .memory import Memory
from .program import Program

#: Value held in a register: address registers hold ints, scalar registers
#: hold floats or (for logical masks and transmitted addresses) ints.
Value = Union[int, float]

#: Observer signature:
#: (static index, instruction, branch-taken, effective address,
#:  vector length).  ``taken`` is ``None`` for non-branches; ``address``
#: is the effective memory address for scalar loads/stores; ``vl`` is the
#: element count for vector instructions; each is ``None`` otherwise.
Observer = Callable[
    [int, Instruction, Optional[bool], Optional[int], Optional[int]], None
]

#: Default runaway-loop guard.
DEFAULT_MAX_STEPS = 5_000_000


@dataclass
class ExecutionResult:
    """Outcome of a completed program execution.

    Attributes:
        steps: number of dynamic instructions executed.
        memory: the final memory image (mutated in place from the input).
        registers: final architectural register contents.
        program: the executed program.
    """

    steps: int
    memory: Memory
    registers: Dict[Register, Value]
    program: Program = field(repr=False, default=None)  # type: ignore[assignment]


def run(
    program: Program,
    memory: Memory,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    observer: Optional[Observer] = None,
) -> ExecutionResult:
    """Execute *program* to completion on *memory*.

    The program starts at instruction 0 and terminates when control flows
    past the last instruction (including branches to a program-end label).

    Args:
        program: assembled program.
        memory: data memory image; mutated in place.
        max_steps: dynamic-instruction guard against runaway loops.
        observer: optional per-instruction callback used for trace capture.

    Returns:
        The final architectural state.

    Raises:
        ExecutionError: on any architectural fault.
        StepLimitExceeded: if *max_steps* is exceeded.
    """
    regs: Dict[Register, Value] = {}
    pc = 0
    steps = 0
    end = len(program)

    def reg(r: Register) -> Value:
        try:
            return regs[r]
        except KeyError:
            raise ExecutionError(
                f"read of uninitialised register {r} at pc={pc} "
                f"({program[pc]})"
            ) from None

    def operand(x: Operand) -> Value:
        return reg(x) if isinstance(x, Register) else x

    def int_operand(x: Operand, what: str) -> int:
        value = operand(x)
        if isinstance(value, bool) or not isinstance(value, int):
            raise ExecutionError(
                f"{what} must be an integer, got {value!r} at pc={pc} "
                f"({program[pc]})"
            )
        return value

    while pc != end:
        if not 0 <= pc < end:
            raise ExecutionError(f"control flowed to invalid pc {pc}")
        if steps >= max_steps:
            raise StepLimitExceeded(
                f"program {program.name!r} exceeded {max_steps} steps"
            )

        instr = program[pc]
        op = instr.opcode
        kind = op.kind
        taken: Optional[bool] = None
        address: Optional[int] = None
        vl: Optional[int] = None
        next_pc = pc + 1

        if kind is OpKind.IMM_INT:
            regs[instr.dest] = int(instr.srcs[0])
        elif kind is OpKind.IMM_FLOAT:
            value = instr.srcs[0]
            regs[instr.dest] = value if isinstance(value, int) else float(value)
        elif kind is OpKind.MOVE_INT:
            regs[instr.dest] = int_operand(instr.srcs[0], "AMOVE source")
        elif kind is OpKind.MOVE_FLOAT:
            regs[instr.dest] = operand(instr.srcs[0])
        elif kind is OpKind.XFER:
            if op is Opcode.ATS:
                regs[instr.dest] = int_operand(instr.srcs[0], "ATS source")
            else:  # STA
                regs[instr.dest] = int_operand(instr.srcs[0], "STA source")
        elif kind is OpKind.CONVERT:
            if op is Opcode.FIX:
                value = operand(instr.srcs[0])
                regs[instr.dest] = int(math.trunc(value))
            else:  # FLOAT
                regs[instr.dest] = float(int_operand(instr.srcs[0], "FLOAT source"))
        elif kind is OpKind.ALU_INT:
            a = int_operand(instr.srcs[0], f"{op.value} operand 0")
            b = int_operand(instr.srcs[1], f"{op.value} operand 1")
            regs[instr.dest] = _INT_ALU[op](a, b)
        elif kind is OpKind.ALU_FLOAT:
            regs[instr.dest] = _execute_scalar_alu(instr, operand, int_operand)
        elif kind is OpKind.LOAD:
            base = int_operand(instr.srcs[0], "load base")
            address = base + int(instr.srcs[1])
            word = memory.read(address)
            if op is Opcode.LOADS:
                regs[instr.dest] = word
            else:  # LOADA
                regs[instr.dest] = int(math.trunc(word))
        elif kind is OpKind.STORE:
            data = operand(instr.srcs[0])
            base = int_operand(instr.srcs[1], "store base")
            address = base + int(instr.srcs[2])
            memory.write(address, float(data))
        elif kind is OpKind.BRANCH_COND:
            condition = int_operand(instr.srcs[0], "branch condition (A0)")
            taken = _BRANCH_TESTS[op](condition)
            if taken:
                next_pc = program.target_index(instr)
        elif kind is OpKind.BRANCH_UNCOND:
            taken = True
            next_pc = program.target_index(instr)
        elif kind is OpKind.PASS:
            pass
        elif kind is OpKind.SETVL:
            length = int_operand(instr.srcs[0], "vector length")
            if not 1 <= length <= VECTOR_LENGTH_MAX:
                raise ExecutionError(
                    f"vector length {length} outside [1, {VECTOR_LENGTH_MAX}] "
                    f"at pc={pc}"
                )
            regs[VL] = length
        elif kind in (OpKind.VECTOR_LOAD, OpKind.VECTOR_STORE, OpKind.VECTOR_ALU):
            vl = int_operand(VL, "vector length (set L0 with VSETL first)")
            _execute_vector(instr, vl, regs, memory, operand, int_operand, pc)
        else:  # pragma: no cover - exhaustive over OpKind
            raise ExecutionError(f"unhandled opcode kind {kind}")

        if observer is not None:
            observer(pc, instr, taken, address, vl)
        steps += 1
        pc = next_pc

    return ExecutionResult(steps=steps, memory=memory, registers=regs, program=program)


def _execute_vector(instr, vl, regs, memory, operand, int_operand, pc) -> None:
    """Execute one vector-unit instruction over *vl* elements."""
    op = instr.opcode
    kind = op.kind

    def vector_value(reg) -> list:
        value = regs.get(reg)
        if not isinstance(value, list):
            raise ExecutionError(
                f"read of uninitialised vector register {reg} at pc={pc}"
            )
        return value

    def fresh_dest() -> list:
        existing = regs.get(instr.dest)
        if isinstance(existing, list):
            return list(existing)
        return [0.0] * VECTOR_LENGTH_MAX

    if kind is OpKind.VECTOR_LOAD:
        base = int_operand(instr.srcs[0], "vector load base")
        stride = int_operand(instr.srcs[1], "vector load stride")
        result = fresh_dest()
        for i in range(vl):
            result[i] = memory.read(base + i * stride)
        regs[instr.dest] = result
    elif kind is OpKind.VECTOR_STORE:
        data = vector_value(instr.srcs[0])
        base = int_operand(instr.srcs[1], "vector store base")
        stride = int_operand(instr.srcs[2], "vector store stride")
        for i in range(vl):
            memory.write(base + i * stride, float(data[i]))
    else:  # VECTOR_ALU
        result = fresh_dest()
        if op in (Opcode.VSADD, Opcode.VSMUL):
            scalar = float(operand(instr.srcs[0]))
            vector = vector_value(instr.srcs[1])
            for i in range(vl):
                if op is Opcode.VSADD:
                    result[i] = scalar + float(vector[i])
                else:
                    result[i] = scalar * float(vector[i])
        else:
            left = vector_value(instr.srcs[0])
            right = vector_value(instr.srcs[1])
            for i in range(vl):
                a, b = float(left[i]), float(right[i])
                if op is Opcode.VVADD:
                    result[i] = a + b
                elif op is Opcode.VVSUB:
                    result[i] = a - b
                else:  # VVMUL
                    result[i] = a * b
        regs[instr.dest] = result


def _execute_scalar_alu(instr, operand, int_operand) -> Value:
    """Execute a scalar-unit (S-register) operation."""
    op = instr.opcode
    if op in (Opcode.SADD, Opcode.SSUB):
        a = operand(instr.srcs[0])
        b = operand(instr.srcs[1])
        return a + b if op is Opcode.SADD else a - b
    if op in (Opcode.SAND, Opcode.SOR, Opcode.SXOR):
        a = int_operand(instr.srcs[0], f"{op.value} operand 0")
        b = int_operand(instr.srcs[1], f"{op.value} operand 1")
        if op is Opcode.SAND:
            return a & b
        if op is Opcode.SOR:
            return a | b
        return a ^ b
    if op in (Opcode.SSHL, Opcode.SSHR):
        a = int_operand(instr.srcs[0], f"{op.value} operand 0")
        count = int_operand(instr.srcs[1], "shift count")
        if count < 0:
            raise ExecutionError(f"negative shift count {count}")
        return a << count if op is Opcode.SSHL else a >> count
    if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL):
        a = float(operand(instr.srcs[0]))
        b = float(operand(instr.srcs[1]))
        if op is Opcode.FADD:
            return a + b
        if op is Opcode.FSUB:
            return a - b
        return a * b
    if op is Opcode.FRECIP:
        a = float(operand(instr.srcs[0]))
        if a == 0.0:
            raise ExecutionError("reciprocal of zero")
        return 1.0 / a
    raise ExecutionError(f"unhandled scalar opcode {op}")  # pragma: no cover


_INT_ALU = {
    Opcode.AADD: lambda a, b: a + b,
    Opcode.ASUB: lambda a, b: a - b,
    Opcode.AMUL: lambda a, b: a * b,
}

_BRANCH_TESTS = {
    Opcode.JAZ: lambda a0: a0 == 0,
    Opcode.JAN: lambda a0: a0 != 0,
    Opcode.JAP: lambda a0: a0 >= 0,
    Opcode.JAM: lambda a0: a0 < 0,
}
