"""Explicit-addressing expansion: a CFT-style code-bulk model.

The reproduction's kernels fold array bases into load/store displacements
(one shared index register per loop) -- the *tightest* plausible scalar
encoding.  Real CFT output computed many effective addresses with explicit
A-register arithmetic, which adds cheap 1-2 cycle instructions to every
iteration.  On an issue-blocking machine those extra instructions issue
nearly back-to-back, so bulkier code *raises* the issue rate -- one of the
reasons the paper's absolute numbers sit above this reproduction's (see
EXPERIMENTS.md's calibration note).

:func:`expand_addressing` makes that effect measurable: it rewrites each
scalar memory reference

    LOADS  Sd, Ab, disp      ->      AADD  Ax, Ab, disp
                                     LOADS Sd, Ax, 0

using scratch A registers the program never touches (round-robin when
several are free).  The transformation is semantics-preserving by
construction and verified by the kernel machinery like every other
variant.
"""

from __future__ import annotations

from typing import List, Tuple

from ..isa import Instruction, Opcode, RegFile, Register
from .errors import AssemblerError
from .program import Program


class AddressingError(AssemblerError):
    """The program has no free A registers to expand into."""


def free_address_registers(program: Program) -> Tuple[Register, ...]:
    """A registers the program neither reads nor writes."""
    used = set()
    for instr in program.instructions:
        for reg in instr.source_registers:
            used.add(reg)
        if instr.dest is not None:
            used.add(instr.dest)
    return tuple(
        Register(RegFile.A, index)
        for index in range(RegFile.A.size)
        if Register(RegFile.A, index) not in used
    )


def expand_addressing(program: Program) -> Program:
    """Rewrite folded displacements as explicit address arithmetic.

    Every scalar load/store with a nonzero displacement becomes an
    ``AADD`` into a scratch register followed by the access at
    displacement 0.  Labels follow their instruction (landing on the
    inserted ``AADD`` when the labelled instruction was expanded).

    Raises:
        AddressingError: if the program already uses all eight A registers.
    """
    scratch = free_address_registers(program)
    if not scratch:
        raise AddressingError(
            f"program {program.name!r} uses every A register; "
            "nothing free for explicit addressing"
        )

    new_instructions: List[Instruction] = []
    first_of: List[int] = []  # old index -> first new index emitted for it
    rotor = 0

    for instr in program.instructions:
        first_of.append(len(new_instructions))
        pair = _expand_one(instr, scratch, rotor)
        if pair is None:
            new_instructions.append(instr)
        else:
            rotor += 1
            new_instructions.extend(pair)

    boundaries = first_of + [len(new_instructions)]
    new_labels = {
        label: boundaries[position]
        for label, position in program.labels.items()
    }

    return Program(
        name=f"{program.name}-explicit-addr",
        instructions=tuple(new_instructions),
        labels=new_labels,
    )


def _expand_one(instr: Instruction, scratch, rotor):
    """(AADD, access) pair for an expandable memory reference, else None."""
    if instr.opcode in (Opcode.LOADS, Opcode.LOADA):
        base, disp = instr.srcs
        if disp == 0:
            return None
        reg = scratch[rotor % len(scratch)]
        return (
            Instruction(Opcode.AADD, reg, (base, disp)),
            Instruction(instr.opcode, instr.dest, (reg, 0), comment=instr.comment),
        )
    if instr.opcode in (Opcode.STORES, Opcode.STOREA):
        data, base, disp = instr.srcs
        if disp == 0:
            return None
        reg = scratch[rotor % len(scratch)]
        return (
            Instruction(Opcode.AADD, reg, (base, disp)),
            Instruction(instr.opcode, None, (data, reg, 0), comment=instr.comment),
        )
    return None
