"""Exception types for the assembler and the functional interpreter."""

from __future__ import annotations


class AsmError(Exception):
    """Base class for all assembly-layer errors."""


class AssemblerError(AsmError):
    """Raised for structural program errors (bad labels, empty program)."""


class ExecutionError(AsmError):
    """Raised when the functional interpreter cannot execute an instruction.

    Typical causes: reading an uninitialised register, an out-of-bounds
    memory access, a logical operation on a non-integer scalar value, or
    exceeding the interpreter step limit (runaway loop).
    """


class StepLimitExceeded(ExecutionError):
    """The interpreter executed more instructions than its configured limit."""
