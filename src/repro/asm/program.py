"""Assembled program representation.

A :class:`Program` is an immutable sequence of instructions plus a label
table mapping symbolic names to instruction indices.  Programs are produced
by :mod:`repro.asm.assembler` (usually via the :mod:`repro.asm.builder`
DSL) and consumed by the functional interpreter and, indirectly, by every
timing simulator through the trace layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple

from ..isa import Instruction
from .errors import AssemblerError


@dataclass(frozen=True)
class Program:
    """An assembled program.

    Attributes:
        name: human-readable program name (e.g. ``"livermore-05"``).
        instructions: the static instruction sequence.
        labels: mapping from label name to the index of the instruction the
            label precedes.  A label may point one past the last instruction
            (a common target for forward exits).
    """

    name: str
    instructions: Tuple[Instruction, ...]
    labels: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.instructions, tuple):
            object.__setattr__(self, "instructions", tuple(self.instructions))
        if not isinstance(self.labels, dict):
            object.__setattr__(self, "labels", dict(self.labels))
        if not self.instructions:
            raise AssemblerError(f"program {self.name!r} has no instructions")
        n = len(self.instructions)
        for label, index in self.labels.items():
            if not 0 <= index <= n:
                raise AssemblerError(
                    f"label {label!r} points at {index}, outside program "
                    f"of length {n}"
                )
        for instr in self.instructions:
            if instr.is_branch and instr.target not in self.labels:
                raise AssemblerError(
                    f"branch {instr} targets unknown label {instr.target!r}"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def target_index(self, instr: Instruction) -> int:
        """Instruction index a branch instruction jumps to."""
        if not instr.is_branch or instr.target is None:
            raise AssemblerError(f"{instr} is not a branch")
        return self.labels[instr.target]

    @property
    def label_at(self) -> Dict[int, Tuple[str, ...]]:
        """Inverse label table: instruction index -> labels at that index."""
        inverse: Dict[int, Tuple[str, ...]] = {}
        for label, index in sorted(self.labels.items()):
            inverse[index] = inverse.get(index, ()) + (label,)
        return inverse

    def disassemble(self) -> str:
        """Pretty-printed listing with labels, one instruction per line."""
        label_at = self.label_at
        lines = [f"; program {self.name} ({len(self)} instructions)"]
        for index, instr in enumerate(self.instructions):
            for label in label_at.get(index, ()):
                lines.append(f"{label}:")
            lines.append(f"    {instr}")
        for label in label_at.get(len(self), ()):
            lines.append(f"{label}:")
        return "\n".join(lines)
