"""Assembly layer: program builder DSL, assembler, memory and interpreter.

This package is the reproduction's "compiler + trace capture" substrate.
Benchmark kernels are written with :class:`ProgramBuilder`, assembled into
immutable :class:`Program` objects, and executed on a :class:`Memory` image
by :func:`run` -- which resolves every branch on real data, yielding the
dynamic instruction stream the timing simulators replay.
"""

from .assembler import assemble
from .builder import ProgramBuilder
from .errors import AsmError, AssemblerError, ExecutionError, StepLimitExceeded
from .interpreter import DEFAULT_MAX_STEPS, ExecutionResult, run
from .memory import ArraySpec, Memory
from .parser import ParseError, parse_program
from .program import Program
from .scheduler import schedule_program

__all__ = [
    "ArraySpec",
    "AsmError",
    "AssemblerError",
    "DEFAULT_MAX_STEPS",
    "ExecutionError",
    "ExecutionResult",
    "Memory",
    "ParseError",
    "Program",
    "ProgramBuilder",
    "StepLimitExceeded",
    "assemble",
    "parse_program",
    "run",
    "schedule_program",
]
