"""Word-addressed data memory for the functional interpreter.

The base machine's memory is a flat array of 64-bit words.  We store every
word as a ``float64``; integer values (loop counts, particle indices) are
small enough to be represented exactly, and :data:`~repro.isa.Opcode.LOADA`
truncates back to ``int`` on the way into an address register -- mirroring
how the real machine reinterprets the same word.

:class:`ArraySpec` describes a named, possibly multi-dimensional array laid
out row-major at a fixed base address; kernels use it both to generate
address arithmetic and to read results back out for verification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .errors import ExecutionError


class Memory:
    """A bounds-checked, word-addressed memory image."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self._words = np.zeros(size, dtype=np.float64)

    @property
    def size(self) -> int:
        return len(self._words)

    def _check(self, addr: int) -> None:
        if not isinstance(addr, (int, np.integer)):
            raise ExecutionError(f"memory address must be an int, got {addr!r}")
        if not 0 <= addr < len(self._words):
            raise ExecutionError(
                f"memory address {addr} out of range [0, {len(self._words)})"
            )

    def read(self, addr: int) -> float:
        """Read one word."""
        self._check(addr)
        return float(self._words[addr])

    def write(self, addr: int, value: float) -> None:
        """Write one word."""
        self._check(addr)
        if not math.isfinite(value):
            raise ExecutionError(f"non-finite value {value!r} stored at {addr}")
        self._words[addr] = value

    def read_block(self, base: int, count: int) -> np.ndarray:
        """Read *count* consecutive words starting at *base* (a copy)."""
        self._check(base)
        if count < 0 or base + count > len(self._words):
            raise ExecutionError(
                f"block read [{base}, {base + count}) out of range"
            )
        return self._words[base : base + count].copy()

    def write_block(self, base: int, values: np.ndarray) -> None:
        """Write consecutive words starting at *base*."""
        flat = np.asarray(values, dtype=np.float64).ravel()
        self._check(base)
        if base + len(flat) > len(self._words):
            raise ExecutionError(
                f"block write [{base}, {base + len(flat)}) out of range"
            )
        self._words[base : base + len(flat)] = flat

    def copy(self) -> "Memory":
        """Deep copy of the memory image."""
        clone = Memory(self.size)
        clone._words[:] = self._words
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        return bool(np.array_equal(self._words, other._words))


@dataclass(frozen=True)
class ArraySpec:
    """A named array laid out row-major in memory.

    Attributes:
        name: symbolic array name (e.g. ``"x"``).
        base: address of element ``[0, ..., 0]``.
        shape: array dimensions.
    """

    name: str
    base: int
    shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape or any(d <= 0 for d in self.shape):
            raise ValueError(f"array {self.name!r} has bad shape {self.shape}")
        if self.base < 0:
            raise ValueError(f"array {self.name!r} has negative base")

    @property
    def size(self) -> int:
        """Total number of words."""
        return int(np.prod(self.shape))

    @property
    def end(self) -> int:
        """One past the last address of the array."""
        return self.base + self.size

    def addr(self, *indices: int) -> int:
        """Address of element ``[*indices]`` (row-major, bounds-checked)."""
        if len(indices) != len(self.shape):
            raise ValueError(
                f"array {self.name!r} has {len(self.shape)} dimensions, "
                f"got indices {indices}"
            )
        offset = 0
        for index, dim in zip(indices, self.shape):
            if not 0 <= index < dim:
                raise ValueError(
                    f"index {indices} out of bounds for {self.name!r} "
                    f"shape {self.shape}"
                )
            offset = offset * dim + index
        return self.base + offset

    def read_from(self, memory: Memory) -> np.ndarray:
        """The array's current contents, shaped."""
        return memory.read_block(self.base, self.size).reshape(self.shape)

    def write_to(self, memory: Memory, values: np.ndarray) -> None:
        """Initialise the array's contents."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.shape != self.shape:
            raise ValueError(
                f"array {self.name!r} expects shape {self.shape}, "
                f"got {arr.shape}"
            )
        memory.write_block(self.base, arr)
