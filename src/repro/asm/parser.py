"""Textual assembly parser: the inverse of :meth:`Program.disassemble`.

The listing format is one instruction per line, with optional label lines
and ``;`` comments::

    ; program saxpy (8 instructions)
    SI S1, 2.5                      ; a
    AI A1, 0
    loop:
        LOADS S2, A1, 16
        FMUL S2, S1, S2
        STORES S2, A1, 144
        AADD A1, A1, 1
        ASUB A0, A0, 1
        JAN A0, loop

Round-trip guarantee: ``parse_program(program.disassemble())`` rebuilds an
equivalent program (same instructions, same labels); this is enforced by
property tests.  The parser exists so kernels and experiments can be
stored, diffed and hand-edited as plain text.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..isa import Instruction, OpKind, Opcode, Operand, parse_register
from .assembler import assemble
from .errors import AssemblerError
from .program import Program


class ParseError(AssemblerError):
    """Raised for malformed assembly text."""

    def __init__(self, line_number: int, line: str, message: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.line_number = line_number


def parse_program(text: str, name: Optional[str] = None) -> Program:
    """Parse an assembly listing into a :class:`Program`.

    Args:
        text: the listing (see module docstring for the format).
        name: program name; defaults to a ``; program <name>`` header
            comment if present, else ``"parsed"``.
    """
    items: List[Union[Instruction, str]] = []
    inferred_name = None

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        comment = raw.split(";", 1)[1].strip() if ";" in raw else ""
        if not line:
            if comment.startswith("program ") and inferred_name is None:
                inferred_name = comment.split()[1]
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label or any(ch.isspace() for ch in label):
                raise ParseError(line_number, raw, "malformed label")
            items.append(label)
            continue
        items.append(_parse_instruction(line, comment, line_number, raw))

    if not items:
        raise AssemblerError("no instructions in assembly text")
    return assemble(name or inferred_name or "parsed", items)


def _parse_instruction(
    line: str, comment: str, line_number: int, raw: str
) -> Instruction:
    head, _, rest = line.partition(" ")
    try:
        opcode = Opcode(head.upper())
    except ValueError:
        raise ParseError(line_number, raw, f"unknown opcode {head!r}") from None

    operand_texts = [t.strip() for t in rest.split(",")] if rest.strip() else []
    operand_texts = [t for t in operand_texts if t]

    info = opcode.info
    expected = info.n_srcs
    if opcode.writes_register:
        expected += 1
    if opcode.is_branch:
        expected += 1  # the target label
    if len(operand_texts) != expected:
        raise ParseError(
            line_number,
            raw,
            f"{opcode.value} expects {expected} operand(s), "
            f"got {len(operand_texts)}",
        )

    target: Optional[str] = None
    if opcode.is_branch:
        target = operand_texts.pop()

    dest = None
    if opcode.writes_register:
        dest = _parse_reg_operand(operand_texts.pop(0), line_number, raw)

    srcs = tuple(
        _parse_operand(text, line_number, raw) for text in operand_texts
    )
    try:
        return Instruction(opcode, dest, srcs, target=target, comment=comment)
    except Exception as exc:
        raise ParseError(line_number, raw, str(exc)) from exc


def _parse_reg_operand(text: str, line_number: int, raw: str):
    try:
        return parse_register(text)
    except ValueError as exc:
        raise ParseError(line_number, raw, str(exc)) from exc


def _parse_operand(text: str, line_number: int, raw: str) -> Operand:
    try:
        return parse_register(text)
    except ValueError:
        pass
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ParseError(
            line_number, raw, f"cannot parse operand {text!r}"
        ) from None
