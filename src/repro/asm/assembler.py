"""Two-pass assembler: label resolution and structural validation.

The assembler turns the builder's item stream (instructions interleaved
with label markers) into an immutable :class:`~repro.asm.program.Program`.
Operand-level validation already happened when each
:class:`~repro.isa.Instruction` was constructed; this layer checks the
program-level properties:

* labels are unique,
* every branch targets a defined label,
* the program is non-empty.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Union

from ..isa import Instruction
from .errors import AssemblerError
from .program import Program


def assemble(name: str, items: Iterable[Union[Instruction, str]]) -> Program:
    """Assemble *items* (instructions and label strings) into a program.

    Labels bind to the next instruction; a trailing label binds to program
    end (index ``len(instructions)``), which is a valid forward-exit target.

    Raises:
        AssemblerError: on duplicate labels, undefined branch targets or an
            empty program.
    """
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}

    for item in items:
        if isinstance(item, Instruction):
            instructions.append(item)
        elif isinstance(item, str):
            if not item or not item.strip():
                raise AssemblerError("empty label name")
            if item in labels:
                raise AssemblerError(f"duplicate label {item!r}")
            labels[item] = len(instructions)
        else:
            raise AssemblerError(
                f"program items must be Instructions or label strings, "
                f"got {item!r}"
            )

    if not instructions:
        raise AssemblerError(f"program {name!r} has no instructions")

    for instr in instructions:
        if instr.is_branch and instr.target not in labels:
            raise AssemblerError(
                f"branch {instr} targets undefined label {instr.target!r}"
            )

    return Program(name=name, instructions=tuple(instructions), labels=labels)
