"""Loop unrolling (a compiler transformation the paper points at).

Section 4 of the paper: "the pseudo-dataflow limit is also dependent on
compiler optimizations.  For example, loop unrolling will in some cases
shorten the critical path because some of the program's branches are
removed."  This module makes that experiment possible: it unrolls a
counted loop by a factor *k*, replicating the body (including its index
updates and the counter decrement) and keeping a single loop-closing
branch, which removes k-1 of every k branch resolutions from the dynamic
stream.

The transformation is sound -- it preserves semantics exactly -- provided

* the loop body is a single basic block: one backward conditional branch
  at the bottom, no other branches into or out of the body, and no other
  label targets inside it;
* the dynamic trip count is a multiple of *k* (checked at run time by the
  usual kernel verification, and statically impossible to guarantee here;
  :func:`unroll_loop` only checks the structural conditions).

Combined with the list scheduler the unrolled body also exposes more
independent work to an issue-blocking machine, just as a real unrolling
compiler would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa import Instruction
from .errors import AssemblerError
from .program import Program


class UnrollError(AssemblerError):
    """The requested loop cannot be unrolled soundly."""


@dataclass(frozen=True)
class CountedLoop:
    """A structurally unrollable loop.

    Attributes:
        label: the loop's target label.
        start: index of the first body instruction.
        end: index one past the loop-closing branch.
    """

    label: str
    start: int
    end: int

    @property
    def body_length(self) -> int:
        """Body instructions excluding the closing branch."""
        return self.end - 1 - self.start


def find_counted_loops(program: Program) -> List[CountedLoop]:
    """All structurally unrollable loops in *program*.

    A candidate is a backward conditional branch whose target label starts
    its own body, with no other branch or label crossing the body.
    """
    loops: List[CountedLoop] = []
    label_positions = set(program.labels.values())

    for index, instr in enumerate(program.instructions):
        if not instr.is_conditional_branch or instr.target is None:
            continue
        start = program.labels[instr.target]
        if start > index:
            continue  # forward branch
        end = index + 1
        if not _body_is_clean(program, start, index, label_positions):
            continue
        loops.append(CountedLoop(label=instr.target, start=start, end=end))
    return loops


def _body_is_clean(program, start, branch_index, label_positions) -> bool:
    """No other branches in the body, no labels strictly inside it."""
    for i in range(start, branch_index):
        if program.instructions[i].is_branch:
            return False
    for position in label_positions:
        if start < position <= branch_index:
            return False
    # Nothing elsewhere may branch into the body's label-free interior --
    # guaranteed because interior positions carry no labels at all.
    return True


def unroll_loop(program: Program, loop: CountedLoop, factor: int) -> Program:
    """Unroll *loop* by *factor* (2 means "body appears twice per branch").

    The body (including index updates and the counter decrement) is
    replicated; only the final copy keeps the loop-closing branch.  The
    caller is responsible for the trip count being a multiple of
    *factor* -- otherwise the loop exits late, which kernel verification
    will catch.
    """
    if factor < 1:
        raise UnrollError(f"unroll factor must be >= 1, got {factor}")
    if factor == 1:
        return program
    if loop.body_length < 1:
        raise UnrollError(f"loop {loop.label!r} has an empty body")

    body = list(program.instructions[loop.start : loop.end - 1])
    branch = program.instructions[loop.end - 1]

    new_instructions: List[Instruction] = []
    new_instructions.extend(program.instructions[: loop.start])
    for _ in range(factor):
        new_instructions.extend(body)
    new_instructions.append(branch)
    new_instructions.extend(program.instructions[loop.end :])

    growth = (factor - 1) * len(body)
    new_labels: Dict[str, int] = {}
    for label, position in program.labels.items():
        # Labels at or before the loop head keep their place; labels at or
        # beyond the loop end shift by the inserted copies.  (_body_is_clean
        # guarantees nothing points strictly inside.)
        if position <= loop.start:
            new_labels[label] = position
        else:
            new_labels[label] = position + growth

    return Program(
        name=f"{program.name}-unroll{factor}",
        instructions=tuple(new_instructions),
        labels=new_labels,
    )


def unroll_innermost(program: Program, factor: int) -> Program:
    """Unroll every structurally unrollable loop of *program* by *factor*.

    For the single-loop kernels this is "the" loop; for nested kernels
    each clean innermost loop is unrolled independently.  Raises
    :class:`UnrollError` if the program has no unrollable loop.
    """
    loops = find_counted_loops(program)
    if not loops:
        raise UnrollError(f"program {program.name!r} has no unrollable loop")
    # Apply back-to-front so earlier indices stay valid.
    result = program
    for loop in sorted(loops, key=lambda l: -l.start):
        # Recompute positions against the current program state.
        current = [
            l for l in find_counted_loops(result) if l.label == loop.label
        ]
        if not current:
            continue
        result = unroll_loop(result, current[0], factor)
    return Program(
        name=f"{program.name}-unroll{factor}",
        instructions=result.instructions,
        labels=result.labels,
    )
