"""Basic-block instruction scheduling (a compiler pass).

The paper's traces come from CFT-compiled code, and CFT performed local
instruction scheduling: loads are hoisted away from their uses, long-latency
operations start early, and the loop-closing branch's condition is computed
as early as possible.  An issue-blocking machine is very sensitive to this
ordering, so the reproduction provides the same pass: a classic
latency-weighted list scheduler over basic blocks.

The pass is semantics-preserving by construction -- it only reorders within
a basic block and respects every register and memory dependence -- and the
kernel verification machinery re-checks every scheduled kernel against its
NumPy reference anyway.

Memory disambiguation is static and conservative: two memory references
are independent only when they provably touch different addresses (same
base register, untouched between them, with different displacements).
Everything else keeps program order.

Use :func:`schedule_program`; kernels are scheduled by default
(``build_kernel(..., schedule=False)`` gives the naive encoding, which the
benchmarks use as a code-quality ablation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa import Instruction, LatencyTable, OpKind, Register, latency_table
from .program import Program

#: Latency table used for scheduling priorities.  Scheduling happens at
#: compile time, before the machine variant is known; like a real compiler
#: we schedule for the slow-memory machine (the conservative choice).
_PRIORITY_LATENCIES: LatencyTable = latency_table(11, 5)


def schedule_program(program: Program) -> Program:
    """Return *program* with each basic block list-scheduled.

    Labels, block boundaries and branch positions are preserved; only the
    order of instructions strictly inside each block changes.
    """
    blocks = split_basic_blocks(program)
    scheduled: List[Instruction] = []
    new_labels: Dict[str, int] = {}
    # Labels may point at block starts or program end; rebuild them from
    # the original label table, which can only reference block boundaries.
    boundary_to_new_index: Dict[int, int] = {}

    position = 0
    for start, end in blocks:
        boundary_to_new_index[start] = position
        block = list(program.instructions[start:end])
        scheduled.extend(_schedule_block(block))
        position += len(block)
    boundary_to_new_index[len(program)] = position

    for label, index in program.labels.items():
        new_labels[label] = boundary_to_new_index[index]

    return Program(
        name=program.name,
        instructions=tuple(scheduled),
        labels=new_labels,
    )


def split_basic_blocks(program: Program) -> List[Tuple[int, int]]:
    """Half-open (start, end) index ranges of the program's basic blocks.

    Leaders are: instruction 0, every label target, and every instruction
    following a branch.
    """
    n = len(program)
    leaders: Set[int] = {0}
    for index in program.labels.values():
        if index < n:
            leaders.add(index)
    for index, instr in enumerate(program.instructions):
        if instr.is_branch and index + 1 < n:
            leaders.add(index + 1)
    ordered = sorted(leaders)
    blocks = []
    for i, start in enumerate(ordered):
        end = ordered[i + 1] if i + 1 < len(ordered) else n
        blocks.append((start, end))
    return blocks


# ----------------------------------------------------------------------
# dependence analysis within one block
# ----------------------------------------------------------------------


def _writes_memory(instr: Instruction) -> bool:
    """True for memory-port instructions that modify memory."""
    return instr.accesses_memory and instr.opcode.kind not in (
        OpKind.LOAD,
        OpKind.VECTOR_LOAD,
    )


def _memory_key(instr: Instruction) -> Optional[Tuple[Register, int]]:
    """(base register, displacement) of a memory reference, if static."""
    if instr.is_load:
        base, disp = instr.srcs
        return (base, int(disp))
    if instr.is_store:
        _, base, disp = instr.srcs
        return (base, int(disp))
    return None


def _may_alias(
    a: Instruction,
    b: Instruction,
    base_written_between: bool,
) -> bool:
    """Conservative alias test between two memory references."""
    key_a = _memory_key(a)
    key_b = _memory_key(b)
    if key_a is None or key_b is None:  # pragma: no cover - callers filter
        return True
    base_a, disp_a = key_a
    base_b, disp_b = key_b
    if base_a != base_b or base_written_between:
        return True  # different bases: unknown relation
    return disp_a == disp_b


def _build_dependences(block: Sequence[Instruction]) -> List[Set[int]]:
    """``deps[j]`` = indices *i < j* that must execute before *j*."""
    n = len(block)
    deps: List[Set[int]] = [set() for _ in range(n)]

    for j in range(1, n):
        instr_j = block[j]
        srcs_j = set(instr_j.source_registers)
        dest_j = instr_j.dest
        key_j = _memory_key(instr_j)
        writes_mem_j = _writes_memory(instr_j)
        base_writes: Set[Register] = set()

        for i in range(j - 1, -1, -1):
            instr_i = block[i]
            dest_i = instr_i.dest
            # Register dependences.
            if dest_i is not None and dest_i in srcs_j:
                deps[j].add(i)  # RAW
            if dest_j is not None and dest_i == dest_j:
                deps[j].add(i)  # WAW
            if dest_j is not None and dest_j in instr_i.source_registers:
                deps[j].add(i)  # WAR
            # Memory dependences (load/load pairs commute).
            if instr_j.accesses_memory and instr_i.accesses_memory:
                writes_mem_i = _writes_memory(instr_i)
                if writes_mem_i or writes_mem_j:
                    key_i = _memory_key(instr_i)
                    if key_i is None or key_j is None:
                        # Vector or otherwise non-static reference:
                        # keep program order conservatively.
                        deps[j].add(i)
                    else:
                        base_j = key_j[0]
                        written = base_j in base_writes
                        if _may_alias(instr_i, instr_j, written):
                            deps[j].add(i)
            if dest_i is not None:
                base_writes.add(dest_i)
        # A branch ends the block and must stay last.
        if instr_j.is_branch:
            deps[j].update(range(j))
    return deps


def _schedule_block(block: List[Instruction]) -> List[Instruction]:
    """Latency-weighted list scheduling of one basic block."""
    n = len(block)
    if n <= 2:
        return block

    deps = _build_dependences(block)
    succs: List[Set[int]] = [set() for _ in range(n)]
    indegree = [0] * n
    for j, dep_set in enumerate(deps):
        indegree[j] = len(dep_set)
        for i in dep_set:
            succs[i].add(j)

    # Priority: height = latency-weighted longest path to the block end.
    height = [0] * n
    for i in range(n - 1, -1, -1):
        latency = block[i].latency(_PRIORITY_LATENCIES)
        tail = max((height[j] for j in succs[i]), default=0)
        height[i] = latency + tail

    ready = [i for i in range(n) if indegree[i] == 0]
    order: List[int] = []
    while ready:
        # Highest height first; program order breaks ties (stability).
        ready.sort(key=lambda i: (-height[i], i))
        chosen = ready.pop(0)
        order.append(chosen)
        for j in succs[chosen]:
            indegree[j] -= 1
            if indegree[j] == 0:
                ready.append(j)

    assert len(order) == n, "scheduler dropped instructions"
    return [block[i] for i in order]
