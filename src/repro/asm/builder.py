"""A small embedded DSL for writing CRAY-like assembly programs.

Kernels are written against :class:`ProgramBuilder`, which has one lowercase
method per opcode plus labels::

    b = ProgramBuilder("first-sum")
    b.ai(A(1), 0, comment="element index")
    b.label("loop")
    b.loads(S(1), A(1), Y_BASE)
    b.fadd(S(2), S(2), S(1))
    b.stores(S(2), A(1), X_BASE)
    b.aadd(A(1), A(1), 1)
    b.asub(A(0), A(0), 1)
    b.jan("loop")
    program = b.build()

``build()`` runs the assembler, which checks label integrity and produces an
immutable :class:`~repro.asm.program.Program`.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..isa import A0, Instruction, Opcode, Operand, Register
from .assembler import assemble
from .program import Program

#: An item recorded by the builder: either an instruction or a label marker.
_LabelMarker = str


class ProgramBuilder:
    """Incrementally builds a :class:`Program`.

    The builder records instructions and label positions in order; labels
    bind to the next instruction appended (or to program end).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._items: List[Union[Instruction, _LabelMarker]] = []

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def label(self, name: str) -> "ProgramBuilder":
        """Bind *name* to the position of the next instruction."""
        self._items.append(name)
        return self

    def emit(self, instr: Instruction) -> "ProgramBuilder":
        """Append an already-constructed instruction."""
        self._items.append(instr)
        return self

    def build(self) -> Program:
        """Assemble the recorded items into an immutable program."""
        return assemble(self.name, self._items)

    def __len__(self) -> int:
        return sum(1 for item in self._items if isinstance(item, Instruction))

    # ------------------------------------------------------------------
    # immediates and moves
    # ------------------------------------------------------------------
    def ai(self, dest: Register, value: int, comment: str = "") -> "ProgramBuilder":
        """``A[dest] <- value`` (integer immediate)."""
        return self._op(Opcode.AI, dest, (value,), comment=comment)

    def si(self, dest: Register, value: Union[int, float], comment: str = "") -> "ProgramBuilder":
        """``S[dest] <- value`` (numeric immediate; ints stay exact)."""
        return self._op(Opcode.SI, dest, (value,), comment=comment)

    def amove(self, dest: Register, src: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.AMOVE, dest, (src,), comment=comment)

    def smove(self, dest: Register, src: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.SMOVE, dest, (src,), comment=comment)

    def ats(self, dest: Register, src: Register, comment: str = "") -> "ProgramBuilder":
        """``S[dest] <- A[src]`` (transmit address value to scalar file)."""
        return self._op(Opcode.ATS, dest, (src,), comment=comment)

    def sta(self, dest: Register, src: Register, comment: str = "") -> "ProgramBuilder":
        """``A[dest] <- S[src]`` (transmit scalar value to address file)."""
        return self._op(Opcode.STA, dest, (src,), comment=comment)

    def fix(self, dest: Register, src: Register, comment: str = "") -> "ProgramBuilder":
        """``A[dest] <- trunc(S[src])``."""
        return self._op(Opcode.FIX, dest, (src,), comment=comment)

    def float_(self, dest: Register, src: Register, comment: str = "") -> "ProgramBuilder":
        """``S[dest] <- float(A[src])``."""
        return self._op(Opcode.FLOAT, dest, (src,), comment=comment)

    # ------------------------------------------------------------------
    # address arithmetic
    # ------------------------------------------------------------------
    def aadd(self, dest: Register, a: Operand, b: Operand, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.AADD, dest, (a, b), comment=comment)

    def asub(self, dest: Register, a: Operand, b: Operand, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.ASUB, dest, (a, b), comment=comment)

    def amul(self, dest: Register, a: Operand, b: Operand, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.AMUL, dest, (a, b), comment=comment)

    # ------------------------------------------------------------------
    # scalar integer / logical / shift
    # ------------------------------------------------------------------
    def sadd(self, dest: Register, a: Register, b: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.SADD, dest, (a, b), comment=comment)

    def ssub(self, dest: Register, a: Register, b: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.SSUB, dest, (a, b), comment=comment)

    def sand(self, dest: Register, a: Register, b: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.SAND, dest, (a, b), comment=comment)

    def sor(self, dest: Register, a: Register, b: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.SOR, dest, (a, b), comment=comment)

    def sxor(self, dest: Register, a: Register, b: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.SXOR, dest, (a, b), comment=comment)

    def sshl(self, dest: Register, a: Register, count: Union[Register, int], comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.SSHL, dest, (a, count), comment=comment)

    def sshr(self, dest: Register, a: Register, count: Union[Register, int], comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.SSHR, dest, (a, count), comment=comment)

    # ------------------------------------------------------------------
    # floating point
    # ------------------------------------------------------------------
    def fadd(self, dest: Register, a: Register, b: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.FADD, dest, (a, b), comment=comment)

    def fsub(self, dest: Register, a: Register, b: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.FSUB, dest, (a, b), comment=comment)

    def fmul(self, dest: Register, a: Register, b: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.FMUL, dest, (a, b), comment=comment)

    def frecip(self, dest: Register, a: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.FRECIP, dest, (a,), comment=comment)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def loads(self, dest: Register, base: Register, disp: int = 0, comment: str = "") -> "ProgramBuilder":
        """``S[dest] <- mem[A[base] + disp]``."""
        return self._op(Opcode.LOADS, dest, (base, disp), comment=comment)

    def loada(self, dest: Register, base: Register, disp: int = 0, comment: str = "") -> "ProgramBuilder":
        """``A[dest] <- mem[A[base] + disp]`` (value truncated to int)."""
        return self._op(Opcode.LOADA, dest, (base, disp), comment=comment)

    def stores(self, src: Register, base: Register, disp: int = 0, comment: str = "") -> "ProgramBuilder":
        """``mem[A[base] + disp] <- S[src]``."""
        return self._op(Opcode.STORES, None, (src, base, disp), comment=comment)

    def storea(self, src: Register, base: Register, disp: int = 0, comment: str = "") -> "ProgramBuilder":
        """``mem[A[base] + disp] <- A[src]``."""
        return self._op(Opcode.STOREA, None, (src, base, disp), comment=comment)

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def jaz(self, target: str, comment: str = "") -> "ProgramBuilder":
        """Branch to *target* if A0 == 0."""
        return self._branch(Opcode.JAZ, target, comment)

    def jan(self, target: str, comment: str = "") -> "ProgramBuilder":
        """Branch to *target* if A0 != 0."""
        return self._branch(Opcode.JAN, target, comment)

    def jap(self, target: str, comment: str = "") -> "ProgramBuilder":
        """Branch to *target* if A0 >= 0."""
        return self._branch(Opcode.JAP, target, comment)

    def jam(self, target: str, comment: str = "") -> "ProgramBuilder":
        """Branch to *target* if A0 < 0."""
        return self._branch(Opcode.JAM, target, comment)

    # ------------------------------------------------------------------
    # vector unit (extension)
    # ------------------------------------------------------------------
    def vsetl(self, length: Union[Register, int], comment: str = "") -> "ProgramBuilder":
        """``L0 <- length`` (elements per vector operation, <= 64)."""
        from ..isa import VL

        return self._op(Opcode.VSETL, VL, (length,), comment=comment)

    def vload(self, dest: Register, base: Register, stride: Union[Register, int] = 1, comment: str = "") -> "ProgramBuilder":
        """``V[dest][i] <- mem[A[base] + i*stride]`` for i < VL."""
        return self._op(Opcode.VLOAD, dest, (base, stride), comment=comment)

    def vstore(self, src: Register, base: Register, stride: Union[Register, int] = 1, comment: str = "") -> "ProgramBuilder":
        """``mem[A[base] + i*stride] <- V[src][i]`` for i < VL."""
        return self._op(Opcode.VSTORE, None, (src, base, stride), comment=comment)

    def vvadd(self, dest: Register, a: Register, b: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.VVADD, dest, (a, b), comment=comment)

    def vvsub(self, dest: Register, a: Register, b: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.VVSUB, dest, (a, b), comment=comment)

    def vvmul(self, dest: Register, a: Register, b: Register, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.VVMUL, dest, (a, b), comment=comment)

    def vsadd(self, dest: Register, scalar: Register, vector: Register, comment: str = "") -> "ProgramBuilder":
        """``V[dest] <- S[scalar] + V[vector]`` elementwise."""
        return self._op(Opcode.VSADD, dest, (scalar, vector), comment=comment)

    def vsmul(self, dest: Register, scalar: Register, vector: Register, comment: str = "") -> "ProgramBuilder":
        """``V[dest] <- S[scalar] * V[vector]`` elementwise."""
        return self._op(Opcode.VSMUL, dest, (scalar, vector), comment=comment)

    def jmp(self, target: str, comment: str = "") -> "ProgramBuilder":
        """Unconditional branch to *target*."""
        instr = Instruction(Opcode.JMP, None, (), target=target, comment=comment)
        self._items.append(instr)
        return self

    def pass_(self, comment: str = "") -> "ProgramBuilder":
        return self._op(Opcode.PASS, None, (), comment=comment)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _op(
        self,
        opcode: Opcode,
        dest: Optional[Register],
        srcs: tuple,
        comment: str = "",
    ) -> "ProgramBuilder":
        self._items.append(Instruction(opcode, dest, srcs, comment=comment))
        return self

    def _branch(self, opcode: Opcode, target: str, comment: str) -> "ProgramBuilder":
        instr = Instruction(opcode, None, (A0,), target=target, comment=comment)
        self._items.append(instr)
        return self
