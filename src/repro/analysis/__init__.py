"""Schedule analysis: stall attribution, pipeline timelines, critical paths."""

from .critical import CriticalPath, critical_path
from .stalls import StallBreakdown, stall_breakdown
from .timeline import record_schedule, render_timeline

__all__ = [
    "CriticalPath",
    "StallBreakdown",
    "critical_path",
    "record_schedule",
    "render_timeline",
    "stall_breakdown",
]
