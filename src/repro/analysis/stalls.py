"""Stall attribution: where do the issue cycles go?

For an issue-blocking machine every cycle in which no instruction issues
is attributable to exactly one binding constraint (the one that set the
blocked instruction's issue time): a RAW or WAW register hazard, a busy
functional unit, a result-bus conflict, or an unresolved branch.  This
module aggregates those attributions into a breakdown -- the
quantitative version of the paper's Section 6 discussion of what limits
each organisation.

Two resolutions are available:

* ``"auto"`` (default) reads the aggregate :class:`~repro.obs.telemetry.
  SimTelemetry` record the compiled fast loops attach to every result --
  one plain ``simulate`` call, no event stream, fast-path speed.  When
  the machine has no fast loop (or telemetry collection is disabled) it
  falls back to events transparently.
* ``"events"`` replays through the typed event stream
  (:mod:`repro.obs.events`, adapted into per-instruction
  :class:`repro.core.scoreboard.IssueRecord`\\ s) and keeps the full
  per-instruction schedule in :attr:`StallBreakdown.records`.  Ask for
  it explicitly when you need per-cycle resolution (e.g. to feed
  :func:`repro.analysis.timeline.render_timeline`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.config import MachineConfig
from ..core.scoreboard import (
    EventRecorder,
    IssueRecord,
    ScoreboardMachine,
    StallReason,
    cray_like_machine,
)
from ..obs.telemetry import SimTelemetry
from ..trace import Trace

_RESOLUTIONS = ("auto", "telemetry", "events")


@dataclass(frozen=True)
class StallBreakdown:
    """Aggregated stall attribution for one trace on one machine.

    Attributes:
        trace_name: the analysed benchmark.
        machine: simulator name.
        config: machine variant.
        total_cycles: total execution cycles.
        issue_cycles: cycles in which an instruction issued.
        stalled_by: idle issue cycles attributed to each reason.
        records: the per-instruction schedule (in trace order); empty
            when the breakdown came from aggregate telemetry rather
            than an event replay.
    """

    trace_name: str
    machine: str
    config: MachineConfig
    total_cycles: int
    issue_cycles: int
    stalled_by: Dict[StallReason, int]
    records: List[IssueRecord] = field(repr=False, default_factory=list)

    @property
    def stall_cycles(self) -> int:
        return sum(self.stalled_by.values())

    def fraction(self, reason: StallReason) -> float:
        """Share of total cycles lost to *reason*."""
        return self.stalled_by.get(reason, 0) / self.total_cycles

    def render(self) -> str:
        """Human-readable breakdown."""
        lines = [
            f"{self.trace_name} on {self.machine} [{self.config.name}]: "
            f"{self.issue_cycles} issue cycles / {self.total_cycles} total"
        ]
        for reason in StallReason:
            cycles = self.stalled_by.get(reason, 0)
            if reason is StallReason.NONE or cycles == 0:
                continue
            lines.append(
                f"  {reason.value:<38} {cycles:>7} cycles "
                f"({cycles / self.total_cycles:.1%})"
            )
        return "\n".join(lines)


def _breakdown_from_telemetry(
    trace: Trace,
    config: MachineConfig,
    machine: ScoreboardMachine,
) -> Optional[StallBreakdown]:
    """Telemetry-resolution breakdown, or None when unavailable."""
    result = machine.simulate(trace, config)
    telemetry = SimTelemetry.from_detail(result.detail)
    if telemetry is None:
        return None
    if not all(
        name in StallReason.__members__ for name in telemetry.stall_cycles
    ):
        return None
    return StallBreakdown(
        trace_name=trace.name,
        machine=machine.name,
        config=config,
        total_cycles=result.cycles,
        issue_cycles=sum(telemetry.issue_width.values()),
        stalled_by={
            StallReason[name]: cycles
            for name, cycles in telemetry.stall_cycles.items()
        },
        records=[],
    )


def stall_breakdown(
    trace: Trace,
    config: MachineConfig,
    machine: Optional[ScoreboardMachine] = None,
    *,
    resolution: str = "auto",
) -> StallBreakdown:
    """Attribute every idle issue cycle of *trace* on *machine*.

    Args:
        trace: the dynamic trace to analyse.
        config: memory/branch variant.
        machine: any :class:`ScoreboardMachine`; defaults to CRAY-like.
        resolution: ``"auto"`` prefers the fast-path telemetry record
            (no per-instruction records) and falls back to an event
            replay; ``"telemetry"`` requires telemetry and raises when
            it is unavailable; ``"events"`` always replays and keeps
            :attr:`StallBreakdown.records`.
    """
    if resolution not in _RESOLUTIONS:
        raise ValueError(
            f"unknown resolution {resolution!r}; expected one of "
            f"{_RESOLUTIONS}"
        )
    machine = machine or cray_like_machine()

    if resolution in ("auto", "telemetry"):
        breakdown = _breakdown_from_telemetry(trace, config, machine)
        if breakdown is not None:
            return breakdown
        if resolution == "telemetry":
            raise ValueError(
                f"{machine.name} produced no telemetry for "
                f"{trace.name} [{config.name}]; use resolution='events'"
            )

    records: List[IssueRecord] = []
    result = machine.simulate_observed(
        trace, config, EventRecorder(records.append)
    )

    stalled: Dict[StallReason, int] = {}
    for record in records:
        if record.stall_cycles:
            stalled[record.stall] = (
                stalled.get(record.stall, 0) + record.stall_cycles
            )

    return StallBreakdown(
        trace_name=trace.name,
        machine=machine.name,
        config=config,
        total_cycles=result.cycles,
        issue_cycles=len(records),
        stalled_by=stalled,
        records=records,
    )
