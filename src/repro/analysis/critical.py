"""Critical-path extraction from the pseudo-dataflow schedule.

The dataflow limit of Section 4 is a critical-path length; this module
surfaces *which* instructions form that path (the chain of producers and
branch resolutions that no machine can compress), along with a summary of
what the path is made of -- the actionable form of "the encoding's
critical path", since the paper notes the limit "is a property of the
encoding of the benchmark program".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Tuple

from ..core.config import MachineConfig
from ..isa import FunctionalUnit
from ..limits.dataflow import pseudo_dataflow_schedule
from ..trace import Trace


@dataclass(frozen=True)
class CriticalPath:
    """The dataflow critical path of one trace.

    Attributes:
        trace_name: the analysed benchmark.
        makespan: critical-path length in cycles.
        indices: dynamic instruction indices on the path, in order.
        unit_cycles: cycles the path spends in each functional unit.
    """

    trace_name: str
    makespan: int
    indices: Tuple[int, ...]
    unit_cycles: Counter

    @property
    def length(self) -> int:
        return len(self.indices)

    def dominant_unit(self) -> FunctionalUnit:
        """The unit contributing most cycles to the path."""
        return self.unit_cycles.most_common(1)[0][0]

    def render(self, trace: Trace, limit: int = 12) -> str:
        """Human-readable path summary (first *limit* hops)."""
        lines = [
            f"critical path of {self.trace_name}: {self.length} instructions "
            f"/ {self.makespan} cycles"
        ]
        for unit, cycles in self.unit_cycles.most_common():
            lines.append(
                f"  {unit.value:<26} {cycles:>6} cycles "
                f"({cycles / self.makespan:.0%})"
            )
        lines.append("  first hops:")
        for index in self.indices[:limit]:
            lines.append(f"    [{index:>5}] {trace[index].instruction}")
        if self.length > limit:
            lines.append(f"    ... {self.length - limit} more")
        return "\n".join(lines)


def critical_path(
    trace: Trace,
    config: MachineConfig,
    *,
    serial_waw: bool = False,
) -> CriticalPath:
    """Extract the pseudo-dataflow critical path of *trace*."""
    schedule = pseudo_dataflow_schedule(
        trace, config, serial_waw=serial_waw, detail=True
    )
    indices = schedule.critical_path()

    latencies = config.latencies
    unit_cycles: Counter = Counter()
    for index in indices:
        instr = trace[index].instruction
        unit_cycles[instr.unit] += instr.latency(latencies)

    return CriticalPath(
        trace_name=trace.name,
        makespan=schedule.makespan,
        indices=indices,
        unit_cycles=unit_cycles,
    )
