"""Text pipeline timelines (Gantt diagrams) for issue schedules.

Renders a window of a recorded schedule as the classic pipeline diagram:
one row per instruction, one column per cycle, ``I`` at issue, ``=``
while the operation is in a functional unit, ``*`` at completion.
Useful for eyeballing exactly why a loop body stalls.

Timelines inherently need per-cycle, per-instruction resolution, so
this module always replays through the typed event stream -- the
aggregate :mod:`repro.obs.telemetry` record that serves
:func:`repro.analysis.stalls.stall_breakdown` cannot reconstruct a
schedule.  That makes :func:`record_schedule` the deliberate "events
only when per-cycle resolution is explicitly requested" path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.config import MachineConfig
from ..core.scoreboard import (
    EventRecorder,
    IssueRecord,
    ScoreboardMachine,
    cray_like_machine,
)
from ..trace import Trace


def record_schedule(
    trace: Trace,
    config: MachineConfig,
    machine: Optional[ScoreboardMachine] = None,
) -> List[IssueRecord]:
    """Per-instruction issue records for *trace* on *machine*.

    Derived from the machine's typed event stream
    (:mod:`repro.obs.events`) via :class:`~repro.core.scoreboard.EventRecorder`.
    """
    machine = machine or cray_like_machine()
    records: List[IssueRecord] = []
    machine.simulate_observed(trace, config, EventRecorder(records.append))
    return records


def render_timeline(
    trace: Trace,
    records: Sequence[IssueRecord],
    *,
    first: int = 0,
    count: int = 20,
    max_width: int = 100,
) -> str:
    """Render instructions ``[first, first+count)`` as a pipeline diagram.

    Args:
        trace: the trace the records came from (for disassembly).
        records: schedule records from :func:`record_schedule`.
        first: first dynamic instruction to show.
        count: how many instructions to show.
        max_width: clip the cycle axis to this many columns.
    """
    window = records[first : first + count]
    if not window:
        raise ValueError(f"empty window [{first}, {first + count})")

    origin = min(r.issue for r in window)
    span = max(r.complete for r in window) - origin + 1
    span = min(span, max_width)

    header_label = f"cycle {origin} +"
    lines = [f"{'':<36}{header_label}"]
    axis = "".join(str((origin + c) % 10) for c in range(span))
    lines.append(f"{'':<36}{axis}")

    for record in window:
        instr = trace[record.seq].instruction
        label = f"{record.seq:>5}  {str(instr).split(';')[0].strip():<27}"
        row = [" "] * span
        issue_col = record.issue - origin
        if 0 <= issue_col < span:
            row[issue_col] = "I"
        for cycle in range(record.issue + 1, record.complete):
            col = cycle - origin
            if 0 <= col < span:
                row[col] = "="
        done_col = record.complete - origin
        if 0 <= done_col < span:
            row[done_col] = "*"
        lines.append(f"{label[:35]:<36}{''.join(row)}")
    return "\n".join(lines)
