"""Differential verification: fuzzing, invariants, and a machine oracle.

The paper's argument is a web of *ordering claims* between issue methods
(dataflow bound >= RUU >= Tomasulo >= scoreboard >= in-order, RUU
performance monotone in RUU size).  This package enforces those claims
mechanically, on randomly generated traces, so a silently-wrong machine
model is caught before it corrupts a table:

* :mod:`repro.verify.fuzz` -- seeded generator of random-but-well-formed
  scalar traces (stdlib :mod:`random` only);
* :mod:`repro.verify.invariants` -- per-cycle checks over the
  :mod:`repro.obs.events` stream (no new code in simulator hot paths);
* :mod:`repro.verify.oracle` -- cross-machine differential oracle: the
  partial order of cycle counts plus the dataflow/resource limit bounds;
* :mod:`repro.verify.shrink` -- delta-debugging minimiser for failing
  traces;
* :mod:`repro.verify.runner` -- the ``repro verify`` driver tying the
  layers together.
"""

from .fuzz import FuzzSpec, fuzz_trace, kernel_calibrated_spec
from .invariants import (
    InvariantViolation,
    MachineProfile,
    check_invariants,
    profile_for_spec,
)
from .oracle import (
    DEFAULT_EDGES,
    DEFAULT_ORACLE_MACHINES,
    OracleReport,
    OracleViolation,
    OrderingEdge,
    run_oracle,
)
from .runner import VerifyFailure, VerifyOptions, VerifyReport, run_verification
from .shrink import shrink_trace

__all__ = [
    "DEFAULT_EDGES",
    "DEFAULT_ORACLE_MACHINES",
    "FuzzSpec",
    "InvariantViolation",
    "MachineProfile",
    "OracleReport",
    "OracleViolation",
    "OrderingEdge",
    "VerifyFailure",
    "VerifyOptions",
    "VerifyReport",
    "check_invariants",
    "fuzz_trace",
    "kernel_calibrated_spec",
    "profile_for_spec",
    "run_oracle",
    "run_verification",
    "shrink_trace",
]
