"""Seeded trace fuzzer: random-but-well-formed scalar instruction traces.

Every trace the fuzzer emits satisfies the full ISA operand discipline
(:mod:`repro.isa.instructions` validates each instruction on construction)
and the trace-record discipline (:mod:`repro.trace.record` validates
branch outcomes, addresses and sequence numbers), so any machine that
chokes on a fuzzed trace has a real bug, not a malformed input.

The generator is deterministic: ``fuzz_trace(seed, spec)`` always returns
the same trace for the same ``(seed, spec)`` pair, using only the stdlib
:class:`random.Random` -- no new dependencies.

Knobs (:class:`FuzzSpec`):

* ``length`` -- dynamic instruction count;
* ``dependency_density`` -- probability a source operand reuses a
  recently written register (high density -> long dependence chains,
  low -> wide independent dataflow);
* ``memory_fraction`` / ``branch_fraction`` -- instruction mix;
* ``float_fraction`` -- share of compute on the scalar/FP pipes vs the
  address (integer) pipes;
* ``taken_fraction`` / ``backward_fraction`` -- branch behaviour.

Memory and branch *latencies* are properties of the
:class:`~repro.core.config.MachineConfig` a trace is replayed under, not
of the trace; the verification runner sweeps those separately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..isa import Instruction, Opcode
from ..isa.registers import A0, A, Register, S
from ..trace import Trace
from ..trace.generator import TraceItem, assemble_trace
from ..trace.record import TraceEntry

#: Two-operand integer (address-pipe) opcodes.
_INT_OPS = (Opcode.AADD, Opcode.ASUB, Opcode.AMUL)
#: Two-operand scalar/FP opcodes (S registers both sides).
_FLOAT_OPS = (
    Opcode.SADD,
    Opcode.SSUB,
    Opcode.SAND,
    Opcode.SOR,
    Opcode.SXOR,
    Opcode.FADD,
    Opcode.FSUB,
    Opcode.FMUL,
)
_SHIFT_OPS = (Opcode.SSHL, Opcode.SSHR)
_COND_BRANCHES = (Opcode.JAZ, Opcode.JAN, Opcode.JAP, Opcode.JAM)

#: How many recent writes the dependency picker draws from.
_RECENT_WINDOW = 4


@dataclass(frozen=True)
class FuzzSpec:
    """Parameters of one fuzzed trace (see module docstring)."""

    length: int = 48
    dependency_density: float = 0.55
    memory_fraction: float = 0.20
    branch_fraction: float = 0.08
    float_fraction: float = 0.50
    taken_fraction: float = 0.40
    backward_fraction: float = 0.50

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("a fuzzed trace needs at least one instruction")
        for field_name in (
            "dependency_density",
            "memory_fraction",
            "branch_fraction",
            "float_fraction",
            "taken_fraction",
            "backward_fraction",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if self.memory_fraction + self.branch_fraction > 1.0:
            raise ValueError(
                "memory_fraction + branch_fraction cannot exceed 1"
            )


class _Fuzzer:
    """One generation pass: an rng plus recently-written register pools."""

    def __init__(self, rng: random.Random, spec: FuzzSpec) -> None:
        self.rng = rng
        self.spec = spec
        self.recent_a: List[Register] = []
        self.recent_s: List[Register] = []

    # ---- register selection -------------------------------------------
    def _pick(self, recent: List[Register], fresh: Register) -> Register:
        if recent and self.rng.random() < self.spec.dependency_density:
            return self.rng.choice(recent[-_RECENT_WINDOW:])
        return fresh

    def src_a(self) -> Register:
        return self._pick(self.recent_a, A(self.rng.randrange(8)))

    def src_s(self) -> Register:
        return self._pick(self.recent_s, S(self.rng.randrange(8)))

    def dest_a(self) -> Register:
        # A0 shows up as a destination often enough that conditional
        # branches (which test A0 only) exercise fresh producers.
        reg = A0 if self.rng.random() < 0.15 else A(self.rng.randrange(1, 8))
        self.recent_a.append(reg)
        return reg

    def dest_s(self) -> Register:
        reg = S(self.rng.randrange(8))
        self.recent_s.append(reg)
        return reg

    # ---- instruction makers -------------------------------------------
    def integer_op(self) -> Instruction:
        roll = self.rng.random()
        if roll < 0.15:
            return Instruction(
                Opcode.AI, dest=self.dest_a(), srcs=(self.rng.randrange(256),)
            )
        if roll < 0.25:
            return Instruction(Opcode.AMOVE, dest=self.dest_a(), srcs=(self.src_a(),))
        if roll < 0.32:
            return Instruction(Opcode.STA, dest=self.dest_a(), srcs=(self.src_s(),))
        if roll < 0.38:
            return Instruction(Opcode.FIX, dest=self.dest_a(), srcs=(self.src_s(),))
        opcode = self.rng.choice(_INT_OPS)
        first = self.src_a()
        # ALU_INT allows integer immediates as sources.
        second: object = (
            self.rng.randrange(64) if self.rng.random() < 0.25 else self.src_a()
        )
        return Instruction(opcode, dest=self.dest_a(), srcs=(first, second))

    def float_op(self) -> Instruction:
        roll = self.rng.random()
        if roll < 0.12:
            return Instruction(
                Opcode.SI,
                dest=self.dest_s(),
                srcs=(round(self.rng.uniform(-8.0, 8.0), 3),),
            )
        if roll < 0.20:
            return Instruction(Opcode.SMOVE, dest=self.dest_s(), srcs=(self.src_s(),))
        if roll < 0.27:
            return Instruction(Opcode.ATS, dest=self.dest_s(), srcs=(self.src_a(),))
        if roll < 0.33:
            return Instruction(Opcode.FLOAT, dest=self.dest_s(), srcs=(self.src_a(),))
        if roll < 0.40:
            return Instruction(Opcode.FRECIP, dest=self.dest_s(), srcs=(self.src_s(),))
        if roll < 0.50:
            return Instruction(
                Opcode.SSHR if self.rng.random() < 0.5 else Opcode.SSHL,
                dest=self.dest_s(),
                srcs=(self.src_s(), self.rng.randrange(1, 32)),
            )
        opcode = self.rng.choice(_FLOAT_OPS)
        return Instruction(
            opcode, dest=self.dest_s(), srcs=(self.src_s(), self.src_s())
        )

    def memory_op(self, seq: int) -> TraceEntry:
        base = self.src_a()
        disp = self.rng.randrange(64)
        roll = self.rng.random()
        if roll < 0.40:
            instr = Instruction(Opcode.LOADS, dest=self.dest_s(), srcs=(base, disp))
        elif roll < 0.65:
            instr = Instruction(Opcode.LOADA, dest=self.dest_a(), srcs=(base, disp))
        elif roll < 0.85:
            instr = Instruction(Opcode.STORES, srcs=(self.src_s(), base, disp))
        else:
            instr = Instruction(Opcode.STOREA, srcs=(self.src_a(), base, disp))
        return TraceEntry(
            seq=seq,
            static_index=seq,
            instruction=instr,
            address=self.rng.randrange(4096),
        )

    def branch_op(self, seq: int) -> TraceEntry:
        unconditional = self.rng.random() < 0.2
        if unconditional:
            instr = Instruction(Opcode.JMP, target=f"L{seq}")
            taken = True
        else:
            opcode = self.rng.choice(_COND_BRANCHES)
            instr = Instruction(opcode, srcs=(A0,), target=f"L{seq}")
            taken = self.rng.random() < self.spec.taken_fraction
        return TraceEntry(
            seq=seq,
            static_index=seq,
            instruction=instr,
            taken=taken,
            backward=self.rng.random() < self.spec.backward_fraction,
        )


#: Named fuzz-spec presets ("families"): corners of the knob space the
#: default mix never reaches, exposed as ``fuzz:<family>`` specs by the
#: trace-source registry (:mod:`repro.trace.sources`) and swept by the
#: nightly branchy verification campaign.  Statistics envelopes for the
#: family traces live in ``repro.trace.sources.FAMILY_ENVELOPES``.
FUZZ_FAMILIES: "dict[str, FuzzSpec]" = {
    "default": FuzzSpec(),
    # Control-dominated: every third-or-so instruction is a branch, and
    # integer (address-pipe) compute feeds the A0 tests.
    "branchy": FuzzSpec(
        length=96,
        dependency_density=0.60,
        memory_fraction=0.12,
        branch_fraction=0.30,
        float_fraction=0.25,
        taken_fraction=0.55,
    ),
    # Memory-dominated with tight address recurrences: loads whose base
    # registers were just written, the fuzzer's closest shape to a chase.
    "pointer": FuzzSpec(
        length=96,
        dependency_density=0.85,
        memory_fraction=0.45,
        branch_fraction=0.04,
        float_fraction=0.20,
    ),
    # Wide independent dataflow: almost no reuse of recent results, so
    # issue width (not dependences) is the binding constraint.
    "parallel": FuzzSpec(
        length=96,
        dependency_density=0.15,
        memory_fraction=0.15,
        branch_fraction=0.04,
        float_fraction=0.60,
    ),
}


def fuzz_family(name: str, seed: int = 0) -> Trace:
    """Generate the *name* family's trace for *seed*.

    Raises:
        ValueError: for an unknown family name.
    """
    try:
        spec = FUZZ_FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown fuzz family {name!r}; "
            f"available: {', '.join(sorted(FUZZ_FAMILIES))}"
        ) from None
    return fuzz_trace(seed, spec)


#: S-pipe (scalar / floating) vs A-pipe (address) functional units, for
#: mapping a measured ``fu_demand`` onto the ``float_fraction`` knob.
#: MEMORY, BRANCH and TRANSFER are excluded: the first two have their
#: own knobs and the fuzzer mints register moves on both pipes.
_FLOAT_UNIT_NAMES = frozenset({
    "scalar add", "scalar logical", "scalar shift", "population count",
    "floating add", "floating multiply", "reciprocal approximation",
})
_INT_UNIT_NAMES = frozenset({"address add", "address multiply"})


def _clamp(value: float, low: float, high: float) -> float:
    return min(high, max(low, value))


def kernel_calibrated_spec(
    loop: int,
    n: Optional[int] = None,
    length: Optional[int] = None,
) -> FuzzSpec:
    """Fuzzer knobs calibrated to one Livermore kernel's measured shape.

    Measures the kernel's verified dynamic trace with
    :func:`repro.trace.sources.source_statistics` and maps the envelope
    onto the :class:`FuzzSpec` knobs, so fuzzed campaigns can stress the
    machine models with workloads shaped like each real kernel (rather
    than only the hand-picked family corners):

    * ``branch_fraction`` / ``memory_fraction`` -- the measured mix,
      clamped to the fuzzer's valid region;
    * ``dependency_density`` -- the measured ``dependent_fraction``
      scaled by how much tighter the fuzzer's recent-write window is
      than the kernel's mean dependence distance (a kernel with long
      mean distances -- wide dataflow like loop 8 -- calibrates to a
      low density, a tight recurrence like loop 5 to a high one);
    * ``float_fraction`` -- the S-pipe share of the measured
      functional-unit demand over both compute pipes;
    * ``taken_fraction`` / ``backward_fraction`` -- counted directly
      from the kernel's dynamic branch outcomes (loop back-edges, so
      typically close to 1.0);
    * ``length`` -- the kernel's dynamic length, capped at 120 by
      default to keep fuzzed replay cheap (override with *length*).

    The deterministic fuzzer contract is unchanged:
    ``fuzz_trace(seed, kernel_calibrated_spec(loop))`` is reproducible.
    """
    from ..kernels import default_size
    from ..trace.sources import source_statistics, trace_source

    size = default_size(loop) if n is None else n
    trace = trace_source(f"kernel:{loop}:n={size}")
    stats = source_statistics(trace)

    branch_fraction = _clamp(stats.branch_fraction, 0.0, 0.35)
    memory_fraction = _clamp(
        stats.memory_fraction, 0.0, 1.0 - branch_fraction
    )
    distance = max(stats.mean_dependence_distance, 1.0)
    dependency_density = _clamp(
        stats.dependent_fraction * _RECENT_WINDOW / distance, 0.05, 0.95
    )
    float_demand = sum(
        share for unit, share in stats.fu_demand.items()
        if unit in _FLOAT_UNIT_NAMES
    )
    int_demand = sum(
        share for unit, share in stats.fu_demand.items()
        if unit in _INT_UNIT_NAMES
    )
    compute = float_demand + int_demand
    float_fraction = float_demand / compute if compute else 0.5

    outcomes = [e.taken for e in trace.entries if e.taken is not None]
    backwards = [
        bool(e.backward) for e in trace.entries if e.taken is not None
    ]
    taken_fraction = (
        sum(outcomes) / len(outcomes) if outcomes else FuzzSpec.taken_fraction
    )
    backward_fraction = (
        sum(backwards) / len(backwards)
        if backwards
        else FuzzSpec.backward_fraction
    )

    return FuzzSpec(
        length=min(stats.length, 120) if length is None else length,
        dependency_density=dependency_density,
        memory_fraction=memory_fraction,
        branch_fraction=branch_fraction,
        float_fraction=_clamp(float_fraction, 0.0, 1.0),
        taken_fraction=_clamp(taken_fraction, 0.0, 1.0),
        backward_fraction=_clamp(backward_fraction, 0.0, 1.0),
    )


def fuzz_trace(seed: int, spec: Optional[FuzzSpec] = None) -> Trace:
    """Generate one deterministic synthetic trace for *seed* under *spec*."""
    spec = spec or FuzzSpec()
    rng = random.Random(seed)
    fuzzer = _Fuzzer(rng, spec)

    items: List[TraceItem] = []
    for seq in range(spec.length):
        roll = rng.random()
        if roll < spec.branch_fraction:
            items.append(fuzzer.branch_op(seq))
        elif roll < spec.branch_fraction + spec.memory_fraction:
            items.append(fuzzer.memory_op(seq))
        elif rng.random() < spec.float_fraction:
            items.append(fuzzer.float_op())
        else:
            items.append(fuzzer.integer_op())
    return assemble_trace(items, name=f"fuzz-{seed}")
